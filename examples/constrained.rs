//! Running the DTN under scarce resources (paper §VI-D): a bandwidth cap
//! of one message per encounter, and a storage cap of two relay messages
//! per node with FIFO eviction.
//!
//! Run with: `cargo run --release --example constrained`

use replidtn::dtn::{EncounterBudget, PolicyKind};
use replidtn::emu::experiments::{run_policy, Scenario};
use replidtn::emu::report::Table;

fn main() {
    let scenario = Scenario::small();
    let policies = [
        PolicyKind::Direct,
        PolicyKind::SprayAndWait,
        PolicyKind::MaxProp,
    ];

    let mut table = Table::new(
        "Delivery within 12h (%) under constraints",
        vec![
            "policy",
            "unconstrained",
            "1 msg/encounter",
            "2 relay slots",
        ],
    );
    for policy in policies {
        let free = run_policy(&scenario, policy, EncounterBudget::unlimited(), None);
        let bw = run_policy(&scenario, policy, EncounterBudget::max_messages(1), None);
        let storage = run_policy(&scenario, policy, EncounterBudget::unlimited(), Some(2));
        table.row(vec![
            policy.label().to_string(),
            format!("{:.1}", free.result.delivered_within_12h_pct),
            format!("{:.1}", bw.result.delivered_within_12h_pct),
            format!("{:.1}", storage.result.delivered_within_12h_pct),
        ]);

        // The storage-capped run actually evicted relay copies (except the
        // baseline, which relays nothing — the paper notes Cimbiosys is
        // unaffected by the storage limit).
        if policy != PolicyKind::Direct {
            assert!(
                storage.result.metrics.evictions > 0,
                "{policy}: tight relay storage must evict"
            );
        } else {
            assert_eq!(storage.result.metrics.evictions, 0);
        }
    }
    println!("{table}");
    println!("note: constraints raise delays, but the DTN policies still beat the baseline —");
    println!("the paper's §VI-D conclusion.");
}
