//! Real peer-to-peer replication over TCP sockets: three OS-level peers on
//! localhost, a message relayed across two hops, then a deletion clearing
//! the relay — the whole DTN stack running over the wire instead of the
//! emulator.
//!
//! Run with: `cargo run --example tcp_peers`

use replidtn::dtn::{DtnNode, PolicyKind};
use replidtn::pfr::{ReplicaId, SimTime};
use replidtn::transport::Peer;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let alice = Peer::start(
        DtnNode::new(ReplicaId::new(1), "alice", PolicyKind::Epidemic),
        "127.0.0.1:0",
    )?;
    let relay = Peer::start(
        DtnNode::new(ReplicaId::new(2), "relay", PolicyKind::Epidemic),
        "127.0.0.1:0",
    )?;
    let bob = Peer::start(
        DtnNode::new(ReplicaId::new(3), "bob", PolicyKind::Epidemic),
        "127.0.0.1:0",
    )?;
    println!("alice @ {}", alice.local_addr());
    println!("relay @ {}", relay.local_addr());
    println!("bob   @ {}", bob.local_addr());

    let msg_id =
        alice.with_node(|n| n.send("bob", b"sent over real sockets".to_vec(), SimTime::ZERO))?;
    println!("alice queued {msg_id} for bob");

    // Alice only ever talks to the relay.
    let report = alice.sync_with(relay.local_addr(), SimTime::from_secs(60))?;
    println!(
        "alice <-> relay: served {} item(s) to the relay",
        report.served
    );

    // Later the relay meets bob.
    let report = relay.sync_with(bob.local_addr(), SimTime::from_secs(120))?;
    println!("relay <-> bob: served {} item(s)", report.served);

    for msg in bob.with_node(|n| n.inbox()) {
        println!(
            "bob received {:?} from {}",
            String::from_utf8_lossy(&msg.payload),
            msg.src
        );
    }

    // Bob deletes after reading; the tombstone clears the relay's buffer on
    // the next session.
    bob.with_node(|n| n.replica_mut().delete(msg_id))?;
    bob.sync_with(relay.local_addr(), SimTime::from_secs(180))?;
    let relay_load = relay.with_node(|n| n.replica().relay_load());
    println!("after bob's delete, relay buffer holds {relay_load} message(s)");
    assert_eq!(relay_load, 0);

    alice.stop();
    relay.stop();
    bob.stop();
    Ok(())
}
