//! Quickstart: delay-tolerant messaging over filtered replication.
//!
//! Three buses run the DTN application. Bus `a` writes a message for bus
//! `c`; the two never meet, but epidemic forwarding through bus `b`
//! delivers it — with the replication substrate providing duplicate
//! suppression and eventual delivery for free.
//!
//! Run with: `cargo run --example quickstart`

use replidtn::dtn::{DtnNode, EncounterBudget, PolicyKind};
use replidtn::pfr::{ReplicaId, SimTime};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // Each device is one DtnNode: a replica + a routing policy + an address.
    let mut a = DtnNode::new(ReplicaId::new(1), "a", PolicyKind::Epidemic);
    let mut b = DtnNode::new(ReplicaId::new(2), "b", PolicyKind::Epidemic);
    let mut c = DtnNode::new(ReplicaId::new(3), "c", PolicyKind::Epidemic);

    // Sending = inserting an addressed item into the local replica. No
    // connectivity needed; the item waits for opportunistic encounters.
    let msg_id = a.send("c", b"hello across the partition".to_vec(), SimTime::ZERO)?;
    println!("a queued message {msg_id} for c");

    // a meets b: the message doesn't match b's filter, but the epidemic
    // policy relays it (TTL-limited flooding).
    let report = a.encounter(
        &mut b,
        SimTime::from_hms(0, 9, 0, 0),
        EncounterBudget::unlimited(),
    );
    println!(
        "09:00  a<->b: {} item(s) transferred, {} delivered (b is a relay)",
        report.transmitted, report.delivered
    );

    // b meets c hours later: c's filter matches, so this is a delivery.
    let report = b.encounter(
        &mut c,
        SimTime::from_hms(0, 14, 0, 0),
        EncounterBudget::unlimited(),
    );
    println!(
        "14:00  b<->c: {} item(s) transferred, {} delivered",
        report.transmitted, report.delivered
    );

    for msg in c.inbox() {
        println!(
            "c received {:?} from {} (sent {}, id {})",
            String::from_utf8_lossy(&msg.payload),
            msg.src,
            msg.sent_at,
            msg.id
        );
    }

    // Duplicate suppression: meeting again moves nothing.
    let report = a.encounter(
        &mut c,
        SimTime::from_hms(0, 18, 0, 0),
        EncounterBudget::unlimited(),
    );
    assert_eq!(report.transmitted, 0);
    println!("18:00  a<->c: nothing to transfer — knowledge suppressed the duplicate");

    // The destination deletes the message; the tombstone clears relay
    // copies as it propagates (paper §IV-A: no acknowledgements needed).
    c.replica_mut().delete(msg_id)?;
    c.encounter(
        &mut b,
        SimTime::from_hms(0, 19, 0, 0),
        EncounterBudget::unlimited(),
    );
    assert_eq!(b.replica().relay_load(), 0);
    println!("19:00  c's deletion reached b: relay buffer is empty again");
    Ok(())
}
