//! Sensor-data collection in the style of ZebraNet (one of the paper's
//! motivating DTN applications, §II-A): tracking collars generate
//! readings; the readings must reach a base station that is only ever in
//! range of whichever animals wander past it. Spray-and-Wait bounds how
//! many copies of each reading roam the herd, and a relay storage cap
//! models the collars' tiny memories.
//!
//! Run with: `cargo run --example zebranet`

use replidtn::dtn::{DtnNode, EncounterBudget, PolicyKind};
use replidtn::pfr::{ReplicaId, SimDuration, SimTime};
use replidtn::traces::{DieselNetConfig, Encounter, EncounterTrace};

const COLLARS: usize = 10;
const BASE: u64 = 99;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // Collars are nodes 1..=10; the base station is node 99.
    let mut collars: Vec<DtnNode> = (1..=COLLARS as u64)
        .map(|i| {
            let mut node = DtnNode::new(
                ReplicaId::new(i),
                &format!("collar-{i}"),
                PolicyKind::SprayAndWait,
            );
            // Tiny memory: each collar relays at most 4 foreign readings.
            node.replica_mut().set_relay_limit(Some(4));
            node
        })
        .collect();
    let mut base = DtnNode::new(ReplicaId::new(BASE), "base", PolicyKind::SprayAndWait);

    // Herd mobility: reuse the route-structured generator as a herd that
    // mixes within subgroups; the base station joins rarely (watering
    // hole).
    let herd_trace = DieselNetConfig {
        days: 3,
        fleet_size: COLLARS,
        buses_per_day: COLLARS,
        routes: 3,
        clusters: 1,
        encounters_per_day: 160,
        ..DieselNetConfig::default()
    }
    .generate();
    // The base sees two random collars around midday, daily.
    let mut schedule: Vec<Encounter> = herd_trace.iter().copied().collect();
    for day in 0..3 {
        for (i, hour) in [
            (1 + day as usize % COLLARS, 12),
            (3 + day as usize % COLLARS, 13),
        ] {
            schedule.push(Encounter::new(
                SimTime::from_hms(day, hour, 0, 0),
                ReplicaId::new((i % COLLARS) as u64 + 1),
                ReplicaId::new(BASE),
            ));
        }
    }
    let schedule = EncounterTrace::from_encounters(schedule);

    // Each collar takes a reading every morning.
    let mut readings = 0;
    for day in 0..3u64 {
        for (i, collar) in collars.iter_mut().enumerate() {
            let payload = format!(
                "day{day}: collar-{} at waterhole {}",
                i + 1,
                (i * 7 + day as usize) % 5
            );
            collar.send(
                "base",
                payload.into_bytes(),
                SimTime::from_hms(day, 7, 0, 0),
            )?;
            readings += 1;
        }
    }

    // Replay the schedule.
    for enc in schedule.iter() {
        let budget = EncounterBudget::unlimited();
        if enc.b == ReplicaId::new(BASE) {
            let idx = (enc.a.as_u64() - 1) as usize;
            collars[idx].encounter(&mut base, enc.time, budget);
        } else {
            let (x, y) = ((enc.a.as_u64() - 1) as usize, (enc.b.as_u64() - 1) as usize);
            let (lo, hi) = if x < y { (x, y) } else { (y, x) };
            let (left, right) = collars.split_at_mut(hi);
            left[lo].encounter(&mut right[0], enc.time, budget);
        }
    }

    let collected = base.inbox();
    println!(
        "base station collected {}/{} readings over 3 days via {} direct contacts/day",
        collected.len(),
        readings,
        2
    );
    let mut by_day = [0usize; 3];
    for msg in &collected {
        by_day[msg.sent_at.day() as usize] += 1;
    }
    for (day, n) in by_day.iter().enumerate() {
        println!("  day {day} readings recovered: {n}/{COLLARS}");
    }

    // Storage pressure was real:
    let evictions: u64 = collars.iter().map(|c| c.replica().stats().evictions).sum();
    println!("relay evictions across the herd: {evictions}");

    // Readings the base holds were delivered exactly once each.
    assert!(
        collected.len() > readings / 2,
        "herd relaying must beat direct-only"
    );
    let total_dups: u64 = collars
        .iter()
        .map(|c| c.replica().stats().duplicates_rejected)
        .chain(std::iter::once(base.replica().stats().duplicates_rejected))
        .sum();
    assert_eq!(total_dups, 0);
    println!("at-most-once delivery held across the herd (0 duplicates)");

    // Latency of collection, per reading.
    let mut delays: Vec<f64> = collected
        .iter()
        .filter_map(|m| {
            base.replica()
                .received_at(m.id)
                .map(|at| at.saturating_since(m.sent_at).as_hours_f64())
        })
        .collect();
    delays.sort_by(f64::total_cmp);
    if let (Some(first), Some(last)) = (delays.first(), delays.last()) {
        println!("collection latency: fastest {first:.1} h, slowest {last:.1} h");
    }
    let _ = SimDuration::ZERO;
    Ok(())
}
