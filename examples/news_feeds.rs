//! Content-based publish/subscribe over the replication substrate.
//!
//! The DTN messaging application uses only one attribute (`dest`), but the
//! substrate's filters are full content predicates (paper §II-B: "a
//! query-like predicate over the contents of data items"). This example
//! runs a delay-tolerant news service: publishers insert articles with
//! topic and priority attributes; subscriber devices carry filters written
//! in the query language; opportunistic syncs deliver exactly the matching
//! articles — including backlog after a subscription change.
//!
//! Run with: `cargo run --example news_feeds`

use replidtn::pfr::{sync, AttributeMap, Filter, Replica, ReplicaId, SimTime};

fn article(topic: &str, priority: i64, headline: &str) -> (AttributeMap, Vec<u8>) {
    let mut attrs = AttributeMap::new();
    attrs.set("kind", "article");
    attrs.set("topic", topic);
    attrs.set("priority", priority);
    (attrs, headline.as_bytes().to_vec())
}

fn show(name: &str, replica: &Replica) {
    println!("{name} carries:");
    for item in replica.iter_items() {
        if item.attrs().get_str("kind") == Some("article") && !item.is_deleted() {
            println!(
                "  [{}/p{}] {}",
                item.attrs().get_str("topic").unwrap_or("?"),
                item.attrs().get_i64("priority").unwrap_or(0),
                String::from_utf8_lossy(item.payload())
            );
        }
    }
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // The newsroom publishes everything it writes.
    let mut newsroom = Replica::new(ReplicaId::new(1), Filter::All);
    for (topic, priority, headline) in [
        ("sports", 1, "local team wins"),
        ("sports", 3, "championship final tonight"),
        ("weather", 3, "storm warning issued"),
        ("weather", 1, "mild weekend ahead"),
        ("politics", 2, "council passes budget"),
    ] {
        let (attrs, payload) = article(topic, priority, headline);
        newsroom.insert(attrs, payload)?;
    }

    // A commuter wants urgent news only, any topic.
    let urgent = Filter::parse(r#"kind = "article" and priority >= 3"#)?;
    let mut commuter = Replica::new(ReplicaId::new(2), urgent);

    // A sports fan wants everything about sports.
    let sports = Filter::parse(r#"kind = "article" and topic = "sports""#)?;
    let mut fan = Replica::new(ReplicaId::new(3), sports);

    // Opportunistic syncs at the bus stop.
    let report = sync::sync_once(&mut newsroom, &mut commuter, SimTime::from_hms(0, 8, 0, 0));
    println!(
        "08:00 commuter sync: {} article(s) matched the filter",
        report.delivered
    );
    show("commuter", &commuter);

    let report = sync::sync_once(&mut newsroom, &mut fan, SimTime::from_hms(0, 8, 5, 0));
    println!("\n08:05 fan sync: {} article(s)", report.delivered);
    show("fan", &fan);

    // The fan broadens the subscription mid-day: weather too. The next
    // sync backfills the weather archive — eventual filter consistency
    // applies to the *current* filter, whenever it was set.
    let broader = Filter::parse(r#"kind = "article" and (topic = "sports" or topic = "weather")"#)?;
    fan.set_filter(broader);
    let report = sync::sync_once(&mut newsroom, &mut fan, SimTime::from_hms(0, 17, 0, 0));
    println!(
        "\n17:00 fan widened subscription; backfilled {} article(s)",
        report.delivered
    );
    show("fan", &fan);

    // The newsroom retracts a story; the tombstone chases the copies.
    let storm = newsroom
        .iter_items()
        .find(|i| i.payload() == b"storm warning issued")
        .map(|i| i.id())
        .expect("published above");
    newsroom.delete(storm)?;
    sync::sync_once(&mut newsroom, &mut fan, SimTime::from_hms(0, 19, 0, 0));
    println!("\n19:00 storm warning retracted:");
    show("fan", &fan);
    assert!(fan.item(storm).expect("tombstone retained").is_deleted());

    // Peer-to-peer: subscribers with overlapping interests serve each
    // other without the newsroom (topology independence).
    let mut second_fan = Replica::new(
        ReplicaId::new(4),
        Filter::parse(r#"kind = "article" and topic = "sports""#)?,
    );
    let report = sync::sync_once(&mut fan, &mut second_fan, SimTime::from_hms(0, 21, 0, 0));
    println!(
        "\n21:00 fan-to-fan sync delivered {} sports article(s)",
        report.delivered
    );
    assert_eq!(report.delivered, 2);
    Ok(())
}
