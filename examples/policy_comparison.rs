//! Compares all five routing policies — the baseline and the four DTN
//! protocols — on one scenario, printing the delay/traffic/storage
//! trade-off the paper's §VI-C quantifies.
//!
//! Run with: `cargo run --release --example policy_comparison`

use replidtn::dtn::EncounterBudget;
use replidtn::emu::experiments::{policy_comparison, Scenario};
use replidtn::emu::report::{fmt_opt, Table};

fn main() {
    let scenario = Scenario::small();
    println!(
        "scenario: {} encounters / {} days / {} messages",
        scenario.trace.len(),
        scenario.trace.days(),
        scenario.workload.len()
    );

    let runs = policy_comparison(&scenario, EncounterBudget::unlimited(), None);

    let mut table = Table::new(
        "Policy comparison (unconstrained)",
        vec![
            "policy",
            "mean delay (h)",
            "within 12h (%)",
            "delivered (%)",
            "copies@delivery",
            "copies@end",
            "transfers",
        ],
    );
    for run in &runs {
        table.row(vec![
            run.policy.label().to_string(),
            format!("{:.1}", run.result.mean_delay_hours),
            format!("{:.1}", run.result.delivered_within_12h_pct),
            format!("{:.1}", run.result.delivery_rate_pct),
            fmt_opt(run.copies_at_delivery),
            fmt_opt(run.copies_at_end),
            run.result.metrics.transmissions.to_string(),
        ]);
    }
    println!("{table}");

    // Every policy keeps the substrate's guarantee.
    for run in &runs {
        assert_eq!(run.result.metrics.duplicates, 0);
    }
    println!("at-most-once delivery held for every policy (0 duplicates).");
}
