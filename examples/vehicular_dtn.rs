//! End-to-end vehicular scenario: a DieselNet-like bus trace carries an
//! Enron-like e-mail workload, routed by MaxProp — the paper's evaluation
//! setup in miniature (§VI-A), with per-day user-to-bus assignment.
//!
//! Run with: `cargo run --release --example vehicular_dtn`

use replidtn::dtn::PolicyKind;
use replidtn::emu::{Emulation, EmulationConfig};
use replidtn::pfr::SimDuration;
use replidtn::traces::{DieselNetConfig, EmailConfig};

fn main() {
    // A mid-sized scenario: 8 days of bus encounters, ~200 messages.
    let trace = DieselNetConfig {
        days: 8,
        fleet_size: 20,
        buses_per_day: 14,
        routes: 6,
        clusters: 2,
        encounters_per_day: 500,
        ..DieselNetConfig::default()
    }
    .generate();
    let workload = EmailConfig {
        users: 28,
        injection_days: 4,
        total_messages: 200,
        ..EmailConfig::default()
    }
    .generate();

    println!(
        "trace: {} encounters over {} days, {:.1} buses/day",
        trace.len(),
        trace.days(),
        trace.mean_nodes_per_day()
    );
    println!(
        "workload: {} messages from {} users, injected over {} days",
        workload.len(),
        workload.users().len(),
        workload.last_injection_day().map(|d| d + 1).unwrap_or(0)
    );

    let config = EmulationConfig::for_policy(PolicyKind::MaxProp);
    let metrics = Emulation::new(&trace, &workload, config).run();

    println!();
    println!("MaxProp results:");
    println!(
        "  delivered: {}/{} ({:.1}%)",
        metrics.delivered(),
        metrics.injected(),
        metrics.delivery_rate() * 100.0
    );
    if let Some(mean) = metrics.mean_delay() {
        println!("  mean delay: {:.1} h", mean.as_hours_f64());
    }
    println!(
        "  within 12 h: {:.1}%",
        metrics.delivered_within(SimDuration::from_hours(12)) * 100.0
    );
    println!(
        "  network traffic: {} item transfers over {} encounters",
        metrics.transmissions, metrics.encounters
    );
    println!(
        "  duplicate receipts: {} (at-most-once delivery)",
        metrics.duplicates
    );

    // The delay CDF, hour by hour (the shape of the paper's Figure 7a).
    println!();
    println!("delay CDF:");
    for point in metrics.delay_cdf(SimDuration::from_hours(2), SimDuration::from_hours(24)) {
        println!(
            "  within {:>3}: {:5.1}%",
            point.delay.to_string(),
            point.delivered_pct
        );
    }
}
