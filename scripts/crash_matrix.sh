#!/usr/bin/env bash
# Crash matrix for the durable peer: a serving `replidtn peer --data-dir`
# process is SIGKILLed after each sync round — every other round its WAL
# additionally loses its final byte (a torn write) — then restarted from
# the same directory. Each restart must recover cleanly and show every
# message delivered so far exactly once: no losses behind the persist
# point, no duplicates, no corruption.
#
# Usage: scripts/crash_matrix.sh  (expects target/release/replidtn; set
# BIN to override, ROUNDS for a longer matrix).
set -euo pipefail

BIN=${BIN:-target/release/replidtn}
ROUNDS=${ROUNDS:-5}
if [[ ! -x "$BIN" ]]; then
    echo "error: $BIN not built (run: cargo build --release)" >&2
    exit 1
fi

WORK=$(mktemp -d)
cleanup() {
    local jobs
    jobs=$(jobs -p)
    [[ -n "$jobs" ]] && kill -9 $jobs 2>/dev/null
    rm -rf "$WORK"
}
trap cleanup EXIT

PORT=$((20000 + RANDOM % 20000))
VDIR=$WORK/victim
SDIR=$WORK/sender

for round in $(seq 1 "$ROUNDS"); do
    # Victim serves from its data directory (round 1 creates it, later
    # rounds recover whatever the previous kill left behind).
    "$BIN" peer --id 2 --address bob --listen "127.0.0.1:$PORT" \
        --data-dir "$VDIR" --serve-for 30 \
        >"$WORK/victim-$round.log" 2>&1 &
    victim=$!
    sleep 0.4

    # Sender replays its own durable knowledge, so re-connecting across
    # rounds never re-sends what the victim already acknowledged.
    "$BIN" peer --id 1 --address alice --listen 127.0.0.1:0 \
        --data-dir "$SDIR" --send "bob:msg-$round" \
        --connect "127.0.0.1:$PORT" \
        >"$WORK/sender-$round.log" 2>&1

    # The responder persists right after the session; give that fsync a
    # beat to land, then kill -9 mid-serve.
    sleep 0.4
    kill -9 "$victim"
    wait "$victim" 2>/dev/null || true

    # Every other round the crash also tears the newest WAL record.
    if ((round % 2 == 0)); then
        seg=$(ls "$VDIR"/wal-*.log | sort -V | tail -1)
        size=$(stat -c %s "$seg" 2>/dev/null || stat -f %z "$seg")
        if ((size > 0)); then
            truncate -s $((size - 1)) "$seg" 2>/dev/null ||
                dd if=/dev/null of="$seg" bs=1 seek=$((size - 1)) 2>/dev/null
        fi
        echo "round $round: tore 1 byte off $(basename "$seg")"
    fi

    # Restart and check the inbox: msg-1..msg-round, each exactly once.
    out=$("$BIN" peer --id 2 --address bob --listen 127.0.0.1:0 --data-dir "$VDIR")
    for i in $(seq 1 "$round"); do
        count=$(grep -c "\"msg-$i\"" <<<"$out" || true)
        if ((count != 1)); then
            echo "FAIL round $round: \"msg-$i\" appears $count time(s), want exactly 1" >&2
            echo "--- inbox output ---" >&2
            echo "$out" >&2
            exit 1
        fi
    done
    echo "round $round: recovered, $round message(s) each exactly once"
done

echo "crash matrix passed: $ROUNDS kill -9 rounds, no loss, no duplicates"
