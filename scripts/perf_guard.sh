#!/usr/bin/env bash
# Structural guard for the macro_emu benchmark artifact.
#
# Checks the *invariants* a run of `cargo bench -p replidtn-bench --bench
# macro_emu` must always satisfy — the scan and indexed replays produced
# identical ExperimentMetrics, both modes actually ran encounters, and the
# per-sync instrumentation was collected. Deliberately asserts NO absolute
# times or speedup thresholds: CI machines vary, and a shared-runner blip
# must not fail the build. Regressions are caught by eyeballing the
# committed 30-day BENCH_emu.json, not by flaky wall-clock gates.
#
# Usage: scripts/perf_guard.sh [path/to/BENCH_emu.json]
set -euo pipefail

FILE=${1:-crates/bench/BENCH_emu.json}
if [[ ! -f "$FILE" ]]; then
    echo "error: $FILE not found (run: cargo bench -p replidtn-bench --bench macro_emu)" >&2
    exit 1
fi

python3 - "$FILE" <<'EOF'
import json, sys

path = sys.argv[1]
with open(path) as f:
    doc = json.load(f)

failures = []

def check(cond, msg):
    if not cond:
        failures.append(msg)

check(doc.get("bench") == "macro_emu", "bench name is not macro_emu")
check(doc.get("metrics_identical") is True,
      "scan and indexed replays did NOT produce identical metrics")
check(doc.get("encounters", 0) > 0, "replay ran zero encounters")
check(doc.get("messages", 0) > 0, "replay injected zero messages")
check(doc.get("days", 0) > 0, "replay covered zero days")

for mode in ("scan", "indexed"):
    m = doc.get(mode, {})
    check(m.get("encounters_per_sec", 0) > 0,
          f"{mode}: zero encounter throughput")
    check(m.get("seconds", 0) > 0, f"{mode}: zero elapsed time")
    hist = m.get("batch_build_us", {})
    check(hist.get("count", 0) > 0,
          f"{mode}: batch-build histogram collected no samples")

check(doc.get("speedup", 0) > 0, "speedup missing or non-positive")

if failures:
    for f in failures:
        print(f"perf_guard: FAIL: {f}", file=sys.stderr)
    sys.exit(1)

print(f"perf_guard: OK ({path}: days={doc['days']} "
      f"encounters={doc['encounters']} "
      f"metrics_identical={doc['metrics_identical']} "
      f"speedup={doc['speedup']}x)")
EOF
