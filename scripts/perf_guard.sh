#!/usr/bin/env bash
# Structural guard for the macro_emu benchmark artifact.
#
# Checks the *invariants* a run of `cargo bench -p replidtn-bench --bench
# macro_emu` must always satisfy — the scan, indexed, and owned-data-plane
# replays produced identical ExperimentMetrics, every mode actually ran
# encounters, the per-sync instrumentation was collected, and the loopback
# session exercised the zero-copy data plane (pooled read buffers, encode
# scratch reuse, shared payload decodes). Deliberately asserts NO absolute
# times or speedup thresholds: CI machines vary, and a shared-runner blip
# must not fail the build. Regressions are caught by eyeballing the
# committed 30-day BENCH_emu.json, not by flaky wall-clock gates. The one
# quantitative gate is the allocation ratio — allocator counts are
# deterministic, so when the artifact was built with `--features
# alloc-count` the owned data plane must allocate at least 5x more than
# the shared one.
#
# The companion macro_recon artifact gets its own quantitative gate:
# digest-mode metadata must undercut full knowledge exchange by at least
# 3x on the committed 30-day replay. Byte counts come from deterministic
# wire encodings, so — unlike wall clock — that ratio is stable enough to
# fail the build on.
#
# The macro_scale artifact (sharded city-scale engine) is gated
# structurally: the spilled, sharded, and serial replays produced
# identical metrics, the fleet is genuinely larger than the paper's 34
# buses, cross-shard handoffs and spills actually happened, and the
# spill mode's peak RSS did not exceed the everything-resident mode's
# (the spill run is measured first, so the bound holds even on kernels
# that refuse the VmHWM reset). Full-size artifacts (fleet >= 1,000 —
# the committed scale-100 run qualifies; CI's shrunken smoke runs are
# exempt) additionally carry the residency-health gates: the sharded
# engine must beat the serial baseline on encounters/s (relative gates
# between two runs of the same binary on the same machine are stable
# where absolute wall-clock gates are not), the thrash ratio (unspills
# per encounter) must stay at or below 0.3 — lookahead-driven eviction
# and prefetch, not fault-on-touch — and the spill mode's peak RSS must
# undercut the serial baseline's.
#
# The macro_net artifact (async reactor load generator) carries one
# section per poll backend (sweep and epoll) over the same burst.
# Structural gates always apply: both sections present, no session
# failed or was lost, throughput/latency/syscall accounting collected,
# delivery stayed exactly-once both ways, and the gossip chain converged
# within its round bound. The backend comparison is gated quantitatively
# only on full-size artifacts (>= 1,000 sessions, epoll actually
# resolved — the committed one qualifies; CI's shrunken smoke runs are
# exempt): epoll must clear 3x sweep's sessions/s with a lower p99 and
# under half the syscalls per session. Relative gates between two runs
# of the same binary on the same machine are stable where absolute
# wall-clock gates are not.
#
# Usage: scripts/perf_guard.sh [BENCH_emu.json] [BENCH_recon.json] [BENCH_scale.json] [BENCH_net.json]
set -euo pipefail

FILE=${1:-crates/bench/BENCH_emu.json}
RECON_FILE=${2:-crates/bench/BENCH_recon.json}
SCALE_FILE=${3:-crates/bench/BENCH_scale.json}
NET_FILE=${4:-crates/bench/BENCH_net.json}
if [[ ! -f "$FILE" ]]; then
    echo "error: $FILE not found (run: cargo bench -p replidtn-bench --bench macro_emu)" >&2
    exit 1
fi
if [[ ! -f "$RECON_FILE" ]]; then
    echo "error: $RECON_FILE not found (run: cargo bench -p replidtn-bench --bench macro_recon)" >&2
    exit 1
fi
if [[ ! -f "$SCALE_FILE" ]]; then
    echo "error: $SCALE_FILE not found (run: cargo bench -p replidtn-bench --bench macro_scale)" >&2
    exit 1
fi
if [[ ! -f "$NET_FILE" ]]; then
    echo "error: $NET_FILE not found (run: cargo bench -p replidtn-bench --bench macro_net)" >&2
    exit 1
fi

python3 - "$FILE" <<'EOF'
import json, sys

path = sys.argv[1]
with open(path) as f:
    doc = json.load(f)

failures = []

def check(cond, msg):
    if not cond:
        failures.append(msg)

check(doc.get("bench") == "macro_emu", "bench name is not macro_emu")
check(doc.get("metrics_identical") is True,
      "scan and indexed replays did NOT produce identical metrics")
check(doc.get("owned_metrics_identical") is True,
      "shared and owned data planes did NOT produce identical metrics")
check(doc.get("encounters", 0) > 0, "replay ran zero encounters")
check(doc.get("messages", 0) > 0, "replay injected zero messages")
check(doc.get("days", 0) > 0, "replay covered zero days")

for mode in ("scan", "indexed", "owned"):
    m = doc.get(mode, {})
    check(m.get("encounters_per_sec", 0) > 0,
          f"{mode}: zero encounter throughput")
    check(m.get("seconds", 0) > 0, f"{mode}: zero elapsed time")
for mode in ("scan", "indexed"):
    hist = doc.get(mode, {}).get("batch_build_us", {})
    check(hist.get("count", 0) > 0,
          f"{mode}: batch-build histogram collected no samples")

# The loopback TCP session must actually exercise the zero-copy data
# plane: pooled frame reads, reused encode scratch, shared-buffer payload
# decodes, and a nonzero byte volume.
plane = doc.get("data_plane", {})
for counter in ("pool_hits", "scratch_reuses", "bytes_encoded",
                "payload_shares"):
    check(plane.get(counter, 0) > 0, f"data_plane.{counter} is zero")

# Allocation counts are deterministic (unlike wall clock), so the ratio
# is gated when present. Null means the artifact was built without
# `--features alloc-count`; the committed 30-day artifact must have it.
ratio = doc.get("alloc_ratio_owned_vs_shared")
if ratio is not None:
    check(ratio >= 5.0,
          f"owned data plane allocates only {ratio}x more than shared "
          "(expected >= 5x)")

check(doc.get("speedup", 0) > 0, "speedup missing or non-positive")

if failures:
    for f in failures:
        print(f"perf_guard: FAIL: {f}", file=sys.stderr)
    sys.exit(1)

print(f"perf_guard: OK ({path}: days={doc['days']} "
      f"encounters={doc['encounters']} "
      f"metrics_identical={doc['metrics_identical']} "
      f"owned_metrics_identical={doc['owned_metrics_identical']} "
      f"alloc_ratio={doc.get('alloc_ratio_owned_vs_shared')} "
      f"pool_hits={plane.get('pool_hits')} "
      f"speedup={doc['speedup']}x)")
EOF

python3 - "$RECON_FILE" <<'EOF'
import json, sys

path = sys.argv[1]
with open(path) as f:
    doc = json.load(f)

failures = []

def check(cond, msg):
    if not cond:
        failures.append(msg)

check(doc.get("bench") == "macro_recon", "bench name is not macro_recon")
check(doc.get("metrics_identical") is True,
      "full and digest replays did NOT produce identical metrics")
check(doc.get("encounters", 0) > 0, "replay ran zero encounters")
check(doc.get("delivered", 0) > 0, "replay delivered zero messages")

digest = doc.get("digest", {})
check(digest.get("exchanges", 0) > 0, "digest mode ran zero exchanges")
check(digest.get("digest_bytes", 0) > 0, "recon.digest_bytes is zero")
check(digest.get("full_bytes", 0) > digest.get("digest_bytes", 0),
      "digest metadata did not undercut full knowledge exchange")

# The tentpole's quantitative acceptance gate: wire encodings are
# deterministic, so the metadata reduction on the committed 30-day
# replay is a stable >= 3x.
ratio = doc.get("metadata_ratio", 0)
check(ratio >= 3.0,
      f"digest mode reduces sync metadata only {ratio}x (expected >= 3x)")

# The Bloom density sweep must chart the size / false-positive trade:
# sparse filters see false positives, every density resolves them via
# exact query rounds (never wrong candidates, so fallbacks are nonzero).
sweep = doc.get("bloom_sweep", [])
check(len(sweep) >= 3, "bloom sweep covered fewer than 3 densities")
check(any(row.get("false_positives", 0) > 0 for row in sweep),
      "bloom sweep never produced a false positive")
check(all(row.get("fallback_rounds", 0) > 0 for row in sweep),
      "a bloom sweep row resolved without exact query rounds")

if failures:
    for f in failures:
        print(f"perf_guard: FAIL: {f}", file=sys.stderr)
    sys.exit(1)

print(f"perf_guard: OK ({path}: days={doc['days']} "
      f"exchanges={digest.get('exchanges')} "
      f"metrics_identical={doc['metrics_identical']} "
      f"metadata_ratio={ratio}x "
      f"sweep_densities={len(sweep)})")
EOF

python3 - "$SCALE_FILE" <<'EOF'
import json, sys

path = sys.argv[1]
with open(path) as f:
    doc = json.load(f)

failures = []

def check(cond, msg):
    if not cond:
        failures.append(msg)

check(doc.get("bench") == "macro_scale", "bench name is not macro_scale")
check(doc.get("metrics_identical") is True,
      "spilled and sharded replays did NOT produce identical metrics")
check(doc.get("encounters", 0) > 0, "replay ran zero encounters")
check(doc.get("messages", 0) > 0, "replay injected zero messages")
check(doc.get("fleet", 0) > 34,
      "fleet is not larger than the paper's 34 buses")
check(doc.get("fleet", 0) == 34 * doc.get("scale", 0),
      "fleet does not match 34 x scale")
check(doc.get("workers", 0) >= 2, "fewer than 2 worker shards")
check(0 < doc.get("resident_limit", 0) < doc.get("fleet", 0),
      "resident limit does not actually bound the fleet")

# The scale machinery must have engaged: cross-shard encounters handed
# off, and the residency cap forced spill/unspill round trips with the
# health instrumentation collected.
shard = doc.get("shard", {})
check(shard.get("handoffs", 0) > 0, "shard.handoffs is zero")
check(shard.get("spills", 0) > 0, "shard.spills is zero")
check(shard.get("unspills", 0) > 0, "shard.unspills is zero")
check(shard.get("evictions", 0) > 0, "shard.evictions is zero")
check(shard.get("thrash_ratio", -1) >= 0, "shard.thrash_ratio missing")
check(shard.get("resident_peak", 0) > 0, "shard.resident_peak is zero")
check(shard.get("spill_file_bytes", 0) > 0, "shard.spill_file_bytes is zero")

for mode in ("spill", "sharded"):
    m = doc.get(mode, {})
    check(m.get("encounters_per_sec", 0) > 0,
          f"{mode}: zero encounter throughput")
    check(m.get("seconds", 0) > 0, f"{mode}: zero elapsed time")

# Bounded residency: the spill mode (measured first, so honest even
# without a VmHWM reset) must not out-peak the everything-resident mode.
spill_rss = doc.get("spill", {}).get("peak_rss_kb", 0)
sharded_rss = doc.get("sharded", {}).get("peak_rss_kb", 0)
check(spill_rss > 0, "spill: peak RSS not measured")
check(spill_rss <= sharded_rss,
      f"spill peak RSS ({spill_rss} KiB) exceeds the resident mode's "
      f"({sharded_rss} KiB)")

# When the serial baseline ran (it is skipped at very large scales), the
# bench asserted metric equality before writing the artifact; require
# its presence at smoke scales so the differential anchor is exercised.
if doc.get("scale", 0) <= 100:
    check(doc.get("serial") is not None,
          "serial baseline missing at a scale where it must run")

# Residency-health gates, armed only on full-size artifacts (the
# committed scale-100 run; CI smoke runs at tiny scales where fixed
# overheads — not the engine — dominate the comparison).
serial = doc.get("serial")
if doc.get("fleet", 0) >= 1000:
    check(serial is not None,
          "full-size artifact must carry the serial baseline")
    if serial is not None:
        check(doc.get("sharded", {}).get("encounters_per_sec", 0)
              >= serial.get("encounters_per_sec", 1e18),
              f"sharded engine ({doc.get('sharded', {}).get('encounters_per_sec')} enc/s) "
              f"does not beat the serial baseline "
              f"({serial.get('encounters_per_sec')} enc/s)")
        check(spill_rss < serial.get("peak_rss_kb", 0),
              f"spill peak RSS ({spill_rss} KiB) not below the serial "
              f"baseline's ({serial.get('peak_rss_kb')} KiB)")
    check(shard.get("thrash_ratio", 1e18) <= 0.3,
          f"thrash ratio {shard.get('thrash_ratio')} unspills/encounter "
          "exceeds 0.3: residency is faulting on touch, not prefetching")

if failures:
    for f in failures:
        print(f"perf_guard: FAIL: {f}", file=sys.stderr)
    sys.exit(1)

print(f"perf_guard: OK ({path}: scale={doc['scale']} fleet={doc['fleet']} "
      f"({doc.get('fleet_vs_paper')}x paper) days={doc['days']} "
      f"encounters={doc['encounters']} workers={doc['workers']} "
      f"handoffs={shard.get('handoffs')} spills={shard.get('spills')} "
      f"thrash_ratio={shard.get('thrash_ratio')} "
      f"spill_rss_kb={spill_rss} sharded_rss_kb={sharded_rss})")
EOF

python3 - "$NET_FILE" <<'EOF'
import json, sys

path = sys.argv[1]
with open(path) as f:
    doc = json.load(f)

failures = []

def check(cond, msg):
    if not cond:
        failures.append(msg)

check(doc.get("bench") == "macro_net", "bench name is not macro_net")

sessions = doc.get("sessions", 0)
check(sessions > 0, "burst ran zero sessions")
check(doc.get("messages", 0) > 0, "burst carried zero messages")

backends = doc.get("backends", {})
for name in ("sweep", "epoll"):
    b = backends.get(name)
    if b is None:
        check(False, f"backends.{name} section missing")
        continue
    check(b.get("backend") in ("sweep", "epoll"),
          f"{name}: unknown resolved backend label {b.get('backend')!r}")
    check(b.get("completed", 0) >= sessions, f"{name}: sessions were lost")
    check(b.get("failed", 1) == 0, f"{name}: sessions failed under the burst")
    check(b.get("peak_concurrent_sessions", 0) >= 1,
          f"{name}: no session ever opened")
    check(b.get("sessions_per_sec", 0) > 0, f"{name}: zero session throughput")
    check(b.get("syscalls", 0) > 0, f"{name}: syscall accounting missing")
    check(b.get("wakeups", 0) > 0, f"{name}: wakeup accounting missing")
    check(b.get("syscalls_per_session", 0) > 0,
          f"{name}: syscalls_per_session missing")
    p50 = b.get("p50_micros", 0)
    p99 = b.get("p99_micros", 0)
    check(p50 > 0, f"{name}: p50 latency not collected")
    check(p99 >= p50, f"{name}: p99 below p50: quantiles are broken")

check(doc.get("epoll_speedup", 0) > 0, "epoll_speedup missing or non-positive")

# The backend comparison is gated only on full-size artifacts where the
# epoll backend actually resolved (the committed >= 1,000-session Linux
# run does; CI's shrunken smoke runs and non-Linux regenerations are
# exempt). Relative gates between two runs of the same binary on the
# same machine are stable where absolute wall-clock gates are not.
sweep = backends.get("sweep") or {}
epoll = backends.get("epoll") or {}
if sessions >= 1000 and epoll.get("backend") == "epoll":
    speedup = doc.get("epoll_speedup", 0)
    check(speedup >= 3.0,
          f"epoll clears only {speedup}x sweep sessions/s (expected >= 3x)")
    check(epoll.get("p99_micros", 0) < sweep.get("p99_micros", 0),
          f"epoll p99 {epoll.get('p99_micros')}us not below sweep's "
          f"{sweep.get('p99_micros')}us")
    check(epoll.get("syscalls_per_session", 1e18)
          * 2 <= sweep.get("syscalls_per_session", 0),
          f"epoll {epoll.get('syscalls_per_session')} syscalls/session is "
          f"not under half sweep's {sweep.get('syscalls_per_session')}")

gossip = doc.get("gossip", {})
check(gossip.get("converged") is True, "gossip chain did not converge")
check(gossip.get("nodes", 0) >= 2, "gossip section ran a trivial cluster")
check(0 < gossip.get("rounds_to_converge", 0) <= gossip.get("bound", 0),
      "gossip convergence exceeded its round bound")

if failures:
    for f in failures:
        print(f"perf_guard: FAIL: {f}", file=sys.stderr)
    sys.exit(1)

print(f"perf_guard: OK ({path}: sessions={sessions} "
      f"speedup={doc.get('epoll_speedup')}x "
      f"sweep={sweep.get('sessions_per_sec')}/s "
      f"epoll={epoll.get('sessions_per_sec')}/s "
      f"epoll_p99={epoll.get('p99_micros')}us "
      f"epoll_syscalls/s={epoll.get('syscalls_per_session')} "
      f"gossip_rounds={gossip.get('rounds_to_converge')}/{gossip.get('bound')})")
EOF
