//! Cross-crate integration tests: the full emulation pipeline preserves
//! the replication guarantees under every routing policy.

use replidtn::dtn::{EncounterBudget, FilterStrategy, PolicyKind};
use replidtn::emu::experiments::Scenario;
use replidtn::emu::{Emulation, EmulationConfig};
use replidtn::traces::{DieselNetConfig, EmailConfig};

fn scenario() -> Scenario {
    Scenario::small()
}

#[test]
fn every_policy_preserves_at_most_once_delivery() {
    let s = scenario();
    for policy in PolicyKind::ALL {
        let metrics =
            Emulation::new(&s.trace, &s.workload, EmulationConfig::for_policy(policy)).run();
        assert_eq!(
            metrics.duplicates, 0,
            "policy {policy} duplicated a delivery"
        );
        assert_eq!(metrics.injected(), s.workload.len());
    }
}

#[test]
fn deliveries_never_precede_injection_and_copies_are_positive() {
    let s = scenario();
    for policy in [PolicyKind::Epidemic, PolicyKind::MaxProp] {
        let metrics =
            Emulation::new(&s.trace, &s.workload, EmulationConfig::for_policy(policy)).run();
        for rec in metrics.records() {
            if let Some(at) = rec.delivered_at {
                assert!(
                    at >= rec.injected_at,
                    "{policy}: time travel for {}",
                    rec.id
                );
                let copies = rec.copies_at_delivery.expect("copies recorded");
                assert!(copies >= 1, "{policy}: delivered with zero copies");
            }
        }
    }
}

#[test]
fn flooding_policies_dominate_the_baseline() {
    let s = scenario();
    let base = Emulation::new(
        &s.trace,
        &s.workload,
        EmulationConfig::for_policy(PolicyKind::Direct),
    )
    .run();
    for policy in [
        PolicyKind::Epidemic,
        PolicyKind::MaxProp,
        PolicyKind::SprayAndWait,
    ] {
        let run = Emulation::new(&s.trace, &s.workload, EmulationConfig::for_policy(policy)).run();
        assert!(
            run.delivered() >= base.delivered(),
            "{policy} delivered less than the baseline"
        );
    }
}

#[test]
fn wider_filters_never_hurt_delivery() {
    let s = scenario();
    let mut last = -1.0f64;
    for k in [0usize, 4, 11] {
        let config = EmulationConfig {
            filter_strategy: if k == 0 {
                FilterStrategy::SelfOnly
            } else {
                FilterStrategy::Selected(k)
            },
            ..EmulationConfig::default()
        };
        let metrics = Emulation::new(&s.trace, &s.workload, config).run();
        let rate = metrics.delivery_rate();
        assert!(
            rate >= last - 1e-9,
            "delivery regressed when widening filters to k={k}: {rate} < {last}"
        );
        last = rate;
    }
}

#[test]
fn bandwidth_cap_bounds_per_encounter_traffic() {
    let s = scenario();
    for cap in [1usize, 3] {
        let config = EmulationConfig {
            policy: PolicyKind::Epidemic.into(),
            budget: EncounterBudget::max_messages(cap),
            ..EmulationConfig::default()
        };
        let metrics = Emulation::new(&s.trace, &s.workload, config).run();
        assert!(
            metrics.transmissions <= metrics.encounters * cap as u64,
            "cap {cap} violated: {} transfers over {} encounters",
            metrics.transmissions,
            metrics.encounters
        );
    }
}

#[test]
fn storage_cap_bounds_relay_load_throughout() {
    // Run with the tightest cap and verify final relay loads; the replica
    // enforces the invariant continuously, so the end state suffices here
    // (per-encounter enforcement is unit-tested in pfr).
    let s = scenario();
    let config = EmulationConfig {
        policy: PolicyKind::Epidemic.into(),
        relay_limit: Some(2),
        ..EmulationConfig::default()
    };
    let metrics = Emulation::new(&s.trace, &s.workload, config).run();
    assert!(metrics.evictions > 0);
    assert_eq!(metrics.duplicates, 0);
}

#[test]
fn emulation_handles_empty_workload_and_trace() {
    let trace = DieselNetConfig::small().generate();
    let empty_mail = EmailConfig {
        total_messages: 1,
        ..EmailConfig::small()
    }
    .generate();
    // Empty trace: messages are injected but never delivered across buses.
    let no_trace = replidtn::traces::EncounterTrace::new();
    let metrics = Emulation::new(
        &no_trace,
        &empty_mail,
        EmulationConfig::for_policy(PolicyKind::Epidemic),
    )
    .run();
    assert_eq!(metrics.encounters, 0);
    // With no buses scheduled, injection is dropped upstream.
    assert_eq!(metrics.injected(), 0);

    // Empty workload over a real trace: encounters happen, nothing moves.
    let no_mail = EmailConfig {
        total_messages: 0,
        ..EmailConfig::small()
    }
    .generate();
    let metrics = Emulation::new(
        &trace,
        &no_mail,
        EmulationConfig::for_policy(PolicyKind::Epidemic),
    )
    .run();
    assert_eq!(metrics.injected(), 0);
    assert_eq!(metrics.transmissions, 0);
}

#[test]
fn crash_recovery_mid_sync_converges_without_double_delivery() {
    // A replica snapshots, keeps syncing, crashes mid-exchange (the link
    // dies inside a session), restores from the snapshot, and re-syncs.
    // The network must converge with every message delivered exactly once
    // — the testkit runner checks at-most-once and knowledge monotonicity
    // after every step.
    use testkit::{Direction, FaultPlan, SimRunner};

    for policy in PolicyKind::ALL {
        let mut sim = SimRunner::new(29);
        let a = sim.add_host("a", policy);
        let b = sim.add_host("b", policy);

        sim.send(a, "b", b"before the snapshot".to_vec());
        assert!(sim.encounter(a, b).is_clean(), "{policy}");
        sim.snapshot(b);

        // Two more messages; the next session dies halfway through (the
        // responder's batch never completes), then the host crashes.
        sim.send(a, "b", b"in flight when the link died".to_vec());
        sim.send(a, "b", b"second casualty".to_vec());
        let cut = FaultPlan::clean().cut_after(Direction::BToA, 1);
        let outcome = sim.encounter_with_faults(a, b, &cut);
        assert!(!outcome.is_clean(), "{policy}: the cut session must fail");
        sim.crash(b);
        sim.restore(b);
        sim.with_node(b, |n| {
            assert_eq!(n.inbox().len(), 1, "{policy}: rollback to snapshot state")
        });

        // Re-sync after restore: everything arrives, nothing twice.
        sim.assert_converged();
        sim.with_node(b, |n| {
            let inbox = n.inbox();
            assert_eq!(inbox.len(), 3, "{policy}: all messages after recovery");
            let mut ids: Vec<_> = inbox.iter().map(|m| m.id).collect();
            ids.sort();
            ids.dedup();
            assert_eq!(ids.len(), 3, "{policy}: duplicate delivery after restore");
        });
    }
}

#[test]
fn seeds_change_results_but_reruns_do_not() {
    let s = scenario();
    let base = EmulationConfig::for_policy(PolicyKind::SprayAndWait);
    let a = Emulation::new(&s.trace, &s.workload, base.clone()).run();
    let b = Emulation::new(&s.trace, &s.workload, base.clone()).run();
    assert_eq!(a.delivered(), b.delivered());
    assert_eq!(a.transmissions, b.transmissions);

    let other_seed = EmulationConfig {
        assignment_seed: 77,
        ..base
    };
    let c = Emulation::new(&s.trace, &s.workload, other_seed).run();
    // Different user placement almost surely changes traffic.
    assert!(
        a.transmissions != c.transmissions || a.delivered() != c.delivered(),
        "different assignment seed produced identical results"
    );
}
