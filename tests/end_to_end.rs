//! Cross-crate integration tests: the full emulation pipeline preserves
//! the replication guarantees under every routing policy.

use replidtn::dtn::{EncounterBudget, FilterStrategy, PolicyKind};
use replidtn::emu::experiments::Scenario;
use replidtn::emu::{Emulation, EmulationConfig};
use replidtn::traces::{DieselNetConfig, EmailConfig};

fn scenario() -> Scenario {
    Scenario::small()
}

#[test]
fn every_policy_preserves_at_most_once_delivery() {
    let s = scenario();
    for policy in PolicyKind::ALL {
        let metrics =
            Emulation::new(&s.trace, &s.workload, EmulationConfig::for_policy(policy)).run();
        assert_eq!(
            metrics.duplicates, 0,
            "policy {policy} duplicated a delivery"
        );
        assert_eq!(metrics.injected(), s.workload.len());
    }
}

#[test]
fn deliveries_never_precede_injection_and_copies_are_positive() {
    let s = scenario();
    for policy in [PolicyKind::Epidemic, PolicyKind::MaxProp] {
        let metrics =
            Emulation::new(&s.trace, &s.workload, EmulationConfig::for_policy(policy)).run();
        for rec in metrics.records() {
            if let Some(at) = rec.delivered_at {
                assert!(
                    at >= rec.injected_at,
                    "{policy}: time travel for {}",
                    rec.id
                );
                let copies = rec.copies_at_delivery.expect("copies recorded");
                assert!(copies >= 1, "{policy}: delivered with zero copies");
            }
        }
    }
}

#[test]
fn flooding_policies_dominate_the_baseline() {
    let s = scenario();
    let base = Emulation::new(
        &s.trace,
        &s.workload,
        EmulationConfig::for_policy(PolicyKind::Direct),
    )
    .run();
    for policy in [
        PolicyKind::Epidemic,
        PolicyKind::MaxProp,
        PolicyKind::SprayAndWait,
    ] {
        let run = Emulation::new(&s.trace, &s.workload, EmulationConfig::for_policy(policy)).run();
        assert!(
            run.delivered() >= base.delivered(),
            "{policy} delivered less than the baseline"
        );
    }
}

#[test]
fn wider_filters_never_hurt_delivery() {
    let s = scenario();
    let mut last = -1.0f64;
    for k in [0usize, 4, 11] {
        let config = EmulationConfig {
            filter_strategy: if k == 0 {
                FilterStrategy::SelfOnly
            } else {
                FilterStrategy::Selected(k)
            },
            ..EmulationConfig::default()
        };
        let metrics = Emulation::new(&s.trace, &s.workload, config).run();
        let rate = metrics.delivery_rate();
        assert!(
            rate >= last - 1e-9,
            "delivery regressed when widening filters to k={k}: {rate} < {last}"
        );
        last = rate;
    }
}

#[test]
fn bandwidth_cap_bounds_per_encounter_traffic() {
    let s = scenario();
    for cap in [1usize, 3] {
        let config = EmulationConfig {
            policy: PolicyKind::Epidemic.into(),
            budget: EncounterBudget::max_messages(cap),
            ..EmulationConfig::default()
        };
        let metrics = Emulation::new(&s.trace, &s.workload, config).run();
        assert!(
            metrics.transmissions <= metrics.encounters * cap as u64,
            "cap {cap} violated: {} transfers over {} encounters",
            metrics.transmissions,
            metrics.encounters
        );
    }
}

#[test]
fn storage_cap_bounds_relay_load_throughout() {
    // Run with the tightest cap and verify final relay loads; the replica
    // enforces the invariant continuously, so the end state suffices here
    // (per-encounter enforcement is unit-tested in pfr).
    let s = scenario();
    let config = EmulationConfig {
        policy: PolicyKind::Epidemic.into(),
        relay_limit: Some(2),
        ..EmulationConfig::default()
    };
    let metrics = Emulation::new(&s.trace, &s.workload, config).run();
    assert!(metrics.evictions > 0);
    assert_eq!(metrics.duplicates, 0);
}

#[test]
fn emulation_handles_empty_workload_and_trace() {
    let trace = DieselNetConfig::small().generate();
    let empty_mail = EmailConfig {
        total_messages: 1,
        ..EmailConfig::small()
    }
    .generate();
    // Empty trace: messages are injected but never delivered across buses.
    let no_trace = replidtn::traces::EncounterTrace::new();
    let metrics = Emulation::new(
        &no_trace,
        &empty_mail,
        EmulationConfig::for_policy(PolicyKind::Epidemic),
    )
    .run();
    assert_eq!(metrics.encounters, 0);
    // With no buses scheduled, injection is dropped upstream.
    assert_eq!(metrics.injected(), 0);

    // Empty workload over a real trace: encounters happen, nothing moves.
    let no_mail = EmailConfig {
        total_messages: 0,
        ..EmailConfig::small()
    }
    .generate();
    let metrics = Emulation::new(
        &trace,
        &no_mail,
        EmulationConfig::for_policy(PolicyKind::Epidemic),
    )
    .run();
    assert_eq!(metrics.injected(), 0);
    assert_eq!(metrics.transmissions, 0);
}

#[test]
fn seeds_change_results_but_reruns_do_not() {
    let s = scenario();
    let base = EmulationConfig::for_policy(PolicyKind::SprayAndWait);
    let a = Emulation::new(&s.trace, &s.workload, base.clone()).run();
    let b = Emulation::new(&s.trace, &s.workload, base.clone()).run();
    assert_eq!(a.delivered(), b.delivered());
    assert_eq!(a.transmissions, b.transmissions);

    let other_seed = EmulationConfig {
        assignment_seed: 77,
        ..base
    };
    let c = Emulation::new(&s.trace, &s.workload, other_seed).run();
    // Different user placement almost surely changes traffic.
    assert!(
        a.transmissions != c.transmissions || a.delivered() != c.delivered(),
        "different assignment seed produced identical results"
    );
}
