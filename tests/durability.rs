//! End-to-end durability: TCP peers backed by the crash-safe store are
//! killed — in-process by dropping without an orderly shutdown, and for
//! real with `SIGKILL` on the CLI binary — then restarted from their
//! data directories. Deliveries behind the persist point survive, torn
//! WAL tails are truncated away, and re-syncing never duplicates.

use std::path::PathBuf;
use std::process::{Command, Stdio};
use std::time::Duration;

use replidtn::dtn::{DtnNode, PolicyKind};
use replidtn::pfr::{ReplicaId, SimTime};
use replidtn::store::layout;
use replidtn::transport::Peer;

fn tmp_dir(tag: &str) -> PathBuf {
    let dir =
        std::env::temp_dir().join(format!("replidtn-durability-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

#[test]
fn torn_wal_tail_is_recovered_and_resync_is_duplicate_free() {
    let dir_a = tmp_dir("torn-a");
    let dir_b = tmp_dir("torn-b");
    {
        let a = Peer::start(
            DtnNode::open(&dir_a, ReplicaId::new(1), "a", PolicyKind::Epidemic).unwrap(),
            "127.0.0.1:0",
        )
        .unwrap();
        let b = Peer::start(
            DtnNode::open(&dir_b, ReplicaId::new(2), "b", PolicyKind::Epidemic).unwrap(),
            "127.0.0.1:0",
        )
        .unwrap();
        a.with_node(|n| n.send("b", b"behind the persist point".to_vec(), SimTime::ZERO))
            .unwrap();
        a.sync_with(b.local_addr(), SimTime::from_secs(9)).unwrap();
        assert_eq!(b.with_node(|n| n.inbox().len()), 1);
        // Dropped with no orderly persist: the post-session WAL append
        // is all that survives — exactly a kill -9.
    }

    // The "crash" also tears the last WAL record on b's disk.
    let (_, seg) = layout::wal_segments(&dir_b).unwrap().pop().unwrap();
    let len = std::fs::metadata(&seg).unwrap().len();
    let file = std::fs::OpenOptions::new().write(true).open(&seg).unwrap();
    file.set_len(len - 1).unwrap();

    let node_b = DtnNode::open(&dir_b, ReplicaId::new(2), "b", PolicyKind::Epidemic).unwrap();
    assert_eq!(node_b.inbox().len(), 1, "delivery survived the torn tail");
    let report = node_b.recovery().unwrap();
    assert!(report.truncated_bytes > 0, "the tear was truncated away");

    // Restart both sides: knowledge survived, so nothing moves again.
    let a = Peer::start(
        DtnNode::open(&dir_a, ReplicaId::new(1), "a", PolicyKind::Epidemic).unwrap(),
        "127.0.0.1:0",
    )
    .unwrap();
    let b = Peer::start(node_b, "127.0.0.1:0").unwrap();
    let report = a.sync_with(b.local_addr(), SimTime::from_secs(20)).unwrap();
    assert_eq!(report.served, 0);
    assert_eq!(report.pulled.as_ref().unwrap().duplicates, 0);
    assert_eq!(b.with_node(|n| n.inbox().len()), 1);

    drop((a, b));
    std::fs::remove_dir_all(&dir_a).unwrap();
    std::fs::remove_dir_all(&dir_b).unwrap();
}

#[cfg(unix)]
#[test]
fn sigkilled_cli_peer_recovers_its_inbox() {
    let victim_dir = tmp_dir("sigkill-victim");
    let sender_dir = tmp_dir("sigkill-sender");
    let port = 21000 + (std::process::id() % 10_000) as u16;
    let bin = env!("CARGO_BIN_EXE_replidtn");

    let mut victim = Command::new(bin)
        .args([
            "peer",
            "--id",
            "2",
            "--address",
            "bob",
            "--listen",
            &format!("127.0.0.1:{port}"),
            "--data-dir",
            victim_dir.to_str().unwrap(),
            "--serve-for",
            "30",
        ])
        .stdout(Stdio::null())
        .stderr(Stdio::null())
        .spawn()
        .unwrap();

    // Deliver one message over real TCP (retry while the victim binds).
    let mut delivered = false;
    for _ in 0..20 {
        std::thread::sleep(Duration::from_millis(200));
        let status = Command::new(bin)
            .args([
                "peer",
                "--id",
                "1",
                "--address",
                "alice",
                "--listen",
                "127.0.0.1:0",
                "--data-dir",
                sender_dir.to_str().unwrap(),
                "--send",
                "bob:survives kill -9",
                "--connect",
                &format!("127.0.0.1:{port}"),
            ])
            .stdout(Stdio::null())
            .stderr(Stdio::null())
            .status()
            .unwrap();
        if status.success() {
            delivered = true;
            break;
        }
    }
    assert!(delivered, "sender never reached the victim");

    // Give the victim's post-session fsync a beat, then SIGKILL it
    // (std's kill() is SIGKILL on unix) mid-serve.
    std::thread::sleep(Duration::from_millis(500));
    victim.kill().unwrap();
    victim.wait().unwrap();

    // Restart from the data directory: the inbox must hold the message
    // exactly once.
    let out = Command::new(bin)
        .args([
            "peer",
            "--id",
            "2",
            "--address",
            "bob",
            "--listen",
            "127.0.0.1:0",
            "--data-dir",
            victim_dir.to_str().unwrap(),
        ])
        .output()
        .unwrap();
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(out.status.success(), "restart failed: {stdout}");
    assert!(
        stdout.contains("restored from"),
        "no recovery banner: {stdout}"
    );
    assert_eq!(
        stdout.matches("survives kill -9").count(),
        1,
        "want the message exactly once: {stdout}"
    );

    std::fs::remove_dir_all(&victim_dir).unwrap();
    std::fs::remove_dir_all(&sender_dir).unwrap();
}
