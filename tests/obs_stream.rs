//! End-to-end checks on the observability event stream: a full emulation
//! captured by a [`MemorySink`] must tell the same story as the
//! [`ExperimentMetrics`] the engine reports, event by event, and attaching
//! the observer must not perturb the replication outcome.

use std::collections::HashSet;
use std::sync::Arc;

use replidtn::emu::{Emulation, EmulationConfig};
use replidtn::obs::{Event, MemorySink, Observer};
use replidtn::traces::{DieselNetConfig, EmailConfig, EmailWorkload, EncounterTrace};

fn scenario() -> (EncounterTrace, EmailWorkload) {
    (
        DieselNetConfig::small().generate(),
        EmailConfig::small().generate(),
    )
}

fn config(observer: Option<Arc<dyn Observer>>) -> EmulationConfig {
    EmulationConfig {
        // Epidemic routing with a tight relay limit forces relays and
        // evictions, so the eviction/drop paths are covered.
        policy: replidtn::dtn::PolicyKind::Epidemic.into(),
        relay_limit: Some(2),
        observer,
        ..EmulationConfig::default()
    }
}

#[test]
fn event_stream_is_consistent_with_metrics() {
    let (trace, workload) = scenario();
    let sink = Arc::new(MemorySink::unbounded());
    let metrics = Emulation::new(
        &trace,
        &workload,
        config(Some(sink.clone() as Arc<dyn Observer>)),
    )
    .run();

    let events = sink.events();
    assert!(!events.is_empty(), "observer saw no events");

    let mut injected: HashSet<(u64, u64)> = HashSet::new();
    let mut injections = 0u64;
    let mut transmitted = 0u64;
    let mut delivered_messages = 0u64;
    let mut evicted = 0u64;
    let mut encounters = 0u64;
    let mut duplicates = 0u64;
    for event in &events {
        match event {
            Event::MessageInjected { origin, seq, .. } => {
                injections += 1;
                injected.insert((*origin, *seq));
            }
            Event::ItemTransmitted { origin, seq, .. } => {
                transmitted += 1;
                assert!(
                    injected.contains(&(*origin, *seq)),
                    "item {origin}:{seq} transmitted before any injection event"
                );
            }
            Event::ItemDelivered { origin, seq, .. } | Event::ItemRelayed { origin, seq, .. } => {
                assert!(
                    injected.contains(&(*origin, *seq)),
                    "item {origin}:{seq} arrived before any injection event"
                );
            }
            Event::MessageDelivered { origin, seq, .. } => {
                delivered_messages += 1;
                assert!(
                    injected.contains(&(*origin, *seq)),
                    "message {origin}:{seq} delivered before any injection event"
                );
            }
            Event::ItemEvicted { .. } => evicted += 1,
            Event::MessageDropped { reason, .. } => {
                assert!(
                    ["expired", "evicted", "acked"].contains(&reason.label()),
                    "unknown drop reason {reason:?}"
                );
            }
            Event::EncounterCompleted {
                duplicates: dups, ..
            } => {
                encounters += 1;
                duplicates += dups;
            }
            _ => {}
        }
    }

    assert_eq!(injections, metrics.injected() as u64);
    assert_eq!(transmitted, metrics.transmissions);
    assert_eq!(delivered_messages, metrics.delivered() as u64);
    assert_eq!(evicted, metrics.evictions);
    assert_eq!(encounters, metrics.encounters);
    assert_eq!(duplicates, metrics.duplicates);
    assert!(evicted > 0, "relay limit of 2 should force evictions");
}

#[test]
fn every_event_serializes_to_one_parseable_json_line() {
    let (trace, workload) = scenario();
    let sink = Arc::new(MemorySink::unbounded());
    Emulation::new(
        &trace,
        &workload,
        config(Some(sink.clone() as Arc<dyn Observer>)),
    )
    .run();

    for event in sink.events() {
        let line = event.to_json();
        assert!(!line.contains('\n'), "JSONL line embeds a newline: {line}");
        let value = json::parse(&line).unwrap_or_else(|e| panic!("bad JSON {line:?}: {e}"));
        let json::Value::Object(fields) = value else {
            panic!("not a JSON object: {line}");
        };
        let kind = fields.iter().find(|(k, _)| k == "event");
        match kind {
            Some((_, json::Value::String(kind))) => assert_eq!(kind, event.kind()),
            other => panic!("missing/invalid event field {other:?} in {line}"),
        }
    }
}

#[test]
fn observer_does_not_perturb_replication_outcome() {
    let (trace, workload) = scenario();

    let sink = Arc::new(MemorySink::unbounded());
    let (observed_metrics, observed_nodes) = Emulation::new(
        &trace,
        &workload,
        config(Some(sink.clone() as Arc<dyn Observer>)),
    )
    .run_into_parts();
    let (silent_metrics, silent_nodes) =
        Emulation::new(&trace, &workload, config(None)).run_into_parts();

    assert!(!sink.is_empty());
    assert_eq!(observed_metrics.injected(), silent_metrics.injected());
    assert_eq!(observed_metrics.delivered(), silent_metrics.delivered());
    assert_eq!(observed_metrics.transmissions, silent_metrics.transmissions);
    assert_eq!(observed_metrics.encounters, silent_metrics.encounters);
    assert_eq!(observed_metrics.evictions, silent_metrics.evictions);
    assert_eq!(observed_metrics.duplicates, silent_metrics.duplicates);

    assert_eq!(observed_nodes.len(), silent_nodes.len());
    for (id, observed) in &observed_nodes {
        let silent = silent_nodes
            .get(id)
            .unwrap_or_else(|| panic!("node {id} missing from silent run"));
        assert_eq!(
            observed.snapshot(),
            silent.snapshot(),
            "node {id} diverged under observation"
        );
    }
}

/// A minimal JSON parser, enough to prove each emitted line is valid JSON.
/// (The workspace has no JSON dependency by design; the sinks hand-render
/// their lines, so the test hand-parses them.)
mod json {
    #[derive(Debug, PartialEq)]
    pub enum Value {
        Null,
        Bool(bool),
        Number(f64),
        String(String),
        Array(Vec<Value>),
        Object(Vec<(String, Value)>),
    }

    pub fn parse(text: &str) -> Result<Value, String> {
        let bytes: Vec<char> = text.chars().collect();
        let mut pos = 0usize;
        let value = parse_value(&bytes, &mut pos)?;
        skip_ws(&bytes, &mut pos);
        if pos != bytes.len() {
            return Err(format!("trailing garbage at {pos}"));
        }
        Ok(value)
    }

    fn skip_ws(b: &[char], pos: &mut usize) {
        while *pos < b.len() && matches!(b[*pos], ' ' | '\t' | '\n' | '\r') {
            *pos += 1;
        }
    }

    fn parse_value(b: &[char], pos: &mut usize) -> Result<Value, String> {
        skip_ws(b, pos);
        match b.get(*pos) {
            Some('{') => parse_object(b, pos),
            Some('[') => parse_array(b, pos),
            Some('"') => parse_string(b, pos).map(Value::String),
            Some('t') => parse_lit(b, pos, "true", Value::Bool(true)),
            Some('f') => parse_lit(b, pos, "false", Value::Bool(false)),
            Some('n') => parse_lit(b, pos, "null", Value::Null),
            Some(c) if *c == '-' || c.is_ascii_digit() => parse_number(b, pos),
            other => Err(format!("unexpected {other:?} at {pos}")),
        }
    }

    fn parse_lit(b: &[char], pos: &mut usize, lit: &str, value: Value) -> Result<Value, String> {
        for expected in lit.chars() {
            if b.get(*pos) != Some(&expected) {
                return Err(format!("bad literal at {pos}"));
            }
            *pos += 1;
        }
        Ok(value)
    }

    fn parse_number(b: &[char], pos: &mut usize) -> Result<Value, String> {
        let start = *pos;
        while *pos < b.len() && matches!(b[*pos], '-' | '+' | '.' | 'e' | 'E' | '0'..='9') {
            *pos += 1;
        }
        let text: String = b[start..*pos].iter().collect();
        text.parse::<f64>()
            .map(Value::Number)
            .map_err(|_| format!("bad number {text:?} at {start}"))
    }

    fn parse_string(b: &[char], pos: &mut usize) -> Result<String, String> {
        if b.get(*pos) != Some(&'"') {
            return Err(format!("expected string at {pos}"));
        }
        *pos += 1;
        let mut out = String::new();
        loop {
            match b.get(*pos) {
                None => return Err("unterminated string".to_string()),
                Some('"') => {
                    *pos += 1;
                    return Ok(out);
                }
                Some('\\') => {
                    *pos += 1;
                    match b.get(*pos) {
                        Some('"') => out.push('"'),
                        Some('\\') => out.push('\\'),
                        Some('/') => out.push('/'),
                        Some('n') => out.push('\n'),
                        Some('r') => out.push('\r'),
                        Some('t') => out.push('\t'),
                        Some('b') => out.push('\u{8}'),
                        Some('f') => out.push('\u{c}'),
                        Some('u') => {
                            let hex: String = b
                                .get(*pos + 1..*pos + 5)
                                .ok_or("truncated \\u escape")?
                                .iter()
                                .collect();
                            let code = u32::from_str_radix(&hex, 16)
                                .map_err(|_| format!("bad \\u escape {hex:?}"))?;
                            out.push(char::from_u32(code).ok_or("bad codepoint")?);
                            *pos += 4;
                        }
                        other => return Err(format!("bad escape {other:?}")),
                    }
                    *pos += 1;
                }
                Some(c) if (*c as u32) < 0x20 => {
                    return Err(format!("unescaped control char {c:?}"));
                }
                Some(c) => {
                    out.push(*c);
                    *pos += 1;
                }
            }
        }
    }

    fn parse_array(b: &[char], pos: &mut usize) -> Result<Value, String> {
        *pos += 1; // consume [
        let mut items = Vec::new();
        skip_ws(b, pos);
        if b.get(*pos) == Some(&']') {
            *pos += 1;
            return Ok(Value::Array(items));
        }
        loop {
            items.push(parse_value(b, pos)?);
            skip_ws(b, pos);
            match b.get(*pos) {
                Some(',') => *pos += 1,
                Some(']') => {
                    *pos += 1;
                    return Ok(Value::Array(items));
                }
                other => return Err(format!("expected , or ] found {other:?}")),
            }
        }
    }

    fn parse_object(b: &[char], pos: &mut usize) -> Result<Value, String> {
        *pos += 1; // consume {
        let mut fields = Vec::new();
        skip_ws(b, pos);
        if b.get(*pos) == Some(&'}') {
            *pos += 1;
            return Ok(Value::Object(fields));
        }
        loop {
            skip_ws(b, pos);
            let key = parse_string(b, pos)?;
            skip_ws(b, pos);
            if b.get(*pos) != Some(&':') {
                return Err(format!("expected : at {pos}"));
            }
            *pos += 1;
            let value = parse_value(b, pos)?;
            fields.push((key, value));
            skip_ws(b, pos);
            match b.get(*pos) {
                Some(',') => *pos += 1,
                Some('}') => {
                    *pos += 1;
                    return Ok(Value::Object(fields));
                }
                other => return Err(format!("expected , or }} found {other:?}")),
            }
        }
    }

    #[test]
    fn parses_representative_lines() {
        let line = r#"{"event":"x","n":3,"ok":true,"s":"a\"b","list":[1,2],"f":1.5}"#;
        let Value::Object(fields) = parse(line).unwrap() else {
            panic!("not an object")
        };
        assert_eq!(fields.len(), 6);
        assert!(parse("{\"a\":}").is_err());
        assert!(parse("{\"a\":1} extra").is_err());
    }
}
