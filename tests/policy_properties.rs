//! Property tests over random encounter schedules: the routing policies
//! may differ in *what* they forward, but none may violate the
//! substrate's guarantees or their own protocol invariants.

use proptest::prelude::*;

use replidtn::dtn::{DtnNode, EncounterBudget, PolicyKind, ATTR_COPIES, ATTR_TTL};
use replidtn::pfr::{ReplicaId, SimTime, Value};

#[derive(Debug, Clone)]
struct Schedule {
    hosts: usize,
    messages: Vec<(usize, usize)>,
    encounters: Vec<(usize, usize)>,
}

fn arb_schedule() -> impl Strategy<Value = Schedule> {
    (3usize..7).prop_flat_map(|hosts| {
        (
            Just(hosts),
            proptest::collection::vec((0..hosts, 0..hosts), 1..8),
            proptest::collection::vec((0..hosts, 0..hosts), 1..40),
        )
            .prop_map(|(hosts, messages, encounters)| Schedule {
                hosts,
                messages,
                encounters,
            })
    })
}

fn build_nodes(n: usize, policy: PolicyKind) -> Vec<DtnNode> {
    (0..n)
        .map(|i| DtnNode::new(ReplicaId::new(i as u64 + 1), &format!("h{i}"), policy))
        .collect()
}

fn run_schedule(nodes: &mut [DtnNode], schedule: &Schedule, budget: EncounterBudget) -> usize {
    let mut duplicates = 0;
    for (step, &(a, b)) in schedule.encounters.iter().enumerate() {
        if a == b {
            continue;
        }
        let (x, y) = if a < b { (a, b) } else { (b, a) };
        let (left, right) = nodes.split_at_mut(y);
        let report = left[x].encounter(
            &mut right[0],
            SimTime::from_secs(60 * (step as u64 + 1)),
            budget,
        );
        duplicates += report.duplicates;
    }
    duplicates
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// No policy, under any schedule, ever double-delivers a version.
    #[test]
    fn no_policy_ever_duplicates(schedule in arb_schedule()) {
        for policy in PolicyKind::ALL {
            let mut nodes = build_nodes(schedule.hosts, policy);
            for &(from, to) in &schedule.messages {
                nodes[from]
                    .send(&format!("h{to}"), vec![1], SimTime::ZERO)
                    .expect("send");
            }
            let dups = run_schedule(&mut nodes, &schedule, EncounterBudget::unlimited());
            prop_assert_eq!(dups, 0, "policy {} duplicated", policy);
            for node in &nodes {
                prop_assert_eq!(node.replica().stats().duplicates_rejected, 0);
            }
        }
    }

    /// Spray and Wait never inflates its copy budget, whatever the
    /// schedule.
    #[test]
    fn spray_copy_budget_is_conserved(schedule in arb_schedule()) {
        let initial: i64 = 8;
        let mut nodes = build_nodes(schedule.hosts, PolicyKind::SprayAndWait);
        let mut ids = Vec::new();
        for &(from, to) in &schedule.messages {
            if from == to {
                continue;
            }
            ids.push(nodes[from]
                .send(&format!("h{to}"), vec![1], SimTime::ZERO)
                .expect("send"));
        }
        run_schedule(&mut nodes, &schedule, EncounterBudget::unlimited());
        for id in ids {
            let total: i64 = nodes
                .iter()
                .filter_map(|n| n.replica().item(id))
                .filter(|item| !item.is_deleted())
                // Copies held by relays; the destination's copy (delivered)
                // and untouched source copies count via the default.
                .map(|item| item.transient().get_i64(ATTR_COPIES).unwrap_or(initial))
                .sum();
            // The destination's copy does not participate in spraying, so
            // allow one extra budget's worth for it.
            prop_assert!(
                total <= initial * 2,
                "logical copies inflated for {}: {}",
                id,
                total
            );
        }
    }

    /// Epidemic TTL bounds how many relay hops a copy can take: with TTL t,
    /// a copy reaching a node has a TTL in [0, t].
    #[test]
    fn epidemic_ttl_stays_in_range(schedule in arb_schedule()) {
        let mut nodes = build_nodes(schedule.hosts, PolicyKind::Epidemic);
        for &(from, to) in &schedule.messages {
            nodes[from]
                .send(&format!("h{to}"), vec![1], SimTime::ZERO)
                .expect("send");
        }
        run_schedule(&mut nodes, &schedule, EncounterBudget::unlimited());
        for node in &nodes {
            for item in node.replica().iter_items() {
                if let Some(ttl) = item.transient().get_i64(ATTR_TTL) {
                    prop_assert!((0..=10).contains(&ttl), "ttl {} out of range", ttl);
                }
            }
        }
    }

    /// A shared bandwidth budget is respected by every policy.
    #[test]
    fn budget_respected_by_all_policies(schedule in arb_schedule()) {
        for policy in PolicyKind::ALL {
            let mut nodes = build_nodes(schedule.hosts, policy);
            for &(from, to) in &schedule.messages {
                nodes[from]
                    .send(&format!("h{to}"), vec![1], SimTime::ZERO)
                    .expect("send");
            }
            for (step, &(a, b)) in schedule.encounters.iter().enumerate() {
                if a == b {
                    continue;
                }
                let (x, y) = if a < b { (a, b) } else { (b, a) };
                let (left, right) = nodes.split_at_mut(y);
                let report = left[x].encounter(
                    &mut right[0],
                    SimTime::from_secs(60 * (step as u64 + 1)),
                    EncounterBudget::max_messages(2),
                );
                prop_assert!(
                    report.transmitted <= 2,
                    "policy {} sent {} items under a budget of 2",
                    policy,
                    report.transmitted
                );
            }
        }
    }

    /// MaxProp hop lists only ever grow along a copy's path and contain
    /// plausible node ids.
    #[test]
    fn maxprop_hoplists_are_plausible(schedule in arb_schedule()) {
        let mut nodes = build_nodes(schedule.hosts, PolicyKind::MaxProp);
        for &(from, to) in &schedule.messages {
            nodes[from]
                .send(&format!("h{to}"), vec![1], SimTime::ZERO)
                .expect("send");
        }
        run_schedule(&mut nodes, &schedule, EncounterBudget::unlimited());
        let max_id = schedule.hosts as i64;
        for node in &nodes {
            for item in node.replica().iter_items() {
                if let Some(Value::List(hops)) = item.transient().get(replidtn::dtn::ATTR_HOPLIST) {
                    for hop in hops {
                        let id = hop.as_i64().expect("hoplist entries are ints");
                        prop_assert!((1..=max_id).contains(&id), "bogus hop id {}", id);
                    }
                }
            }
        }
    }
}
