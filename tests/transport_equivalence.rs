//! The TCP transport and in-process encounters implement the same
//! protocol: replaying one encounter schedule through both must leave the
//! replicas in identical states.

use replidtn::dtn::{DtnNode, EncounterBudget, PolicyKind};
use replidtn::pfr::{ItemId, ReplicaId, SimTime};
use replidtn::transport::Peer;

/// A fixed little scenario: 4 nodes, 5 messages, 6 encounters.
const MESSAGES: [(u64, u64); 5] = [(1, 3), (1, 4), (2, 1), (3, 2), (4, 2)];
const ENCOUNTERS: [(u64, u64); 6] = [(1, 2), (3, 4), (2, 3), (1, 4), (2, 4), (1, 3)];

fn make_nodes(policy: PolicyKind) -> Vec<DtnNode> {
    (1..=4u64)
        .map(|i| DtnNode::new(ReplicaId::new(i), &format!("h{i}"), policy))
        .collect()
}

fn inject(nodes: &mut [DtnNode]) -> Vec<ItemId> {
    MESSAGES
        .iter()
        .map(|&(from, to)| {
            nodes[(from - 1) as usize]
                .send(
                    &format!("h{to}"),
                    format!("{from}->{to}").into_bytes(),
                    SimTime::ZERO,
                )
                .expect("send")
        })
        .collect()
}

/// Sorted (item id, payload) pairs for one node.
type NodeItems = Vec<(ItemId, Vec<u8>)>;

/// Snapshot of observable replica state: per node, the sorted item ids and
/// payloads it stores plus its inbox size.
fn snapshot(nodes: &[&DtnNode]) -> Vec<(NodeItems, usize)> {
    nodes
        .iter()
        .map(|n| {
            let mut items: Vec<(ItemId, Vec<u8>)> = n
                .replica()
                .iter_items()
                .map(|i| (i.id(), i.payload().to_vec()))
                .collect();
            items.sort();
            (items, n.inbox().len())
        })
        .collect()
}

#[test]
fn tcp_sessions_equal_in_memory_encounters() {
    for policy in [
        PolicyKind::Direct,
        PolicyKind::Epidemic,
        PolicyKind::SprayAndWait,
    ] {
        // In-memory run.
        let mut local = make_nodes(policy);
        inject(&mut local);
        for (step, &(a, b)) in ENCOUNTERS.iter().enumerate() {
            let (x, y) = ((a - 1) as usize, (b - 1) as usize);
            // Borrow node a and node b simultaneously.
            let (node_a, node_b) = if x < y {
                let (left, right) = local.split_at_mut(y);
                (&mut left[x], &mut right[0])
            } else {
                let (left, right) = local.split_at_mut(x);
                (&mut right[0], &mut left[y])
            };
            // The TCP initiator (a) pulls first, i.e. it is the *target* of
            // sync 1. DtnNode::encounter runs self-as-source first, so the
            // responder (b) plays the `self` role to match.
            node_b.encounter(
                node_a,
                SimTime::from_secs(60 * (step as u64 + 1)),
                EncounterBudget::unlimited(),
            );
        }

        // TCP run with the same logical schedule.
        let peers: Vec<Peer> = {
            let mut nodes = make_nodes(policy);
            inject(&mut nodes);
            nodes
                .into_iter()
                .map(|n| Peer::start(n, "127.0.0.1:0").expect("bind"))
                .collect()
        };
        for (step, &(a, b)) in ENCOUNTERS.iter().enumerate() {
            let initiator = &peers[(a - 1) as usize];
            let responder = &peers[(b - 1) as usize];
            initiator
                .sync_with(
                    responder.local_addr(),
                    SimTime::from_secs(60 * (step as u64 + 1)),
                )
                .expect("tcp sync");
        }

        let tcp_nodes: Vec<DtnNode> = peers.into_iter().map(Peer::stop).collect();
        let local_refs: Vec<&DtnNode> = local.iter().collect();
        let tcp_refs: Vec<&DtnNode> = tcp_nodes.iter().collect();
        assert_eq!(
            snapshot(&local_refs),
            snapshot(&tcp_refs),
            "policy {policy}: transport changed replication outcomes"
        );
    }
}

#[test]
fn tcp_preserves_transient_metadata() {
    // Spray's copy counts must survive the wire encoding.
    let a = Peer::start(
        DtnNode::new(ReplicaId::new(1), "a", PolicyKind::SprayAndWait),
        "127.0.0.1:0",
    )
    .unwrap();
    let b = Peer::start(
        DtnNode::new(ReplicaId::new(2), "b", PolicyKind::SprayAndWait),
        "127.0.0.1:0",
    )
    .unwrap();
    let id = a
        .with_node(|n| n.send("z", b"spray".to_vec(), SimTime::ZERO))
        .unwrap();
    a.sync_with(b.local_addr(), SimTime::from_secs(60)).unwrap();
    let b_copies = b.with_node(|n| {
        n.replica()
            .item(id)
            .and_then(|i| i.transient().get_i64(replidtn::dtn::ATTR_COPIES))
    });
    let a_copies = a.with_node(|n| {
        n.replica()
            .item(id)
            .and_then(|i| i.transient().get_i64(replidtn::dtn::ATTR_COPIES))
    });
    assert_eq!(a_copies, Some(4));
    assert_eq!(b_copies, Some(4));
}
