//! Facade crate re-exporting the replidtn workspace.
pub use dtn;
pub use emu;
pub use net;
pub use obs;
pub use pfr;
pub use store;
pub use traces;
pub use transport;

pub mod cli;
