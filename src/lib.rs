//! Facade crate re-exporting the replidtn workspace.
pub use pfr;
pub use dtn;
pub use traces;
pub use emu;
pub use transport;

pub mod cli;
