//! `replidtn` — command-line front end for the DTN-over-replication stack.
//!
//! ```text
//! replidtn gen-trace [--days N] [--fleet N] [--buses-per-day N] [--seed S]
//!                    [--scale N] [--out FILE | --spool FILE]
//! replidtn gen-mail  [--messages N] [--users N] [--days N] [--seed S] [--out FILE]
//! replidtn run --policy <cimbiosys|epidemic|spray|prophet|maxprop>
//!              [--trace FILE | --spool FILE] [--mail FILE]
//!              [--bandwidth N] [--storage N]
//!              [--strategy <random|selected>] [--k N]
//!              [--shards N] [--exec-threads N] [--stream-encounters]
//!              [--spill-dir DIR] [--resident-limit N] [--lookahead N]
//!              [--data-dir DIR] [--events FILE] [--stats]
//! replidtn peer --id N --address ADDR --policy P --listen HOST:PORT
//!               [--connect HOST:PORT] [--send DEST:TEXT] [--data-dir DIR]
//!               [--gossip] [--seed-peer HOST:PORT] [--max-sessions N]
//!               [--connect-timeout-ms MS] [--retries N] [--backoff-ms MS]
//! ```
//!
//! City-scale runs combine `gen-trace --scale N --spool FILE` (streamed
//! binary trace, never resident) with `run --spool FILE --shards W
//! [--resident-limit R --spill-dir DIR]`: the sharded engine fans
//! encounters across W workers and spills cold replicas, producing the
//! exact metrics of a serial in-memory run.
//!
//! `--data-dir DIR` makes state durable: `peer` opens its node from the
//! directory (restoring items, knowledge, and routing state after a
//! crash) and persists after every session; `run` writes each node's
//! final state under `DIR/node-<id>` when the emulation finishes.
//!
//! `--events FILE` streams the structured event log (one JSON object per
//! line) from the observability layer; `--stats` prints the aggregated
//! counter/histogram registry as CSV after the run. Both are accepted by
//! `run`, `peer`, and `fig`.
//!
//! `gen-trace`/`gen-mail` write the text formats accepted by `run`, so a
//! real CRAWDAD-derived trace can be swapped in with no code changes.

use std::process::ExitCode;
use std::sync::Arc;

use replidtn::cli::Flags;
use replidtn::dtn::{DtnNode, EncounterBudget, FilterStrategy, PolicyKind};
use replidtn::emu::{Emulation, EmulationConfig};
use replidtn::net::{MembershipConfig, NetConfig, NetNode};
use replidtn::obs::{Fanout, JsonlSink, Obs, Observer, Registry};
use replidtn::pfr::{ReplicaId, SimDuration, SimTime, SyncLimits};
use replidtn::traces::{
    format_trace, format_workload, parse_trace, parse_workload, DieselNetConfig, EmailConfig,
    SpooledTrace,
};
use replidtn::transport::{DialConfig, Peer};

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let result = match args.first().map(String::as_str) {
        Some("gen-trace") => gen_trace(&args[1..]),
        Some("gen-mail") => gen_mail(&args[1..]),
        Some("run") => run(&args[1..]),
        Some("peer") => peer(&args[1..]),
        Some("fig") => fig(&args[1..]),
        Some("help") | Some("--help") | Some("-h") | None => {
            print!("{USAGE}");
            Ok(())
        }
        Some(other) => Err(format!("unknown command {other:?}; try `replidtn help`")),
    };
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(message) => {
            eprintln!("error: {message}");
            ExitCode::FAILURE
        }
    }
}

const USAGE: &str = "\
replidtn — delay-tolerant messaging over peer-to-peer filtered replication

USAGE:
  replidtn gen-trace [--days N] [--fleet N] [--buses-per-day N] [--seed S]
                     [--scale N] [--out FILE | --spool FILE]
      Generate a DieselNet-like encounter trace (text format on stdout or
      FILE). --scale N starts from the city preset (N x the paper's 34-bus
      fleet); --spool FILE streams the trace to a binary spool instead,
      never holding it in memory — the input for `run --spool`.

  replidtn gen-mail [--messages N] [--users N] [--days N] [--seed S] [--out FILE]
      Generate an Enron-like mail workload.

  replidtn run --policy <cimbiosys|epidemic|spray|prophet|maxprop>
               [--trace FILE | --spool FILE] [--mail FILE]
               [--bandwidth N] [--storage N]
               [--strategy <random|selected>] [--k N] [--seed S]
               [--shards N] [--exec-threads N] [--stream-encounters]
               [--spill-dir DIR] [--resident-limit N] [--lookahead N]
               [--data-dir DIR] [--events FILE] [--stats]
      Replay a workload over a trace and print delivery statistics.
      Without --trace/--mail, the paper-scale synthetic scenario is used.
      With --data-dir, each node's final state is persisted under
      DIR/node-<id> when the run completes.

      Scale knobs (all preserve serial metrics exactly): --shards N runs
      the sharded engine with N shards; --exec-threads N sizes its
      thread pool (default: one per shard on multi-core hosts, 0 — the
      cooperative main-thread path — on a single core);
      --stream-encounters iterates the schedule from disk;
      --resident-limit N caps resident replicas, spilling cold state
      under --spill-dir (or the system temp dir); --lookahead N sizes
      the encounter prefetch window driving eviction (default 8 x the
      residency cap).

  replidtn peer --id N --address ADDR [--policy P] --listen HOST:PORT
                [--connect HOST:PORT]... [--send DEST:TEXT]... [--serve-for SECS]
                [--gossip] [--seed-peer HOST:PORT]... [--max-sessions N]
                [--poll-backend {epoll,sweep}]
                [--gossip-interval-ms MS] [--anti-entropy-ms MS]
                [--connect-timeout-ms MS] [--io-timeout-ms MS]
                [--retries N] [--backoff-ms MS]
                [--data-dir DIR] [--events FILE] [--stats]
      Start a real TCP replication peer, optionally queue messages and sync
      with remote peers, then print the inbox. With --data-dir, the node is
      opened from (and persisted to) the directory, so a killed peer resumes
      with its items, knowledge, and routing state intact.

      --gossip swaps the thread-per-session transport for the async
      reactor (crates/net): up to --max-sessions concurrent sessions on a
      small worker pool, gossip membership bootstrapped from --seed-peer
      addresses (one round per --gossip-interval-ms), and, when
      --anti-entropy-ms is nonzero, periodic syncs round-robin over the
      discovered view. --poll-backend selects how reactor workers find
      ready sockets: edge-triggered epoll (default on Linux, O(1)
      syscalls per session) or the portable exhaustive sweep; the
      REPLIDTN_POLL_BACKEND env var sets the default. The dial flags tune both transports:
      --connect-timeout-ms / --io-timeout-ms bound the socket,
      --retries / --backoff-ms add exponential backoff with deterministic
      jitter to failed dials (blocking transport).

  replidtn fig --id <5|6|7a|7b|8|9|10> [--events FILE] [--stats]
      Regenerate one figure of the paper (equivalent to the bench target).

  Observability (run, peer, fig):
    --events FILE   stream every observability event as JSON lines to FILE
    --stats         print the counter/histogram registry as CSV afterwards
";

/// Observability wiring shared by `run`, `peer`, and `fig`: an optional
/// JSONL event stream (`--events FILE`) and an optional counter/histogram
/// summary printed at exit (`--stats`).
struct ObsSetup {
    observer: Option<Arc<dyn Observer>>,
    events: Option<Arc<JsonlSink>>,
    registry: Option<Arc<Registry>>,
}

impl ObsSetup {
    fn from_flags(flags: &Flags) -> Result<ObsSetup, String> {
        let events = match flags.get("events") {
            None => None,
            Some("") => return Err("--events needs a file path".to_string()),
            Some(path) => Some(Arc::new(
                JsonlSink::create(path).map_err(|e| format!("creating {path:?}: {e}"))?,
            )),
        };
        let registry = flags.has("stats").then(|| Arc::new(Registry::new()));
        let mut observers: Vec<Arc<dyn Observer>> = Vec::new();
        if let Some(sink) = &events {
            observers.push(Arc::clone(sink) as Arc<dyn Observer>);
        }
        if let Some(registry) = &registry {
            observers.push(Arc::clone(registry) as Arc<dyn Observer>);
        }
        let observer = match observers.len() {
            0 => None,
            1 => observers.pop(),
            _ => Some(Arc::new(Fanout::new(observers)) as Arc<dyn Observer>),
        };
        Ok(ObsSetup {
            observer,
            events,
            registry,
        })
    }

    /// Attaches the observer (if any) to a standalone node, e.g. before
    /// handing it to the transport layer.
    fn attach(&self, node: &mut DtnNode) {
        if let Some(observer) = &self.observer {
            node.replica_mut()
                .set_observer(Obs::new(Arc::clone(observer)));
        }
    }

    /// The observer as an [`Obs`] handle (a no-op handle when neither
    /// `--events` nor `--stats` was given) — for layers that take `Obs`
    /// directly, like the storage engine.
    fn handle(&self) -> Obs {
        match &self.observer {
            Some(observer) => Obs::new(Arc::clone(observer)),
            None => Obs::none(),
        }
    }

    /// Flushes the event stream and prints the `--stats` CSV summary.
    fn finish(&self) -> Result<(), String> {
        if let Some(sink) = &self.events {
            sink.flush()
                .map_err(|e| format!("flushing --events file: {e}"))?;
        }
        if let Some(registry) = &self.registry {
            println!();
            print!("{}", registry.snapshot().to_csv());
        }
        Ok(())
    }
}

fn emit(out: Option<&str>, text: &str) -> Result<(), String> {
    match out {
        None => {
            print!("{text}");
            Ok(())
        }
        Some(path) => std::fs::write(path, text).map_err(|e| format!("writing {path:?}: {e}")),
    }
}

fn gen_trace(args: &[String]) -> Result<(), String> {
    let flags = Flags::parse(args)?;
    // --scale N starts from the city-scale preset (the paper's 34-bus
    // topology multiplied N-fold); explicit flags still override it.
    let scale: usize = flags.num("scale", 0)?;
    let base = if scale > 0 {
        DieselNetConfig::city(scale)
    } else {
        DieselNetConfig::default()
    };
    let config = DieselNetConfig {
        days: flags.num("days", 17u64)?,
        fleet_size: flags.num("fleet", base.fleet_size)?,
        buses_per_day: flags.num("buses-per-day", base.buses_per_day)?,
        seed: flags.num("seed", base.seed)?,
        ..base
    };
    match flags.get("spool") {
        Some("") => Err("--spool needs a file path".to_string()),
        Some(path) => {
            // Stream straight to the binary spool: city-scale fleets never
            // materialize in memory.
            let spooled = config
                .generate_spooled(path)
                .map_err(|e| format!("spooling to {path:?}: {e}"))?;
            eprintln!(
                "spooled {} encounters over {} days ({} vehicles) to {path}",
                spooled.len(),
                spooled.days(),
                spooled.nodes().len()
            );
            Ok(())
        }
        None => {
            let trace = config.generate();
            eprintln!(
                "generated {} encounters over {} days ({:.1} buses/day)",
                trace.len(),
                trace.days(),
                trace.mean_nodes_per_day()
            );
            emit(flags.get("out"), &format_trace(&trace))
        }
    }
}

fn gen_mail(args: &[String]) -> Result<(), String> {
    let flags = Flags::parse(args)?;
    let config = EmailConfig {
        total_messages: flags.num("messages", 490usize)?,
        users: flags.num("users", 46usize)?,
        injection_days: flags.num("days", 8u64)?,
        seed: flags.num("seed", EmailConfig::default().seed)?,
        ..EmailConfig::default()
    };
    let workload = config.generate();
    eprintln!(
        "generated {} messages from {} users over {} days",
        workload.len(),
        workload.users().len(),
        workload.last_injection_day().map(|d| d + 1).unwrap_or(0)
    );
    emit(flags.get("out"), &format_workload(&workload))
}

fn run(args: &[String]) -> Result<(), String> {
    let flags = Flags::parse(args)?;
    let policy: PolicyKind = flags
        .get("policy")
        .ok_or("run requires --policy")?
        .parse()?;

    let spooled = match flags.get("spool") {
        None => None,
        Some("") => return Err("--spool needs a file path".to_string()),
        Some(path) => {
            Some(SpooledTrace::open(path).map_err(|e| format!("opening spool {path:?}: {e}"))?)
        }
    };
    let trace = match (&spooled, flags.get("trace")) {
        (Some(_), Some(_)) => return Err("--trace and --spool are mutually exclusive".to_string()),
        (Some(_), None) => None,
        (None, Some(path)) => {
            let text =
                std::fs::read_to_string(path).map_err(|e| format!("reading {path:?}: {e}"))?;
            Some(parse_trace(&text).map_err(|e| e.to_string())?)
        }
        (None, None) => Some(DieselNetConfig::default().generate()),
    };
    let workload = match flags.get("mail") {
        Some(path) => {
            let text =
                std::fs::read_to_string(path).map_err(|e| format!("reading {path:?}: {e}"))?;
            parse_workload(&text).map_err(|e| e.to_string())?
        }
        None => EmailConfig::default().generate(),
    };

    let budget = match flags.get("bandwidth") {
        None => EncounterBudget::unlimited(),
        Some(v) => {
            EncounterBudget::max_messages(v.parse().map_err(|_| format!("--bandwidth: bad {v:?}"))?)
        }
    };
    let relay_limit = match flags.get("storage") {
        None => None,
        Some(v) => Some(v.parse().map_err(|_| format!("--storage: bad {v:?}"))?),
    };
    let k: usize = flags.num("k", 0)?;
    let filter_strategy = match flags.get("strategy") {
        None => FilterStrategy::SelfOnly,
        Some("random") => FilterStrategy::Random(k),
        Some("selected") => FilterStrategy::Selected(k),
        Some(other) => return Err(format!("--strategy: unknown {other:?}")),
    };

    // Scale knobs: worker shards, streamed encounter iteration, and a
    // spill directory / residency cap for cold replica state. Any of them
    // routes the run through the sharded engine (bit-equal to serial).
    let shards = match flags.get("shards") {
        None => None,
        Some("") => return Err("--shards needs a worker count".to_string()),
        Some(v) => Some(
            v.parse::<usize>()
                .map_err(|_| format!("--shards: cannot parse {v:?}"))?,
        ),
    };
    let exec_threads = match flags.get("exec-threads") {
        None => None,
        Some("") => return Err("--exec-threads needs a thread count".to_string()),
        Some(v) => Some(
            v.parse::<usize>()
                .map_err(|_| format!("--exec-threads: cannot parse {v:?}"))?,
        ),
    };
    let resident_limit = match flags.get("resident-limit") {
        None => None,
        Some("") => return Err("--resident-limit needs a node count".to_string()),
        Some(v) => Some(
            v.parse::<usize>()
                .map_err(|_| format!("--resident-limit: cannot parse {v:?}"))?,
        ),
    };
    let spill_dir = match flags.get("spill-dir") {
        None => None,
        Some("") => return Err("--spill-dir needs a directory".to_string()),
        Some(dir) => {
            std::fs::create_dir_all(dir).map_err(|e| format!("creating {dir:?}: {e}"))?;
            Some(std::path::PathBuf::from(dir))
        }
    };
    let lookahead = match flags.get("lookahead") {
        None => None,
        Some("") => return Err("--lookahead needs an encounter count".to_string()),
        Some(v) => Some(
            v.parse::<usize>()
                .map_err(|_| format!("--lookahead: cannot parse {v:?}"))?,
        ),
    };

    let obs = ObsSetup::from_flags(&flags)?;
    let config = EmulationConfig {
        policy: policy.into(),
        budget,
        relay_limit,
        filter_strategy,
        assignment_seed: flags.num("seed", EmulationConfig::default().assignment_seed)?,
        observer: obs.observer.clone(),
        shards,
        exec_threads,
        stream_encounters: flags.has("stream-encounters"),
        spill_dir,
        resident_limit,
        lookahead,
        ..EmulationConfig::default()
    };

    let (encounters, days) = match (&spooled, &trace) {
        (Some(s), _) => (s.len(), s.days()),
        (None, Some(t)) => (t.len() as u64, t.days()),
        (None, None) => unreachable!("either --spool or a trace is set"),
    };
    eprintln!(
        "running {policy} over {encounters} encounters / {} messages ...",
        workload.len()
    );
    let emulation = match (&spooled, &trace) {
        (Some(s), _) => Emulation::from_spooled(s, &workload, config),
        (None, Some(t)) => Emulation::new(t, &workload, config),
        (None, None) => unreachable!("either --spool or a trace is set"),
    };
    let metrics = match flags.get("data-dir") {
        None => emulation.run(),
        Some(dir) => {
            let (metrics, nodes) = emulation.run_into_parts();
            let end = SimTime::from_secs(86_400 * days);
            let count = nodes.len();
            for (id, mut node) in nodes {
                let node_dir = std::path::Path::new(dir).join(format!("node-{}", id.as_u64()));
                let store = replidtn::store::Store::open_with(
                    &node_dir,
                    replidtn::store::StoreConfig::default(),
                    obs.handle(),
                )
                .map_err(|e| format!("opening {node_dir:?}: {e}"))?;
                node.attach_store(store);
                node.persist(end)
                    .map_err(|e| format!("persisting node {id}: {e}"))?;
            }
            eprintln!("persisted {count} node state(s) under {dir}");
            metrics
        }
    };

    println!("policy:        {policy}");
    println!(
        "delivered:     {}/{} ({:.1}%)",
        metrics.delivered(),
        metrics.injected(),
        metrics.delivery_rate() * 100.0
    );
    if let Some(mean) = metrics.mean_delay() {
        println!(
            "mean delay:    {:.1} h (delivered messages)",
            mean.as_hours_f64()
        );
    }
    println!(
        "within 12h:    {:.1}%",
        metrics.delivered_within(SimDuration::from_hours(12)) * 100.0
    );
    if let Some(worst) = metrics.max_delay() {
        println!("worst delay:   {:.1} d", worst.as_days_f64());
    }
    println!("transfers:     {}", metrics.transmissions);
    println!("encounters:    {}", metrics.encounters);
    println!("evictions:     {}", metrics.evictions);
    println!("duplicates:    {}", metrics.duplicates);
    println!();
    println!("delay CDF (hours):");
    for p in metrics.delay_cdf(SimDuration::from_hours(2), SimDuration::from_hours(24)) {
        println!("  <= {:>3}  {:5.1}%", p.delay.to_string(), p.delivered_pct);
    }
    obs.finish()
}

fn peer(args: &[String]) -> Result<(), String> {
    let flags = Flags::parse(args)?;
    let id: u64 = flags.num("id", 0)?;
    if id == 0 {
        return Err("peer requires --id (nonzero)".to_string());
    }
    let address = flags.get("address").ok_or("peer requires --address")?;
    let policy: PolicyKind = flags.get("policy").unwrap_or("epidemic").parse()?;
    let listen = flags.get("listen").ok_or("peer requires --listen")?;

    // Dial policy, shared by both transports: connect/IO deadlines plus
    // retry count and exponential backoff for flaky links.
    let dial_defaults = DialConfig::default();
    let dial = DialConfig {
        connect_timeout: std::time::Duration::from_millis(flags.num(
            "connect-timeout-ms",
            dial_defaults.connect_timeout.as_millis() as u64,
        )?),
        io_timeout: std::time::Duration::from_millis(
            flags.num("io-timeout-ms", dial_defaults.io_timeout.as_millis() as u64)?,
        ),
        retries: flags.num("retries", dial_defaults.retries)?,
        backoff: std::time::Duration::from_millis(
            flags.num("backoff-ms", dial_defaults.backoff.as_millis() as u64)?,
        ),
        ..dial_defaults
    };

    let obs = ObsSetup::from_flags(&flags)?;
    let mut node = match flags.get("data-dir") {
        None => DtnNode::new(ReplicaId::new(id), address, policy),
        Some(dir) => {
            let node =
                DtnNode::open_observed(dir, ReplicaId::new(id), address, policy, obs.handle())
                    .map_err(|e| format!("opening --data-dir {dir:?}: {e}"))?;
            let recovery = node.recovery().expect("durable node has a report");
            if recovery.recovered_state() {
                println!(
                    "restored from {dir} (checkpoint {}, {} WAL record(s) replayed, \
                     {} torn byte(s) dropped): {} message(s) in inbox",
                    recovery.checkpoint_seq,
                    recovery.wal_records,
                    recovery.truncated_bytes,
                    node.inbox().len()
                );
            } else {
                println!("fresh data directory {dir}");
            }
            node
        }
    };
    obs.attach(&mut node);

    type SendQueue<'a> = &'a dyn Fn(&str, Vec<u8>) -> Result<(), String>;
    let queue_sends = |queue: SendQueue| -> Result<(), String> {
        for send in flags.get_all("send") {
            let (dest, text) = send
                .split_once(':')
                .ok_or_else(|| format!("--send wants DEST:TEXT, got {send:?}"))?;
            queue(dest, text.as_bytes().to_vec())?;
            println!("queued {text:?} for {dest}");
        }
        Ok(())
    };
    let serve_for: u64 = flags.num("serve-for", 0)?;

    let mut last_now = SimTime::ZERO;
    let mut node = if flags.has("gossip") {
        // The async reactor: thousands of concurrent sessions on a small
        // worker pool, gossip peer discovery, and periodic anti-entropy
        // syncs over the discovered view.
        let defaults = NetConfig::default();
        let backend = match flags.get("poll-backend") {
            None => defaults.backend,
            Some(v) => replidtn::net::PollBackend::parse(v)
                .ok_or_else(|| format!("--poll-backend wants epoll or sweep, got {v:?}"))?,
        };
        let config = NetConfig {
            backend,
            max_sessions: flags.num("max-sessions", defaults.max_sessions)?,
            connect_timeout: dial.connect_timeout,
            gossip_interval: std::time::Duration::from_millis(
                flags.num("gossip-interval-ms", 1_000u64)?,
            ),
            anti_entropy_interval: std::time::Duration::from_millis(
                flags.num("anti-entropy-ms", 0u64)?,
            ),
            gossip: MembershipConfig {
                seed: id,
                ..MembershipConfig::default()
            },
            ..defaults
        };
        let net = NetNode::start(node, listen, config).map_err(|e| e.to_string())?;
        println!(
            "peer {address} (R{id}, {policy}) listening on {} (gossip on, {} poll)",
            net.local_addr(),
            net.stats().backend,
        );
        for seed in flags.get_all("seed-peer") {
            net.add_seed(seed.to_string());
            println!("seeded gossip with {seed}");
        }
        queue_sends(&|dest, payload| {
            net.with_node(|n| n.send(dest, payload, SimTime::ZERO))
                .map(|_| ())
                .map_err(|e| e.to_string())
        })?;
        for (i, remote) in flags.get_all("connect").iter().enumerate() {
            last_now = SimTime::from_secs(60 * (i as u64 + 1));
            let result = net.sync_with(remote, last_now);
            if let Some(error) = result.error {
                return Err(format!("syncing with {remote}: {error}"));
            }
            println!(
                "synced with {remote}: served {} item(s), pulled {} deliveries",
                result.report.served,
                result.report.pulled.map(|r| r.delivered).unwrap_or(0)
            );
        }
        if serve_for > 0 {
            println!("serving for {serve_for}s (gossip running) ...");
            std::thread::sleep(std::time::Duration::from_secs(serve_for));
        }
        let view = net.membership();
        println!("membership ({} peer(s)):", view.len());
        for peer in &view {
            println!(
                "  R{} at {} [{:?}, incarnation {}]",
                peer.replica, peer.addr, peer.status, peer.incarnation
            );
        }
        let stats = net.stats();
        println!(
            "sessions: {} completed, {} failed, {} connection reuse(s), peak {} concurrent",
            stats.completed, stats.failed, stats.conn_reuses, stats.peak_sessions
        );
        net.stop()
    } else {
        let peer = Peer::start_configured(node, listen, SyncLimits::unlimited(), dial)
            .map_err(|e| e.to_string())?;
        println!(
            "peer {address} (R{id}, {policy}) listening on {}",
            peer.local_addr()
        );
        queue_sends(&|dest, payload| {
            peer.with_node(|n| n.send(dest, payload, SimTime::ZERO))
                .map(|_| ())
                .map_err(|e| e.to_string())
        })?;
        for (i, remote) in flags.get_all("connect").iter().enumerate() {
            let addr = remote
                .parse()
                .map_err(|e| format!("--connect {remote:?}: {e}"))?;
            last_now = SimTime::from_secs(60 * (i as u64 + 1));
            let report = peer.sync_with(addr, last_now).map_err(|e| e.to_string())?;
            println!(
                "synced with {remote}: served {} item(s), pulled {} deliveries",
                report.served,
                report.pulled.map(|r| r.delivered).unwrap_or(0)
            );
        }
        // Keep serving inbound sessions when asked (so another `replidtn
        // peer --connect` invocation can reach this process).
        if serve_for > 0 {
            println!("serving for {serve_for}s ...");
            std::thread::sleep(std::time::Duration::from_secs(serve_for));
        }
        peer.stop()
    };

    let inbox = node.inbox();
    println!("inbox ({} messages):", inbox.len());
    for msg in inbox {
        println!(
            "  from {}: {:?}",
            msg.src,
            String::from_utf8_lossy(&msg.payload)
        );
    }
    // Sessions persist durable state as they run; this final persist
    // additionally covers --send queuing that never synced. A no-op
    // without --data-dir.
    node.persist(last_now)
        .map_err(|e| format!("persisting at exit: {e}"))?;
    obs.finish()
}

fn fig(args: &[String]) -> Result<(), String> {
    let flags = Flags::parse(args)?;
    let which = flags
        .get("id")
        .ok_or("fig requires --id (5|6|7a|7b|8|9|10)")?;
    let scenario = replidtn::emu::experiments::Scenario::paper();
    let obs = ObsSetup::from_flags(&flags)?;
    match which {
        "5" => benchkit::print_fig5_with(&scenario, obs.observer.clone()),
        "6" => benchkit::print_fig6_with(&scenario, obs.observer.clone()),
        "7a" => {
            let runs = benchkit::unconstrained_runs_with(&scenario, obs.observer.clone());
            benchkit::print_hourly_cdfs("Figure 7a: delay CDF (0-12 hours), unconstrained", &runs);
            benchkit::print_summary(&runs);
        }
        "7b" => {
            let runs = benchkit::unconstrained_runs_with(&scenario, obs.observer.clone());
            benchkit::print_fig7b(&runs);
        }
        "8" => {
            let runs = benchkit::unconstrained_runs_with(&scenario, obs.observer.clone());
            benchkit::print_fig8(&runs);
        }
        "9" => {
            let runs = replidtn::emu::experiments::policy_comparison_with(
                &scenario,
                EncounterBudget::max_messages(1),
                None,
                obs.observer.clone(),
            );
            benchkit::print_hourly_cdfs("Figure 9: delay CDF, 1 message per encounter", &runs);
            benchkit::print_summary(&runs);
        }
        "10" => {
            let runs = replidtn::emu::experiments::policy_comparison_with(
                &scenario,
                EncounterBudget::unlimited(),
                Some(2),
                obs.observer.clone(),
            );
            benchkit::print_hourly_cdfs("Figure 10: delay CDF, 2 relay messages per node", &runs);
            benchkit::print_summary(&runs);
        }
        other => return Err(format!("unknown figure {other:?} (try 5|6|7a|7b|8|9|10)")),
    }
    obs.finish()
}
