//! Argument handling for the `replidtn` command-line tool.
//!
//! A deliberately tiny `--flag value` parser (the CLI has no positional
//! arguments beyond the subcommand), factored out of the binary so it can
//! be unit-tested.

/// Parsed `--name value` flags.
#[derive(Debug)]
pub struct Flags<'a> {
    pairs: Vec<(&'a str, &'a str)>,
}

impl<'a> Flags<'a> {
    /// Parses a flag list. Every argument must be a `--name` followed by a
    /// value.
    ///
    /// # Errors
    ///
    /// Returns a human-readable message for a bare value or a flag with no
    /// value.
    pub fn parse(args: &'a [String]) -> Result<Flags<'a>, String> {
        let mut pairs = Vec::new();
        let mut iter = args.iter();
        while let Some(flag) = iter.next() {
            let Some(name) = flag.strip_prefix("--") else {
                return Err(format!("expected --flag, found {flag:?}"));
            };
            let value = iter
                .next()
                .ok_or_else(|| format!("--{name} needs a value"))?;
            pairs.push((name, value.as_str()));
        }
        Ok(Flags { pairs })
    }

    /// The last value given for `name`, if any (later flags override
    /// earlier ones).
    pub fn get(&self, name: &str) -> Option<&'a str> {
        self.pairs
            .iter()
            .rev()
            .find(|(n, _)| *n == name)
            .map(|(_, v)| *v)
    }

    /// Every value given for `name`, in order (for repeatable flags like
    /// `--connect`).
    pub fn get_all(&self, name: &str) -> Vec<&'a str> {
        self.pairs
            .iter()
            .filter(|(n, _)| *n == name)
            .map(|(_, v)| *v)
            .collect()
    }

    /// Parses `name` as a number, with a default when absent.
    ///
    /// # Errors
    ///
    /// Returns a message naming the flag when the value does not parse.
    pub fn num<T: std::str::FromStr>(&self, name: &str, default: T) -> Result<T, String> {
        match self.get(name) {
            None => Ok(default),
            Some(v) => v
                .parse()
                .map_err(|_| format!("--{name}: cannot parse {v:?}")),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn args(list: &[&str]) -> Vec<String> {
        list.iter().map(|s| s.to_string()).collect()
    }

    #[test]
    fn parses_pairs() {
        let a = args(&["--days", "5", "--seed", "42"]);
        let flags = Flags::parse(&a).unwrap();
        assert_eq!(flags.get("days"), Some("5"));
        assert_eq!(flags.get("seed"), Some("42"));
        assert_eq!(flags.get("missing"), None);
    }

    #[test]
    fn later_flags_override() {
        let a = args(&["--k", "1", "--k", "2"]);
        let flags = Flags::parse(&a).unwrap();
        assert_eq!(flags.get("k"), Some("2"));
        assert_eq!(flags.get_all("k"), vec!["1", "2"]);
    }

    #[test]
    fn rejects_bare_values_and_missing_values() {
        let a = args(&["oops"]);
        assert!(Flags::parse(&a).unwrap_err().contains("--flag"));
        let a = args(&["--days"]);
        assert!(Flags::parse(&a).unwrap_err().contains("needs a value"));
    }

    #[test]
    fn num_parses_with_default() {
        let a = args(&["--days", "5"]);
        let flags = Flags::parse(&a).unwrap();
        assert_eq!(flags.num("days", 1u64).unwrap(), 5);
        assert_eq!(flags.num("seed", 9u64).unwrap(), 9);
        let a = args(&["--days", "zebra"]);
        let flags = Flags::parse(&a).unwrap();
        assert!(flags.num("days", 1u64).unwrap_err().contains("days"));
    }

    #[test]
    fn empty_args_parse() {
        let flags = Flags::parse(&[]).unwrap();
        assert_eq!(flags.get("anything"), None);
        assert!(flags.get_all("anything").is_empty());
    }
}
