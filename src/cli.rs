//! Argument handling for the `replidtn` command-line tool.
//!
//! A deliberately tiny `--flag value` parser (the CLI has no positional
//! arguments beyond the subcommand), factored out of the binary so it can
//! be unit-tested.

/// Parsed `--name value` flags.
#[derive(Debug)]
pub struct Flags<'a> {
    pairs: Vec<(&'a str, &'a str)>,
}

impl<'a> Flags<'a> {
    /// Parses a flag list: `--name value` pairs, where a flag followed by
    /// another `--flag` (or the end of the list) is a bare boolean flag
    /// with an empty value (see [`Flags::has`]).
    ///
    /// # Errors
    ///
    /// Returns a human-readable message for a bare value.
    pub fn parse(args: &'a [String]) -> Result<Flags<'a>, String> {
        let mut pairs = Vec::new();
        let mut iter = args.iter().peekable();
        while let Some(flag) = iter.next() {
            let Some(name) = flag.strip_prefix("--") else {
                return Err(format!("expected --flag, found {flag:?}"));
            };
            let value = match iter.peek() {
                Some(next) if !next.starts_with("--") => {
                    iter.next().map(String::as_str).unwrap_or("")
                }
                _ => "",
            };
            pairs.push((name, value));
        }
        Ok(Flags { pairs })
    }

    /// Whether `name` was given at all (with or without a value).
    pub fn has(&self, name: &str) -> bool {
        self.pairs.iter().any(|(n, _)| *n == name)
    }

    /// The last value given for `name`, if any (later flags override
    /// earlier ones).
    pub fn get(&self, name: &str) -> Option<&'a str> {
        self.pairs
            .iter()
            .rev()
            .find(|(n, _)| *n == name)
            .map(|(_, v)| *v)
    }

    /// Every value given for `name`, in order (for repeatable flags like
    /// `--connect`).
    pub fn get_all(&self, name: &str) -> Vec<&'a str> {
        self.pairs
            .iter()
            .filter(|(n, _)| *n == name)
            .map(|(_, v)| *v)
            .collect()
    }

    /// Parses `name` as a number, with a default when absent.
    ///
    /// # Errors
    ///
    /// Returns a message naming the flag when the value is missing or does
    /// not parse.
    pub fn num<T: std::str::FromStr>(&self, name: &str, default: T) -> Result<T, String> {
        match self.get(name) {
            None => Ok(default),
            Some("") => Err(format!("--{name} needs a value")),
            Some(v) => v
                .parse()
                .map_err(|_| format!("--{name}: cannot parse {v:?}")),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn args(list: &[&str]) -> Vec<String> {
        list.iter().map(|s| s.to_string()).collect()
    }

    #[test]
    fn parses_pairs() {
        let a = args(&["--days", "5", "--seed", "42"]);
        let flags = Flags::parse(&a).unwrap();
        assert_eq!(flags.get("days"), Some("5"));
        assert_eq!(flags.get("seed"), Some("42"));
        assert_eq!(flags.get("missing"), None);
    }

    #[test]
    fn later_flags_override() {
        let a = args(&["--k", "1", "--k", "2"]);
        let flags = Flags::parse(&a).unwrap();
        assert_eq!(flags.get("k"), Some("2"));
        assert_eq!(flags.get_all("k"), vec!["1", "2"]);
    }

    #[test]
    fn rejects_bare_values() {
        let a = args(&["oops"]);
        assert!(Flags::parse(&a).unwrap_err().contains("--flag"));
    }

    #[test]
    fn bare_flags_are_booleans() {
        let a = args(&["--stats", "--events", "out.jsonl"]);
        let flags = Flags::parse(&a).unwrap();
        assert!(flags.has("stats"));
        assert_eq!(flags.get("stats"), Some(""));
        assert_eq!(flags.get("events"), Some("out.jsonl"));
        assert!(!flags.has("missing"));
        // A numeric flag left valueless is still an error.
        let a = args(&["--days"]);
        let flags = Flags::parse(&a).unwrap();
        assert!(flags
            .num("days", 1u64)
            .unwrap_err()
            .contains("needs a value"));
    }

    #[test]
    fn num_parses_with_default() {
        let a = args(&["--days", "5"]);
        let flags = Flags::parse(&a).unwrap();
        assert_eq!(flags.num("days", 1u64).unwrap(), 5);
        assert_eq!(flags.num("seed", 9u64).unwrap(), 9);
        let a = args(&["--days", "zebra"]);
        let flags = Flags::parse(&a).unwrap();
        assert!(flags.num("days", 1u64).unwrap_err().contains("days"));
    }

    #[test]
    fn empty_args_parse() {
        let flags = Flags::parse(&[]).unwrap();
        assert_eq!(flags.get("anything"), None);
        assert!(flags.get_all("anything").is_empty());
    }
}
