//! Offline stand-in for the `serde` crate.
//!
//! The build environment has no access to a crates.io registry, and nothing
//! in this workspace actually serializes through serde — the wire format is
//! the hand-rolled `pfr::wire` codec, and `#[derive(Serialize, Deserialize)]`
//! is only a forward-compatibility marker on the data types. This shim keeps
//! those annotations compiling: the traits are empty markers with blanket
//! implementations, and the re-exported derives expand to nothing.

/// Marker stand-in for `serde::Serialize`; blanket-implemented for all types.
pub trait Serialize {}

impl<T: ?Sized> Serialize for T {}

/// Marker stand-in for `serde::Deserialize`; blanket-implemented for all
/// sized types.
pub trait Deserialize<'de> {}

impl<'de, T> Deserialize<'de> for T {}

/// Marker stand-in for `serde::de::DeserializeOwned`.
pub trait DeserializeOwned: for<'de> Deserialize<'de> {}

impl<T: for<'de> Deserialize<'de>> DeserializeOwned for T {}

#[cfg(feature = "derive")]
pub use serde_derive::{Deserialize, Serialize};

/// Mirror of `serde::de` far enough to import `DeserializeOwned` from its
/// conventional path.
pub mod de {
    pub use crate::{Deserialize, DeserializeOwned};
}

/// Mirror of `serde::ser`.
pub mod ser {
    pub use crate::Serialize;
}

#[cfg(test)]
mod tests {
    use super::*;

    fn assert_serialize<T: Serialize + ?Sized>() {}
    fn assert_deserialize<T: for<'de> Deserialize<'de>>() {}

    #[test]
    fn blanket_impls_cover_arbitrary_types() {
        struct Local {
            _x: u8,
        }
        assert_serialize::<Local>();
        assert_serialize::<str>();
        assert_deserialize::<Local>();
        assert_deserialize::<Vec<String>>();
    }
}
