//! Offline stand-in for the `parking_lot` crate.
//!
//! The build environment has no access to a crates.io registry, so the
//! workspace vendors minimal API-compatible shims for its external
//! dependencies. This one wraps `std::sync` primitives with `parking_lot`'s
//! ergonomics: `lock()` returns the guard directly and a poisoned lock is
//! recovered rather than propagated (matching `parking_lot`'s no-poisoning
//! semantics closely enough for this workspace's usage).

use std::sync::{self, TryLockError};

/// A mutual-exclusion lock whose `lock()` never returns a `Result`.
#[derive(Default, Debug)]
pub struct Mutex<T: ?Sized> {
    inner: sync::Mutex<T>,
}

/// Guard type returned by [`Mutex::lock`].
pub type MutexGuard<'a, T> = sync::MutexGuard<'a, T>;

impl<T> Mutex<T> {
    /// Creates a new mutex protecting `value`.
    pub const fn new(value: T) -> Mutex<T> {
        Mutex {
            inner: sync::Mutex::new(value),
        }
    }

    /// Consumes the mutex, returning the protected value.
    pub fn into_inner(self) -> T {
        match self.inner.into_inner() {
            Ok(v) => v,
            Err(poisoned) => poisoned.into_inner(),
        }
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquires the lock, blocking until it is available.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        match self.inner.lock() {
            Ok(guard) => guard,
            Err(poisoned) => poisoned.into_inner(),
        }
    }

    /// Attempts to acquire the lock without blocking.
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.inner.try_lock() {
            Ok(guard) => Some(guard),
            Err(TryLockError::Poisoned(poisoned)) => Some(poisoned.into_inner()),
            Err(TryLockError::WouldBlock) => None,
        }
    }

    /// Returns a mutable reference to the protected value (requires `&mut`).
    pub fn get_mut(&mut self) -> &mut T {
        match self.inner.get_mut() {
            Ok(v) => v,
            Err(poisoned) => poisoned.into_inner(),
        }
    }
}

/// A reader-writer lock whose `read()`/`write()` never return a `Result`.
#[derive(Default, Debug)]
pub struct RwLock<T: ?Sized> {
    inner: sync::RwLock<T>,
}

/// Guard type returned by [`RwLock::read`].
pub type RwLockReadGuard<'a, T> = sync::RwLockReadGuard<'a, T>;
/// Guard type returned by [`RwLock::write`].
pub type RwLockWriteGuard<'a, T> = sync::RwLockWriteGuard<'a, T>;

impl<T> RwLock<T> {
    /// Creates a new lock protecting `value`.
    pub const fn new(value: T) -> RwLock<T> {
        RwLock {
            inner: sync::RwLock::new(value),
        }
    }

    /// Consumes the lock, returning the protected value.
    pub fn into_inner(self) -> T {
        match self.inner.into_inner() {
            Ok(v) => v,
            Err(poisoned) => poisoned.into_inner(),
        }
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquires shared read access, blocking until available.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        match self.inner.read() {
            Ok(guard) => guard,
            Err(poisoned) => poisoned.into_inner(),
        }
    }

    /// Acquires exclusive write access, blocking until available.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        match self.inner.write() {
            Ok(guard) => guard,
            Err(poisoned) => poisoned.into_inner(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mutex_locks_and_mutates() {
        let m = Mutex::new(1);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 2);
        assert_eq!(m.into_inner(), 2);
    }

    #[test]
    fn mutex_survives_a_panicked_holder() {
        let m = std::sync::Arc::new(Mutex::new(0));
        let m2 = std::sync::Arc::clone(&m);
        let _ = std::thread::spawn(move || {
            let _guard = m2.lock();
            panic!("poison attempt");
        })
        .join();
        // parking_lot semantics: the lock is usable after a panicked holder.
        assert_eq!(*m.lock(), 0);
    }

    #[test]
    fn rwlock_reads_and_writes() {
        let l = RwLock::new(vec![1, 2]);
        assert_eq!(l.read().len(), 2);
        l.write().push(3);
        assert_eq!(l.read().len(), 3);
    }

    #[test]
    fn try_lock_reports_contention() {
        let m = Mutex::new(());
        let held = m.lock();
        assert!(m.try_lock().is_none());
        drop(held);
        assert!(m.try_lock().is_some());
    }
}
