//! Offline stand-in for `serde_derive`.
//!
//! The workspace only uses `#[derive(Serialize, Deserialize)]` as a marker —
//! no code path actually serializes through serde (the wire format is the
//! hand-rolled `pfr::wire` codec). The shim `serde` crate blanket-implements
//! its `Serialize`/`Deserialize` traits for all types, so these derives can
//! expand to nothing; they exist only so the `#[derive(...)]` attributes and
//! any `#[serde(...)]` helper attributes keep compiling.

use proc_macro::TokenStream;

/// No-op `Serialize` derive: the shim trait is blanket-implemented.
#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}

/// No-op `Deserialize` derive: the shim trait is blanket-implemented.
#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}
