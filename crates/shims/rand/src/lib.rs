//! Offline stand-in for the `rand` crate.
//!
//! The build environment has no access to a crates.io registry, so the
//! workspace vendors minimal API-compatible shims for its external
//! dependencies. This one provides the subset the workspace uses: a seeded
//! [`rngs::StdRng`] plus the [`Rng`]/[`SeedableRng`] trait surface
//! (`gen`, `gen_range`, `gen_bool`).
//!
//! The generator is xoshiro256++ seeded through SplitMix64 — not the ChaCha12
//! generator real `rand 0.8` uses, so seeded sequences differ from upstream,
//! but within this workspace everything derives randomness from here and
//! stays reproducible for a given seed.

/// Low-level source of random 64-bit words.
pub trait RngCore {
    /// Returns the next word in the stream.
    fn next_u64(&mut self) -> u64;

    /// Returns the next 32-bit word (high bits of [`RngCore::next_u64`]).
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// Deterministic construction from a seed.
pub trait SeedableRng: Sized {
    /// Builds a generator from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Types that can be drawn uniformly from an [`RngCore`] stream.
///
/// Stand-in for `rand`'s `Standard: Distribution<T>` bound on `Rng::gen`.
pub trait UniformSample {
    /// Draws one value.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl UniformSample for u64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> u64 {
        rng.next_u64()
    }
}

impl UniformSample for u32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> u32 {
        rng.next_u32()
    }
}

impl UniformSample for u8 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> u8 {
        (rng.next_u64() >> 56) as u8
    }
}

impl UniformSample for u16 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> u16 {
        (rng.next_u64() >> 48) as u16
    }
}

impl UniformSample for usize {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> usize {
        rng.next_u64() as usize
    }
}

impl UniformSample for i64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> i64 {
        rng.next_u64() as i64
    }
}

impl UniformSample for i32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> i32 {
        rng.next_u32() as i32
    }
}

impl UniformSample for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> bool {
        rng.next_u64() & 1 == 1
    }
}

impl UniformSample for f64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> f64 {
        // 53 random mantissa bits -> uniform in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl UniformSample for f32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> f32 {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

/// Ranges that [`Rng::gen_range`] can sample from.
pub trait SampleRange<T> {
    /// Draws one value from the range. Panics if the range is empty.
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! int_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as i128 - self.start as i128) as u128;
                // Widening multiply maps a 64-bit draw onto the span with
                // negligible bias for the span sizes this workspace uses.
                let offset = (u128::from(rng.next_u64()) * span) >> 64;
                (self.start as i128 + offset as i128) as $t
            }
        }

        impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "cannot sample empty range");
                let span = (end as i128 - start as i128) as u128 + 1;
                let offset = (u128::from(rng.next_u64()) * span) >> 64;
                (start as i128 + offset as i128) as $t
            }
        }
    )*};
}

int_sample_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl SampleRange<f64> for core::ops::Range<f64> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "cannot sample empty range");
        self.start + f64::sample(rng) * (self.end - self.start)
    }
}

/// The user-facing convenience trait; blanket-implemented for every
/// [`RngCore`].
pub trait Rng: RngCore {
    /// Draws a uniform value of type `T` (`f64`/`f32` in `[0, 1)`, integers
    /// over their full range, `bool` fair).
    fn gen<T: UniformSample>(&mut self) -> T {
        T::sample(self)
    }

    /// Draws a value uniformly from `range`. Panics if the range is empty.
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T {
        range.sample_single(self)
    }

    /// Returns `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!(
            (0.0..=1.0).contains(&p),
            "gen_bool probability out of range"
        );
        f64::sample(self) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Concrete generators.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The workspace's standard seeded generator: xoshiro256++ with
    /// SplitMix64 seed expansion.
    #[derive(Clone, Debug)]
    pub struct StdRng {
        s: [u64; 4],
    }

    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> StdRng {
            let mut state = seed;
            let s = [
                splitmix64(&mut state),
                splitmix64(&mut state),
                splitmix64(&mut state),
                splitmix64(&mut state),
            ];
            StdRng { s }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn seeding_is_deterministic() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..32 {
            assert_eq!(a.gen::<u64>(), b.gen::<u64>());
        }
        let mut c = StdRng::seed_from_u64(8);
        assert_ne!(a.gen::<u64>(), c.gen::<u64>());
    }

    #[test]
    fn unit_floats_stay_in_range() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..10_000 {
            let x: f64 = rng.gen();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn gen_range_respects_bounds() {
        let mut rng = StdRng::seed_from_u64(2);
        let mut seen = [false; 5];
        for _ in 0..1_000 {
            let v = rng.gen_range(0usize..5);
            seen[v] = true;
        }
        assert!(seen.iter().all(|&s| s), "all buckets hit: {seen:?}");
        for _ in 0..1_000 {
            let v = rng.gen_range(10i64..=12);
            assert!((10..=12).contains(&v));
        }
    }

    #[test]
    fn gen_bool_tracks_probability() {
        let mut rng = StdRng::seed_from_u64(3);
        let hits = (0..10_000).filter(|_| rng.gen_bool(0.25)).count();
        assert!((2_000..3_000).contains(&hits), "hits = {hits}");
        assert!(!rng.gen_bool(0.0));
        assert!(rng.gen_bool(1.0));
    }

    #[test]
    fn works_through_dyn_like_bounds() {
        fn draw<R: super::RngCore + ?Sized>(rng: &mut R) -> f64 {
            rng.gen()
        }
        let mut rng = StdRng::seed_from_u64(4);
        let x = draw(&mut rng);
        assert!((0.0..1.0).contains(&x));
    }
}
