//! Offline stand-in for the `proptest` crate.
//!
//! The build environment has no access to a crates.io registry, so the
//! workspace vendors minimal API-compatible shims for its external
//! dependencies. This one implements the subset of proptest the test suites
//! use: the [`Strategy`] trait with `prop_map`/`prop_flat_map`/
//! `prop_recursive`, [`Just`], [`any`], integer-range and `[a-z]{m,n}`
//! string strategies, `collection::vec`, tuples, `prop_oneof!`, and the
//! `proptest!`/`prop_assert!` macros.
//!
//! Differences from real proptest, by design:
//! - **No shrinking.** A failing case reports its seed and inputs (via the
//!   panic message) but is not minimized.
//! - **Derandomized.** Each test function derives its RNG seed from its own
//!   name, so runs are reproducible without a `proptest-regressions` file.
//! - Unweighted `prop_oneof!` arms.

use std::marker::PhantomData;
use std::sync::Arc;

// ---------------------------------------------------------------------------
// Deterministic RNG (xoshiro256++ seeded via SplitMix64)
// ---------------------------------------------------------------------------

/// The random source threaded through strategy generation.
#[derive(Clone, Debug)]
pub struct TestRng {
    s: [u64; 4],
}

impl TestRng {
    /// Builds a generator from a 64-bit seed.
    pub fn seed_from_u64(seed: u64) -> TestRng {
        fn splitmix64(state: &mut u64) -> u64 {
            *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = *state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }
        let mut state = seed;
        TestRng {
            s: [
                splitmix64(&mut state),
                splitmix64(&mut state),
                splitmix64(&mut state),
                splitmix64(&mut state),
            ],
        }
    }

    /// Next 64-bit word.
    pub fn next_u64(&mut self) -> u64 {
        let s = &mut self.s;
        let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
        let t = s[1] << 17;
        s[2] ^= s[0];
        s[3] ^= s[1];
        s[1] ^= s[2];
        s[0] ^= s[3];
        s[2] ^= t;
        s[3] = s[3].rotate_left(45);
        result
    }

    /// Uniform draw in `[0, bound)`; `bound` must be nonzero.
    fn below(&mut self, bound: u64) -> u64 {
        ((u128::from(self.next_u64()) * u128::from(bound)) >> 64) as u64
    }

    /// Uniform usize in `[lo, hi)`.
    fn usize_in(&mut self, lo: usize, hi: usize) -> usize {
        assert!(lo < hi, "empty range in strategy");
        lo + self.below((hi - lo) as u64) as usize
    }
}

// ---------------------------------------------------------------------------
// Strategy core
// ---------------------------------------------------------------------------

/// A recipe for generating values of `Self::Value`.
pub trait Strategy {
    /// The type of generated values.
    type Value;

    /// Draws one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Transforms generated values with `f`.
    fn prop_map<U, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> U,
    {
        Map { source: self, f }
    }

    /// Generates a value, then generates from the strategy `f` derives
    /// from it.
    fn prop_flat_map<S2, F>(self, f: F) -> FlatMap<Self, F>
    where
        Self: Sized,
        S2: Strategy,
        F: Fn(Self::Value) -> S2,
    {
        FlatMap { source: self, f }
    }

    /// Builds a recursive strategy: `self` generates leaves, and `f` wraps
    /// an inner strategy into one level of branching, applied up to `depth`
    /// times. The `_desired_size`/`_expected_branch` hints are accepted for
    /// API compatibility and ignored.
    fn prop_recursive<S2, F>(
        self,
        depth: u32,
        _desired_size: u32,
        _expected_branch: u32,
        f: F,
    ) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + Clone + 'static,
        Self::Value: 'static,
        S2: Strategy<Value = Self::Value> + 'static,
        F: Fn(BoxedStrategy<Self::Value>) -> S2 + 'static,
    {
        let mut strat = self.clone().boxed();
        for _ in 0..depth {
            let deeper = f(strat).boxed();
            strat = Union::new(vec![self.clone().boxed(), deeper]).boxed();
        }
        strat
    }

    /// Type-erases the strategy behind a cheaply clonable handle.
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        BoxedStrategy(Arc::new(self))
    }
}

trait DynStrategy<T> {
    fn generate_dyn(&self, rng: &mut TestRng) -> T;
}

impl<S: Strategy> DynStrategy<S::Value> for S {
    fn generate_dyn(&self, rng: &mut TestRng) -> S::Value {
        self.generate(rng)
    }
}

/// A type-erased, clonable strategy handle.
pub struct BoxedStrategy<T>(Arc<dyn DynStrategy<T>>);

impl<T> Clone for BoxedStrategy<T> {
    fn clone(&self) -> Self {
        BoxedStrategy(Arc::clone(&self.0))
    }
}

impl<T> Strategy for BoxedStrategy<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        self.0.generate_dyn(rng)
    }
}

/// See [`Strategy::prop_map`].
#[derive(Clone)]
pub struct Map<S, F> {
    source: S,
    f: F,
}

impl<S, F, U> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> U,
{
    type Value = U;

    fn generate(&self, rng: &mut TestRng) -> U {
        (self.f)(self.source.generate(rng))
    }
}

/// See [`Strategy::prop_flat_map`].
#[derive(Clone)]
pub struct FlatMap<S, F> {
    source: S,
    f: F,
}

impl<S, F, S2> Strategy for FlatMap<S, F>
where
    S: Strategy,
    S2: Strategy,
    F: Fn(S::Value) -> S2,
{
    type Value = S2::Value;

    fn generate(&self, rng: &mut TestRng) -> S2::Value {
        (self.f)(self.source.generate(rng)).generate(rng)
    }
}

/// Always generates a clone of the given value.
#[derive(Clone, Debug)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// Uniform choice between strategies of the same value type; the expansion
/// of `prop_oneof!`.
pub struct Union<T> {
    arms: Vec<BoxedStrategy<T>>,
}

impl<T> Union<T> {
    /// Builds a union; panics on an empty arm list.
    pub fn new(arms: Vec<BoxedStrategy<T>>) -> Union<T> {
        assert!(!arms.is_empty(), "prop_oneof! needs at least one arm");
        Union { arms }
    }
}

impl<T> Clone for Union<T> {
    fn clone(&self) -> Self {
        Union {
            arms: self.arms.clone(),
        }
    }
}

impl<T> Strategy for Union<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        let pick = rng.usize_in(0, self.arms.len());
        self.arms[pick].generate(rng)
    }
}

// ---------------------------------------------------------------------------
// Primitive strategies: any::<T>(), integer ranges, regex-lite strings
// ---------------------------------------------------------------------------

/// Types with a canonical "whole domain" strategy.
pub trait Arbitrary: Sized {
    /// Draws an unconstrained value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

macro_rules! arbitrary_ints {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}

arbitrary_ints!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

impl Arbitrary for f64 {
    fn arbitrary(rng: &mut TestRng) -> f64 {
        // Finite values spanning a wide magnitude range.
        let mag = (rng.next_u64() >> 11) as f64 / (1u64 << 53) as f64;
        let scale = [-1e9, -1.0, 1.0, 1e9][rng.usize_in(0, 4)];
        mag * scale
    }
}

/// The canonical strategy for `T`'s whole domain.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(PhantomData)
}

/// See [`any`].
pub struct Any<T>(PhantomData<fn() -> T>);

impl<T> Clone for Any<T> {
    fn clone(&self) -> Self {
        Any(PhantomData)
    }
}

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

macro_rules! range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for core::ops::Range<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as i128 - self.start as i128) as u128;
                let offset = (u128::from(rng.next_u64()) * span) >> 64;
                (self.start as i128 + offset as i128) as $t
            }
        }

        impl Strategy for core::ops::RangeInclusive<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "empty range strategy");
                let span = (end as i128 - start as i128) as u128 + 1;
                let offset = (u128::from(rng.next_u64()) * span) >> 64;
                (start as i128 + offset as i128) as $t
            }
        }
    )*};
}

range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// `&'static str` patterns act as string strategies, supporting the
/// `[a-z0-9]{m,n}` subset of proptest's regex syntax; characters outside a
/// class/quantifier construct are emitted literally.
impl Strategy for &'static str {
    type Value = String;

    fn generate(&self, rng: &mut TestRng) -> String {
        generate_from_pattern(self, rng)
    }
}

fn generate_from_pattern(pattern: &str, rng: &mut TestRng) -> String {
    let chars: Vec<char> = pattern.chars().collect();
    let mut out = String::new();
    let mut i = 0;
    while i < chars.len() {
        // Parse one atom: a character class or a literal character.
        let alphabet: Vec<char> = if chars[i] == '[' {
            let close = chars[i..]
                .iter()
                .position(|&c| c == ']')
                .map(|p| i + p)
                .unwrap_or_else(|| panic!("unclosed [ in pattern {pattern:?}"));
            let mut set = Vec::new();
            let mut j = i + 1;
            while j < close {
                if j + 2 < close && chars[j + 1] == '-' {
                    let (lo, hi) = (chars[j] as u32, chars[j + 2] as u32);
                    assert!(lo <= hi, "bad class range in pattern {pattern:?}");
                    set.extend((lo..=hi).filter_map(char::from_u32));
                    j += 3;
                } else {
                    set.push(chars[j]);
                    j += 1;
                }
            }
            i = close + 1;
            set
        } else {
            let c = chars[i];
            i += 1;
            vec![c]
        };
        // Parse an optional {m,n} / {n} quantifier.
        let (lo, hi) = if i < chars.len() && chars[i] == '{' {
            let close = chars[i..]
                .iter()
                .position(|&c| c == '}')
                .map(|p| i + p)
                .unwrap_or_else(|| panic!("unclosed {{ in pattern {pattern:?}"));
            let body: String = chars[i + 1..close].iter().collect();
            i = close + 1;
            match body.split_once(',') {
                Some((m, n)) => (
                    m.trim().parse::<usize>().expect("quantifier min"),
                    n.trim().parse::<usize>().expect("quantifier max"),
                ),
                None => {
                    let n = body.trim().parse::<usize>().expect("quantifier count");
                    (n, n)
                }
            }
        } else {
            (1, 1)
        };
        let count = if lo == hi {
            lo
        } else {
            rng.usize_in(lo, hi + 1)
        };
        for _ in 0..count {
            out.push(alphabet[rng.usize_in(0, alphabet.len())]);
        }
    }
    out
}

// ---------------------------------------------------------------------------
// Tuple and collection strategies
// ---------------------------------------------------------------------------

macro_rules! tuple_strategy {
    ($($name:ident),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);

            #[allow(non_snake_case)]
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.generate(rng),)+)
            }
        }
    };
}

tuple_strategy!(A, B);
tuple_strategy!(A, B, C);
tuple_strategy!(A, B, C, D);
tuple_strategy!(A, B, C, D, E);
tuple_strategy!(A, B, C, D, E, F);
tuple_strategy!(A, B, C, D, E, F, G);
tuple_strategy!(A, B, C, D, E, F, G, H);

/// Collection strategies (`proptest::collection::vec`).
pub mod collection {
    use super::{Strategy, TestRng};

    /// Generates `Vec`s whose length is drawn from `size` and whose elements
    /// come from `element`.
    pub fn vec<S: Strategy>(element: S, size: core::ops::Range<usize>) -> VecStrategy<S> {
        assert!(
            size.start < size.end,
            "empty size range for collection::vec"
        );
        VecStrategy { element, size }
    }

    /// See [`vec`].
    #[derive(Clone)]
    pub struct VecStrategy<S> {
        element: S,
        size: core::ops::Range<usize>,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let len = rng.usize_in(self.size.start, self.size.end);
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }
}

// ---------------------------------------------------------------------------
// Runner
// ---------------------------------------------------------------------------

/// Per-`proptest!` block configuration.
#[derive(Clone, Debug)]
pub struct ProptestConfig {
    /// Number of random cases per test function.
    pub cases: u32,
}

impl ProptestConfig {
    /// A config running `cases` random cases.
    pub fn with_cases(cases: u32) -> ProptestConfig {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> ProptestConfig {
        ProptestConfig { cases: 64 }
    }
}

#[doc(hidden)]
pub fn __run_cases<F: FnMut(&mut TestRng)>(name: &str, config: &ProptestConfig, mut case: F) {
    // FNV-1a over the test name: stable seeds without a regressions file.
    let mut seed = 0xcbf2_9ce4_8422_2325u64;
    for byte in name.bytes() {
        seed ^= u64::from(byte);
        seed = seed.wrapping_mul(0x100_0000_01b3);
    }
    for index in 0..config.cases {
        let mut rng = TestRng::seed_from_u64(seed ^ (u64::from(index) << 32));
        let outcome = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| case(&mut rng)));
        if let Err(panic) = outcome {
            eprintln!(
                "proptest shim: {name} failed on case {index}/{} (seed {seed:#x})",
                config.cases
            );
            std::panic::resume_unwind(panic);
        }
    }
}

// ---------------------------------------------------------------------------
// Macros
// ---------------------------------------------------------------------------

/// Declares property tests: each `fn name(pat in strategy, ...) { body }`
/// becomes a `#[test]` running `body` over random cases.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::__proptest_fns!{ ($config) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_fns!{ ($crate::ProptestConfig::default()) $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_fns {
    (($config:expr)) => {};
    (($config:expr)
     $(#[$meta:meta])*
     fn $name:ident($($params:tt)*) $body:block
     $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let __pt_config: $crate::ProptestConfig = $config;
            $crate::__run_cases(stringify!($name), &__pt_config, |__pt_rng| {
                $crate::__proptest_bind!{ __pt_rng, $($params)* }
                $body
            });
        }
        $crate::__proptest_fns!{ ($config) $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_bind {
    ($rng:ident $(,)?) => {};
    ($rng:ident, $pat:pat in $strat:expr) => {
        let $pat = $crate::Strategy::generate(&($strat), $rng);
    };
    ($rng:ident, $pat:pat in $strat:expr, $($rest:tt)*) => {
        let $pat = $crate::Strategy::generate(&($strat), $rng);
        $crate::__proptest_bind!{ $rng, $($rest)* }
    };
}

/// Uniform choice among strategy arms with a common value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($arm:expr),+ $(,)?) => {
        $crate::Union::new(vec![$($crate::Strategy::boxed($arm)),+])
    };
}

/// Asserts inside a property test (no shrinking in this shim, so it simply
/// forwards to `assert!`).
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => { assert!($cond) };
    ($cond:expr, $($fmt:tt)+) => { assert!($cond, $($fmt)+) };
}

/// Equality assertion inside a property test; forwards to `assert_eq!`.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => { assert_eq!($left, $right) };
    ($left:expr, $right:expr, $($fmt:tt)+) => { assert_eq!($left, $right, $($fmt)+) };
}

/// The conventional glob import surface.
pub mod prelude {
    pub use crate::collection;
    pub use crate::{
        any, prop_assert, prop_assert_eq, prop_oneof, proptest, Arbitrary, BoxedStrategy, Just,
        ProptestConfig, Strategy, TestRng, Union,
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #[test]
        fn ranges_and_tuples_stay_in_bounds((a, b) in (1u64..6, -3i64..4), n in 0usize..10) {
            prop_assert!((1..6).contains(&a));
            prop_assert!((-3..4).contains(&b));
            prop_assert!(n < 10);
        }

        #[test]
        fn string_patterns_match_shape(s in "[a-z]{2,5}") {
            prop_assert!((2..=5).contains(&s.len()), "len {}", s.len());
            prop_assert!(s.chars().all(|c| c.is_ascii_lowercase()));
        }

        #[test]
        fn vec_lengths_respect_size(v in collection::vec(any::<u8>(), 3..7)) {
            prop_assert!((3..7).contains(&v.len()));
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(8))]

        #[test]
        fn config_form_parses(x in 0i32..100) {
            prop_assert!(x >= 0);
        }
    }

    #[test]
    fn oneof_hits_every_arm() {
        let strat = prop_oneof![Just(1u8), Just(2u8), Just(3u8)];
        let mut rng = TestRng::seed_from_u64(5);
        let mut seen = [false; 4];
        for _ in 0..200 {
            seen[strat.generate(&mut rng) as usize] = true;
        }
        assert!(seen[1] && seen[2] && seen[3]);
    }

    #[test]
    fn recursive_strategies_terminate() {
        #[derive(Debug, Clone)]
        enum Tree {
            Leaf(u8),
            Node(Vec<Tree>),
        }
        let strat = any::<u8>()
            .prop_map(Tree::Leaf)
            .boxed()
            .prop_recursive(3, 16, 4, |inner| {
                collection::vec(inner, 0..4).prop_map(Tree::Node)
            });
        fn depth(t: &Tree) -> usize {
            match t {
                Tree::Leaf(_) => 1,
                Tree::Node(kids) => 1 + kids.iter().map(depth).max().unwrap_or(0),
            }
        }
        let mut rng = TestRng::seed_from_u64(9);
        for _ in 0..100 {
            // Each prop_recursive level adds at most one Node layer.
            assert!(depth(&strat.generate(&mut rng)) <= 4);
        }
    }

    #[test]
    fn flat_map_threads_dependent_values() {
        let strat = (2usize..6).prop_flat_map(|n| (Just(n), collection::vec(0..n, 1..4)));
        let mut rng = TestRng::seed_from_u64(11);
        for _ in 0..100 {
            let (n, xs) = strat.generate(&mut rng);
            assert!(xs.iter().all(|&x| x < n));
        }
    }
}
