//! Offline stand-in for the `bytes` crate.
//!
//! The build environment has no access to a crates.io registry, so the
//! workspace vendors minimal API-compatible shims for its external
//! dependencies. Only the `BytesMut` + `BufMut` subset exercised by
//! `pfr::wire` is provided, backed by a plain `Vec<u8>`.

use std::ops::Deref;

/// A growable byte buffer, append-only in this shim.
#[derive(Default, Debug, Clone, PartialEq, Eq)]
pub struct BytesMut {
    inner: Vec<u8>,
}

impl BytesMut {
    /// Creates an empty buffer.
    pub fn new() -> BytesMut {
        BytesMut::default()
    }

    /// Creates an empty buffer with `capacity` bytes pre-allocated.
    pub fn with_capacity(capacity: usize) -> BytesMut {
        BytesMut {
            inner: Vec::with_capacity(capacity),
        }
    }

    /// Number of bytes written so far.
    pub fn len(&self) -> usize {
        self.inner.len()
    }

    /// True when no bytes have been written.
    pub fn is_empty(&self) -> bool {
        self.inner.is_empty()
    }

    /// Copies the contents into a `Vec<u8>`.
    pub fn to_vec(&self) -> Vec<u8> {
        self.inner.clone()
    }

    /// Clears the buffer without releasing its allocation.
    pub fn clear(&mut self) {
        self.inner.clear();
    }
}

impl Deref for BytesMut {
    type Target = [u8];

    fn deref(&self) -> &[u8] {
        &self.inner
    }
}

impl From<BytesMut> for Vec<u8> {
    fn from(buf: BytesMut) -> Vec<u8> {
        buf.inner
    }
}

/// Append-style write access to a byte buffer.
pub trait BufMut {
    /// Appends a single byte.
    fn put_u8(&mut self, value: u8);
    /// Appends a `u64` in little-endian order.
    fn put_u64_le(&mut self, value: u64);
    /// Appends a `u32` in little-endian order.
    fn put_u32_le(&mut self, value: u32);
    /// Appends a byte slice.
    fn put_slice(&mut self, src: &[u8]);
}

impl BufMut for BytesMut {
    fn put_u8(&mut self, value: u8) {
        self.inner.push(value);
    }

    fn put_u64_le(&mut self, value: u64) {
        self.inner.extend_from_slice(&value.to_le_bytes());
    }

    fn put_u32_le(&mut self, value: u32) {
        self.inner.extend_from_slice(&value.to_le_bytes());
    }

    fn put_slice(&mut self, src: &[u8]) {
        self.inner.extend_from_slice(src);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrips_little_endian() {
        let mut buf = BytesMut::new();
        buf.put_u8(0xAB);
        buf.put_u64_le(0x0102_0304_0506_0708);
        buf.put_slice(b"xyz");
        assert_eq!(buf.len(), 12);
        assert!(!buf.is_empty());
        let v = buf.to_vec();
        assert_eq!(v[0], 0xAB);
        assert_eq!(&v[1..9], &0x0102_0304_0506_0708u64.to_le_bytes());
        assert_eq!(&v[9..], b"xyz");
    }

    #[test]
    fn deref_exposes_slice() {
        let mut buf = BytesMut::with_capacity(4);
        buf.put_slice(&[1, 2, 3]);
        assert_eq!(&buf[..], &[1, 2, 3]);
        buf.clear();
        assert!(buf.is_empty());
    }
}
