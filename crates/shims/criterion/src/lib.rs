//! Offline stand-in for the `criterion` crate.
//!
//! The build environment has no access to a crates.io registry, so the
//! workspace vendors minimal API-compatible shims for its external
//! dependencies. This one keeps the `crates/bench` micro-benchmarks
//! compiling and runnable: `b.iter(..)` times the closure over a fixed
//! sampling window and prints mean/min per benchmark. There is no outlier
//! analysis, HTML report, or baseline comparison — it is a smoke-test
//! harness, not a statistics engine.

use std::hint;
use std::time::{Duration, Instant};

/// Opaque value barrier; defers to `std::hint::black_box`.
pub fn black_box<T>(x: T) -> T {
    hint::black_box(x)
}

/// Benchmark driver configuration and entry point.
#[derive(Clone, Debug)]
pub struct Criterion {
    sample_size: usize,
    measurement_time: Duration,
    warm_up_time: Duration,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            sample_size: 10,
            measurement_time: Duration::from_millis(500),
            warm_up_time: Duration::from_millis(100),
        }
    }
}

impl Criterion {
    /// Number of timed samples per benchmark.
    #[must_use]
    pub fn sample_size(mut self, n: usize) -> Self {
        self.sample_size = n.max(1);
        self
    }

    /// Accepted for API compatibility; the shim has no bootstrap resampling.
    #[must_use]
    pub fn nresamples(self, _n: usize) -> Self {
        self
    }

    /// Target duration of the measurement phase.
    #[must_use]
    pub fn measurement_time(mut self, d: Duration) -> Self {
        self.measurement_time = d;
        self
    }

    /// Target duration of the warm-up phase.
    #[must_use]
    pub fn warm_up_time(mut self, d: Duration) -> Self {
        self.warm_up_time = d;
        self
    }

    /// Runs a single named benchmark.
    pub fn bench_function<F>(&mut self, name: &str, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_one(self, name, &mut f);
        self
    }

    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.to_string(),
        }
    }

    /// Called by `criterion_main!` after all groups ran.
    pub fn final_summary(&mut self) {}
}

/// Parameterized benchmark label (`group/parameter`).
#[derive(Clone, Debug)]
pub struct BenchmarkId {
    label: String,
}

impl BenchmarkId {
    /// Creates an id from a function name and a parameter.
    pub fn new(function: impl Into<String>, parameter: impl std::fmt::Display) -> Self {
        BenchmarkId {
            label: format!("{}/{parameter}", function.into()),
        }
    }

    /// Creates an id from the parameter alone.
    pub fn from_parameter(parameter: impl std::fmt::Display) -> Self {
        BenchmarkId {
            label: parameter.to_string(),
        }
    }
}

/// A group of benchmarks sharing a name prefix and sampling profile.
pub struct BenchmarkGroup<'c> {
    criterion: &'c mut Criterion,
    name: String,
}

impl BenchmarkGroup<'_> {
    /// Number of timed samples per benchmark in this group.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.criterion.sample_size = n.max(1);
        self
    }

    /// Target duration of the measurement phase for this group.
    pub fn measurement_time(&mut self, d: Duration) -> &mut Self {
        self.criterion.measurement_time = d;
        self
    }

    /// Runs a named benchmark inside the group.
    pub fn bench_function<F>(&mut self, id: impl IntoLabel, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let label = format!("{}/{}", self.name, id.into_label());
        run_one(self.criterion, &label, &mut f);
        self
    }

    /// Runs a named benchmark with an input parameter.
    pub fn bench_with_input<I, F>(&mut self, id: impl IntoLabel, input: &I, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let label = format!("{}/{}", self.name, id.into_label());
        run_one(self.criterion, &label, &mut |b: &mut Bencher| {
            b_input(b, input, &mut f)
        });
        self
    }

    /// Closes the group.
    pub fn finish(&mut self) {}
}

fn b_input<I, F>(b: &mut Bencher, input: &I, f: &mut F)
where
    F: FnMut(&mut Bencher, &I),
{
    f(b, input);
}

/// Anything usable as a benchmark label.
pub trait IntoLabel {
    /// The printable label.
    fn into_label(self) -> String;
}

impl IntoLabel for BenchmarkId {
    fn into_label(self) -> String {
        self.label
    }
}

impl IntoLabel for &str {
    fn into_label(self) -> String {
        self.to_string()
    }
}

impl IntoLabel for String {
    fn into_label(self) -> String {
        self
    }
}

/// Passed to the benchmark closure; [`Bencher::iter`] times the payload.
pub struct Bencher {
    /// Total time spent inside `iter` payloads.
    elapsed: Duration,
    /// Payload invocations performed.
    iterations: u64,
    /// How many invocations `iter` should run this sample.
    batch: u64,
}

impl Bencher {
    /// Times `batch` invocations of `routine`.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        let start = Instant::now();
        for _ in 0..self.batch {
            black_box(routine());
        }
        self.elapsed += start.elapsed();
        self.iterations += self.batch;
    }
}

fn run_one<F: FnMut(&mut Bencher)>(config: &Criterion, label: &str, f: &mut F) {
    // Warm-up: also calibrates how many iterations fit a sample window.
    let mut bencher = Bencher {
        elapsed: Duration::ZERO,
        iterations: 0,
        batch: 1,
    };
    let warm_deadline = Instant::now() + config.warm_up_time;
    while Instant::now() < warm_deadline {
        f(&mut bencher);
    }
    let per_iter = if bencher.iterations == 0 {
        Duration::from_micros(1)
    } else {
        bencher.elapsed / bencher.iterations.max(1) as u32
    };
    let sample_window = config.measurement_time / config.sample_size as u32;
    let batch = (sample_window.as_nanos() / per_iter.as_nanos().max(1)).clamp(1, 1 << 20) as u64;

    let mut samples: Vec<f64> = Vec::with_capacity(config.sample_size);
    for _ in 0..config.sample_size {
        let mut b = Bencher {
            elapsed: Duration::ZERO,
            iterations: 0,
            batch,
        };
        f(&mut b);
        if b.iterations > 0 {
            samples.push(b.elapsed.as_nanos() as f64 / b.iterations as f64);
        }
    }
    if samples.is_empty() {
        println!("{label:<48} (no samples)");
        return;
    }
    let mean = samples.iter().sum::<f64>() / samples.len() as f64;
    let min = samples.iter().cloned().fold(f64::INFINITY, f64::min);
    println!("{label:<48} mean {mean:>12.1} ns/iter   min {min:>12.1} ns/iter");
}

/// Declares a benchmark group, mirroring criterion's two macro forms.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion: $crate::Criterion = $config;
            $( $target(&mut criterion); )+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group!{
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        }
    };
}

/// Declares the benchmark binary entry point.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_runs_payload() {
        let mut c = Criterion::default()
            .sample_size(3)
            .warm_up_time(Duration::from_millis(5))
            .measurement_time(Duration::from_millis(15));
        let mut count = 0u64;
        c.bench_function("smoke", |b| b.iter(|| count += 1));
        assert!(count > 0);
    }

    #[test]
    fn groups_run_with_inputs() {
        let mut c = Criterion::default()
            .sample_size(2)
            .warm_up_time(Duration::from_millis(2))
            .measurement_time(Duration::from_millis(8));
        let mut hits = 0u64;
        {
            let mut group = c.benchmark_group("g");
            group.sample_size(2);
            group.bench_with_input(BenchmarkId::from_parameter(4u32), &4u32, |b, &n| {
                b.iter(|| hits += u64::from(n))
            });
            group.finish();
        }
        assert!(hits >= 4);
    }
}
