//! Fuzz-style adversarial tests for the wire codec: `from_bytes` must
//! never panic — not on random bytes, not on mutated valid encodings, not
//! on pathological nesting — and every decodable protocol message must
//! re-encode to the exact bytes it was decoded from (the codec is
//! canonical, so a byte-level round trip is the strongest equality).

use proptest::prelude::*;

use pfr::sync::{BatchEntry, Priority, PriorityClass, SyncBatch, SyncRequest};
use pfr::wire::{from_bytes, to_bytes, WireError, MAX_DECODE_DEPTH};
use pfr::{Filter, Item, ItemId, Knowledge, ReplicaId, RoutingState, Value, Version};

// ---------------------------------------------------------------------------
// Generators
// ---------------------------------------------------------------------------

fn arb_version() -> impl Strategy<Value = Version> {
    (1u64..8, 1u64..60).prop_map(|(r, c)| Version::new(ReplicaId::new(r), c))
}

fn arb_knowledge() -> impl Strategy<Value = Knowledge> {
    proptest::collection::vec(arb_version(), 0..40).prop_map(|versions| {
        let mut k = Knowledge::new();
        for v in versions {
            k.insert(v);
        }
        k
    })
}

fn arb_filter() -> impl Strategy<Value = Filter> {
    let leaf = prop_oneof![
        Just(Filter::All),
        Just(Filter::None),
        "[a-z]{1,8}".prop_map(Filter::Exists),
        ("[a-z]{1,6}", "[a-z]{0,8}").prop_map(|(attr, v)| Filter::Cmp {
            attr,
            op: pfr::CmpOp::Eq,
            value: Value::from(v),
        }),
    ];
    leaf.prop_recursive(3, 12, 3, |inner| {
        prop_oneof![
            inner.clone().prop_map(|f| Filter::Not(Box::new(f))),
            proptest::collection::vec(inner.clone(), 0..3).prop_map(Filter::And),
            proptest::collection::vec(inner, 0..3).prop_map(Filter::Or),
        ]
    })
}

fn arb_routing() -> impl Strategy<Value = RoutingState> {
    proptest::collection::vec(any::<u8>(), 0..48).prop_map(RoutingState::from_bytes)
}

fn arb_item() -> impl Strategy<Value = Item> {
    (
        1u64..8,
        1u64..50,
        proptest::collection::vec(any::<u8>(), 0..48),
        "[a-z]{1,8}",
        any::<bool>(),
    )
        .prop_map(|(origin, seq, payload, dest, deleted)| {
            Item::builder(
                ItemId::new(ReplicaId::new(origin), seq),
                Version::new(ReplicaId::new(origin), seq),
            )
            .attr("dest", dest)
            .payload(payload)
            .deleted(deleted)
            .build()
        })
}

fn arb_request() -> impl Strategy<Value = SyncRequest<'static>> {
    (1u64..8, arb_knowledge(), arb_filter(), arb_routing()).prop_map(
        |(target, knowledge, filter, routing)| SyncRequest {
            target: ReplicaId::new(target),
            knowledge: std::borrow::Cow::Owned(knowledge),
            filter: std::borrow::Cow::Owned(filter),
            routing,
        },
    )
}

fn arb_batch() -> impl Strategy<Value = SyncBatch> {
    let entry = (arb_item(), 0u8..5, any::<bool>()).prop_map(|(item, class, matched)| {
        let class = [
            PriorityClass::Lowest,
            PriorityClass::Low,
            PriorityClass::Normal,
            PriorityClass::High,
            PriorityClass::Highest,
        ][class as usize];
        BatchEntry {
            item,
            priority: Priority::new(class, f64::from(class as u8)),
            matched_filter: matched,
        }
    });
    (1u64..8, proptest::collection::vec(entry, 0..6), 0usize..10).prop_map(
        |(source, entries, withheld)| SyncBatch {
            source: ReplicaId::new(source),
            entries,
            withheld,
        },
    )
}

/// Exercises every protocol decode entry point on one byte string; the
/// only acceptable outcomes are `Ok` or a typed `WireError`.
fn decode_all(bytes: &[u8]) {
    let _ = from_bytes::<SyncRequest>(bytes);
    let _ = from_bytes::<SyncBatch>(bytes);
    let _ = from_bytes::<RoutingState>(bytes);
    let _ = from_bytes::<Item>(bytes);
    let _ = from_bytes::<Filter>(bytes);
    let _ = from_bytes::<Knowledge>(bytes);
    let _ = from_bytes::<Value>(bytes);
}

// ---------------------------------------------------------------------------
// Never-panic on adversarial input
// ---------------------------------------------------------------------------

proptest! {
    #![proptest_config(ProptestConfig::with_cases(512))]

    #[test]
    fn random_bytes_never_panic(bytes in proptest::collection::vec(any::<u8>(), 0..1024)) {
        decode_all(&bytes);
    }

    #[test]
    fn mutated_request_encodings_never_panic(
        request in arb_request(),
        flips in proptest::collection::vec((0usize..4096, 1u8..255), 1..8),
        cut in 0usize..4096,
    ) {
        let mut bytes = to_bytes(&request);
        for (pos, xor) in flips {
            if !bytes.is_empty() {
                let pos = pos % bytes.len();
                bytes[pos] ^= xor;
            }
        }
        decode_all(&bytes);
        bytes.truncate(cut % (bytes.len() + 1));
        decode_all(&bytes);
    }

    #[test]
    fn mutated_batch_encodings_never_panic(
        batch in arb_batch(),
        flips in proptest::collection::vec((0usize..8192, 1u8..255), 1..8),
        cut in 0usize..8192,
    ) {
        let mut bytes = to_bytes(&batch);
        for (pos, xor) in flips {
            if !bytes.is_empty() {
                let pos = pos % bytes.len();
                bytes[pos] ^= xor;
            }
        }
        decode_all(&bytes);
        bytes.truncate(cut % (bytes.len() + 1));
        decode_all(&bytes);
    }
}

// ---------------------------------------------------------------------------
// Canonical round trips: decode(encode(x)) re-encodes byte-identically
// ---------------------------------------------------------------------------

proptest! {
    #[test]
    fn sync_request_roundtrips_byte_identically(request in arb_request()) {
        let bytes = to_bytes(&request);
        let back: SyncRequest = from_bytes(&bytes).expect("valid encoding decodes");
        prop_assert_eq!(to_bytes(&back), bytes);
    }

    #[test]
    fn sync_batch_roundtrips_byte_identically(batch in arb_batch()) {
        let bytes = to_bytes(&batch);
        let back: SyncBatch = from_bytes(&bytes).expect("valid encoding decodes");
        prop_assert_eq!(to_bytes(&back), bytes);
    }

    #[test]
    fn routing_state_roundtrips_byte_identically(routing in arb_routing()) {
        let bytes = to_bytes(&routing);
        let back: RoutingState = from_bytes(&bytes).expect("valid encoding decodes");
        prop_assert_eq!(to_bytes(&back), bytes);
        prop_assert_eq!(back, routing);
    }
}

// ---------------------------------------------------------------------------
// Pathological nesting: typed error, not a stack overflow
// ---------------------------------------------------------------------------

#[test]
fn filter_nesting_bombs_are_rejected_with_a_typed_error() {
    // One FILT_NOT tag per byte: each level used to cost a stack frame.
    for len in [MAX_DECODE_DEPTH + 1, 4096, 1 << 20] {
        let bomb = vec![6u8; len];
        assert_eq!(from_bytes::<Filter>(&bomb), Err(WireError::DepthLimit));
    }
}

#[test]
fn request_with_nesting_bomb_filter_is_rejected() {
    // A syntactically plausible SyncRequest whose filter field is a bomb:
    // target=1, empty knowledge, then a run of Not tags.
    let mut bytes = vec![1u8, 0, 0];
    bytes.extend(std::iter::repeat_n(6u8, 1 << 16));
    assert!(matches!(
        from_bytes::<SyncRequest>(&bytes),
        Err(WireError::DepthLimit)
    ));
}
