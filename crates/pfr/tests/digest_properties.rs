//! Property-based tests for the digest-mode reconciliation layer: wire
//! round trips for every [`KnowledgeSummary`] kind, never-panic decoding
//! of adversarial digest frames, query/answer membership consistency,
//! and the tentpole equivalence — full-mode and digest-mode sync runs
//! converge to identical replica state on arbitrary item sets.
//!
//! Digest requests are generated through the real [`ReconState`] build
//! path (not hand-assembled), so the round-trip properties cover the
//! exact Bloom / IBLT / unchanged / full summaries production code emits.

use std::borrow::Cow;

use proptest::prelude::*;

use pfr::digest::{self, ReconState, VersionAnswer, VersionQuery};
use pfr::sync::{self, NoExtension, SyncRequest};
use pfr::wire::{from_bytes, to_bytes};
use pfr::{
    AttributeMap, DigestPolicy, DigestRequest, Filter, Knowledge, Replica, ReplicaId, RoutingState,
    SimTime, SyncLimits, Version,
};

// ---------------------------------------------------------------------------
// Generators
// ---------------------------------------------------------------------------

fn arb_version() -> impl Strategy<Value = Version> {
    (1u64..6, 1u64..40).prop_map(|(r, c)| Version::new(ReplicaId::new(r), c))
}

fn arb_knowledge() -> impl Strategy<Value = Knowledge> {
    proptest::collection::vec(arb_version(), 0..40).prop_map(|versions| {
        let mut k = Knowledge::new();
        for v in versions {
            k.insert(v);
        }
        k
    })
}

fn arb_policy() -> impl Strategy<Value = DigestPolicy> {
    prop_oneof![
        Just(DigestPolicy::Auto),
        Just(DigestPolicy::ForceBloom),
        Just(DigestPolicy::ForceIblt),
        Just(DigestPolicy::ForceFull),
    ]
}

fn arb_routing() -> impl Strategy<Value = RoutingState> {
    proptest::collection::vec(any::<u8>(), 0..32).prop_map(RoutingState::from_bytes)
}

fn request_over(knowledge: Knowledge, routing: RoutingState) -> SyncRequest<'static> {
    SyncRequest {
        target: ReplicaId::new(1),
        knowledge: Cow::Owned(knowledge),
        filter: Cow::Owned(Filter::address("dest", "a")),
        routing,
    }
}

/// Byte-identical round trip: the codec is canonical, so re-encoding the
/// decoded value must reproduce the input exactly.
fn assert_canonical(request: &DigestRequest) {
    let bytes = to_bytes(request);
    let back: DigestRequest = from_bytes(&bytes).expect("valid digest encoding decodes");
    assert_eq!(to_bytes(&back), bytes, "digest re-encode diverged");
}

/// Exercises every digest decode entry point; the only acceptable
/// outcomes are `Ok` or a typed `WireError`.
fn decode_all_digest(bytes: &[u8]) {
    let _ = from_bytes::<DigestRequest>(bytes);
    let _ = from_bytes::<VersionQuery>(bytes);
    let _ = from_bytes::<VersionAnswer>(bytes);
}

// ---------------------------------------------------------------------------
// Wire round trips through the real summary construction path
// ---------------------------------------------------------------------------

proptest! {
    /// Two consecutive build_request rounds against one peer: the first
    /// covers first-contact summaries (bloom / full), and after a
    /// committed exchange the second covers the cached paths (unchanged /
    /// IBLT delta). Every emitted request must round-trip byte-identically.
    #[test]
    fn digest_requests_roundtrip_byte_identically(
        policy in arb_policy(),
        base in arb_knowledge(),
        extra in proptest::collection::vec(arb_version(), 0..12),
        routing in arb_routing(),
    ) {
        let mut state = ReconState::with_policy(policy);
        let peer = ReplicaId::new(9);

        let first = request_over(base.clone(), routing.clone());
        let (digest, pending) = state.build_request(peer, &first);
        assert_canonical(&digest);
        state.commit_sent(pending, true);

        let mut grown = base;
        for v in extra {
            grown.insert(v);
        }
        let second = request_over(grown, routing);
        let (digest, _) = state.build_request(peer, &second);
        assert_canonical(&digest);
    }

    #[test]
    fn version_queries_and_answers_roundtrip(
        versions in proptest::collection::vec(arb_version(), 0..60),
        knowledge in arb_knowledge(),
    ) {
        let query = VersionQuery { versions };
        let bytes = to_bytes(&query);
        let back: VersionQuery = from_bytes(&bytes).expect("valid query decodes");
        prop_assert_eq!(&back, &query);
        prop_assert_eq!(to_bytes(&back), bytes);

        let answer = digest::answer_query(&knowledge, &query);
        let bytes = to_bytes(&answer);
        let back: VersionAnswer = from_bytes(&bytes).expect("valid answer decodes");
        prop_assert_eq!(&back, &answer);
        prop_assert_eq!(to_bytes(&back), bytes);
    }

    /// The exact membership round is sound: the answer's bits agree with
    /// the knowledge, and the reconstructed knowledge counts exactly the
    /// unknown versions as false positives.
    #[test]
    fn query_answers_agree_with_knowledge(
        versions in proptest::collection::vec(arb_version(), 0..60),
        knowledge in arb_knowledge(),
    ) {
        let query = VersionQuery { versions };
        let answer = digest::answer_query(&knowledge, &query);
        let mut misses = 0u64;
        for (i, &v) in query.versions.iter().enumerate() {
            prop_assert_eq!(answer.known(i), knowledge.contains(v));
            if !knowledge.contains(v) {
                misses += 1;
            }
        }
        let (known, fps) =
            digest::knowledge_from_answer(&query, &answer).expect("answer sized to query");
        prop_assert_eq!(fps, misses);
        for (i, &v) in query.versions.iter().enumerate() {
            prop_assert_eq!(known.contains(v), answer.known(i));
        }
    }
}

// ---------------------------------------------------------------------------
// Never-panic on adversarial digest frames
// ---------------------------------------------------------------------------

proptest! {
    #![proptest_config(ProptestConfig::with_cases(512))]

    #[test]
    fn random_bytes_never_panic_digest_decoders(
        bytes in proptest::collection::vec(any::<u8>(), 0..1024)
    ) {
        decode_all_digest(&bytes);
    }

    #[test]
    fn mutated_digest_encodings_never_panic(
        policy in arb_policy(),
        knowledge in arb_knowledge(),
        routing in arb_routing(),
        flips in proptest::collection::vec((0usize..4096, 1u8..255), 1..8),
        cut in 0usize..4096,
    ) {
        let mut state = ReconState::with_policy(policy);
        let request = request_over(knowledge, routing);
        let (digest, _) = state.build_request(ReplicaId::new(9), &request);
        let mut bytes = to_bytes(&digest);
        for (pos, xor) in flips {
            if !bytes.is_empty() {
                let pos = pos % bytes.len();
                bytes[pos] ^= xor;
            }
        }
        decode_all_digest(&bytes);
        bytes.truncate(cut % (bytes.len() + 1));
        decode_all_digest(&bytes);
    }
}

// ---------------------------------------------------------------------------
// The tentpole equivalence: digest mode replicates exactly what full
// mode replicates
// ---------------------------------------------------------------------------

fn attrs(dest: &str) -> AttributeMap {
    let mut a = AttributeMap::new();
    a.set("dest", dest);
    a
}

fn host(n: u64, addr: &str) -> Replica {
    Replica::new(ReplicaId::new(n), Filter::address("dest", addr))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Arbitrary item sets on both replicas, two rounds of bidirectional
    /// sync (growth between rounds exercises the cached delta paths),
    /// under every digest policy: per-round reports and final knowledge
    /// must match a full-mode run of the same schedule exactly.
    #[test]
    fn full_and_digest_runs_converge_identically(
        policy in arb_policy(),
        seed_a in proptest::collection::vec(("[abx]", 0u8..255), 0..16),
        seed_b in proptest::collection::vec(("[abx]", 0u8..255), 0..16),
        growth in proptest::collection::vec(("[abx]", 0u8..255), 0..8),
    ) {
        let build_pair = || {
            let mut a = host(1, "a");
            let mut b = host(2, "b");
            for (dest, byte) in &seed_a {
                a.insert(attrs(dest), vec![*byte]).unwrap();
            }
            for (dest, byte) in &seed_b {
                b.insert(attrs(dest), vec![*byte]).unwrap();
            }
            (a, b)
        };

        let (mut fa, mut fb) = build_pair();
        let (mut da, mut db) = build_pair();
        let (mut ra, mut rb) = (
            ReconState::with_policy(policy),
            ReconState::with_policy(policy),
        );
        let digest_sync = |src: &mut Replica,
                               src_recon: &mut ReconState,
                               tgt: &mut Replica,
                               tgt_recon: &mut ReconState,
                               at: u64| {
            digest::sync_with_digest(
                src,
                &mut NoExtension,
                src_recon,
                tgt,
                &mut NoExtension,
                tgt_recon,
                SyncLimits::unlimited(),
                SimTime::from_secs(at),
            )
        };

        for round in 0..2u64 {
            if round == 1 {
                for (dest, byte) in &growth {
                    fa.insert(attrs(dest), vec![*byte, 1]).unwrap();
                    da.insert(attrs(dest), vec![*byte, 1]).unwrap();
                }
            }
            let at = round * 100;
            let full = sync::sync_once(&mut fa, &mut fb, SimTime::from_secs(at));
            let dig = digest_sync(&mut da, &mut ra, &mut db, &mut rb, at);
            prop_assert_eq!(full.delivered, dig.delivered, "a->b delivered, round {}", round);
            prop_assert_eq!(full.transmitted, dig.transmitted, "a->b transmitted, round {}", round);
            let full = sync::sync_once(&mut fb, &mut fa, SimTime::from_secs(at + 1));
            let dig = digest_sync(&mut db, &mut rb, &mut da, &mut ra, at + 1);
            prop_assert_eq!(full.delivered, dig.delivered, "b->a delivered, round {}", round);
            prop_assert_eq!(full.transmitted, dig.transmitted, "b->a transmitted, round {}", round);
        }

        prop_assert_eq!(fa.knowledge(), da.knowledge());
        prop_assert_eq!(fb.knowledge(), db.knowledge());
    }
}
