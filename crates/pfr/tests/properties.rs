//! Property-based tests for the replication substrate's core invariants:
//! knowledge algebra, at-most-once delivery, eventual filter consistency,
//! and wire-codec round trips.

use proptest::prelude::*;

use pfr::wire::{from_bytes, to_bytes};
use pfr::{sync, AttributeMap, Filter, Knowledge, Replica, ReplicaId, SimTime, Value, Version};

// ---------------------------------------------------------------------------
// Generators
// ---------------------------------------------------------------------------

fn arb_version() -> impl Strategy<Value = Version> {
    (1u64..6, 1u64..40).prop_map(|(r, c)| Version::new(ReplicaId::new(r), c))
}

fn arb_knowledge() -> impl Strategy<Value = Knowledge> {
    proptest::collection::vec(arb_version(), 0..60).prop_map(|versions| {
        let mut k = Knowledge::new();
        for v in versions {
            k.insert(v);
        }
        k
    })
}

fn arb_value() -> impl Strategy<Value = Value> {
    let leaf = prop_oneof![
        "[a-z]{0,8}".prop_map(Value::from),
        any::<i64>().prop_map(Value::from),
        // Finite floats only: NaN is rejected by AttributeMap by design.
        any::<i32>().prop_map(|i| Value::from(f64::from(i) / 8.0)),
        any::<bool>().prop_map(Value::from),
        proptest::collection::vec(any::<u8>(), 0..16).prop_map(Value::from),
    ];
    leaf.prop_recursive(2, 8, 4, |inner| {
        proptest::collection::vec(inner, 0..4).prop_map(Value::List)
    })
}

// ---------------------------------------------------------------------------
// Knowledge is a join-semilattice
// ---------------------------------------------------------------------------

proptest! {
    #[test]
    fn knowledge_contains_every_inserted_version(
        versions in proptest::collection::vec(arb_version(), 0..80)
    ) {
        let mut k = Knowledge::new();
        for &v in &versions {
            k.insert(v);
        }
        for &v in &versions {
            prop_assert!(k.contains(v));
        }
    }

    #[test]
    fn knowledge_merge_is_commutative(a in arb_knowledge(), b in arb_knowledge()) {
        let mut ab = a.clone();
        ab.merge(&b);
        let mut ba = b.clone();
        ba.merge(&a);
        prop_assert!(ab.dominates(&ba) && ba.dominates(&ab));
    }

    #[test]
    fn knowledge_merge_is_associative(
        a in arb_knowledge(), b in arb_knowledge(), c in arb_knowledge()
    ) {
        let mut left = a.clone();
        left.merge(&b);
        left.merge(&c);
        let mut bc = b.clone();
        bc.merge(&c);
        let mut right = a.clone();
        right.merge(&bc);
        prop_assert!(left.dominates(&right) && right.dominates(&left));
    }

    #[test]
    fn knowledge_merge_is_idempotent(a in arb_knowledge()) {
        let mut aa = a.clone();
        aa.merge(&a);
        prop_assert_eq!(aa, a);
    }

    #[test]
    fn knowledge_merge_dominates_both_inputs(a in arb_knowledge(), b in arb_knowledge()) {
        let mut m = a.clone();
        m.merge(&b);
        prop_assert!(m.dominates(&a));
        prop_assert!(m.dominates(&b));
    }

    #[test]
    fn knowledge_compaction_never_loses_versions(
        mut counters in proptest::collection::vec(1u64..50, 1..50)
    ) {
        // Insert a permutation of 1..=n with duplicates; the set semantics
        // must be exact regardless of compaction.
        let r = ReplicaId::new(1);
        let mut k = Knowledge::new();
        for &c in &counters {
            k.insert(Version::new(r, c));
        }
        counters.sort_unstable();
        counters.dedup();
        for c in 1..=50u64 {
            prop_assert_eq!(
                k.contains(Version::new(r, c)),
                counters.binary_search(&c).is_ok(),
                "counter {}", c
            );
        }
    }
}

// ---------------------------------------------------------------------------
// Wire codec round trips
// ---------------------------------------------------------------------------

proptest! {
    #[test]
    fn value_codec_roundtrip(v in arb_value()) {
        let bytes = to_bytes(&v);
        let back: Value = from_bytes(&bytes).expect("decode");
        prop_assert_eq!(back, v);
    }

    #[test]
    fn knowledge_codec_roundtrip(k in arb_knowledge()) {
        let bytes = to_bytes(&k);
        let back: Knowledge = from_bytes(&bytes).expect("decode");
        prop_assert_eq!(back, k);
    }

    #[test]
    fn item_codec_roundtrip(
        origin in 1u64..9,
        seq in 1u64..100,
        vcounter in 1u64..100,
        ancestors in proptest::collection::vec(arb_version(), 0..5),
        attrs in proptest::collection::vec(("[a-z]{1,6}", arb_value()), 0..5),
        transient in proptest::collection::vec(("[a-z]{1,6}", -100i64..100), 0..3),
        payload in proptest::collection::vec(any::<u8>(), 0..64),
        deleted in any::<bool>(),
    ) {
        let mut builder = pfr::Item::builder(
            pfr::ItemId::new(ReplicaId::new(origin), seq),
            Version::new(ReplicaId::new(origin), vcounter),
        )
        .payload(payload)
        .deleted(deleted);
        for (name, value) in attrs {
            if !matches!(&value, Value::Float(f) if f.is_nan()) {
                builder = builder.attr(name, value);
            }
        }
        for (name, value) in transient {
            builder = builder.transient_attr(name, value);
        }
        let item = ancestors
            .into_iter()
            .fold(builder.build(), |item, v| item.with_ancestor(v));
        let bytes = to_bytes(&item);
        let back: pfr::Item = from_bytes(&bytes).expect("decode");
        prop_assert_eq!(back, item);
    }

    #[test]
    fn sync_request_codec_roundtrip(
        target in 1u64..9,
        k in arb_knowledge(),
        routing in proptest::collection::vec(any::<u8>(), 0..32),
    ) {
        let request = pfr::sync::SyncRequest {
            target: ReplicaId::new(target),
            knowledge: std::borrow::Cow::Owned(k),
            filter: std::borrow::Cow::Owned(Filter::address("dest", "x")),
            routing: pfr::RoutingState::from_bytes(routing),
        };
        let bytes = to_bytes(&request);
        let back: pfr::sync::SyncRequest = from_bytes(&bytes).expect("decode");
        prop_assert_eq!(back.target, request.target);
        prop_assert_eq!(back.filter, request.filter);
        prop_assert_eq!(back.routing, request.routing);
        prop_assert!(back.knowledge.dominates(&request.knowledge));
        prop_assert!(request.knowledge.dominates(&back.knowledge));
    }

    #[test]
    fn codec_never_panics_on_corrupt_input(bytes in proptest::collection::vec(any::<u8>(), 0..200)) {
        // Decoding arbitrary bytes must fail cleanly, never panic or OOM.
        let _ = from_bytes::<Knowledge>(&bytes);
        let _ = from_bytes::<Value>(&bytes);
        let _ = from_bytes::<pfr::sync::SyncRequest>(&bytes);
        let _ = from_bytes::<pfr::sync::SyncBatch>(&bytes);
    }
}

// ---------------------------------------------------------------------------
// Filter parser round trips
// ---------------------------------------------------------------------------

fn arb_scalar_value() -> impl Strategy<Value = Value> {
    prop_oneof![
        "[a-z]{0,6}".prop_map(Value::from),
        (-1000i64..1000).prop_map(Value::from),
        any::<bool>().prop_map(Value::from),
    ]
}

fn arb_filter() -> impl Strategy<Value = Filter> {
    let leaf = prop_oneof![
        Just(Filter::All),
        Just(Filter::None),
        ("[a-z]{1,6}", arb_scalar_value()).prop_map(|(attr, value)| Filter::Cmp {
            attr,
            op: pfr::CmpOp::Eq,
            value,
        }),
        ("[a-z]{1,6}", (-100i64..100)).prop_map(|(attr, n)| Filter::Cmp {
            attr,
            op: pfr::CmpOp::Ge,
            value: Value::from(n),
        }),
        (
            "[a-z]{1,6}",
            proptest::collection::vec(arb_scalar_value(), 0..4)
        )
            .prop_map(|(attr, values)| Filter::In { attr, values }),
        ("[a-z]{1,6}", arb_scalar_value())
            .prop_map(|(attr, value)| Filter::Contains { attr, value }),
        "[a-z]{1,6}".prop_map(Filter::Exists),
    ];
    leaf.prop_recursive(3, 24, 3, |inner| {
        // And/Or need >= 2 arms: the text form of a single-arm connective
        // is indistinguishable from its arm, so it parses back collapsed.
        prop_oneof![
            inner.clone().prop_map(|f| Filter::Not(Box::new(f))),
            proptest::collection::vec(inner.clone(), 2..4).prop_map(Filter::And),
            proptest::collection::vec(inner, 2..4).prop_map(Filter::Or),
        ]
    })
}

proptest! {
    #[test]
    fn filter_display_parse_roundtrip(f in arb_filter()) {
        let text = f.to_string();
        let parsed = Filter::parse(&text)
            .unwrap_or_else(|e| panic!("parse of {text:?} failed: {e}"));
        prop_assert_eq!(parsed, f);
    }

    #[test]
    fn filter_codec_roundtrip(f in arb_filter()) {
        let bytes = to_bytes(&f);
        let back: Filter = from_bytes(&bytes).expect("decode");
        prop_assert_eq!(back, f);
    }
}

// ---------------------------------------------------------------------------
// Replication invariants over random sync schedules
// ---------------------------------------------------------------------------

/// A randomized scenario: n replicas, a set of messages (sender, dest), and
/// a random schedule of pairwise syncs.
#[derive(Debug, Clone)]
struct Scenario {
    hosts: usize,
    messages: Vec<(usize, usize)>,
    syncs: Vec<(usize, usize)>,
}

fn arb_scenario() -> impl Strategy<Value = Scenario> {
    (2usize..6).prop_flat_map(|hosts| {
        let msg = (0..hosts, 0..hosts);
        let sync = (0..hosts, 0..hosts);
        (
            Just(hosts),
            proptest::collection::vec(msg, 1..12),
            proptest::collection::vec(sync, 0..60),
        )
            .prop_map(|(hosts, messages, syncs)| Scenario {
                hosts,
                messages,
                syncs,
            })
    })
}

fn addr(i: usize) -> String {
    format!("h{i}")
}

fn build_hosts(n: usize) -> Vec<Replica> {
    (0..n)
        .map(|i| {
            Replica::new(
                ReplicaId::new(i as u64 + 1),
                Filter::address("dest", addr(i).as_str()),
            )
        })
        .collect()
}

proptest! {
    /// At-most-once delivery: whatever the sync schedule, no replica ever
    /// observes a duplicate version.
    #[test]
    fn random_sync_schedules_never_duplicate(scenario in arb_scenario()) {
        let mut hosts = build_hosts(scenario.hosts);
        for &(from, to) in &scenario.messages {
            let mut attrs = AttributeMap::new();
            attrs.set("dest", addr(to).as_str());
            attrs.set("from", addr(from).as_str());
            hosts[from].insert(attrs, vec![]).expect("insert");
        }
        for (step, &(a, b)) in scenario.syncs.iter().enumerate() {
            if a == b {
                continue;
            }
            let (src, tgt) = split_two(&mut hosts, a, b);
            let report = sync::sync_once(src, tgt, SimTime::from_secs(step as u64));
            prop_assert_eq!(report.duplicates, 0, "sync step {}", step);
        }
        for host in &hosts {
            prop_assert_eq!(host.stats().duplicates_rejected, 0);
        }
    }

    /// Eventual filter consistency: after enough rounds of all-pairs syncs,
    /// every message reaches its destination (direct encounters suffice
    /// because every pair syncs).
    #[test]
    fn all_pairs_syncing_reaches_filter_consistency(
        hosts_n in 2usize..5,
        messages in proptest::collection::vec((0usize..5, 0usize..5), 1..10)
    ) {
        let mut hosts = build_hosts(hosts_n);
        let messages: Vec<(usize, usize)> = messages
            .into_iter()
            .map(|(f, t)| (f % hosts_n, t % hosts_n))
            .collect();
        for &(from, to) in &messages {
            let mut attrs = AttributeMap::new();
            attrs.set("dest", addr(to).as_str());
            hosts[from].insert(attrs, vec![]).expect("insert");
        }
        // Two full rounds of all ordered pairs guarantee propagation along
        // any single-hop path (senders hold their own messages).
        let mut t = 0u64;
        for _round in 0..2 {
            for a in 0..hosts_n {
                for b in 0..hosts_n {
                    if a == b {
                        continue;
                    }
                    let (src, tgt) = split_two(&mut hosts, a, b);
                    sync::sync_once(src, tgt, SimTime::from_secs(t));
                    t += 1;
                }
            }
        }
        for &(from, to) in &messages {
            let delivered = hosts[to]
                .iter_items()
                .filter(|i| i.attrs().get_str("dest") == Some(&addr(to)))
                .count();
            let expected = messages
                .iter()
                .filter(|&&(_, t2)| t2 == to)
                .count();
            prop_assert_eq!(
                delivered, expected,
                "destination {} (sender {}) is missing messages", to, from
            );
        }
    }

    /// Knowledge monotonicity: a replica's knowledge only ever grows across
    /// a sync schedule.
    #[test]
    fn knowledge_grows_monotonically(scenario in arb_scenario()) {
        let mut hosts = build_hosts(scenario.hosts);
        for &(from, to) in &scenario.messages {
            let mut attrs = AttributeMap::new();
            attrs.set("dest", addr(to).as_str());
            hosts[from].insert(attrs, vec![]).expect("insert");
        }
        let mut snapshots: Vec<Knowledge> =
            hosts.iter().map(|h| h.knowledge().clone()).collect();
        for (step, &(a, b)) in scenario.syncs.iter().enumerate() {
            if a == b {
                continue;
            }
            let (src, tgt) = split_two(&mut hosts, a, b);
            sync::sync_once(src, tgt, SimTime::from_secs(step as u64));
            for (i, host) in hosts.iter().enumerate() {
                prop_assert!(
                    host.knowledge().dominates(&snapshots[i]),
                    "host {} knowledge regressed at step {}", i, step
                );
                snapshots[i] = host.knowledge().clone();
            }
        }
    }
}

// ---------------------------------------------------------------------------
// Filter implication soundness
// ---------------------------------------------------------------------------

/// Attribute maps over a tiny universe, so random filters over the same
/// attribute names frequently interact with them.
fn arb_small_attrs() -> impl Strategy<Value = pfr::AttributeMap> {
    proptest::collection::vec(
        (
            prop_oneof![Just("a"), Just("b"), Just("c")],
            prop_oneof![
                (-3i64..4).prop_map(Value::from),
                prop_oneof![Just("x"), Just("y")].prop_map(Value::from),
            ],
        ),
        0..4,
    )
    .prop_map(|pairs| pairs.into_iter().collect())
}

fn arb_small_filter() -> impl Strategy<Value = Filter> {
    let attr = prop_oneof![Just("a".to_string()), Just("b".to_string())];
    let value = prop_oneof![
        (-3i64..4).prop_map(Value::from),
        prop_oneof![Just("x"), Just("y")].prop_map(Value::from),
    ];
    let op = prop_oneof![
        Just(pfr::CmpOp::Eq),
        Just(pfr::CmpOp::Ne),
        Just(pfr::CmpOp::Lt),
        Just(pfr::CmpOp::Le),
        Just(pfr::CmpOp::Gt),
        Just(pfr::CmpOp::Ge),
    ];
    let leaf = prop_oneof![
        Just(Filter::All),
        Just(Filter::None),
        (attr.clone(), op, value.clone()).prop_map(|(attr, op, value)| Filter::Cmp {
            attr,
            op,
            value
        }),
        (attr.clone(), proptest::collection::vec(value.clone(), 0..3))
            .prop_map(|(attr, values)| Filter::In { attr, values }),
        (attr.clone(), value).prop_map(|(attr, value)| Filter::Contains { attr, value }),
        attr.prop_map(Filter::Exists),
    ];
    leaf.prop_recursive(2, 12, 3, |inner| {
        prop_oneof![
            inner.clone().prop_map(|f| Filter::Not(Box::new(f))),
            proptest::collection::vec(inner.clone(), 1..3).prop_map(Filter::And),
            proptest::collection::vec(inner, 1..3).prop_map(Filter::Or),
        ]
    })
}

proptest! {
    /// Soundness: whenever `implies` says yes, matching really is a
    /// subset relation — checked against random attribute maps.
    #[test]
    fn implies_is_sound(
        f in arb_small_filter(),
        g in arb_small_filter(),
        attrs in proptest::collection::vec(arb_small_attrs(), 1..20),
    ) {
        if f.implies(&g) {
            for a in &attrs {
                prop_assert!(
                    !f.matches_attrs(a) || g.matches_attrs(a),
                    "{f} implies {g} claimed, but attrs {a:?} separate them"
                );
            }
        }
    }
}

// ---------------------------------------------------------------------------
// Snapshot round trips and corruption resistance
// ---------------------------------------------------------------------------

/// Builds a replica with an arbitrary mix of local writes, received items,
/// transient metadata, updates, and deletions.
fn arb_populated_replica() -> impl Strategy<Value = Replica> {
    let op = prop_oneof![
        // (kind, dest index, payload byte)
        (0u8..5, 0usize..4, any::<u8>()),
    ];
    proptest::collection::vec(op, 0..30).prop_map(|ops| {
        let mut peer = Replica::new(ReplicaId::new(9), Filter::All);
        let mut r = Replica::new(ReplicaId::new(1), Filter::address("dest", "h0"));
        r.set_relay_limit(Some(8));
        let mut my_items = Vec::new();
        for (kind, dest, payload) in ops {
            match kind {
                0 => {
                    let mut attrs = AttributeMap::new();
                    attrs.set("dest", addr(dest).as_str());
                    let id = r.insert(attrs, vec![payload]).expect("insert");
                    my_items.push(id);
                }
                1 => {
                    let mut attrs = AttributeMap::new();
                    attrs.set("dest", addr(dest).as_str());
                    let id = peer.insert(attrs, vec![payload]).expect("insert");
                    let item = peer.item(id).expect("present").clone();
                    r.apply_remote(item, SimTime::from_secs(u64::from(payload)));
                }
                2 => {
                    if let Some(&id) = my_items.get(dest % my_items.len().max(1)) {
                        let _ = r.set_transient(id, "ttl", i64::from(payload));
                    }
                }
                3 => {
                    if let Some(&id) = my_items.get(dest % my_items.len().max(1)) {
                        let mut attrs = AttributeMap::new();
                        attrs.set("dest", addr(dest).as_str());
                        let _ = r.update(id, attrs, vec![payload, payload]);
                    }
                }
                _ => {
                    if let Some(&id) = my_items.get(dest % my_items.len().max(1)) {
                        let _ = r.delete(id);
                    }
                }
            }
        }
        r
    })
}

proptest! {
    #[test]
    fn snapshot_roundtrip_for_arbitrary_replicas(replica in arb_populated_replica()) {
        let restored = Replica::restore(&replica.snapshot()).expect("restore");
        prop_assert_eq!(restored.id(), replica.id());
        prop_assert_eq!(restored.knowledge(), replica.knowledge());
        prop_assert_eq!(restored.item_ids(), replica.item_ids());
        for id in replica.item_ids() {
            prop_assert_eq!(restored.item(id), replica.item(id));
            prop_assert_eq!(restored.store_kind(id), replica.store_kind(id));
        }
        // And the restored snapshot is byte-identical (canonical form).
        prop_assert_eq!(restored.snapshot(), replica.snapshot());
    }

    #[test]
    fn corrupted_snapshots_never_panic(
        replica in arb_populated_replica(),
        cut in 0usize..1000,
        flip in 0usize..1000,
        value in any::<u8>(),
    ) {
        let mut bytes = replica.snapshot();
        if !bytes.is_empty() {
            let flip = flip % bytes.len();
            bytes[flip] ^= value;
            let cut = cut % (bytes.len() + 1);
            bytes.truncate(cut);
        }
        // Must either fail cleanly or produce some replica; never panic.
        let _ = Replica::restore(&bytes);
    }
}

// ---------------------------------------------------------------------------
// Indexed candidate selection ≡ full-store scan
// ---------------------------------------------------------------------------

proptest! {
    /// The per-origin version index must select exactly the candidates
    /// the legacy full-store scan does, in the same order, for any store
    /// contents and any requester knowledge.
    #[test]
    fn indexed_candidate_selection_matches_scan(
        replica in arb_populated_replica(),
        k in arb_knowledge(),
    ) {
        let mut replica = replica;
        replica.set_candidate_scan(true);
        let scan = replica.versions_unknown_to(&k);
        replica.set_candidate_scan(false);
        let indexed = replica.versions_unknown_to(&k);
        prop_assert_eq!(indexed, scan);
    }

    /// Whole syncs are mode-invariant: running the same sync schedule with
    /// the index + filter-match memo produces byte-identical replica
    /// snapshots to running it with the full scan. Two targets share a
    /// filter so the second sync exercises the memo's hit path.
    #[test]
    fn sync_outcomes_identical_scan_vs_indexed(source in arb_populated_replica()) {
        let run = |scan: bool| {
            let mut src = Replica::restore(&source.snapshot()).expect("restore");
            src.set_candidate_scan(scan);
            let mut t1 = Replica::new(ReplicaId::new(21), Filter::address("dest", "h1"));
            let mut t2 = Replica::new(ReplicaId::new(22), Filter::address("dest", "h1"));
            t1.set_candidate_scan(scan);
            t2.set_candidate_scan(scan);
            sync::sync_once(&mut src, &mut t1, SimTime::from_secs(1));
            sync::sync_once(&mut src, &mut t2, SimTime::from_secs(2));
            sync::sync_once(&mut src, &mut t2, SimTime::from_secs(3));
            (src.snapshot(), t1.snapshot(), t2.snapshot())
        };
        prop_assert_eq!(run(true), run(false));
    }
}

// ---------------------------------------------------------------------------
// Copy-on-write data plane: shared and owned copies are indistinguishable
// ---------------------------------------------------------------------------

proptest! {
    /// A shared copy (interned strings, shared payload buffer) and its
    /// detached twin (private allocations, as the pre-copy-on-write data
    /// plane produced) encode to byte-identical wire form, and decoding
    /// yields an item equal to both.
    #[test]
    fn shared_and_owned_copies_encode_identically(replica in arb_populated_replica()) {
        for id in replica.item_ids() {
            let shared = replica.item(id).expect("present").clone();
            let mut owned = shared.clone();
            owned.detach_copy();
            let shared_bytes = to_bytes(&shared);
            let owned_bytes = to_bytes(&owned);
            prop_assert_eq!(&shared_bytes, &owned_bytes);
            let decoded: pfr::Item = from_bytes(&shared_bytes).expect("decode");
            prop_assert_eq!(&decoded, &shared);
            prop_assert_eq!(&decoded, &owned);
        }
    }

    /// Whole syncs are data-plane-invariant: transmitting detached copies
    /// (`set_owned_copies`) leaves every endpoint in a byte-identical
    /// snapshot state to transmitting shared copies. The mirror of the
    /// scan-vs-indexed run equality above, for the memory A/B knob.
    #[test]
    fn sync_outcomes_identical_shared_vs_owned(source in arb_populated_replica()) {
        let run = |owned: bool| {
            let mut src = Replica::restore(&source.snapshot()).expect("restore");
            src.set_owned_copies(owned);
            let mut t1 = Replica::new(ReplicaId::new(31), Filter::address("dest", "h1"));
            let mut t2 = Replica::new(ReplicaId::new(32), Filter::All);
            t1.set_owned_copies(owned);
            t2.set_owned_copies(owned);
            sync::sync_once(&mut src, &mut t1, SimTime::from_secs(1));
            sync::sync_once(&mut src, &mut t2, SimTime::from_secs(2));
            sync::sync_once(&mut t1, &mut t2, SimTime::from_secs(3));
            (src.snapshot(), t1.snapshot(), t2.snapshot())
        };
        prop_assert_eq!(run(false), run(true));
    }

    /// Interning is invisible to filter evaluation: any filter gives the
    /// same verdict on a shared (interned) item and on its detached
    /// (un-interned) twin.
    #[test]
    fn interning_never_changes_filter_verdicts(
        replica in arb_populated_replica(),
        filters in proptest::collection::vec(arb_small_filter(), 1..8),
    ) {
        for id in replica.item_ids() {
            let shared = replica.item(id).expect("present").clone();
            let mut owned = shared.clone();
            owned.detach_copy();
            for f in &filters {
                prop_assert_eq!(
                    f.matches(&shared),
                    f.matches(&owned),
                    "filter {} separates shared and detached copies of {:?}",
                    f,
                    id
                );
            }
        }
    }
}

/// Borrow two distinct elements mutably.
fn split_two(hosts: &mut [Replica], a: usize, b: usize) -> (&mut Replica, &mut Replica) {
    assert_ne!(a, b);
    if a < b {
        let (left, right) = hosts.split_at_mut(b);
        (&mut left[a], &mut right[0])
    } else {
        let (left, right) = hosts.split_at_mut(a);
        (&mut right[0], &mut left[b])
    }
}
