//! Compact binary wire encoding for replication messages.
//!
//! Synchronization in a DTN happens over scarce, short-lived links, so the
//! wire format matters. This module provides a small, hand-rolled
//! tag-free binary codec — LEB128 varints, zig-zag signed integers,
//! length-prefixed strings — plus [`Encode`]/[`Decode`] implementations
//! for every protocol type: values, attribute maps, knowledge, filters,
//! items, and the sync request/batch messages.
//!
//! The codec is deliberately independent of `serde` so that the encoded
//! size of each structure is explicit and testable (the paper's "compact
//! metadata overhead" claim is about exactly these bytes). Round-trip
//! correctness is property-tested.

use std::fmt;
use std::sync::Arc;

use bytes::{BufMut, BytesMut};

use crate::digest::{DigestRequest, KnowledgeSummary, VersionAnswer, VersionQuery};
use crate::filter::{CmpOp, Filter};
use crate::id::{ItemId, ReplicaId, Version};
use crate::intern::IStr;
use crate::item::Item;
use crate::knowledge::Knowledge;
use crate::payload::Payload;
use crate::sync::{BatchEntry, Priority, PriorityClass, RoutingState, SyncBatch, SyncRequest};
use crate::value::Value;
use crate::AttributeMap;

/// Errors from decoding a wire message.
#[derive(Clone, Debug, PartialEq, Eq)]
#[non_exhaustive]
pub enum WireError {
    /// Input ended before the value was complete.
    UnexpectedEof,
    /// A varint used more than 10 bytes.
    VarintOverflow,
    /// An enum tag byte was out of range.
    InvalidTag {
        /// Which type was being decoded.
        what: &'static str,
        /// The offending tag.
        tag: u8,
    },
    /// A string field held invalid UTF-8.
    BadUtf8,
    /// Input had bytes left over after the top-level value.
    TrailingBytes(usize),
    /// A collection length prefix exceeded the remaining input (corrupt or
    /// hostile input; bounds-checked before allocation).
    LengthOverflow(u64),
    /// Recursive structures (filters, list values) nested deeper than
    /// [`MAX_DECODE_DEPTH`] — hostile input trying to overflow the stack.
    DepthLimit,
    /// A reconciliation sketch (Bloom/IBLT) embedded in a digest message
    /// failed its own decoder's validation.
    BadSketch,
}

impl fmt::Display for WireError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            WireError::UnexpectedEof => write!(f, "unexpected end of input"),
            WireError::VarintOverflow => write!(f, "varint longer than 10 bytes"),
            WireError::InvalidTag { what, tag } => {
                write!(f, "invalid tag {tag} while decoding {what}")
            }
            WireError::BadUtf8 => write!(f, "string field is not valid UTF-8"),
            WireError::TrailingBytes(n) => write!(f, "{n} trailing bytes after value"),
            WireError::LengthOverflow(n) => {
                write!(f, "length prefix {n} exceeds remaining input")
            }
            WireError::DepthLimit => {
                write!(f, "nesting exceeds {MAX_DECODE_DEPTH} levels")
            }
            WireError::BadSketch => write!(f, "embedded reconciliation sketch is invalid"),
        }
    }
}

impl std::error::Error for WireError {}

/// Maximum nesting depth accepted while decoding recursive structures
/// (filters and list values). Legitimate filters are a handful of levels
/// deep; without a bound, a few megabytes of `Not` tags would recurse the
/// decoder straight through the stack guard page.
pub const MAX_DECODE_DEPTH: usize = 64;

/// Append-only encoder.
#[derive(Debug, Default)]
pub struct Writer {
    buf: BytesMut,
}

impl Writer {
    /// Creates an empty writer.
    pub fn new() -> Self {
        Writer::default()
    }

    /// Finishes encoding, returning the bytes. Moves the buffer out —
    /// no copy.
    pub fn into_bytes(self) -> Vec<u8> {
        self.buf.into()
    }

    /// The bytes written so far.
    pub fn as_slice(&self) -> &[u8] {
        &self.buf
    }

    /// Empties the writer, retaining its allocation for reuse.
    pub fn clear(&mut self) {
        self.buf.clear();
    }

    /// Bytes written so far.
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// Returns `true` if nothing has been written.
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// Writes one raw byte.
    pub fn put_u8(&mut self, byte: u8) {
        self.buf.put_u8(byte);
    }

    /// Writes a fixed-width little-endian u64. Varints spend ~9.5 bytes
    /// on a uniformly random 64-bit value; hashes (checksums,
    /// fingerprints) always take this fixed 8-byte form instead.
    pub fn put_u64(&mut self, value: u64) {
        self.buf.put_slice(&value.to_le_bytes());
    }

    /// Writes an unsigned LEB128 varint.
    pub fn put_varint(&mut self, mut value: u64) {
        loop {
            let byte = (value & 0x7f) as u8;
            value >>= 7;
            if value == 0 {
                self.buf.put_u8(byte);
                return;
            }
            self.buf.put_u8(byte | 0x80);
        }
    }

    /// Writes a signed integer with zig-zag encoding.
    pub fn put_signed(&mut self, value: i64) {
        self.put_varint(((value << 1) ^ (value >> 63)) as u64);
    }

    /// Writes an `f64` as its fixed 8-byte IEEE-754 representation.
    pub fn put_f64(&mut self, value: f64) {
        self.buf.put_u64_le(value.to_bits());
    }

    /// Writes a bool as one byte.
    pub fn put_bool(&mut self, value: bool) {
        self.buf.put_u8(u8::from(value));
    }

    /// Writes a length-prefixed byte slice.
    pub fn put_bytes(&mut self, bytes: &[u8]) {
        self.put_varint(bytes.len() as u64);
        self.buf.put_slice(bytes);
    }

    /// Writes a length-prefixed UTF-8 string.
    pub fn put_str(&mut self, s: &str) {
        self.put_bytes(s.as_bytes());
    }
}

/// Cursor-based decoder over a byte slice.
///
/// A reader constructed with [`Reader::shared`] additionally knows the
/// reference-counted buffer backing its input, letting
/// [`Reader::get_payload`] hand out [`Payload`]s that *slice into* that
/// buffer instead of copying — the zero-copy decode path for received
/// frames and snapshots.
#[derive(Debug)]
pub struct Reader<'a> {
    buf: &'a [u8],
    pos: usize,
    depth: usize,
    backing: Option<&'a Arc<[u8]>>,
    shared_payloads: u64,
}

impl<'a> Reader<'a> {
    /// Creates a reader over `buf`.
    pub fn new(buf: &'a [u8]) -> Self {
        Reader {
            buf,
            pos: 0,
            depth: 0,
            backing: None,
            shared_payloads: 0,
        }
    }

    /// Creates a reader over a shared buffer: payloads decoded via
    /// [`Reader::get_payload`] will reference-count `backing` and slice
    /// into it rather than allocating.
    pub fn shared(backing: &'a Arc<[u8]>) -> Self {
        Reader {
            buf: backing,
            pos: 0,
            depth: 0,
            backing: Some(backing),
            shared_payloads: 0,
        }
    }

    /// How many payloads were decoded as slices of the shared backing
    /// buffer (always 0 for a [`Reader::new`] reader).
    pub fn shared_payload_count(&self) -> u64 {
        self.shared_payloads
    }

    /// Runs `f` one nesting level deeper, failing with
    /// [`WireError::DepthLimit`] past [`MAX_DECODE_DEPTH`] levels. Every
    /// recursive [`Decode`] implementation must route its recursion through
    /// this so adversarial input cannot overflow the stack.
    pub fn nested<T>(
        &mut self,
        f: impl FnOnce(&mut Self) -> Result<T, WireError>,
    ) -> Result<T, WireError> {
        if self.depth >= MAX_DECODE_DEPTH {
            return Err(WireError::DepthLimit);
        }
        self.depth += 1;
        let result = f(self);
        self.depth -= 1;
        result
    }

    /// Bytes not yet consumed.
    pub fn remaining(&self) -> usize {
        self.buf.len() - self.pos
    }

    /// Reads one raw byte.
    pub fn get_u8(&mut self) -> Result<u8, WireError> {
        let byte = *self.buf.get(self.pos).ok_or(WireError::UnexpectedEof)?;
        self.pos += 1;
        Ok(byte)
    }

    /// Reads a fixed-width little-endian u64 (see [`Writer::put_u64`]).
    pub fn get_u64(&mut self) -> Result<u64, WireError> {
        let end = self.pos.checked_add(8).ok_or(WireError::UnexpectedEof)?;
        let bytes = self
            .buf
            .get(self.pos..end)
            .ok_or(WireError::UnexpectedEof)?;
        self.pos = end;
        Ok(u64::from_le_bytes(bytes.try_into().expect("8-byte slice")))
    }

    /// Reads an unsigned LEB128 varint.
    pub fn get_varint(&mut self) -> Result<u64, WireError> {
        let mut value = 0u64;
        for shift in (0..64).step_by(7) {
            let byte = self.get_u8()?;
            value |= u64::from(byte & 0x7f) << shift;
            if byte & 0x80 == 0 {
                return Ok(value);
            }
        }
        Err(WireError::VarintOverflow)
    }

    /// Reads a zig-zag signed integer.
    pub fn get_signed(&mut self) -> Result<i64, WireError> {
        let raw = self.get_varint()?;
        Ok(((raw >> 1) as i64) ^ -((raw & 1) as i64))
    }

    /// Reads a fixed 8-byte `f64`.
    pub fn get_f64(&mut self) -> Result<f64, WireError> {
        if self.remaining() < 8 {
            return Err(WireError::UnexpectedEof);
        }
        let mut bits = [0u8; 8];
        bits.copy_from_slice(&self.buf[self.pos..self.pos + 8]);
        self.pos += 8;
        Ok(f64::from_bits(u64::from_le_bytes(bits)))
    }

    /// Reads a bool byte.
    pub fn get_bool(&mut self) -> Result<bool, WireError> {
        match self.get_u8()? {
            0 => Ok(false),
            1 => Ok(true),
            tag => Err(WireError::InvalidTag { what: "bool", tag }),
        }
    }

    /// Reads a length-prefixed byte slice.
    pub fn get_bytes(&mut self) -> Result<&'a [u8], WireError> {
        let len = self.get_varint()?;
        if len > self.remaining() as u64 {
            return Err(WireError::LengthOverflow(len));
        }
        let len = len as usize;
        let slice = &self.buf[self.pos..self.pos + len];
        self.pos += len;
        Ok(slice)
    }

    /// Reads a length-prefixed byte slice as a [`Payload`]. On a
    /// [`Reader::shared`] reader the payload slices into the backing
    /// buffer (reference-count bump, no allocation); otherwise the bytes
    /// are copied into a fresh buffer.
    pub fn get_payload(&mut self) -> Result<Payload, WireError> {
        let len = self.get_varint()?;
        if len > self.remaining() as u64 {
            return Err(WireError::LengthOverflow(len));
        }
        let len = len as usize;
        let start = self.pos;
        self.pos += len;
        match self.backing {
            Some(arc) if len > 0 => {
                self.shared_payloads += 1;
                Ok(Payload::from_shared(arc.clone(), start, len))
            }
            _ => Ok(Payload::from(&self.buf[start..start + len])),
        }
    }

    /// Reads a length-prefixed UTF-8 string as a borrowed slice.
    pub fn get_str_slice(&mut self) -> Result<&'a str, WireError> {
        let bytes = self.get_bytes()?;
        std::str::from_utf8(bytes).map_err(|_| WireError::BadUtf8)
    }

    /// Reads a length-prefixed UTF-8 string.
    pub fn get_str(&mut self) -> Result<String, WireError> {
        Ok(self.get_str_slice()?.to_owned())
    }

    /// Reads a collection length prefix, validating it against a minimum
    /// per-element size so corrupt input cannot trigger huge allocations.
    pub fn get_len(&mut self, min_elem_bytes: usize) -> Result<usize, WireError> {
        let len = self.get_varint()?;
        let budget = (self.remaining() / min_elem_bytes.max(1)) as u64;
        if len > budget {
            return Err(WireError::LengthOverflow(len));
        }
        Ok(len as usize)
    }
}

/// Types that can be written to the wire.
pub trait Encode {
    /// Appends this value's encoding to `w`.
    fn encode(&self, w: &mut Writer);
}

/// Types that can be read back from the wire.
pub trait Decode: Sized {
    /// Decodes one value from `r`.
    fn decode(r: &mut Reader<'_>) -> Result<Self, WireError>;
}

/// Encodes a value to a fresh byte vector.
pub fn to_bytes<T: Encode>(value: &T) -> Vec<u8> {
    let mut w = Writer::new();
    value.encode(&mut w);
    w.into_bytes()
}

/// A reusable encode buffer: every [`EncodeScratch::encode`] call after
/// the first reuses the same allocation, so steady-state encoding — one
/// sync session's frames, a WAL's appends — allocates nothing per message.
/// Tracks reuse and byte counters for the `wire.scratch_reuses` /
/// `wire.bytes_encoded` observability counters.
#[derive(Debug, Default)]
pub struct EncodeScratch {
    w: Writer,
    encodes: u64,
    bytes_encoded: u64,
}

impl EncodeScratch {
    /// An empty scratch buffer.
    pub fn new() -> Self {
        EncodeScratch::default()
    }

    /// Encodes `value` into the scratch buffer (clearing any previous
    /// contents, keeping the allocation) and returns the encoded bytes.
    /// The bytes stay valid — retrievable via [`EncodeScratch::last`] —
    /// until the next `encode` call.
    pub fn encode<T: Encode>(&mut self, value: &T) -> &[u8] {
        self.encodes += 1;
        self.w.clear();
        value.encode(&mut self.w);
        self.bytes_encoded += self.w.len() as u64;
        self.w.as_slice()
    }

    /// The bytes of the most recent [`EncodeScratch::encode`] call.
    pub fn last(&self) -> &[u8] {
        self.w.as_slice()
    }

    /// How many encodes reused the buffer (all but the first).
    pub fn reuses(&self) -> u64 {
        self.encodes.saturating_sub(1)
    }

    /// Total bytes encoded through this scratch buffer.
    pub fn bytes_encoded(&self) -> u64 {
        self.bytes_encoded
    }
}

/// Decodes a value, requiring the input to be fully consumed.
///
/// # Errors
///
/// Any [`WireError`] from decoding, or [`WireError::TrailingBytes`] if the
/// value did not consume all input.
pub fn from_bytes<T: Decode>(bytes: &[u8]) -> Result<T, WireError> {
    let mut r = Reader::new(bytes);
    let value = T::decode(&mut r)?;
    if r.remaining() != 0 {
        return Err(WireError::TrailingBytes(r.remaining()));
    }
    Ok(value)
}

/// Decodes a value from a shared buffer, requiring the input to be fully
/// consumed. Item payloads inside the value slice into `backing` instead
/// of being copied (see [`Reader::shared`]); the second return value is
/// how many payloads were shared that way.
///
/// # Errors
///
/// Any [`WireError`] from decoding, or [`WireError::TrailingBytes`] if the
/// value did not consume all input.
pub fn from_bytes_shared<T: Decode>(backing: &Arc<[u8]>) -> Result<(T, u64), WireError> {
    let mut r = Reader::shared(backing);
    let value = T::decode(&mut r)?;
    if r.remaining() != 0 {
        return Err(WireError::TrailingBytes(r.remaining()));
    }
    Ok((value, r.shared_payload_count()))
}

impl<T: Encode> Encode for Vec<T> {
    fn encode(&self, w: &mut Writer) {
        w.put_varint(self.len() as u64);
        for item in self {
            item.encode(w);
        }
    }
}

impl<T: Decode> Decode for Vec<T> {
    fn decode(r: &mut Reader<'_>) -> Result<Self, WireError> {
        let len = r.get_len(1)?;
        let mut out = Vec::with_capacity(len);
        for _ in 0..len {
            out.push(T::decode(r)?);
        }
        Ok(out)
    }
}

impl<T: Encode> Encode for Option<T> {
    fn encode(&self, w: &mut Writer) {
        match self {
            None => w.put_u8(0),
            Some(v) => {
                w.put_u8(1);
                v.encode(w);
            }
        }
    }
}

impl<T: Decode> Decode for Option<T> {
    fn decode(r: &mut Reader<'_>) -> Result<Self, WireError> {
        match r.get_u8()? {
            0 => Ok(None),
            1 => Ok(Some(T::decode(r)?)),
            tag => Err(WireError::InvalidTag {
                what: "Option",
                tag,
            }),
        }
    }
}

impl Encode for ReplicaId {
    fn encode(&self, w: &mut Writer) {
        w.put_varint(self.as_u64());
    }
}

impl Decode for ReplicaId {
    fn decode(r: &mut Reader<'_>) -> Result<Self, WireError> {
        Ok(ReplicaId::new(r.get_varint()?))
    }
}

impl Encode for ItemId {
    fn encode(&self, w: &mut Writer) {
        self.origin().encode(w);
        w.put_varint(self.seq());
    }
}

impl Decode for ItemId {
    fn decode(r: &mut Reader<'_>) -> Result<Self, WireError> {
        let origin = ReplicaId::decode(r)?;
        let seq = r.get_varint()?;
        Ok(ItemId::new(origin, seq))
    }
}

impl Encode for Version {
    fn encode(&self, w: &mut Writer) {
        self.replica().encode(w);
        w.put_varint(self.counter());
    }
}

impl Decode for Version {
    fn decode(r: &mut Reader<'_>) -> Result<Self, WireError> {
        let replica = ReplicaId::decode(r)?;
        let counter = r.get_varint()?;
        Ok(Version::new(replica, counter))
    }
}

const VAL_STR: u8 = 0;
const VAL_INT: u8 = 1;
const VAL_FLOAT: u8 = 2;
const VAL_BOOL: u8 = 3;
const VAL_BYTES: u8 = 4;
const VAL_LIST: u8 = 5;

impl Encode for Value {
    fn encode(&self, w: &mut Writer) {
        match self {
            Value::Str(s) => {
                w.put_u8(VAL_STR);
                w.put_str(s);
            }
            Value::Int(i) => {
                w.put_u8(VAL_INT);
                w.put_signed(*i);
            }
            Value::Float(f) => {
                w.put_u8(VAL_FLOAT);
                w.put_f64(*f);
            }
            Value::Bool(b) => {
                w.put_u8(VAL_BOOL);
                w.put_bool(*b);
            }
            Value::Bytes(b) => {
                w.put_u8(VAL_BYTES);
                w.put_bytes(b);
            }
            Value::List(l) => {
                w.put_u8(VAL_LIST);
                l.encode(w);
            }
        }
    }
}

impl Decode for Value {
    fn decode(r: &mut Reader<'_>) -> Result<Self, WireError> {
        match r.get_u8()? {
            VAL_STR => Ok(Value::Str(IStr::new(r.get_str_slice()?))),
            VAL_INT => Ok(Value::Int(r.get_signed()?)),
            VAL_FLOAT => Ok(Value::Float(r.get_f64()?)),
            VAL_BOOL => Ok(Value::Bool(r.get_bool()?)),
            VAL_BYTES => Ok(Value::Bytes(r.get_bytes()?.to_vec())),
            VAL_LIST => Ok(Value::List(r.nested(Vec::decode)?)),
            tag => Err(WireError::InvalidTag { what: "Value", tag }),
        }
    }
}

impl Encode for AttributeMap {
    fn encode(&self, w: &mut Writer) {
        w.put_varint(self.len() as u64);
        for (name, value) in self.iter() {
            w.put_str(name);
            value.encode(w);
        }
    }
}

impl Decode for AttributeMap {
    fn decode(r: &mut Reader<'_>) -> Result<Self, WireError> {
        let len = r.get_len(2)?;
        let mut attrs = AttributeMap::new();
        for _ in 0..len {
            let name = IStr::new(r.get_str_slice()?);
            let value = Value::decode(r)?;
            attrs
                .try_set(name, value)
                .map_err(|_| WireError::InvalidTag {
                    what: "AttributeMap(NaN)",
                    tag: 0,
                })?;
        }
        Ok(attrs)
    }
}

impl Encode for Knowledge {
    fn encode(&self, w: &mut Writer) {
        let vector: Vec<(ReplicaId, u64)> = self.vector_entries().collect();
        w.put_varint(vector.len() as u64);
        for (replica, counter) in vector {
            replica.encode(w);
            w.put_varint(counter);
        }
        let exceptions: Vec<Version> = self.exceptions().collect();
        exceptions.encode(w);
    }
}

impl Decode for Knowledge {
    fn decode(r: &mut Reader<'_>) -> Result<Self, WireError> {
        let mut k = Knowledge::new();
        let n = r.get_len(2)?;
        for _ in 0..n {
            let replica = ReplicaId::decode(r)?;
            let counter = r.get_varint()?;
            k.insert_prefix(replica, counter);
        }
        for version in Vec::<Version>::decode(r)? {
            k.insert(version);
        }
        Ok(k)
    }
}

const CMP_TAGS: [(CmpOp, u8); 6] = [
    (CmpOp::Eq, 0),
    (CmpOp::Ne, 1),
    (CmpOp::Lt, 2),
    (CmpOp::Le, 3),
    (CmpOp::Gt, 4),
    (CmpOp::Ge, 5),
];

impl Encode for CmpOp {
    fn encode(&self, w: &mut Writer) {
        let tag = CMP_TAGS
            .iter()
            .find(|(op, _)| op == self)
            .map(|(_, t)| *t)
            .expect("all ops tagged");
        w.put_u8(tag);
    }
}

impl Decode for CmpOp {
    fn decode(r: &mut Reader<'_>) -> Result<Self, WireError> {
        let tag = r.get_u8()?;
        CMP_TAGS
            .iter()
            .find(|(_, t)| *t == tag)
            .map(|(op, _)| *op)
            .ok_or(WireError::InvalidTag { what: "CmpOp", tag })
    }
}

const FILT_ALL: u8 = 0;
const FILT_NONE: u8 = 1;
const FILT_CMP: u8 = 2;
const FILT_IN: u8 = 3;
const FILT_CONTAINS: u8 = 4;
const FILT_EXISTS: u8 = 5;
const FILT_NOT: u8 = 6;
const FILT_AND: u8 = 7;
const FILT_OR: u8 = 8;

impl Encode for Filter {
    fn encode(&self, w: &mut Writer) {
        match self {
            Filter::All => w.put_u8(FILT_ALL),
            Filter::None => w.put_u8(FILT_NONE),
            Filter::Cmp { attr, op, value } => {
                w.put_u8(FILT_CMP);
                w.put_str(attr);
                op.encode(w);
                value.encode(w);
            }
            Filter::In { attr, values } => {
                w.put_u8(FILT_IN);
                w.put_str(attr);
                values.encode(w);
            }
            Filter::Contains { attr, value } => {
                w.put_u8(FILT_CONTAINS);
                w.put_str(attr);
                value.encode(w);
            }
            Filter::Exists(attr) => {
                w.put_u8(FILT_EXISTS);
                w.put_str(attr);
            }
            Filter::Not(inner) => {
                w.put_u8(FILT_NOT);
                inner.encode(w);
            }
            Filter::And(arms) => {
                w.put_u8(FILT_AND);
                arms.encode(w);
            }
            Filter::Or(arms) => {
                w.put_u8(FILT_OR);
                arms.encode(w);
            }
        }
    }
}

impl Decode for Filter {
    fn decode(r: &mut Reader<'_>) -> Result<Self, WireError> {
        match r.get_u8()? {
            FILT_ALL => Ok(Filter::All),
            FILT_NONE => Ok(Filter::None),
            FILT_CMP => Ok(Filter::Cmp {
                attr: r.get_str()?,
                op: CmpOp::decode(r)?,
                value: Value::decode(r)?,
            }),
            FILT_IN => Ok(Filter::In {
                attr: r.get_str()?,
                values: Vec::decode(r)?,
            }),
            FILT_CONTAINS => Ok(Filter::Contains {
                attr: r.get_str()?,
                value: Value::decode(r)?,
            }),
            FILT_EXISTS => Ok(Filter::Exists(r.get_str()?)),
            FILT_NOT => Ok(Filter::Not(Box::new(r.nested(Filter::decode)?))),
            FILT_AND => Ok(Filter::And(r.nested(Vec::decode)?)),
            FILT_OR => Ok(Filter::Or(r.nested(Vec::decode)?)),
            tag => Err(WireError::InvalidTag {
                what: "Filter",
                tag,
            }),
        }
    }
}

impl Encode for Item {
    fn encode(&self, w: &mut Writer) {
        self.id().encode(w);
        self.version().encode(w);
        let ancestors: Vec<Version> = self.ancestors().collect();
        ancestors.encode(w);
        self.attrs().encode(w);
        self.transient().encode(w);
        w.put_bytes(self.payload());
        w.put_bool(self.is_deleted());
    }
}

impl Decode for Item {
    fn decode(r: &mut Reader<'_>) -> Result<Self, WireError> {
        let id = ItemId::decode(r)?;
        let version = Version::decode(r)?;
        let ancestors = Vec::<Version>::decode(r)?;
        let attrs = AttributeMap::decode(r)?;
        let transient = AttributeMap::decode(r)?;
        // On a shared reader this slices into the frame buffer: every
        // item in a received batch shares the one backing allocation.
        let payload = r.get_payload()?;
        let deleted = r.get_bool()?;
        let item = Item::builder(id, version)
            .attrs(attrs)
            .transient_attrs(transient)
            .payload(payload)
            .deleted(deleted)
            .build();
        // Re-derive ancestor history through the supersession API.
        Ok(ancestors
            .into_iter()
            .fold(item, |item, v| item.with_ancestor(v)))
    }
}

impl Encode for RoutingState {
    fn encode(&self, w: &mut Writer) {
        w.put_bytes(self.as_bytes());
    }
}

impl Decode for RoutingState {
    fn decode(r: &mut Reader<'_>) -> Result<Self, WireError> {
        Ok(RoutingState::from_bytes(r.get_bytes()?.to_vec()))
    }
}

const PRIO_TAGS: [(PriorityClass, u8); 5] = [
    (PriorityClass::Lowest, 0),
    (PriorityClass::Low, 1),
    (PriorityClass::Normal, 2),
    (PriorityClass::High, 3),
    (PriorityClass::Highest, 4),
];

impl Encode for PriorityClass {
    fn encode(&self, w: &mut Writer) {
        let tag = PRIO_TAGS
            .iter()
            .find(|(c, _)| c == self)
            .map(|(_, t)| *t)
            .expect("all classes tagged");
        w.put_u8(tag);
    }
}

impl Decode for PriorityClass {
    fn decode(r: &mut Reader<'_>) -> Result<Self, WireError> {
        let tag = r.get_u8()?;
        PRIO_TAGS
            .iter()
            .find(|(_, t)| *t == tag)
            .map(|(c, _)| *c)
            .ok_or(WireError::InvalidTag {
                what: "PriorityClass",
                tag,
            })
    }
}

impl Encode for Priority {
    fn encode(&self, w: &mut Writer) {
        self.class().encode(w);
        w.put_f64(self.cost());
    }
}

impl Decode for Priority {
    fn decode(r: &mut Reader<'_>) -> Result<Self, WireError> {
        let class = PriorityClass::decode(r)?;
        let cost = r.get_f64()?;
        Ok(Priority::new(class, cost))
    }
}

impl Encode for SyncRequest<'_> {
    fn encode(&self, w: &mut Writer) {
        self.target.encode(w);
        self.knowledge.encode(w);
        self.filter.encode(w);
        self.routing.encode(w);
    }
}

impl Decode for SyncRequest<'static> {
    fn decode(r: &mut Reader<'_>) -> Result<Self, WireError> {
        Ok(SyncRequest {
            target: ReplicaId::decode(r)?,
            knowledge: std::borrow::Cow::Owned(Knowledge::decode(r)?),
            filter: std::borrow::Cow::Owned(Filter::decode(r)?),
            routing: RoutingState::decode(r)?,
        })
    }
}

impl Encode for BatchEntry {
    fn encode(&self, w: &mut Writer) {
        self.item.encode(w);
        self.priority.encode(w);
        w.put_bool(self.matched_filter);
    }
}

impl Decode for BatchEntry {
    fn decode(r: &mut Reader<'_>) -> Result<Self, WireError> {
        Ok(BatchEntry {
            item: Item::decode(r)?,
            priority: Priority::decode(r)?,
            matched_filter: r.get_bool()?,
        })
    }
}

impl Encode for SyncBatch {
    fn encode(&self, w: &mut Writer) {
        self.source.encode(w);
        self.entries.encode(w);
        w.put_varint(self.withheld as u64);
    }
}

impl Decode for SyncBatch {
    fn decode(r: &mut Reader<'_>) -> Result<Self, WireError> {
        Ok(SyncBatch {
            source: ReplicaId::decode(r)?,
            entries: Vec::decode(r)?,
            withheld: r.get_varint()? as usize,
        })
    }
}

// ---- digest-mode messages -------------------------------------------------
//
// Sketches (Bloom filters, IBLTs) carry their own self-validating binary
// format inside `recon`; on this layer they travel as length-prefixed
// opaque byte strings, so hostile lengths are bounds-checked here and
// hostile contents are rejected by the sketch decoders (mapped to
// [`WireError::BadSketch`]).

const SUMMARY_FULL: u8 = 0;
const SUMMARY_UNCHANGED: u8 = 1;
const SUMMARY_DELTA: u8 = 2;
const SUMMARY_BLOOM: u8 = 3;

impl Encode for KnowledgeSummary {
    fn encode(&self, w: &mut Writer) {
        match self {
            KnowledgeSummary::Full(k) => {
                w.put_u8(SUMMARY_FULL);
                k.encode(w);
            }
            KnowledgeSummary::Unchanged { checksum } => {
                w.put_u8(SUMMARY_UNCHANGED);
                w.put_u64(*checksum);
            }
            KnowledgeSummary::Delta {
                base_checksum,
                checksum,
                iblt,
            } => {
                w.put_u8(SUMMARY_DELTA);
                w.put_u64(*base_checksum);
                w.put_u64(*checksum);
                w.put_bytes(&iblt.to_bytes());
            }
            KnowledgeSummary::Bloom {
                version_count,
                bloom,
            } => {
                w.put_u8(SUMMARY_BLOOM);
                w.put_varint(*version_count);
                w.put_bytes(&bloom.to_bytes());
            }
        }
    }
}

impl Decode for KnowledgeSummary {
    fn decode(r: &mut Reader<'_>) -> Result<Self, WireError> {
        match r.get_u8()? {
            SUMMARY_FULL => Ok(KnowledgeSummary::Full(Knowledge::decode(r)?)),
            SUMMARY_UNCHANGED => Ok(KnowledgeSummary::Unchanged {
                checksum: r.get_u64()?,
            }),
            SUMMARY_DELTA => {
                let base_checksum = r.get_u64()?;
                let checksum = r.get_u64()?;
                let iblt =
                    recon::Iblt::from_bytes(r.get_bytes()?).map_err(|_| WireError::BadSketch)?;
                Ok(KnowledgeSummary::Delta {
                    base_checksum,
                    checksum,
                    iblt,
                })
            }
            SUMMARY_BLOOM => {
                let version_count = r.get_varint()?;
                let bloom =
                    recon::Bloom::from_bytes(r.get_bytes()?).map_err(|_| WireError::BadSketch)?;
                Ok(KnowledgeSummary::Bloom {
                    version_count,
                    bloom,
                })
            }
            tag => Err(WireError::InvalidTag {
                what: "KnowledgeSummary",
                tag,
            }),
        }
    }
}

impl Encode for DigestRequest {
    fn encode(&self, w: &mut Writer) {
        self.target.encode(w);
        self.summary.encode(w);
        w.put_u64(self.filter_fingerprint);
        self.filter.encode(w);
        self.routing.encode(w);
    }
}

impl Decode for DigestRequest {
    fn decode(r: &mut Reader<'_>) -> Result<Self, WireError> {
        Ok(DigestRequest {
            target: ReplicaId::decode(r)?,
            summary: KnowledgeSummary::decode(r)?,
            filter_fingerprint: r.get_u64()?,
            filter: Option::decode(r)?,
            routing: RoutingState::decode(r)?,
        })
    }
}

impl Encode for VersionQuery {
    fn encode(&self, w: &mut Writer) {
        self.versions.encode(w);
    }
}

impl Decode for VersionQuery {
    fn decode(r: &mut Reader<'_>) -> Result<Self, WireError> {
        Ok(VersionQuery {
            versions: Vec::decode(r)?,
        })
    }
}

impl Encode for VersionAnswer {
    fn encode(&self, w: &mut Writer) {
        w.put_varint(self.len() as u64);
        w.put_bytes(self.bits());
    }
}

impl Decode for VersionAnswer {
    fn decode(r: &mut Reader<'_>) -> Result<Self, WireError> {
        let count = r.get_varint()?;
        let bits = r.get_bytes()?.to_vec();
        VersionAnswer::from_parts(count as usize, bits).ok_or(WireError::LengthOverflow(count))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn varint_boundaries() {
        for v in [0u64, 1, 127, 128, 300, u32::MAX as u64, u64::MAX] {
            let mut w = Writer::new();
            w.put_varint(v);
            let bytes = w.into_bytes();
            let mut r = Reader::new(&bytes);
            assert_eq!(r.get_varint().unwrap(), v);
            assert_eq!(r.remaining(), 0);
        }
    }

    #[test]
    fn signed_zigzag() {
        for v in [0i64, 1, -1, 63, -64, i64::MAX, i64::MIN] {
            let mut w = Writer::new();
            w.put_signed(v);
            let bytes = w.into_bytes();
            assert_eq!(Reader::new(&bytes).get_signed().unwrap(), v);
        }
    }

    #[test]
    fn small_varints_are_one_byte() {
        let mut w = Writer::new();
        w.put_varint(100);
        assert_eq!(w.len(), 1);
    }

    #[test]
    fn eof_and_overflow_errors() {
        assert_eq!(Reader::new(&[]).get_u8(), Err(WireError::UnexpectedEof));
        assert_eq!(
            Reader::new(&[0x80; 11]).get_varint(),
            Err(WireError::VarintOverflow)
        );
        assert_eq!(
            Reader::new(&[1, 2]).get_f64(),
            Err(WireError::UnexpectedEof)
        );
        assert_eq!(
            Reader::new(&[7]).get_bool(),
            Err(WireError::InvalidTag {
                what: "bool",
                tag: 7
            })
        );
    }

    #[test]
    fn length_overflow_rejected_before_allocation() {
        // Claims 1 GiB of bytes with 1 byte of input.
        let mut w = Writer::new();
        w.put_varint(1 << 30);
        w.put_u8(0);
        let bytes = w.into_bytes();
        let mut r = Reader::new(&bytes);
        assert!(matches!(r.get_bytes(), Err(WireError::LengthOverflow(_))));
    }

    #[test]
    fn from_bytes_rejects_trailing() {
        let mut w = Writer::new();
        ReplicaId::new(1).encode(&mut w);
        w.put_u8(0xee);
        let bytes = w.into_bytes();
        assert_eq!(
            from_bytes::<ReplicaId>(&bytes),
            Err(WireError::TrailingBytes(1))
        );
    }

    fn roundtrip<T: Encode + Decode + PartialEq + std::fmt::Debug>(value: T) {
        let bytes = to_bytes(&value);
        let back = from_bytes::<T>(&bytes).unwrap_or_else(|e| panic!("decode failed: {e}"));
        assert_eq!(back, value);
    }

    #[test]
    fn value_roundtrips() {
        roundtrip(Value::from("héllo"));
        roundtrip(Value::from(-42i64));
        roundtrip(Value::from(3.25));
        roundtrip(Value::from(true));
        roundtrip(Value::from(vec![1u8, 2, 3]));
        roundtrip(Value::List(vec![
            Value::from("x"),
            Value::List(vec![Value::from(1i64)]),
        ]));
    }

    #[test]
    fn knowledge_roundtrips_with_exceptions() {
        let mut k = Knowledge::new();
        k.insert_prefix(ReplicaId::new(1), 10);
        k.insert(Version::new(ReplicaId::new(2), 5));
        k.insert(Version::new(ReplicaId::new(2), 9));
        roundtrip(k);
    }

    #[test]
    fn filter_roundtrips() {
        let f = Filter::parse(r#"(dest contains "a") or (n >= 2 and not exists gone)"#).unwrap();
        roundtrip(f);
        roundtrip(Filter::All);
        roundtrip(Filter::In {
            attr: "t".into(),
            values: vec![Value::from(1i64), Value::from("x")],
        });
    }

    #[test]
    fn item_roundtrips_with_ancestors_and_transient() {
        let id = ItemId::new(ReplicaId::new(3), 7);
        let item = Item::builder(id, Version::new(ReplicaId::new(3), 7))
            .attr("dest", "b")
            .transient_attr("ttl", 9i64)
            .payload(b"payload".to_vec())
            .build()
            .with_ancestor(Version::new(ReplicaId::new(1), 2))
            .with_ancestor(Version::new(ReplicaId::new(2), 4));
        roundtrip(item);
    }

    #[test]
    fn sync_messages_roundtrip() {
        let mut k = Knowledge::new();
        k.insert_prefix(ReplicaId::new(1), 3);
        let req = SyncRequest {
            target: ReplicaId::new(2),
            knowledge: std::borrow::Cow::Owned(k),
            filter: std::borrow::Cow::Owned(Filter::address("dest", "b")),
            routing: RoutingState::from_bytes(vec![9, 9]),
        };
        let bytes = to_bytes(&req);
        let back: SyncRequest<'_> = from_bytes(&bytes).unwrap();
        assert_eq!(back.target, req.target);
        assert_eq!(back.filter, req.filter);
        assert_eq!(back.routing, req.routing);
        assert!(back.knowledge.contains(Version::new(ReplicaId::new(1), 3)));

        let item = Item::builder(
            ItemId::new(ReplicaId::new(1), 1),
            Version::new(ReplicaId::new(1), 1),
        )
        .attr("dest", "b")
        .build();
        let batch = SyncBatch {
            source: ReplicaId::new(1),
            entries: vec![BatchEntry {
                item,
                priority: Priority::new(PriorityClass::High, 1.5),
                matched_filter: true,
            }],
            withheld: 2,
        };
        let bytes = to_bytes(&batch);
        let back: SyncBatch = from_bytes(&bytes).unwrap();
        assert_eq!(back.source, batch.source);
        assert_eq!(back.withheld, 2);
        assert_eq!(back.entries.len(), 1);
        assert_eq!(back.entries[0].priority.cost(), 1.5);
        assert!(back.entries[0].matched_filter);
    }

    #[test]
    fn shared_decode_slices_the_backing_buffer() {
        let item = Item::builder(
            ItemId::new(ReplicaId::new(1), 1),
            Version::new(ReplicaId::new(1), 1),
        )
        .attr("dest", "b")
        .payload(b"zero-copy payload".to_vec())
        .build();
        let batch = SyncBatch {
            source: ReplicaId::new(1),
            entries: vec![
                BatchEntry {
                    item: item.clone(),
                    priority: Priority::new(PriorityClass::Normal, 0.0),
                    matched_filter: true,
                },
                BatchEntry {
                    item,
                    priority: Priority::new(PriorityClass::Normal, 0.0),
                    matched_filter: true,
                },
            ],
            withheld: 0,
        };
        let bytes: Arc<[u8]> = to_bytes(&batch).into();

        let owned: SyncBatch = from_bytes(&bytes).unwrap();
        let (shared, shares) = from_bytes_shared::<SyncBatch>(&bytes).unwrap();
        assert_eq!(owned, shared, "shared decode must be value-identical");
        assert_eq!(shares, 2, "both payloads decoded zero-copy");

        let a = shared.entries[0].item.payload_shared();
        let b = shared.entries[1].item.payload_shared();
        assert_eq!(a.buffer_id(), b.buffer_id(), "one frame, one buffer");
        assert_eq!(&a[..], b"zero-copy payload");

        // Re-encoding the shared decode is byte-identical to the original.
        assert_eq!(to_bytes(&shared), &bytes[..]);
    }

    #[test]
    fn scratch_reuse_is_byte_identical_and_counted() {
        let values = [Value::from("a"), Value::from(7i64), Value::from("a")];
        let mut scratch = EncodeScratch::new();
        for v in &values {
            let fresh = to_bytes(v);
            assert_eq!(scratch.encode(v), &fresh[..]);
            assert_eq!(scratch.last(), &fresh[..]);
        }
        assert_eq!(scratch.reuses(), 2, "all encodes after the first reuse");
        let total: u64 = values.iter().map(|v| to_bytes(v).len() as u64).sum();
        assert_eq!(scratch.bytes_encoded(), total);
    }

    #[test]
    fn hostile_nesting_is_rejected_not_a_stack_overflow() {
        // A megabyte of FILT_NOT tags: without the depth guard this
        // recursed once per byte and blew the stack.
        let not_bomb = vec![FILT_NOT; 1 << 20];
        assert_eq!(from_bytes::<Filter>(&not_bomb), Err(WireError::DepthLimit));

        // Same shape through Value::List: tag + length-1 per level.
        let mut list_bomb = Vec::new();
        for _ in 0..(1 << 19) {
            list_bomb.push(VAL_LIST);
            list_bomb.push(1);
        }
        assert_eq!(from_bytes::<Value>(&list_bomb), Err(WireError::DepthLimit));

        // And/Or nest through Vec<Filter>: tag + length-1 per level.
        let mut and_bomb = Vec::new();
        for _ in 0..(1 << 19) {
            and_bomb.push(FILT_AND);
            and_bomb.push(1);
        }
        assert_eq!(from_bytes::<Filter>(&and_bomb), Err(WireError::DepthLimit));
    }

    #[test]
    fn legitimate_nesting_fits_under_the_depth_limit() {
        let mut f = Filter::address("dest", "x");
        for _ in 0..(MAX_DECODE_DEPTH / 2) {
            f = Filter::Not(Box::new(f));
        }
        roundtrip(f);
    }

    #[test]
    fn knowledge_encoding_is_compact() {
        // 50 replicas, 1000 versions each, fully prefix-compacted: the
        // encoding must be proportional to replicas, not versions.
        let mut k = Knowledge::new();
        for rep in 1..=50 {
            k.insert_prefix(ReplicaId::new(rep), 1000);
        }
        let bytes = to_bytes(&k);
        assert!(
            bytes.len() < 50 * 4 + 16,
            "knowledge for 50k versions took {} bytes",
            bytes.len()
        );
    }
}
