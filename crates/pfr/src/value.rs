//! Attribute values for content-based filtering.

use std::fmt;

use serde::{Deserialize, Serialize};

use crate::intern::IStr;

/// A dynamically-typed attribute value attached to a replicated item.
///
/// Filters ([`Filter`](crate::Filter)) evaluate predicates over these
/// values; DTN routing policies additionally use them to carry per-message
/// routing metadata such as TTLs, copy counts, and hop lists.
///
/// `Value` implements `Ord` with a deterministic cross-type ordering so it
/// can be used in sorted containers; comparisons *within* filters are only
/// meaningful between values of the same type (see
/// [`Value::partial_cmp_same_type`]).
///
/// # Examples
///
/// ```
/// use pfr::Value;
///
/// let v = Value::from("bus-12");
/// assert_eq!(v.as_str(), Some("bus-12"));
/// assert_eq!(Value::from(3i64).as_i64(), Some(3));
/// ```
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub enum Value {
    /// UTF-8 text, interned: the same string stored by many items (hot
    /// recipient addresses, folder names) shares one allocation.
    Str(IStr),
    /// Signed 64-bit integer.
    Int(i64),
    /// IEEE-754 double. `NaN` is rejected by [`AttributeMap`](crate::AttributeMap).
    Float(f64),
    /// Boolean flag.
    Bool(bool),
    /// Opaque binary payload.
    Bytes(Vec<u8>),
    /// Ordered list of values (e.g. a multicast destination set or a
    /// MaxProp hop list).
    List(Vec<Value>),
}

impl Value {
    /// Returns the contained string, if this is a [`Value::Str`].
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s.as_str()),
            _ => None,
        }
    }

    /// Returns the contained integer, if this is a [`Value::Int`].
    pub fn as_i64(&self) -> Option<i64> {
        match self {
            Value::Int(i) => Some(*i),
            _ => None,
        }
    }

    /// Returns the contained float, if this is a [`Value::Float`].
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Float(f) => Some(*f),
            _ => None,
        }
    }

    /// Returns the contained boolean, if this is a [`Value::Bool`].
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// Returns the contained bytes, if this is a [`Value::Bytes`].
    pub fn as_bytes(&self) -> Option<&[u8]> {
        match self {
            Value::Bytes(b) => Some(b),
            _ => None,
        }
    }

    /// Returns the contained list, if this is a [`Value::List`].
    pub fn as_list(&self) -> Option<&[Value]> {
        match self {
            Value::List(l) => Some(l),
            _ => None,
        }
    }

    /// A short name for the value's type, used in error messages.
    pub fn type_name(&self) -> &'static str {
        match self {
            Value::Str(_) => "str",
            Value::Int(_) => "int",
            Value::Float(_) => "float",
            Value::Bool(_) => "bool",
            Value::Bytes(_) => "bytes",
            Value::List(_) => "list",
        }
    }

    /// Compares two values of the same type; returns `None` when the types
    /// differ or the values are incomparable (e.g. a `NaN` float).
    ///
    /// Filters use this for `<`, `<=`, `>`, `>=` predicates, which are
    /// defined to be *false* across types rather than erroring, matching
    /// the query semantics of content-based filter systems.
    pub fn partial_cmp_same_type(&self, other: &Value) -> Option<std::cmp::Ordering> {
        use Value::*;
        match (self, other) {
            (Str(a), Str(b)) => Some(a.cmp(b)),
            (Int(a), Int(b)) => Some(a.cmp(b)),
            (Float(a), Float(b)) => a.partial_cmp(b),
            (Int(a), Float(b)) => (*a as f64).partial_cmp(b),
            (Float(a), Int(b)) => a.partial_cmp(&(*b as f64)),
            (Bool(a), Bool(b)) => Some(a.cmp(b)),
            (Bytes(a), Bytes(b)) => Some(a.cmp(b)),
            _ => None,
        }
    }

    /// Tests semantic equality: numeric values compare across `Int`/`Float`,
    /// everything else requires matching types.
    pub fn semantic_eq(&self, other: &Value) -> bool {
        use Value::*;
        match (self, other) {
            (List(a), List(b)) => {
                a.len() == b.len() && a.iter().zip(b).all(|(x, y)| x.semantic_eq(y))
            }
            (a, b) => a
                .partial_cmp_same_type(b)
                .is_some_and(|o| o == std::cmp::Ordering::Equal),
        }
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::Str(s) => write!(f, "{s:?}"),
            Value::Int(i) => write!(f, "{i}"),
            Value::Float(x) => write!(f, "{x}"),
            Value::Bool(b) => write!(f, "{b}"),
            Value::Bytes(b) => write!(f, "0x{}", hex(b)),
            Value::List(l) => {
                write!(f, "[")?;
                for (i, v) in l.iter().enumerate() {
                    if i > 0 {
                        write!(f, ", ")?;
                    }
                    write!(f, "{v}")?;
                }
                write!(f, "]")
            }
        }
    }
}

fn hex(bytes: &[u8]) -> String {
    bytes.iter().map(|b| format!("{b:02x}")).collect()
}

impl From<&str> for Value {
    fn from(s: &str) -> Self {
        Value::Str(IStr::new(s))
    }
}

impl From<String> for Value {
    fn from(s: String) -> Self {
        Value::Str(IStr::new(&s))
    }
}

impl From<IStr> for Value {
    fn from(s: IStr) -> Self {
        Value::Str(s)
    }
}

impl From<i64> for Value {
    fn from(i: i64) -> Self {
        Value::Int(i)
    }
}

impl From<i32> for Value {
    fn from(i: i32) -> Self {
        Value::Int(i64::from(i))
    }
}

impl From<u32> for Value {
    fn from(i: u32) -> Self {
        Value::Int(i64::from(i))
    }
}

impl From<f64> for Value {
    fn from(f: f64) -> Self {
        Value::Float(f)
    }
}

impl From<bool> for Value {
    fn from(b: bool) -> Self {
        Value::Bool(b)
    }
}

impl From<Vec<u8>> for Value {
    fn from(b: Vec<u8>) -> Self {
        Value::Bytes(b)
    }
}

impl From<Vec<Value>> for Value {
    fn from(l: Vec<Value>) -> Self {
        Value::List(l)
    }
}

impl<'a> FromIterator<&'a str> for Value {
    fn from_iter<T: IntoIterator<Item = &'a str>>(iter: T) -> Self {
        Value::List(iter.into_iter().map(Value::from).collect())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::cmp::Ordering;

    #[test]
    fn accessors_return_matching_variants_only() {
        assert_eq!(Value::from("x").as_str(), Some("x"));
        assert_eq!(Value::from("x").as_i64(), None);
        assert_eq!(Value::from(5i64).as_i64(), Some(5));
        assert_eq!(Value::from(1.5).as_f64(), Some(1.5));
        assert_eq!(Value::from(true).as_bool(), Some(true));
        assert_eq!(Value::from(vec![1u8, 2]).as_bytes(), Some(&[1u8, 2][..]));
        let l = Value::List(vec![Value::from(1i64)]);
        assert_eq!(l.as_list().unwrap().len(), 1);
    }

    #[test]
    fn same_type_comparison() {
        assert_eq!(
            Value::from("a").partial_cmp_same_type(&Value::from("b")),
            Some(Ordering::Less)
        );
        assert_eq!(
            Value::from(2i64).partial_cmp_same_type(&Value::from(2i64)),
            Some(Ordering::Equal)
        );
        // Cross numeric types compare numerically.
        assert_eq!(
            Value::from(2i64).partial_cmp_same_type(&Value::from(2.5)),
            Some(Ordering::Less)
        );
        // Cross non-numeric types are incomparable.
        assert_eq!(
            Value::from("a").partial_cmp_same_type(&Value::from(1i64)),
            None
        );
        // NaN is incomparable even to itself.
        assert_eq!(
            Value::from(f64::NAN).partial_cmp_same_type(&Value::from(f64::NAN)),
            None
        );
    }

    #[test]
    fn semantic_eq_handles_numbers_and_lists() {
        assert!(Value::from(2i64).semantic_eq(&Value::from(2.0)));
        assert!(!Value::from(2i64).semantic_eq(&Value::from("2")));
        let a = Value::List(vec![Value::from(1i64), Value::from("x")]);
        let b = Value::List(vec![Value::from(1.0), Value::from("x")]);
        assert!(a.semantic_eq(&b));
        let c = Value::List(vec![Value::from(1i64)]);
        assert!(!a.semantic_eq(&c));
    }

    #[test]
    fn display_is_never_empty() {
        for v in [
            Value::from(""),
            Value::from(0i64),
            Value::from(0.0),
            Value::from(false),
            Value::from(Vec::<u8>::new()),
            Value::List(vec![]),
        ] {
            assert!(!format!("{v}").is_empty());
        }
        assert_eq!(format!("{}", Value::from(vec![0xabu8, 0x01])), "0xab01");
        assert_eq!(
            format!(
                "{}",
                Value::List(vec![Value::from(1i64), Value::from(2i64)])
            ),
            "[1, 2]"
        );
    }

    #[test]
    fn type_names() {
        assert_eq!(Value::from("x").type_name(), "str");
        assert_eq!(Value::from(1i64).type_name(), "int");
        assert_eq!(Value::List(vec![]).type_name(), "list");
    }

    #[test]
    fn from_iterator_of_strs_builds_list() {
        let v: Value = ["a", "b"].into_iter().collect();
        assert_eq!(v.as_list().unwrap().len(), 2);
    }
}
