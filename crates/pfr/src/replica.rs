//! The replica: one host's filtered copy of the collection.

use std::collections::HashMap;
use std::fmt;

use obs::{DropReason, Event, Obs};
use serde::{Deserialize, Serialize};

use crate::attrs::AttributeMap;
use crate::error::PfrError;
use crate::filter::Filter;
use crate::id::{ItemId, ReplicaId, Version};
use crate::item::{CausalRelation, Item};
use crate::knowledge::Knowledge;
use crate::payload::Payload;
use crate::store::{classify, EvictionMode, ItemStore, StoreKind};
use crate::time::SimTime;
use crate::value::Value;

/// Counters describing a replica's activity, for experiments and debugging.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Serialize, Deserialize)]
#[non_exhaustive]
pub struct ReplicaStats {
    /// Items created locally.
    pub inserted: u64,
    /// Local updates (including deletes).
    pub updated: u64,
    /// Remote items accepted into the filtered store.
    pub received_in_filter: u64,
    /// Remote items accepted into the relay store.
    pub received_relay: u64,
    /// Remote copies ignored because a newer or equal copy was already
    /// stored.
    pub stale_ignored: u64,
    /// Remote copies rejected because their version was already known —
    /// at-most-once delivery means this should stay zero during syncs.
    pub duplicates_rejected: u64,
    /// Concurrent updates merged deterministically.
    pub conflicts_merged: u64,
    /// Relay items evicted under a storage constraint.
    pub evictions: u64,
}

/// One detected write conflict: two causally concurrent copies of an item
/// were merged deterministically.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ConflictRecord {
    /// The contested item.
    pub id: ItemId,
    /// The version whose content won the merge.
    pub winner: Version,
    /// The version whose content was superseded.
    pub loser: Version,
    /// When the conflict was detected.
    pub at: SimTime,
}

/// The outcome of offering one remote item copy to a replica.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ApplyOutcome {
    /// Stored (or replaced an older copy). `delivered` is true when this
    /// made a live item newly visible in the replica's filtered store.
    Accepted {
        /// The item became newly available in the filtered store.
        delivered: bool,
        /// Where the copy was stored.
        kind: StoreKind,
    },
    /// The version was already known; nothing was stored.
    Duplicate,
    /// An equal-or-newer copy was already stored; nothing changed.
    Stale,
    /// The copy conflicted with a concurrent local copy and was merged.
    ConflictMerged,
}

/// One host's replica: a filter, a filtered item store (plus push-out and
/// relay stores), and knowledge of learned versions.
///
/// A replica supports fully disconnected operation: items can be inserted,
/// updated, and deleted locally at any time; pairwise synchronization
/// ([`crate::sync`]) later propagates versions opportunistically.
///
/// # Examples
///
/// ```
/// use pfr::{AttributeMap, Filter, Replica, ReplicaId};
///
/// let mut r = Replica::new(ReplicaId::new(1), Filter::address("dest", "me"));
/// let mut attrs = AttributeMap::new();
/// attrs.set("dest", "you");
/// let id = r.insert(attrs, b"payload".to_vec())?;
/// assert!(r.contains_item(id));
/// # Ok::<(), pfr::PfrError>(())
/// ```
#[derive(Clone)]
pub struct Replica {
    id: ReplicaId,
    filter: Filter,
    knowledge: Knowledge,
    store: ItemStore,
    next_item_seq: u64,
    next_version_counter: u64,
    relay_limit: Option<usize>,
    eviction: EvictionMode,
    stats: ReplicaStats,
    /// In-memory log of merged conflicts, drained by the application. Not
    /// part of snapshots: it is observability state, not replication
    /// state.
    conflict_log: Vec<ConflictRecord>,
    /// Event emission handle. Like `conflict_log`, observability state:
    /// never part of snapshots, disabled by default.
    obs: Obs,
    /// Memoized `filter.matches(item)` verdicts for sync candidate
    /// selection, keyed by (filter fingerprint, item version). A verdict
    /// depends only on the filter and the item's versioned attributes, so
    /// entries never go stale: updates mint new versions. Acceleration
    /// state like `conflict_log` — never part of snapshots.
    match_memo: HashMap<(u64, Version), bool>,
    /// When set, candidate selection uses the pre-index full store scan
    /// and bypasses `match_memo`. Benchmark/validation knob (see
    /// [`Replica::set_candidate_scan`]); off by default.
    candidate_scan: bool,
    /// When set, copies prepared for transmission are detached into
    /// private allocations, emulating the pre-copy-on-write data plane.
    /// Benchmark/validation knob (see [`Replica::set_owned_copies`]); off
    /// by default.
    owned_copies: bool,
    /// Reusable selection buffers for [`crate::sync::prepare_batch`].
    /// An allocation cache like `match_memo`: cleared before every use,
    /// never part of snapshots.
    sync_scratch: crate::sync::SyncScratch,
}

/// One resolved sync candidate (see [`Replica::resolve_candidate`]).
#[derive(Clone, Copy, Debug)]
pub(crate) struct CandidateInfo {
    /// Whether the requester's filter matches the stored item.
    pub matched: bool,
    /// Whether `matched` was answered from the memo.
    pub memo_hit: bool,
    /// Stored payload length, for byte-budget accounting.
    pub payload_len: usize,
}

/// Entries kept in a replica's filter-match memo before it is cleared and
/// rebuilt. Bounds memory on long runs with many distinct peer filters.
const MATCH_MEMO_CAP: usize = 1 << 16;

impl Replica {
    /// Creates an empty replica with the given identity and filter.
    pub fn new(id: ReplicaId, filter: Filter) -> Self {
        Replica {
            id,
            filter,
            knowledge: Knowledge::new(),
            store: ItemStore::new(),
            next_item_seq: 0,
            next_version_counter: 0,
            relay_limit: None,
            eviction: EvictionMode::default(),
            stats: ReplicaStats::default(),
            conflict_log: Vec::new(),
            obs: Obs::none(),
            match_memo: HashMap::new(),
            candidate_scan: false,
            owned_copies: false,
            sync_scratch: crate::sync::SyncScratch::default(),
        }
    }

    /// Attaches (or with [`Obs::none`], detaches) an observer receiving
    /// this replica's events. Observers are not replication state: they
    /// survive neither snapshots nor clones of snapshots.
    pub fn set_observer(&mut self, obs: Obs) {
        self.obs = obs;
    }

    /// The replica's event emission handle (disabled unless an observer
    /// was attached via [`Replica::set_observer`]).
    pub fn observer(&self) -> &Obs {
        &self.obs
    }

    /// Sets a cap on relay (foreign, out-of-filter) messages stored, as in
    /// the paper's storage-constrained experiments (§VI-D). `None` removes
    /// the cap. Excess relay items are evicted oldest-first immediately and
    /// on every future acceptance.
    pub fn set_relay_limit(&mut self, limit: Option<usize>) {
        self.relay_limit = limit;
        self.enforce_relay_limit();
    }

    /// The configured relay storage cap.
    pub fn relay_limit(&self) -> Option<usize> {
        self.relay_limit
    }

    /// This replica's identity.
    pub fn id(&self) -> ReplicaId {
        self.id
    }

    /// The replica's current filter.
    pub fn filter(&self) -> &Filter {
        &self.filter
    }

    /// Replaces the filter, reclassifying stored items. Items that leave
    /// the filter are retained as push-out/relay items (they may still need
    /// to reach other replicas); items that enter it become regular stored
    /// items.
    pub fn set_filter(&mut self, filter: Filter) {
        self.filter = filter;
        self.store.reclassify(self.id, &self.filter);
        self.enforce_relay_limit();
    }

    /// The replica's knowledge: every version it has learned.
    pub fn knowledge(&self) -> &Knowledge {
        &self.knowledge
    }

    /// Activity counters.
    pub fn stats(&self) -> &ReplicaStats {
        &self.stats
    }

    /// The conflicts merged since the log was last drained. Applications
    /// that care about concurrent writes inspect (and possibly
    /// re-reconcile) these; the merge itself is already deterministic.
    pub fn conflicts(&self) -> &[ConflictRecord] {
        &self.conflict_log
    }

    /// Drains the conflict log.
    pub fn take_conflicts(&mut self) -> Vec<ConflictRecord> {
        std::mem::take(&mut self.conflict_log)
    }

    /// Creates a new item with the given attributes and payload, stamping a
    /// fresh id and version. The item is stored regardless of whether it
    /// matches the local filter (out-of-filter creations go to the push-out
    /// store).
    ///
    /// # Errors
    ///
    /// Currently infallible in practice; returns `Result` for forward
    /// compatibility with storage backends that can fail.
    pub fn insert(
        &mut self,
        attrs: AttributeMap,
        payload: impl Into<Payload>,
    ) -> Result<ItemId, PfrError> {
        self.next_item_seq += 1;
        let id = ItemId::new(self.id, self.next_item_seq);
        let version = self.next_version();
        let item = Item::builder(id, version)
            .attrs(attrs)
            .payload(payload)
            .build();
        let kind = classify(&item, self.id, &self.filter);
        self.store.put(item, kind, SimTime::ZERO);
        self.stats.inserted += 1;
        Ok(id)
    }

    /// Updates an item's attributes and payload, stamping a new version
    /// that supersedes the stored one.
    ///
    /// # Errors
    ///
    /// Returns [`PfrError::NotStored`] if the item is not in the store.
    pub fn update(
        &mut self,
        id: ItemId,
        attrs: AttributeMap,
        payload: impl Into<Payload>,
    ) -> Result<Version, PfrError> {
        let version = self.next_version();
        let stored = self.store.get(id).ok_or(PfrError::NotStored(id))?;
        let successor = stored.item.successor(version, attrs, payload, false);
        let received_at = stored.received_at;
        let kind = classify(&successor, self.id, &self.filter);
        self.store.put(successor, kind, received_at);
        self.stats.updated += 1;
        self.enforce_relay_limit();
        Ok(version)
    }

    /// Deletes an item by writing a tombstone version. The tombstone keeps
    /// the item's attributes (so it continues to match the same filters and
    /// propagates to the same replicas, clearing their copies) but drops
    /// the payload.
    ///
    /// # Errors
    ///
    /// Returns [`PfrError::NotStored`] if the item is not in the store.
    pub fn delete(&mut self, id: ItemId) -> Result<Version, PfrError> {
        let version = self.next_version();
        let stored = self.store.get(id).ok_or(PfrError::NotStored(id))?;
        // The tombstone shares the predecessor's attribute map (one Arc
        // bump) and the global empty payload: deleting allocates nothing
        // proportional to the item.
        let tombstone =
            stored
                .item
                .successor(version, stored.item.attrs_shared(), Payload::empty(), true);
        let received_at = stored.received_at;
        let kind = classify(&tombstone, self.id, &self.filter);
        self.store.put(tombstone, kind, received_at);
        self.stats.updated += 1;
        Ok(version)
    }

    fn next_version(&mut self) -> Version {
        self.next_version_counter += 1;
        let version = Version::new(self.id, self.next_version_counter);
        // A replica observes its own writes in order: prefix knowledge.
        self.knowledge
            .insert_prefix(self.id, self.next_version_counter);
        version
    }

    /// Looks up a stored item.
    pub fn item(&self, id: ItemId) -> Option<&Item> {
        self.store.get(id).map(|s| &s.item)
    }

    /// Returns whether the item is stored here.
    pub fn contains_item(&self, id: ItemId) -> bool {
        self.store.contains(id)
    }

    /// Where the item is held, if stored.
    pub fn store_kind(&self, id: ItemId) -> Option<StoreKind> {
        self.store.get(id).map(|s| s.kind)
    }

    /// When the item arrived (for locally created items,
    /// [`SimTime::ZERO`]).
    pub fn received_at(&self, id: ItemId) -> Option<SimTime> {
        self.store.get(id).map(|s| s.received_at)
    }

    /// Iterates over all stored items (any kind), in item-id order.
    pub fn iter_items(&self) -> impl Iterator<Item = &Item> {
        self.store.iter().map(|s| &s.item)
    }

    /// Iterates over stored items of one kind.
    pub fn iter_items_of_kind(&self, kind: StoreKind) -> impl Iterator<Item = &Item> + '_ {
        self.store
            .iter()
            .filter(move |s| s.kind == kind)
            .map(|s| &s.item)
    }

    /// Ids of all stored items.
    pub fn item_ids(&self) -> Vec<ItemId> {
        self.store.ids()
    }

    /// Iterates over live (non-tombstone) stored items matching `filter` —
    /// the local query interface applications read through. The filter
    /// need not be related to the replica's own subscription filter.
    ///
    /// # Examples
    ///
    /// ```
    /// use pfr::{AttributeMap, Filter, Replica, ReplicaId};
    ///
    /// let mut r = Replica::new(ReplicaId::new(1), Filter::All);
    /// let mut attrs = AttributeMap::new();
    /// attrs.set("topic", "sports");
    /// r.insert(attrs, vec![])?;
    /// let query = Filter::parse(r#"topic = "sports""#)?;
    /// assert_eq!(r.query(&query).count(), 1);
    /// # Ok::<(), pfr::PfrError>(())
    /// ```
    pub fn query<'a>(&'a self, filter: &'a Filter) -> impl Iterator<Item = &'a Item> + 'a {
        self.store
            .iter()
            .map(|s| &s.item)
            .filter(|item| !item.is_deleted())
            .filter(move |item| filter.matches(item))
    }

    /// Number of stored items (including tombstones).
    pub fn item_count(&self) -> usize {
        self.store.len()
    }

    /// Number of live relay messages currently held (the quantity bounded
    /// by [`Replica::set_relay_limit`]).
    pub fn relay_load(&self) -> usize {
        self.store.relay_load()
    }

    /// Sets a transient (per-copy) attribute on a stored item **without**
    /// creating a new version — the "internal interface" the paper's Spray
    /// and Wait policy uses to adjust its copy count locally (§V-C2).
    ///
    /// # Errors
    ///
    /// Returns [`PfrError::NotStored`] if the item is not in the store.
    pub fn set_transient(
        &mut self,
        id: ItemId,
        name: impl Into<String>,
        value: impl Into<Value>,
    ) -> Result<(), PfrError> {
        let stored = self.store.get_mut(id).ok_or(PfrError::NotStored(id))?;
        stored.item.transient_mut().set(name.into(), value);
        Ok(())
    }

    /// Removes a relay item outright (used by policies that learn, through
    /// acknowledgements, that a message has been delivered). The version
    /// stays in knowledge, so the copy will not be accepted again. Returns
    /// `true` if something was removed; in-filter and push-out items are
    /// never removed by this call.
    pub fn purge_relay(&mut self, id: ItemId) -> bool {
        if self.store.get(id).map(|s| s.kind) == Some(StoreKind::Relay) {
            self.store.remove(id).is_some()
        } else {
            false
        }
    }

    /// Ids of stored items whose current version is not contained in
    /// `knowledge` — the candidate set a sync source offers a target.
    ///
    /// Answered from the store's version index: per origin, only the
    /// counter suffix beyond the requester's knowledge vector is walked,
    /// so the cost scales with the *unknown* versions rather than the
    /// store size. Results are identical (including order) to the full
    /// scan, which is kept as [`Replica::versions_unknown_to_scan`].
    pub fn versions_unknown_to(&self, knowledge: &Knowledge) -> Vec<ItemId> {
        let mut ids = Vec::new();
        self.versions_unknown_to_into(knowledge, &mut ids);
        ids
    }

    /// In-place variant of [`Replica::versions_unknown_to`]: clears `ids`
    /// and fills it with the candidate set. The sync hot path calls this
    /// with a reused per-replica buffer so steady-state (zero-candidate)
    /// encounters allocate nothing.
    pub(crate) fn versions_unknown_to_into(&self, knowledge: &Knowledge, ids: &mut Vec<ItemId>) {
        if self.candidate_scan {
            ids.clear();
            ids.extend(
                self.store
                    .iter()
                    .filter(|s| !knowledge.contains(s.item.version()))
                    .map(|s| s.item.id()),
            );
            return;
        }
        self.store.versions_unknown_to_into(knowledge, ids);
    }

    /// The current version of every stored item (digest mode screens
    /// this set against a peer's Bloom summary).
    pub(crate) fn stored_versions(&self) -> impl Iterator<Item = Version> + '_ {
        self.store.current_versions()
    }

    /// Whether `knowledge`'s vector watermarks cover every stored
    /// version (see [`crate::store`]'s `covered_by`); lets the sync path
    /// skip the candidate walk entirely.
    pub(crate) fn store_covered_by(&self, knowledge: &Knowledge) -> bool {
        // The scan knob emulates the pre-index system, which had no
        // cheap coverage check; keep that baseline honest by not
        // short-circuiting its full scans from the index.
        !self.candidate_scan && self.store.covered_by(knowledge)
    }

    /// Detaches the reusable sync-selection buffers (see
    /// [`crate::sync::SyncScratch`]); pair with
    /// [`Replica::restore_sync_scratch`].
    pub(crate) fn take_sync_scratch(&mut self) -> crate::sync::SyncScratch {
        std::mem::take(&mut self.sync_scratch)
    }

    /// Returns buffers taken with [`Replica::take_sync_scratch`] so the
    /// next sync reuses their capacity.
    pub(crate) fn restore_sync_scratch(&mut self, scratch: crate::sync::SyncScratch) {
        self.sync_scratch = scratch;
    }

    /// Hands a drained batch-entry buffer back for reuse by the next
    /// [`crate::sync::prepare_batch`] on this replica.
    pub(crate) fn recycle_batch_entries(&mut self, entries: Vec<crate::sync::BatchEntry>) {
        self.sync_scratch.entries = entries;
    }

    /// Reference implementation of [`Replica::versions_unknown_to`]: a
    /// full scan of the store. Property tests assert the indexed path
    /// returns exactly these results; the `macro_emu` benchmark uses it
    /// (via [`Replica::set_candidate_scan`]) as the pre-index baseline.
    pub fn versions_unknown_to_scan(&self, knowledge: &Knowledge) -> Vec<ItemId> {
        self.store
            .iter()
            .filter(|s| !knowledge.contains(s.item.version()))
            .map(|s| s.item.id())
            .collect()
    }

    /// Forces candidate selection back to the pre-index full-scan path
    /// and disables the filter-match memo. The two paths are equivalent
    /// (property-tested); this knob exists so benchmarks and validation
    /// runs can compare them within one process. Off by default.
    pub fn set_candidate_scan(&mut self, scan: bool) {
        self.candidate_scan = scan;
    }

    /// Forces copies prepared for transmission to be detached into private
    /// allocations (fresh payload buffer, un-interned attribute strings),
    /// emulating the pre-copy-on-write data plane. The shared and owned
    /// paths are behavior-identical (property-tested); this knob exists so
    /// benchmarks and validation runs can compare their allocation and
    /// memory profiles within one process. Off by default.
    pub fn set_owned_copies(&mut self, owned: bool) {
        self.owned_copies = owned;
    }

    /// Whether transmitted copies are detached into private allocations
    /// (see [`Replica::set_owned_copies`]).
    pub fn owned_copies(&self) -> bool {
        self.owned_copies
    }

    /// Resolves one sync candidate in a single store lookup: whether
    /// `filter` matches the stored item, whether that verdict came from
    /// the memo, and the stored payload length. `fingerprint` must be
    /// `filter.fingerprint()` (hoisted by the caller — computing it
    /// canonicalizes the filter, so once per batch, not per item).
    /// Returns `None` when the item is not stored.
    pub(crate) fn resolve_candidate(
        &mut self,
        filter: &Filter,
        fingerprint: u64,
        id: ItemId,
    ) -> Option<CandidateInfo> {
        let stored = self.store.get(id)?;
        let payload_len = stored.item.payload().len();
        if self.candidate_scan {
            return Some(CandidateInfo {
                matched: filter.matches(&stored.item),
                memo_hit: false,
                payload_len,
            });
        }
        let key = (fingerprint, stored.item.version());
        if let Some(&matched) = self.match_memo.get(&key) {
            return Some(CandidateInfo {
                matched,
                memo_hit: true,
                payload_len,
            });
        }
        let matched = filter.matches(&stored.item);
        if self.match_memo.len() >= MATCH_MEMO_CAP {
            self.match_memo.clear();
        }
        self.match_memo.insert(key, matched);
        Some(CandidateInfo {
            matched,
            memo_hit: false,
            payload_len,
        })
    }

    /// Offers a remote item copy to this replica, enforcing at-most-once
    /// delivery and causal supersession. This is the receive half of the
    /// sync protocol; applications normally go through
    /// [`crate::sync::apply_batch`].
    pub fn apply_remote(&mut self, incoming: Item, now: SimTime) -> ApplyOutcome {
        if self.knowledge.contains(incoming.version()) {
            self.stats.duplicates_rejected += 1;
            return ApplyOutcome::Duplicate;
        }
        self.knowledge.insert(incoming.version());
        for ancestor in incoming.ancestors() {
            self.knowledge.insert(ancestor);
        }

        let kind = classify(&incoming, self.id, &self.filter);
        let outcome = match self.store.get(incoming.id()) {
            None => {
                let delivered = kind == StoreKind::InFilter && !incoming.is_deleted();
                self.store.put(incoming, kind, now);
                self.record_receipt(kind);
                ApplyOutcome::Accepted { delivered, kind }
            }
            Some(stored) => match incoming.relation_to(&stored.item) {
                CausalRelation::Equal | CausalRelation::SupersededBy => {
                    self.stats.stale_ignored += 1;
                    ApplyOutcome::Stale
                }
                CausalRelation::Supersedes => {
                    let was_visible =
                        stored.kind == StoreKind::InFilter && !stored.item.is_deleted();
                    let received_at = stored.received_at;
                    let delivered =
                        kind == StoreKind::InFilter && !incoming.is_deleted() && !was_visible;
                    self.store.put(incoming, kind, received_at);
                    self.record_receipt(kind);
                    ApplyOutcome::Accepted { delivered, kind }
                }
                CausalRelation::Concurrent => {
                    let received_at = stored.received_at;
                    let local_version = stored.item.version();
                    let incoming_version = incoming.version();
                    let merged = stored.item.clone().merge_concurrent(incoming);
                    // The merge result supersedes both inputs; make sure its
                    // identity version is known too (it may be the local
                    // version, already known, or the remote one, just added).
                    self.knowledge.insert(merged.version());
                    let winner = merged.version();
                    let loser = if winner == local_version {
                        incoming_version
                    } else {
                        local_version
                    };
                    self.conflict_log.push(ConflictRecord {
                        id: merged.id(),
                        winner,
                        loser,
                        at: now,
                    });
                    let kind = classify(&merged, self.id, &self.filter);
                    self.store.put(merged, kind, received_at);
                    self.stats.conflicts_merged += 1;
                    ApplyOutcome::ConflictMerged
                }
            },
        };
        self.enforce_relay_limit();
        outcome
    }

    fn record_receipt(&mut self, kind: StoreKind) {
        match kind {
            StoreKind::InFilter => self.stats.received_in_filter += 1,
            StoreKind::Relay => self.stats.received_relay += 1,
            StoreKind::PushOut => {
                // Receiving a copy of an item we originated is possible after
                // a remote update; count it as relay traffic.
                self.stats.received_relay += 1;
            }
        }
    }

    /// Raw item-id allocation counter (snapshot support).
    pub(crate) fn next_item_seq_raw(&self) -> u64 {
        self.next_item_seq
    }

    /// Raw version-counter allocation state (snapshot support).
    pub(crate) fn next_version_counter_raw(&self) -> u64 {
        self.next_version_counter
    }

    /// Relay items in eviction (arrival) order (snapshot support).
    pub(crate) fn relay_fifo_order(&self) -> Vec<ItemId> {
        self.store.relay_fifo_order()
    }

    /// Rebuilds a replica from snapshot parts.
    #[allow(clippy::too_many_arguments)]
    pub(crate) fn from_parts(
        id: ReplicaId,
        filter: Filter,
        knowledge: Knowledge,
        next_item_seq: u64,
        next_version_counter: u64,
        relay_limit: Option<usize>,
        items: Vec<(Item, StoreKind, SimTime)>,
        relay_fifo: Vec<ItemId>,
    ) -> Replica {
        let mut replica = Replica {
            id,
            filter,
            knowledge,
            store: ItemStore::from_parts(items, relay_fifo),
            next_item_seq,
            next_version_counter,
            relay_limit,
            eviction: EvictionMode::default(),
            stats: ReplicaStats::default(),
            conflict_log: Vec::new(),
            obs: Obs::none(),
            match_memo: HashMap::new(),
            candidate_scan: false,
            owned_copies: false,
            sync_scratch: crate::sync::SyncScratch::default(),
        };
        replica.enforce_relay_limit();
        replica
    }

    fn enforce_relay_limit(&mut self) {
        let Some(limit) = self.relay_limit else {
            return;
        };
        while self.store.relay_load() > limit {
            let Some(evicted) = self.store.evict_oldest_relay() else {
                break;
            };
            self.stats.evictions += 1;
            let replica = self.id.as_u64();
            let id = evicted.item.id();
            self.obs.emit(|| Event::ItemEvicted {
                replica,
                origin: id.origin().as_u64(),
                seq: id.seq(),
            });
            self.obs.emit(|| Event::MessageDropped {
                replica,
                origin: id.origin().as_u64(),
                seq: id.seq(),
                reason: DropReason::Evicted,
            });
        }
        let _ = self.eviction; // single-mode today; field kept for API stability
    }
}

impl fmt::Debug for Replica {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Replica")
            .field("id", &self.id)
            .field("filter", &format_args!("{}", self.filter))
            .field("items", &self.store.len())
            .field("knowledge", &self.knowledge)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rid(n: u64) -> ReplicaId {
        ReplicaId::new(n)
    }

    fn dest_attrs(dest: &str) -> AttributeMap {
        let mut a = AttributeMap::new();
        a.set("dest", dest);
        a
    }

    fn replica(n: u64, addr: &str) -> Replica {
        Replica::new(rid(n), Filter::address("dest", addr))
    }

    #[test]
    fn insert_classifies_by_filter() {
        let mut r = replica(1, "me");
        let own = r.insert(dest_attrs("me"), vec![]).unwrap();
        let out = r.insert(dest_attrs("you"), vec![]).unwrap();
        assert_eq!(r.store_kind(own), Some(StoreKind::InFilter));
        assert_eq!(r.store_kind(out), Some(StoreKind::PushOut));
        assert_eq!(r.stats().inserted, 2);
    }

    #[test]
    fn own_writes_enter_knowledge_as_prefix() {
        let mut r = replica(1, "me");
        for _ in 0..5 {
            r.insert(dest_attrs("x"), vec![]).unwrap();
        }
        assert_eq!(r.knowledge().base_counter(rid(1)), 5);
        assert_eq!(r.knowledge().exception_count(), 0);
    }

    #[test]
    fn update_supersedes_and_delete_tombstones() {
        let mut r = replica(1, "me");
        let id = r.insert(dest_attrs("me"), b"v1".to_vec()).unwrap();
        let v1 = r.item(id).unwrap().version();
        r.update(id, dest_attrs("me"), b"v2".to_vec()).unwrap();
        let item = r.item(id).unwrap();
        assert_eq!(item.payload(), b"v2");
        assert!(item.knows_version(v1));

        r.delete(id).unwrap();
        let item = r.item(id).unwrap();
        assert!(item.is_deleted());
        assert!(item.payload().is_empty());
        assert_eq!(
            item.attrs().get_str("dest"),
            Some("me"),
            "tombstone keeps attributes so it keeps matching filters"
        );
    }

    #[test]
    fn update_missing_item_errors() {
        let mut r = replica(1, "me");
        let missing = ItemId::new(rid(9), 1);
        assert_eq!(
            r.update(missing, AttributeMap::new(), vec![]),
            Err(PfrError::NotStored(missing))
        );
        assert_eq!(r.delete(missing), Err(PfrError::NotStored(missing)));
    }

    #[test]
    fn apply_remote_at_most_once() {
        let mut a = replica(1, "a");
        let mut b = replica(2, "b");
        let id = a.insert(dest_attrs("b"), b"m".to_vec()).unwrap();
        let item = a.item(id).unwrap().clone();

        let first = b.apply_remote(item.clone(), SimTime::ZERO);
        assert_eq!(
            first,
            ApplyOutcome::Accepted {
                delivered: true,
                kind: StoreKind::InFilter
            }
        );
        let second = b.apply_remote(item, SimTime::ZERO);
        assert_eq!(second, ApplyOutcome::Duplicate);
        assert_eq!(b.stats().duplicates_rejected, 1);
        assert_eq!(b.stats().received_in_filter, 1);
    }

    #[test]
    fn apply_remote_stale_and_newer() {
        let mut a = replica(1, "a");
        let mut b = replica(2, "b");
        let id = a.insert(dest_attrs("b"), b"v1".to_vec()).unwrap();
        let old = a.item(id).unwrap().clone();
        a.update(id, dest_attrs("b"), b"v2".to_vec()).unwrap();
        let new = a.item(id).unwrap().clone();

        // New version arrives first. Accepting it also records its
        // ancestors in knowledge, so the old copy is rejected as a
        // duplicate before any store comparison.
        assert!(matches!(
            b.apply_remote(new, SimTime::ZERO),
            ApplyOutcome::Accepted { .. }
        ));
        assert_eq!(b.apply_remote(old, SimTime::ZERO), ApplyOutcome::Duplicate);
        assert_eq!(b.item(id).unwrap().payload(), b"v2");
    }

    #[test]
    fn concurrent_updates_merge_deterministically() {
        let mut origin = replica(1, "x");
        let id = origin.insert(dest_attrs("c"), b"base".to_vec()).unwrap();
        let base = origin.item(id).unwrap().clone();

        // Two replicas independently update the same base copy.
        let mut r2 = replica(2, "x");
        let mut r3 = replica(3, "x");
        r2.apply_remote(base.clone(), SimTime::ZERO);
        r3.apply_remote(base.clone(), SimTime::ZERO);
        r2.update(id, dest_attrs("c"), b"from2".to_vec()).unwrap();
        r3.update(id, dest_attrs("c"), b"from3".to_vec()).unwrap();
        let c2 = r2.item(id).unwrap().clone();
        let c3 = r3.item(id).unwrap().clone();
        let (c2_version, c3_version) = (c2.version(), c3.version());

        // Deliver both to two fresh replicas in opposite orders.
        let mut x = replica(4, "x");
        let mut y = replica(5, "x");
        x.apply_remote(c2.clone(), SimTime::ZERO);
        assert_eq!(
            x.apply_remote(c3.clone(), SimTime::ZERO),
            ApplyOutcome::ConflictMerged
        );
        y.apply_remote(c3, SimTime::ZERO);
        assert_eq!(
            y.apply_remote(c2, SimTime::ZERO),
            ApplyOutcome::ConflictMerged
        );

        assert_eq!(
            x.item(id).unwrap().payload(),
            y.item(id).unwrap().payload(),
            "conflict resolution is order-independent"
        );
        assert_eq!(x.stats().conflicts_merged, 1);

        // The conflict is observable and drainable.
        assert_eq!(x.conflicts().len(), 1);
        let record = x.conflicts()[0];
        assert_eq!(record.id, id);
        assert_eq!(record.winner, c3_version.max(c2_version));
        assert_eq!(record.loser, c3_version.min(c2_version));
        let drained = x.take_conflicts();
        assert_eq!(drained.len(), 1);
        assert!(x.conflicts().is_empty());
    }

    #[test]
    fn versions_unknown_to_respects_knowledge() {
        let mut a = replica(1, "a");
        let id1 = a.insert(dest_attrs("b"), vec![]).unwrap();
        let _id2 = a.insert(dest_attrs("c"), vec![]).unwrap();
        let mut k = Knowledge::new();
        assert_eq!(a.versions_unknown_to(&k).len(), 2);
        k.insert(a.item(id1).unwrap().version());
        let unknown = a.versions_unknown_to(&k);
        assert_eq!(unknown.len(), 1);
        assert_ne!(unknown[0], id1);
    }

    #[test]
    fn relay_limit_evicts_fifo() {
        let mut c = replica(3, "c");
        c.set_relay_limit(Some(2));
        // Three foreign out-of-filter items arrive.
        let mut a = replica(1, "a");
        for dest in ["x", "y", "z"] {
            let id = a.insert(dest_attrs(dest), vec![]).unwrap();
            let item = a.item(id).unwrap().clone();
            c.apply_remote(item, SimTime::ZERO);
        }
        assert_eq!(c.relay_load(), 2);
        assert_eq!(c.stats().evictions, 1);
        // The oldest (dest=x) was evicted.
        let dests: Vec<&str> = c
            .iter_items()
            .filter_map(|i| i.attrs().get_str("dest"))
            .collect();
        assert!(!dests.contains(&"x"));
        // Knowledge is retained: re-offering the evicted copy is a duplicate.
        let evicted = a
            .iter_items()
            .find(|i| i.attrs().get_str("dest") == Some("x"))
            .unwrap()
            .clone();
        assert_eq!(
            c.apply_remote(evicted, SimTime::ZERO),
            ApplyOutcome::Duplicate
        );
    }

    #[test]
    fn relay_limit_ignores_own_and_in_filter_items() {
        let mut c = replica(3, "c");
        c.set_relay_limit(Some(0));
        // Own push-out item: not evictable.
        let own = c.insert(dest_attrs("elsewhere"), vec![]).unwrap();
        // In-filter foreign item: not evictable.
        let mut a = replica(1, "a");
        let inbound = a.insert(dest_attrs("c"), vec![]).unwrap();
        let item = a.item(inbound).unwrap().clone();
        c.apply_remote(item, SimTime::ZERO);
        assert!(c.contains_item(own));
        assert!(c.contains_item(inbound));
        assert_eq!(c.stats().evictions, 0);
    }

    #[test]
    fn set_transient_does_not_bump_version() {
        let mut r = replica(1, "me");
        let id = r.insert(dest_attrs("you"), vec![]).unwrap();
        let v = r.item(id).unwrap().version();
        r.set_transient(id, "ttl", 9i64).unwrap();
        assert_eq!(r.item(id).unwrap().version(), v);
        assert_eq!(r.item(id).unwrap().transient().get_i64("ttl"), Some(9));
        let missing = ItemId::new(rid(9), 1);
        assert!(r.set_transient(missing, "x", 1i64).is_err());
    }

    #[test]
    fn purge_relay_only_touches_relay_items() {
        let mut c = replica(3, "c");
        let own = c.insert(dest_attrs("me"), vec![]).unwrap();
        assert!(!c.purge_relay(own), "push-out item not purgeable");
        let mut a = replica(1, "a");
        let id = a.insert(dest_attrs("z"), vec![]).unwrap();
        c.apply_remote(a.item(id).unwrap().clone(), SimTime::ZERO);
        assert!(c.purge_relay(id));
        assert!(!c.contains_item(id));
        assert!(!c.purge_relay(id), "already gone");
    }

    #[test]
    fn set_filter_reclassifies() {
        let mut c = replica(3, "c");
        let mut a = replica(1, "a");
        let id = a.insert(dest_attrs("d"), vec![]).unwrap();
        c.apply_remote(a.item(id).unwrap().clone(), SimTime::ZERO);
        assert_eq!(c.store_kind(id), Some(StoreKind::Relay));
        c.set_filter(Filter::any_address("dest", ["c", "d"]));
        assert_eq!(c.store_kind(id), Some(StoreKind::InFilter));
    }

    #[test]
    fn query_is_independent_of_subscription_filter() {
        let mut r = replica(1, "me");
        let a = r.insert(dest_attrs("me"), vec![]).unwrap();
        let b = r.insert(dest_attrs("you"), vec![]).unwrap();
        let dead = r.insert(dest_attrs("me"), vec![]).unwrap();
        r.delete(dead).unwrap();

        let all = Filter::All;
        let ids: Vec<ItemId> = r.query(&all).map(|i| i.id()).collect();
        assert_eq!(ids, vec![a, b], "tombstones excluded, filter ignored");

        let only_you = Filter::address("dest", "you");
        assert_eq!(r.query(&only_you).count(), 1);
        assert_eq!(r.query(&Filter::None).count(), 0);
    }

    #[test]
    fn debug_shows_identity_and_filter() {
        let r = replica(7, "me");
        let s = format!("{r:?}");
        assert!(s.contains("R7"));
        assert!(s.contains("dest"));
    }
}
