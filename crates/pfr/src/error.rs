//! Error types for the PFR substrate.

use std::fmt;

use crate::id::{ItemId, ReplicaId};

/// Errors produced by the replication substrate.
///
/// Every variant carries enough context to identify the offending entity
/// (C-GOOD-ERR); all variants implement [`std::error::Error`].
#[derive(Clone, Debug, PartialEq)]
#[non_exhaustive]
pub enum PfrError {
    /// An attribute value was rejected (e.g. contained `NaN`).
    InvalidAttribute {
        /// Attribute name.
        name: String,
        /// Human-readable rejection reason.
        reason: String,
    },
    /// The referenced item does not exist in the replica's store.
    UnknownItem(ItemId),
    /// An operation that must be performed by the item's origin (or any
    /// writer) was attempted on a replica that cannot see the item.
    NotStored(ItemId),
    /// A filter expression failed to parse.
    FilterParse {
        /// Byte offset into the source text where parsing failed.
        offset: usize,
        /// What went wrong.
        message: String,
    },
    /// A sync message referenced a replica inconsistently (e.g. a batch
    /// claiming to come from a different source than the session's).
    ProtocolViolation {
        /// The replica that produced the bad message.
        from: ReplicaId,
        /// What was violated.
        message: String,
    },
    /// A replica snapshot could not be decoded (corrupt bytes or an
    /// unsupported snapshot version).
    SnapshotDecode {
        /// What went wrong.
        message: String,
    },
}

impl fmt::Display for PfrError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PfrError::InvalidAttribute { name, reason } => {
                write!(f, "invalid attribute {name:?}: {reason}")
            }
            PfrError::UnknownItem(id) => write!(f, "unknown item {id}"),
            PfrError::NotStored(id) => write!(f, "item {id} is not stored on this replica"),
            PfrError::FilterParse { offset, message } => {
                write!(f, "filter parse error at byte {offset}: {message}")
            }
            PfrError::ProtocolViolation { from, message } => {
                write!(f, "protocol violation from {from}: {message}")
            }
            PfrError::SnapshotDecode { message } => {
                write!(f, "snapshot decode failed: {message}")
            }
        }
    }
}

impl std::error::Error for PfrError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_mentions_context() {
        let e = PfrError::UnknownItem(ItemId::new(ReplicaId::new(1), 2));
        assert!(e.to_string().contains("R1#2"));
        let e = PfrError::FilterParse {
            offset: 7,
            message: "unexpected token".into(),
        };
        assert!(e.to_string().contains("byte 7"));
        let e = PfrError::ProtocolViolation {
            from: ReplicaId::new(3),
            message: "bad batch".into(),
        };
        assert!(e.to_string().contains("R3"));
    }

    #[test]
    fn is_std_error() {
        fn assert_err<E: std::error::Error>() {}
        assert_err::<PfrError>();
    }
}
