//! Error types for the PFR substrate.

use std::fmt;

use crate::id::{ItemId, ReplicaId};

/// Errors produced by the replication substrate.
///
/// Every variant carries enough context to identify the offending entity
/// (C-GOOD-ERR); all variants implement [`std::error::Error`].
#[derive(Clone, Debug, PartialEq)]
#[non_exhaustive]
pub enum PfrError {
    /// An attribute value was rejected (e.g. contained `NaN`).
    InvalidAttribute {
        /// Attribute name.
        name: String,
        /// Human-readable rejection reason.
        reason: String,
    },
    /// The referenced item does not exist in the replica's store.
    UnknownItem(ItemId),
    /// An operation that must be performed by the item's origin (or any
    /// writer) was attempted on a replica that cannot see the item.
    NotStored(ItemId),
    /// A filter expression failed to parse.
    FilterParse {
        /// Byte offset into the source text where parsing failed.
        offset: usize,
        /// What went wrong.
        message: String,
    },
    /// A sync message referenced a replica inconsistently (e.g. a batch
    /// claiming to come from a different source than the session's).
    ProtocolViolation {
        /// The replica that produced the bad message.
        from: ReplicaId,
        /// What was violated.
        message: String,
    },
    /// A replica snapshot could not be decoded (corrupt bytes inside a
    /// field). Structural envelope problems — an unknown format version,
    /// garbage after the last field — are the typed
    /// [`PfrError::BadSnapshot`] instead.
    SnapshotDecode {
        /// What went wrong.
        message: String,
    },
    /// A snapshot's envelope is wrong: the leading version byte names a
    /// format this build does not speak, or decoding finished with bytes
    /// left over (trailing garbage appended to an otherwise valid
    /// snapshot). Unlike [`PfrError::SnapshotDecode`], both cases are
    /// machine-inspectable — a caller can distinguish "newer software
    /// wrote this" from "the bytes rotted".
    BadSnapshot {
        /// The unsupported version byte, when that was the problem.
        version: Option<u8>,
        /// Bytes left over after the last field, when that was the
        /// problem (0 when `version` is the culprit).
        trailing: usize,
    },
}

impl fmt::Display for PfrError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PfrError::InvalidAttribute { name, reason } => {
                write!(f, "invalid attribute {name:?}: {reason}")
            }
            PfrError::UnknownItem(id) => write!(f, "unknown item {id}"),
            PfrError::NotStored(id) => write!(f, "item {id} is not stored on this replica"),
            PfrError::FilterParse { offset, message } => {
                write!(f, "filter parse error at byte {offset}: {message}")
            }
            PfrError::ProtocolViolation { from, message } => {
                write!(f, "protocol violation from {from}: {message}")
            }
            PfrError::SnapshotDecode { message } => {
                write!(f, "snapshot decode failed: {message}")
            }
            PfrError::BadSnapshot { version, trailing } => match version {
                Some(v) => write!(f, "bad snapshot: unsupported version {v}"),
                None => write!(f, "bad snapshot: {trailing} trailing bytes"),
            },
        }
    }
}

impl std::error::Error for PfrError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_mentions_context() {
        let e = PfrError::UnknownItem(ItemId::new(ReplicaId::new(1), 2));
        assert!(e.to_string().contains("R1#2"));
        let e = PfrError::FilterParse {
            offset: 7,
            message: "unexpected token".into(),
        };
        assert!(e.to_string().contains("byte 7"));
        let e = PfrError::ProtocolViolation {
            from: ReplicaId::new(3),
            message: "bad batch".into(),
        };
        assert!(e.to_string().contains("R3"));
    }

    #[test]
    fn is_std_error() {
        fn assert_err<E: std::error::Error>() {}
        assert_err::<PfrError>();
    }
}
