//! Simulated wall-clock time.
//!
//! Everything in the workspace — replication, routing policies, traces, the
//! emulation engine — shares this one notion of time so experiment runs are
//! deterministic and independent of the host clock.

use std::fmt;
use std::ops::{Add, AddAssign, Sub};

use serde::{Deserialize, Serialize};

/// A point in simulated time, with one-second resolution.
///
/// `SimTime` counts seconds since the start of an experiment. The trace
/// generators use the convention that second `0` is midnight of day 0, so
/// `SimTime::from_hms(d, h, m, s)` addresses "day *d*, *h*:*m*:*s*".
///
/// # Examples
///
/// ```
/// use pfr::SimTime;
///
/// let morning = SimTime::from_hms(0, 8, 0, 0);
/// let evening = SimTime::from_hms(0, 23, 0, 0);
/// assert_eq!((evening - morning).as_hours_f64(), 15.0);
/// assert_eq!(morning.day(), 0);
/// ```
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize)]
pub struct SimTime(u64);

impl SimTime {
    /// The instant at which every experiment starts.
    pub const ZERO: SimTime = SimTime(0);

    /// Creates a time from raw seconds since the experiment start.
    pub const fn from_secs(secs: u64) -> Self {
        SimTime(secs)
    }

    /// Creates a time from a day number plus hours, minutes, and seconds
    /// within that day.
    pub const fn from_hms(day: u64, hour: u64, min: u64, sec: u64) -> Self {
        SimTime(day * 86_400 + hour * 3_600 + min * 60 + sec)
    }

    /// Seconds since the experiment start.
    pub const fn as_secs(self) -> u64 {
        self.0
    }

    /// The day this instant falls in (day 0 is the first day).
    pub const fn day(self) -> u64 {
        self.0 / 86_400
    }

    /// Seconds elapsed since midnight of the current day.
    pub const fn seconds_into_day(self) -> u64 {
        self.0 % 86_400
    }

    /// Returns the later of two instants.
    pub fn max(self, other: SimTime) -> SimTime {
        if self >= other {
            self
        } else {
            other
        }
    }

    /// The elapsed duration since `earlier`, saturating to zero if `earlier`
    /// is actually later.
    pub fn saturating_since(self, earlier: SimTime) -> SimDuration {
        SimDuration(self.0.saturating_sub(earlier.0))
    }
}

impl fmt::Debug for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "t={}", self.0)
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = self.seconds_into_day();
        write!(
            f,
            "day {} {:02}:{:02}:{:02}",
            self.day(),
            s / 3_600,
            (s % 3_600) / 60,
            s % 60
        )
    }
}

impl Add<SimDuration> for SimTime {
    type Output = SimTime;
    fn add(self, rhs: SimDuration) -> SimTime {
        SimTime(self.0 + rhs.0)
    }
}

impl AddAssign<SimDuration> for SimTime {
    fn add_assign(&mut self, rhs: SimDuration) {
        self.0 += rhs.0;
    }
}

impl Sub<SimTime> for SimTime {
    type Output = SimDuration;
    /// # Panics
    ///
    /// Panics in debug builds if `rhs` is later than `self`; use
    /// [`SimTime::saturating_since`] when order is not guaranteed.
    fn sub(self, rhs: SimTime) -> SimDuration {
        SimDuration(self.0 - rhs.0)
    }
}

/// A span of simulated time, with one-second resolution.
///
/// # Examples
///
/// ```
/// use pfr::SimDuration;
///
/// let d = SimDuration::from_hours(12);
/// assert_eq!(d.as_secs(), 43_200);
/// assert_eq!(d.as_days_f64(), 0.5);
/// ```
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize)]
pub struct SimDuration(u64);

impl SimDuration {
    /// A zero-length span.
    pub const ZERO: SimDuration = SimDuration(0);

    /// Creates a duration from whole seconds.
    pub const fn from_secs(secs: u64) -> Self {
        SimDuration(secs)
    }

    /// Creates a duration from whole minutes.
    pub const fn from_mins(mins: u64) -> Self {
        SimDuration(mins * 60)
    }

    /// Creates a duration from whole hours.
    pub const fn from_hours(hours: u64) -> Self {
        SimDuration(hours * 3_600)
    }

    /// Creates a duration from whole days.
    pub const fn from_days(days: u64) -> Self {
        SimDuration(days * 86_400)
    }

    /// The duration in whole seconds.
    pub const fn as_secs(self) -> u64 {
        self.0
    }

    /// The duration in fractional hours.
    pub fn as_hours_f64(self) -> f64 {
        self.0 as f64 / 3_600.0
    }

    /// The duration in fractional days.
    pub fn as_days_f64(self) -> f64 {
        self.0 as f64 / 86_400.0
    }
}

impl fmt::Debug for SimDuration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}s", self.0)
    }
}

impl fmt::Display for SimDuration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.0.is_multiple_of(86_400) && self.0 > 0 {
            write!(f, "{}d", self.0 / 86_400)
        } else if self.0.is_multiple_of(3_600) && self.0 > 0 {
            write!(f, "{}h", self.0 / 3_600)
        } else {
            write!(f, "{}s", self.0)
        }
    }
}

impl Add for SimDuration {
    type Output = SimDuration;
    fn add(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0 + rhs.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn from_hms_addressing() {
        let t = SimTime::from_hms(2, 8, 30, 15);
        assert_eq!(t.day(), 2);
        assert_eq!(t.seconds_into_day(), 8 * 3_600 + 30 * 60 + 15);
    }

    #[test]
    fn arithmetic() {
        let t = SimTime::from_secs(100);
        let t2 = t + SimDuration::from_secs(50);
        assert_eq!((t2 - t).as_secs(), 50);
        let mut t3 = t;
        t3 += SimDuration::from_mins(1);
        assert_eq!(t3.as_secs(), 160);
    }

    #[test]
    fn saturating_since_never_underflows() {
        let early = SimTime::from_secs(10);
        let late = SimTime::from_secs(30);
        assert_eq!(late.saturating_since(early).as_secs(), 20);
        assert_eq!(early.saturating_since(late), SimDuration::ZERO);
    }

    #[test]
    fn duration_conversions() {
        assert_eq!(SimDuration::from_days(1).as_secs(), 86_400);
        assert_eq!(SimDuration::from_hours(2).as_hours_f64(), 2.0);
        assert!((SimDuration::from_hours(36).as_days_f64() - 1.5).abs() < 1e-12);
    }

    #[test]
    fn display_formats() {
        assert_eq!(
            format!("{}", SimTime::from_hms(1, 9, 5, 0)),
            "day 1 09:05:00"
        );
        assert_eq!(format!("{}", SimDuration::from_days(3)), "3d");
        assert_eq!(format!("{}", SimDuration::from_hours(5)), "5h");
        assert_eq!(format!("{}", SimDuration::from_secs(61)), "61s");
    }

    #[test]
    fn max_picks_later() {
        let a = SimTime::from_secs(5);
        let b = SimTime::from_secs(9);
        assert_eq!(a.max(b), b);
        assert_eq!(b.max(a), b);
    }
}
