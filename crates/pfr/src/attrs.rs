//! Attribute maps: the queryable metadata attached to every item.

use std::collections::BTreeMap;
use std::fmt;

use serde::{Deserialize, Serialize};

use crate::error::PfrError;
use crate::intern::IStr;
use crate::value::Value;

/// An ordered map of attribute names to [`Value`]s.
///
/// Every replicated item carries two attribute maps: the *versioned*
/// attributes written by the application (changing them creates a new item
/// version that replicates everywhere), and the *transient* attributes used
/// by DTN routing policies (TTL, copy counts, hop lists), which travel with
/// each transmitted copy but may be mutated locally without creating a new
/// version — the "host-specific metadata" of the paper's §V-A.
///
/// # Examples
///
/// ```
/// use pfr::{AttributeMap, Value};
///
/// let mut attrs = AttributeMap::new();
/// attrs.set("dest", "bus-7");
/// attrs.set("size", 140i64);
/// assert_eq!(attrs.get("dest"), Some(&Value::from("bus-7")));
/// assert_eq!(attrs.len(), 2);
/// ```
#[derive(Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct AttributeMap {
    entries: BTreeMap<IStr, Value>,
}

impl AttributeMap {
    /// Creates an empty attribute map.
    pub fn new() -> Self {
        AttributeMap::default()
    }

    /// Sets an attribute, replacing any previous value.
    ///
    /// `NaN` floats are silently normalized away by [`AttributeMap::try_set`];
    /// this convenience method panics on them instead.
    ///
    /// # Panics
    ///
    /// Panics if `value` is a `NaN` float (directly or inside a list), since
    /// `NaN` would make filter evaluation non-deterministic.
    pub fn set(&mut self, name: impl Into<IStr>, value: impl Into<Value>) -> &mut Self {
        self.try_set(name, value)
            .expect("attribute value must not contain NaN");
        self
    }

    /// Sets an attribute, rejecting values that would break filter
    /// determinism.
    ///
    /// # Errors
    ///
    /// Returns [`PfrError::InvalidAttribute`] if the value is or contains a
    /// `NaN` float.
    pub fn try_set(
        &mut self,
        name: impl Into<IStr>,
        value: impl Into<Value>,
    ) -> Result<&mut Self, PfrError> {
        let name = name.into();
        let value = value.into();
        if contains_nan(&value) {
            return Err(PfrError::InvalidAttribute {
                name: name.as_str().to_owned(),
                reason: "NaN floats are not allowed in attributes".into(),
            });
        }
        self.entries.insert(name, value);
        Ok(self)
    }

    /// Looks up an attribute by name.
    pub fn get(&self, name: &str) -> Option<&Value> {
        self.entries.get(name)
    }

    /// Removes an attribute, returning its previous value.
    pub fn remove(&mut self, name: &str) -> Option<Value> {
        self.entries.remove(name)
    }

    /// Returns `true` if the attribute is present.
    pub fn contains(&self, name: &str) -> bool {
        self.entries.contains_key(name)
    }

    /// Number of attributes.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Returns `true` if there are no attributes.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Iterates over `(name, value)` pairs in name order.
    pub fn iter(&self) -> impl Iterator<Item = (&str, &Value)> {
        self.entries.iter().map(|(k, v)| (k.as_str(), v))
    }

    /// Convenience: the attribute as a string, if present and a string.
    pub fn get_str(&self, name: &str) -> Option<&str> {
        self.get(name).and_then(Value::as_str)
    }

    /// Convenience: the attribute as an integer, if present and an integer.
    pub fn get_i64(&self, name: &str) -> Option<i64> {
        self.get(name).and_then(Value::as_i64)
    }

    /// Convenience: the attribute as a float, accepting integer values too.
    pub fn get_f64(&self, name: &str) -> Option<f64> {
        match self.get(name)? {
            Value::Float(f) => Some(*f),
            Value::Int(i) => Some(*i as f64),
            _ => None,
        }
    }

    /// A structurally equal copy whose every string — keys and `Str`
    /// values, recursively through lists — is a fresh private allocation
    /// bypassing the interner. Emulates the pre-interning data plane for
    /// A/B benchmarking (`Item::detach_copy`); production code never
    /// needs it.
    pub(crate) fn deep_uninterned(&self) -> AttributeMap {
        fn uninterned(v: &Value) -> Value {
            match v {
                Value::Str(s) => Value::Str(IStr::new_unshared(s)),
                Value::List(l) => Value::List(l.iter().map(uninterned).collect()),
                other => other.clone(),
            }
        }
        AttributeMap {
            entries: self
                .entries
                .iter()
                .map(|(k, v)| (IStr::new_unshared(k), uninterned(v)))
                .collect(),
        }
    }
}

fn contains_nan(value: &Value) -> bool {
    match value {
        Value::Float(f) => f.is_nan(),
        Value::List(l) => l.iter().any(contains_nan),
        _ => false,
    }
}

impl fmt::Debug for AttributeMap {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut m = f.debug_map();
        for (k, v) in &self.entries {
            m.entry(&k, &format_args!("{v}"));
        }
        m.finish()
    }
}

impl<K: Into<IStr>, V: Into<Value>> FromIterator<(K, V)> for AttributeMap {
    fn from_iter<T: IntoIterator<Item = (K, V)>>(iter: T) -> Self {
        let mut attrs = AttributeMap::new();
        for (k, v) in iter {
            attrs.set(k, v);
        }
        attrs
    }
}

impl<K: Into<IStr>, V: Into<Value>> Extend<(K, V)> for AttributeMap {
    fn extend<T: IntoIterator<Item = (K, V)>>(&mut self, iter: T) {
        for (k, v) in iter {
            self.set(k, v);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn set_get_remove() {
        let mut a = AttributeMap::new();
        assert!(a.is_empty());
        a.set("k", 1i64);
        assert!(a.contains("k"));
        assert_eq!(a.get_i64("k"), Some(1));
        assert_eq!(a.remove("k"), Some(Value::Int(1)));
        assert!(!a.contains("k"));
    }

    #[test]
    fn set_replaces_previous_value() {
        let mut a = AttributeMap::new();
        a.set("k", 1i64);
        a.set("k", "two");
        assert_eq!(a.get_str("k"), Some("two"));
        assert_eq!(a.len(), 1);
    }

    #[test]
    fn nan_rejected() {
        let mut a = AttributeMap::new();
        let err = a.try_set("x", f64::NAN).unwrap_err();
        assert!(matches!(err, PfrError::InvalidAttribute { .. }));
        let err = a
            .try_set("x", Value::List(vec![Value::Float(f64::NAN)]))
            .unwrap_err();
        assert!(err.to_string().contains("NaN"));
        assert!(a.is_empty());
    }

    #[test]
    #[should_panic(expected = "NaN")]
    fn set_panics_on_nan() {
        AttributeMap::new().set("x", f64::NAN);
    }

    #[test]
    fn typed_getters() {
        let mut a = AttributeMap::new();
        a.set("s", "hello").set("i", 3i64).set("f", 2.5);
        assert_eq!(a.get_str("s"), Some("hello"));
        assert_eq!(a.get_str("i"), None);
        assert_eq!(a.get_i64("i"), Some(3));
        assert_eq!(a.get_f64("f"), Some(2.5));
        // get_f64 widens integers.
        assert_eq!(a.get_f64("i"), Some(3.0));
    }

    #[test]
    fn from_iterator_and_extend() {
        let mut a: AttributeMap = [("a", 1i64), ("b", 2i64)].into_iter().collect();
        a.extend([("c", 3i64)]);
        assert_eq!(a.len(), 3);
        let names: Vec<&str> = a.iter().map(|(k, _)| k).collect();
        assert_eq!(names, ["a", "b", "c"], "iteration is name-ordered");
    }

    #[test]
    fn debug_is_nonempty() {
        let a: AttributeMap = [("a", 1i64)].into_iter().collect();
        assert!(format!("{a:?}").contains('a'));
        assert!(!format!("{:?}", AttributeMap::new()).is_empty());
    }
}
