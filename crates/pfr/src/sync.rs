//! Pairwise synchronization with pluggable DTN routing extensions.
//!
//! The protocol follows the paper's Figure 4:
//!
//! ```text
//! Target:  routing = ext.generate_request()
//!          send (knowledge, filter, routing) to source
//! Source:  ext.process_request(routing)
//!          for each stored item unknown to target:
//!              include if it matches target's filter, or ext.to_send() says so
//!          sort batch by priority, apply transfer limits
//! Target:  apply each received item, updating knowledge
//! ```
//!
//! Without an extension (the [`NoExtension`] default) this is plain
//! filtered replication: only items matching the target's filter flow.
//! Extensions add out-of-filter forwarding — the paper's pluggable DTN
//! routing policies — without changing the meaning of filters, so eventual
//! filter consistency is preserved (§IV-C).

use std::borrow::Cow;
use std::fmt;
use std::time::Instant;

use obs::{DecisionKind, DropReason, Event};
use serde::{Deserialize, Serialize};

use crate::filter::Filter;
use crate::id::{ItemId, ReplicaId};
use crate::item::Item;
use crate::knowledge::Knowledge;
use crate::replica::{ApplyOutcome, Replica};
use crate::time::SimTime;

/// Opaque routing data carried in a sync request, produced and consumed by
/// a routing extension (e.g. PROPHET's delivery-predictability vector).
///
/// The substrate never interprets the bytes; policies define the encoding.
#[derive(Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct RoutingState(Vec<u8>);

impl RoutingState {
    /// An empty routing state (what [`NoExtension`] produces).
    pub fn empty() -> Self {
        RoutingState(Vec::new())
    }

    /// Wraps encoded routing data.
    pub fn from_bytes(bytes: Vec<u8>) -> Self {
        RoutingState(bytes)
    }

    /// The encoded routing data.
    pub fn as_bytes(&self) -> &[u8] {
        &self.0
    }

    /// Returns `true` if no routing data is present.
    pub fn is_empty(&self) -> bool {
        self.0.is_empty()
    }
}

impl fmt::Debug for RoutingState {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "RoutingState({} bytes)", self.0.len())
    }
}

/// Coarse priority classes for batch ordering (paper §V-B: a "class" value
/// from lowest to highest, plus a real-valued cost to break ties).
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum PriorityClass {
    /// Sent last.
    Lowest,
    /// Below normal.
    Low,
    /// Default for policy-forwarded items.
    Normal,
    /// Above normal.
    High,
    /// Sent first; filter-matched (destination-addressed) items get this.
    Highest,
}

/// A transmission priority: class plus tie-breaking cost (lower cost sends
/// earlier within a class).
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct Priority {
    class: PriorityClass,
    cost: f64,
}

impl Priority {
    /// Creates a priority. `cost` breaks ties within a class: lower cost
    /// transmits earlier. `NaN` costs are treated as `+inf` (sent last).
    pub fn new(class: PriorityClass, cost: f64) -> Self {
        let cost = if cost.is_nan() { f64::INFINITY } else { cost };
        Priority { class, cost }
    }

    /// Normal-class priority with zero cost.
    pub fn normal() -> Self {
        Priority::new(PriorityClass::Normal, 0.0)
    }

    /// The highest priority, used for filter-matched items.
    pub fn highest() -> Self {
        Priority::new(PriorityClass::Highest, 0.0)
    }

    /// The priority class.
    pub fn class(self) -> PriorityClass {
        self.class
    }

    /// The tie-breaking cost.
    pub fn cost(self) -> f64 {
        self.cost
    }

    /// Total order for transmission: higher class first, then lower cost.
    fn sort_key(self) -> (std::cmp::Reverse<PriorityClass>, f64) {
        (std::cmp::Reverse(self.class), self.cost)
    }
}

/// Reusable candidate-selection buffers owned by each [`Replica`].
///
/// [`prepare_batch`] runs once per sync; holding its working vectors on
/// the replica (taken with `mem::take`, returned on exit) makes the
/// steady-state encounter loop allocation-free instead of building and
/// dropping two vectors per batch. Purely an allocation cache: the
/// contents are cleared before every use, so the buffers carry no state
/// between syncs.
#[derive(Clone, Debug, Default)]
pub(crate) struct SyncScratch {
    /// Ids the version index reported as unknown to the requester.
    pub candidates: Vec<ItemId>,
    /// Selection survivors: (id, priority, matched_filter, payload_len).
    pub selected: Vec<(ItemId, Priority, bool, usize)>,
    /// Recycled batch-entry buffer. [`prepare_batch`] moves it into the
    /// outgoing [`SyncBatch`]; the in-process [`sync_with`] path hands the
    /// drained vector back after the target applies the batch, so repeat
    /// syncs between co-located replicas reuse its capacity.
    pub entries: Vec<BatchEntry>,
}

/// A routing policy's verdict on forwarding one out-of-filter item.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum SendDecision {
    /// Do not include the item.
    Skip,
    /// Include the item with the given priority.
    Send(Priority),
}

impl SendDecision {
    /// Converts to an optional priority.
    pub fn priority(self) -> Option<Priority> {
        match self {
            SendDecision::Skip => None,
            SendDecision::Send(p) => Some(p),
        }
    }
}

/// Host-side context handed to a routing extension during a sync.
///
/// Grants the extension the paper's "existing Cimbiosys interfaces": read
/// access to the local store and the internal no-new-version mutation
/// channel for transient metadata.
pub struct HostContext<'a> {
    replica: &'a mut Replica,
    now: SimTime,
    peer: Option<ReplicaId>,
}

impl<'a> HostContext<'a> {
    /// Creates a context for `replica` at simulated time `now`.
    /// `peer` identifies the other endpoint of the sync, when known.
    pub fn new(replica: &'a mut Replica, now: SimTime, peer: Option<ReplicaId>) -> Self {
        HostContext { replica, now, peer }
    }

    /// The local replica's id.
    pub fn id(&self) -> ReplicaId {
        self.replica.id()
    }

    /// The sync partner's id, if known.
    pub fn peer(&self) -> Option<ReplicaId> {
        self.peer
    }

    /// Current simulated time.
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Read access to the local replica.
    pub fn replica(&self) -> &Replica {
        self.replica
    }

    /// Sets a transient attribute on a stored item without bumping its
    /// version (see [`Replica::set_transient`]).
    pub fn set_transient(
        &mut self,
        id: ItemId,
        name: impl Into<String>,
        value: impl Into<crate::Value>,
    ) -> Result<(), crate::PfrError> {
        self.replica.set_transient(id, name, value)
    }

    /// Drops a relay copy (see [`Replica::purge_relay`]). Policies call
    /// this when an acknowledgement proves the message was delivered
    /// elsewhere, so a successful purge reports as an `Acked` drop.
    pub fn purge_relay(&mut self, id: ItemId) -> bool {
        let purged = self.replica.purge_relay(id);
        if purged {
            let replica = self.replica.id().as_u64();
            self.replica.observer().emit(|| Event::MessageDropped {
                replica,
                origin: id.origin().as_u64(),
                seq: id.seq(),
                reason: DropReason::Acked,
            });
        }
        purged
    }
}

impl fmt::Debug for HostContext<'_> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("HostContext")
            .field("id", &self.replica.id())
            .field("peer", &self.peer)
            .field("now", &self.now)
            .finish()
    }
}

/// The pluggable routing extension — the Rust rendering of the paper's
/// `IDTNPolicy` interface (Figure 3) plus an outgoing-copy transform hook.
///
/// All methods have no-op defaults, so the minimal flooding policy is a
/// one-method implementation.
pub trait SyncExtension {
    /// A short stable label identifying the policy in emitted
    /// [`Event::PolicyDecision`]s ("epidemic", "maxprop", ...).
    fn label(&self) -> &'static str {
        "ext"
    }

    /// Called on the **target** when it initiates a sync: returns routing
    /// data to attach to the request (`generateReq()` in the paper).
    fn generate_request(&mut self, cx: &mut HostContext<'_>) -> RoutingState {
        let _ = cx;
        RoutingState::empty()
    }

    /// Called on the **source** when a request arrives: digests the
    /// target's routing data (`processReq()` in the paper).
    fn process_request(&mut self, cx: &mut HostContext<'_>, request: &SyncRequest<'_>) {
        let _ = (cx, request);
    }

    /// Called on the **source** for each item that is unknown to the target
    /// and does **not** match the target's filter: decides whether (and how
    /// urgently) to forward it (`toSend()` in the paper).
    fn to_send(
        &mut self,
        cx: &mut HostContext<'_>,
        item_id: ItemId,
        request: &SyncRequest<'_>,
    ) -> SendDecision {
        let _ = (cx, item_id, request);
        SendDecision::Skip
    }

    /// Called on the **source** for every outgoing copy (filter-matched or
    /// policy-forwarded) just before transmission; mutates the in-flight
    /// copy only (TTL decrement, copy-count halving, hop-list append).
    /// `matched_filter` distinguishes a delivery to the item's destination
    /// from a relay handoff.
    fn prepare_outgoing(
        &mut self,
        cx: &mut HostContext<'_>,
        item: &mut Item,
        target: ReplicaId,
        matched_filter: bool,
    ) {
        let _ = (cx, item, target, matched_filter);
    }

    /// Called on the **target** after a batch is applied, with the ids of
    /// items newly delivered into its filtered store (used e.g. by MaxProp
    /// to originate delivery acknowledgements).
    fn on_delivered(&mut self, cx: &mut HostContext<'_>, delivered: &[ItemId]) {
        let _ = (cx, delivered);
    }
}

/// The trivial extension: plain filtered replication, no out-of-filter
/// forwarding. This is "basic Cimbiosys" in the paper's experiments.
#[derive(Clone, Copy, Debug, Default)]
pub struct NoExtension;

impl SyncExtension for NoExtension {
    fn label(&self) -> &'static str {
        "none"
    }
}

/// A synchronization request, sent by the target to the source.
///
/// Knowledge and filter ride in [`Cow`]s: the in-process path
/// ([`begin_sync`]) borrows both straight from the target replica, so
/// local encounters clone neither; the wire path decodes owned values
/// (`SyncRequest<'static>`).
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct SyncRequest<'a> {
    /// The requesting (target) replica.
    pub target: ReplicaId,
    /// Everything the target already knows; the source sends only versions
    /// outside this set (at-most-once delivery).
    pub knowledge: Cow<'a, Knowledge>,
    /// The target's content filter.
    pub filter: Cow<'a, Filter>,
    /// Policy-defined routing data (paper §V-A requirement 2).
    pub routing: RoutingState,
}

impl SyncRequest<'_> {
    /// Detaches the request from any replica borrow, cloning the
    /// knowledge and filter only if they are still borrowed.
    pub fn into_owned(self) -> SyncRequest<'static> {
        SyncRequest {
            target: self.target,
            knowledge: Cow::Owned(self.knowledge.into_owned()),
            filter: Cow::Owned(self.filter.into_owned()),
            routing: self.routing,
        }
    }
}

/// One item in a sync batch.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct BatchEntry {
    /// The transmitted copy (after any in-flight transforms).
    pub item: Item,
    /// Transmission priority assigned by the filter match or the policy.
    pub priority: Priority,
    /// Whether the item matched the target's filter (as opposed to being
    /// policy-forwarded).
    pub matched_filter: bool,
}

/// An ordered batch of items from source to target.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct SyncBatch {
    /// The sending (source) replica.
    pub source: ReplicaId,
    /// Entries in transmission order (highest priority first).
    pub entries: Vec<BatchEntry>,
    /// Number of candidate items the source declined or cut due to limits,
    /// recorded for experiment accounting.
    pub withheld: usize,
}

/// Transfer limits applied to one sync (the paper's bandwidth constraint
/// allows a single message per encounter in §VI-D).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct SyncLimits {
    /// Maximum number of items transmitted in this batch (`None` =
    /// unlimited).
    pub max_items: Option<usize>,
    /// Maximum total payload bytes transmitted in this batch (`None` =
    /// unlimited). Models an encounter that ends mid-transfer: the batch
    /// is cut at the first item that would exceed the budget, in priority
    /// order, so the highest-priority traffic goes first.
    pub max_payload_bytes: Option<usize>,
}

impl SyncLimits {
    /// No limits: every eligible item is transmitted.
    pub fn unlimited() -> Self {
        SyncLimits::default()
    }

    /// At most `n` items per batch.
    pub fn max_items(n: usize) -> Self {
        SyncLimits {
            max_items: Some(n),
            ..SyncLimits::default()
        }
    }

    /// At most `n` total payload bytes per batch.
    pub fn max_payload_bytes(n: usize) -> Self {
        SyncLimits {
            max_payload_bytes: Some(n),
            ..SyncLimits::default()
        }
    }

    /// Adds a payload-byte cap to these limits.
    pub fn with_max_payload_bytes(mut self, n: usize) -> Self {
        self.max_payload_bytes = Some(n);
        self
    }
}

/// Statistics from applying one sync batch at the target.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
#[non_exhaustive]
pub struct SyncReport {
    /// Items transmitted in the batch.
    pub transmitted: usize,
    /// Items newly visible in the target's filtered store (message
    /// deliveries, in the DTN application).
    pub delivered: usize,
    /// Ids of the newly delivered items.
    pub delivered_ids: Vec<ItemId>,
    /// Items accepted into the relay (or push-out) store for forwarding.
    pub relayed: usize,
    /// Copies ignored as stale.
    pub stale: usize,
    /// Copies rejected as duplicates (should be zero in a correct run).
    pub duplicates: usize,
    /// Concurrent copies merged.
    pub conflicts: usize,
    /// Candidates the source withheld (declined by policy or cut by
    /// limits).
    pub withheld: usize,
}

/// Builds the target's sync request (paper Fig. 4, target side, step 1).
///
/// The returned request borrows the target's knowledge and filter for
/// `'a` — nothing is cloned. Callers that need an owned request (to
/// outlive the replica borrow) can [`SyncRequest::into_owned`] it.
pub fn begin_sync<'a>(
    target: &'a mut Replica,
    ext: &mut dyn SyncExtension,
    now: SimTime,
    source: Option<ReplicaId>,
) -> SyncRequest<'a> {
    let target_id = target.id().as_u64();
    let source_id = source.map(|s| s.as_u64()).unwrap_or(0);
    target.observer().emit(|| Event::SyncStarted {
        target: target_id,
        source: source_id,
        at_secs: now.as_secs(),
    });
    let mut cx = HostContext::new(target, now, source);
    let routing = ext.generate_request(&mut cx);
    let target: &'a Replica = target;
    SyncRequest {
        target: target.id(),
        knowledge: Cow::Borrowed(target.knowledge()),
        filter: Cow::Borrowed(target.filter()),
        routing,
    }
}

/// Builds the source's item batch for a request (paper Fig. 4, source
/// side): processes routing state, selects filter-matched plus
/// policy-forwarded items, sorts by priority, applies limits.
pub fn prepare_batch(
    source: &mut Replica,
    ext: &mut dyn SyncExtension,
    request: &SyncRequest<'_>,
    limits: SyncLimits,
    now: SimTime,
) -> SyncBatch {
    let source_id = source.id();
    let policy = ext.label();
    let target_id = request.target.as_u64();
    // One context serves the whole batch build: request processing,
    // per-candidate policy calls, and outgoing preparation. Candidate
    // resolution reaches the replica through `cx.replica` directly.
    let mut cx = HostContext::new(source, now, Some(request.target));
    ext.process_request(&mut cx, request);
    let routing_bytes = request.routing.as_bytes().len();
    cx.replica.observer().emit(|| Event::PolicyDecision {
        replica: source_id.as_u64(),
        peer: target_id,
        policy,
        kind: DecisionKind::RequestProcessed,
        origin: 0,
        seq: 0,
        cost: routing_bytes as f64,
        at_secs: now.as_secs(),
    });

    // Candidate scan + selection, timed only when an observer is
    // attached (the disabled path never reads the clock, like `Span`).
    let scan_started = cx.replica.observer().enabled().then(Instant::now);
    // The filter fingerprint (a Display render + hash) is only needed to
    // key the match memo; compute it lazily so the common zero-candidate
    // sync pays nothing for it.
    let mut fingerprint: Option<u64> = None;
    // Selection runs in per-replica scratch buffers (returned before this
    // function exits), so the steady-state encounter — every candidate
    // already known, nothing selected — builds no vectors at all.
    let mut scratch = cx.replica.take_sync_scratch();
    if cx.replica.store_covered_by(&request.knowledge) {
        // Watermark short-circuit: every stored version sits at or below
        // the requester's per-origin vector entries, so the candidate
        // walk cannot select anything. This is the steady state between
        // converged peers; skipping the walk makes those encounters
        // O(origins) instead of O(origins + suffix scans).
        scratch.candidates.clear();
    } else {
        cx.replica
            .versions_unknown_to_into(&request.knowledge, &mut scratch.candidates);
    }
    let candidate_count = scratch.candidates.len() as u64;
    let mut memo_hits = 0u64;
    scratch.selected.clear();
    let mut withheld = 0usize;
    for &id in &scratch.candidates {
        // One store lookup resolves filter match, memo state, and the
        // payload length the byte-budget cut needs later.
        let fp = *fingerprint.get_or_insert_with(|| request.filter.fingerprint());
        let (matched, payload_len) = match cx.replica.resolve_candidate(&request.filter, fp, id) {
            Some(info) => {
                memo_hits += info.memo_hit as u64;
                (info.matched, info.payload_len)
            }
            // Vanished mid-build (a policy purged it): let the policy
            // rule on it; the final pass drops it if still gone.
            None => (false, 0),
        };
        if matched {
            scratch
                .selected
                .push((id, Priority::highest(), true, payload_len));
            continue;
        }
        let verdict = ext.to_send(&mut cx, id, request).priority();
        cx.replica.observer().emit(|| Event::PolicyDecision {
            replica: source_id.as_u64(),
            peer: target_id,
            policy,
            kind: match verdict {
                Some(_) => DecisionKind::Forward,
                None => DecisionKind::Suppress,
            },
            origin: id.origin().as_u64(),
            seq: id.seq(),
            cost: verdict.map(|p| p.cost()).unwrap_or(0.0),
            at_secs: now.as_secs(),
        });
        match verdict {
            Some(priority) => scratch.selected.push((id, priority, false, payload_len)),
            None => withheld += 1,
        }
    }
    let selected_count = scratch.selected.len() as u64;
    let scan_us = scan_started
        .map(|t| t.elapsed().as_micros().min(u64::MAX as u128) as u64)
        .unwrap_or(0);
    cx.replica
        .observer()
        .emit(|| Event::SyncCandidatesSelected {
            source: source_id.as_u64(),
            target: target_id,
            candidates: candidate_count,
            selected: selected_count,
            memo_hits,
            scan_us,
            at_secs: now.as_secs(),
        });

    // Deterministic transmission order: priority, then item id.
    scratch
        .selected
        .sort_by(|(ida, pa, _, _), (idb, pb, _, _)| {
            let ka = pa.sort_key();
            let kb = pb.sort_key();
            ka.0.cmp(&kb.0)
                .then(ka.1.total_cmp(&kb.1))
                .then(ida.cmp(idb))
        });

    if let Some(max) = limits.max_items {
        if scratch.selected.len() > max {
            withheld += scratch.selected.len() - max;
            scratch.selected.truncate(max);
        }
    }
    if let Some(max_bytes) = limits.max_payload_bytes {
        // Cut, in priority order, at the first item that would overflow
        // the byte budget (the encounter ends there). A zero budget means
        // "no transfer at all": without the explicit guard, zero-length
        // payloads cost nothing and an empty budget would let every such
        // item through. Sizes were recorded during selection — payloads
        // are immutable after creation, so no second lookup is needed.
        let mut used = 0usize;
        let mut keep = 0usize;
        if max_bytes > 0 {
            for (_, _, _, size) in &scratch.selected {
                if used + size > max_bytes {
                    break;
                }
                used += size;
                keep += 1;
            }
        }
        if scratch.selected.len() > keep {
            withheld += scratch.selected.len() - keep;
            scratch.selected.truncate(keep);
        }
    }

    let mut entries = std::mem::take(&mut scratch.entries);
    entries.clear();
    entries.reserve(scratch.selected.len());
    let mut payload_bytes = 0u64;
    for &(id, priority, matched_filter, _) in &scratch.selected {
        let Some(mut copy) = cx.replica.item(id).cloned() else {
            continue;
        };
        ext.prepare_outgoing(&mut cx, &mut copy, request.target, matched_filter);
        if cx.replica.owned_copies() {
            // Benchmark/validation knob: emulate the pre-copy-on-write
            // data plane by detaching the final outgoing copy into private
            // allocations (see `Replica::set_owned_copies`). Runs after
            // the policy's in-flight transforms so any structural sharing
            // they introduce is privatized too, exactly as a system
            // without shared buffers would transmit it.
            copy.detach_copy();
        }
        let bytes = copy.payload().len() as u64;
        payload_bytes += bytes;
        cx.replica.observer().emit(|| Event::ItemTransmitted {
            source: source_id.as_u64(),
            target: target_id,
            origin: id.origin().as_u64(),
            seq: id.seq(),
            bytes,
            matched_filter,
            at_secs: now.as_secs(),
        });
        entries.push(BatchEntry {
            item: copy,
            priority,
            matched_filter,
        });
    }
    let entry_count = entries.len() as u64;
    cx.replica.observer().emit(|| Event::SyncBatchSent {
        source: source_id.as_u64(),
        target: target_id,
        entries: entry_count,
        withheld: withheld as u64,
        payload_bytes,
        at_secs: now.as_secs(),
    });
    cx.replica.restore_sync_scratch(scratch);

    SyncBatch {
        source: source_id,
        entries,
        withheld,
    }
}

/// Applies a batch at the target (paper Fig. 4, target side, step 2),
/// returning delivery statistics.
pub fn apply_batch(
    target: &mut Replica,
    ext: &mut dyn SyncExtension,
    batch: SyncBatch,
    now: SimTime,
) -> SyncReport {
    apply_batch_recycling(target, ext, batch, now).0
}

/// [`apply_batch`] that also returns the batch's drained entry buffer so
/// the in-process [`sync_with`] path (and its digest-mode sibling,
/// [`crate::digest::sync_with_digest`]) can hand it back to the source
/// for reuse (see [`SyncScratch`]).
pub(crate) fn apply_batch_recycling(
    target: &mut Replica,
    ext: &mut dyn SyncExtension,
    mut batch: SyncBatch,
    now: SimTime,
) -> (SyncReport, Vec<BatchEntry>) {
    let mut report = SyncReport {
        transmitted: batch.entries.len(),
        withheld: batch.withheld,
        ..SyncReport::default()
    };
    let target_id = target.id().as_u64();
    let source_id = batch.source.as_u64();
    for entry in batch.entries.drain(..) {
        let id = entry.item.id();
        match target.apply_remote(entry.item, now) {
            ApplyOutcome::Accepted { delivered, kind: _ } => {
                if delivered {
                    report.delivered += 1;
                    report.delivered_ids.push(id);
                    target.observer().emit(|| Event::ItemDelivered {
                        replica: target_id,
                        source: source_id,
                        origin: id.origin().as_u64(),
                        seq: id.seq(),
                        at_secs: now.as_secs(),
                    });
                } else {
                    report.relayed += 1;
                    target.observer().emit(|| Event::ItemRelayed {
                        replica: target_id,
                        source: source_id,
                        origin: id.origin().as_u64(),
                        seq: id.seq(),
                        at_secs: now.as_secs(),
                    });
                }
            }
            ApplyOutcome::Duplicate => report.duplicates += 1,
            ApplyOutcome::Stale => report.stale += 1,
            ApplyOutcome::ConflictMerged => report.conflicts += 1,
        }
    }
    if report.transmitted > 0 {
        let batch_entries = report.transmitted as u64;
        let knowledge_replicas = target.knowledge().replica_count() as u64;
        let knowledge_exceptions = target.knowledge().exception_count() as u64;
        target.observer().emit(|| Event::KnowledgeMerged {
            replica: target_id,
            peer: source_id,
            batch_entries,
            knowledge_replicas,
            knowledge_exceptions,
            at_secs: now.as_secs(),
        });
    }
    // Lend the delivered-id list to the extension rather than cloning it;
    // the report gets it back untouched.
    let delivered_ids = std::mem::take(&mut report.delivered_ids);
    let mut cx = HostContext::new(target, now, Some(batch.source));
    ext.on_delivered(&mut cx, &delivered_ids);
    report.delivered_ids = delivered_ids;
    (report, batch.entries)
}

/// Runs one full one-directional sync (`target` pulls from `source`) with
/// independent extensions on each side.
pub fn sync_with(
    source: &mut Replica,
    source_ext: &mut dyn SyncExtension,
    target: &mut Replica,
    target_ext: &mut dyn SyncExtension,
    limits: SyncLimits,
    now: SimTime,
) -> SyncReport {
    let request = begin_sync(target, target_ext, now, Some(source.id()));
    let batch = prepare_batch(source, source_ext, &request, limits, now);
    // `request` borrows `target`; release it before applying the batch.
    drop(request);
    let (report, spent_entries) = apply_batch_recycling(target, target_ext, batch, now);
    // Both endpoints are in-process: return the drained entry buffer to
    // the source so its next batch reuses the capacity.
    source.recycle_batch_entries(spent_entries);
    report
}

/// Runs one plain filtered-replication sync with no routing extension and
/// no limits — basic Cimbiosys behaviour.
pub fn sync_once(source: &mut Replica, target: &mut Replica, now: SimTime) -> SyncReport {
    let mut none_src = NoExtension;
    let mut none_tgt = NoExtension;
    sync_with(
        source,
        &mut none_src,
        target,
        &mut none_tgt,
        SyncLimits::unlimited(),
        now,
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::attrs::AttributeMap;

    fn rid(n: u64) -> ReplicaId {
        ReplicaId::new(n)
    }

    fn dest(d: &str) -> AttributeMap {
        let mut a = AttributeMap::new();
        a.set("dest", d);
        a
    }

    fn host(n: u64, addr: &str) -> Replica {
        Replica::new(rid(n), Filter::address("dest", addr))
    }

    /// Flood-everything test extension.
    struct FloodAll;
    impl SyncExtension for FloodAll {
        fn to_send(
            &mut self,
            _cx: &mut HostContext<'_>,
            _item: ItemId,
            _req: &SyncRequest<'_>,
        ) -> SendDecision {
            SendDecision::Send(Priority::normal())
        }
    }

    #[test]
    fn basic_sync_delivers_only_filter_matches() {
        let mut a = host(1, "a");
        let mut b = host(2, "b");
        a.insert(dest("b"), b"for b".to_vec()).unwrap();
        a.insert(dest("c"), b"for c".to_vec()).unwrap();

        let report = sync_once(&mut a, &mut b, SimTime::ZERO);
        assert_eq!(report.transmitted, 1);
        assert_eq!(report.delivered, 1);
        assert_eq!(report.withheld, 1, "out-of-filter item withheld");
        assert_eq!(b.item_count(), 1);
    }

    #[test]
    fn sync_is_idempotent() {
        let mut a = host(1, "a");
        let mut b = host(2, "b");
        a.insert(dest("b"), vec![]).unwrap();
        let first = sync_once(&mut a, &mut b, SimTime::ZERO);
        assert_eq!(first.delivered, 1);
        let second = sync_once(&mut a, &mut b, SimTime::ZERO);
        assert_eq!(second.transmitted, 0, "knowledge suppresses re-send");
        assert_eq!(second.duplicates, 0);
    }

    #[test]
    fn flooding_extension_forwards_out_of_filter() {
        let mut a = host(1, "a");
        let mut c = host(3, "c");
        a.insert(dest("b"), vec![]).unwrap();
        let mut flood = FloodAll;
        let mut none = NoExtension;
        let report = sync_with(
            &mut a,
            &mut flood,
            &mut c,
            &mut none,
            SyncLimits::unlimited(),
            SimTime::ZERO,
        );
        assert_eq!(report.transmitted, 1);
        assert_eq!(report.delivered, 0);
        assert_eq!(report.relayed, 1);
        assert_eq!(c.relay_load(), 1);

        // And c can now deliver to b on a later encounter.
        let mut b = host(2, "b");
        let report = sync_once(&mut c, &mut b, SimTime::from_secs(10));
        assert_eq!(report.delivered, 1, "multi-hop delivery through relay");
    }

    #[test]
    fn batch_respects_limits_and_consistency_survives() {
        let mut a = host(1, "a");
        let mut b = host(2, "b");
        for i in 0..5 {
            a.insert(dest("b"), vec![i]).unwrap();
        }
        let report = sync_with(
            &mut a,
            &mut NoExtension,
            &mut b,
            &mut NoExtension,
            SyncLimits::max_items(2),
            SimTime::ZERO,
        );
        assert_eq!(report.transmitted, 2);
        assert_eq!(report.withheld, 3);
        // The cut items are still unknown to b and arrive on later syncs.
        let report = sync_with(
            &mut a,
            &mut NoExtension,
            &mut b,
            &mut NoExtension,
            SyncLimits::max_items(2),
            SimTime::from_secs(1),
        );
        assert_eq!(report.transmitted, 2);
        let report = sync_once(&mut a, &mut b, SimTime::from_secs(2));
        assert_eq!(report.transmitted, 1);
        assert_eq!(
            b.iter_items().count(),
            5,
            "partial batches never lose items"
        );
    }

    #[test]
    fn byte_budget_cuts_batches_in_priority_order() {
        let mut a = host(1, "a");
        let mut b = host(2, "b");
        for i in 0..4u8 {
            a.insert(dest("b"), vec![i; 100]).unwrap();
        }
        // 250 bytes fit two 100-byte payloads.
        let report = sync_with(
            &mut a,
            &mut NoExtension,
            &mut b,
            &mut NoExtension,
            SyncLimits::max_payload_bytes(250),
            SimTime::ZERO,
        );
        assert_eq!(report.transmitted, 2);
        assert_eq!(report.withheld, 2);
        // Later syncs drain the rest: eventual consistency survives cuts.
        sync_with(
            &mut a,
            &mut NoExtension,
            &mut b,
            &mut NoExtension,
            SyncLimits::max_payload_bytes(250),
            SimTime::from_secs(1),
        );
        assert_eq!(b.iter_items().count(), 4);
    }

    #[test]
    fn oversized_item_is_withheld_not_sent() {
        let mut a = host(1, "a");
        let mut b = host(2, "b");
        a.insert(dest("b"), vec![0; 1000]).unwrap();
        let report = sync_with(
            &mut a,
            &mut NoExtension,
            &mut b,
            &mut NoExtension,
            SyncLimits::max_payload_bytes(100),
            SimTime::ZERO,
        );
        assert_eq!(report.transmitted, 0);
        assert_eq!(report.withheld, 1);
    }

    #[test]
    fn zero_limits_yield_an_empty_batch() {
        // A zero budget of either kind means "send nothing" — it must not
        // degenerate into an unbounded batch, even for zero-length
        // payloads, which cost no bytes and used to slip through the byte
        // accounting.
        let mut a = host(1, "a");
        a.insert(dest("b"), vec![]).unwrap();
        a.insert(dest("b"), vec![1, 2, 3]).unwrap();
        for limits in [SyncLimits::max_items(0), SyncLimits::max_payload_bytes(0)] {
            let mut b = host(2, "b");
            let report = sync_with(
                &mut a,
                &mut NoExtension,
                &mut b,
                &mut NoExtension,
                limits,
                SimTime::ZERO,
            );
            assert_eq!(report.transmitted, 0, "{limits:?} transmitted items");
            assert_eq!(report.withheld, 2, "{limits:?} withheld count");
            assert_eq!(b.item_count(), 0);
        }
    }

    #[test]
    fn combined_item_and_byte_limits() {
        let mut a = host(1, "a");
        let mut b = host(2, "b");
        for i in 0..5u8 {
            a.insert(dest("b"), vec![i; 10]).unwrap();
        }
        let limits = SyncLimits::max_items(3).with_max_payload_bytes(25);
        let report = sync_with(
            &mut a,
            &mut NoExtension,
            &mut b,
            &mut NoExtension,
            limits,
            SimTime::ZERO,
        );
        // Item cap would allow 3, but bytes only fit 2.
        assert_eq!(report.transmitted, 2);
        assert_eq!(report.withheld, 3);
    }

    #[test]
    fn priorities_order_batches() {
        struct Classed;
        impl SyncExtension for Classed {
            fn to_send(
                &mut self,
                cx: &mut HostContext<'_>,
                id: ItemId,
                _req: &SyncRequest<'_>,
            ) -> SendDecision {
                // Priority derived from payload: [n] -> cost n, class Normal
                // except payload 0 which is High class.
                let item = cx.replica().item(id).expect("item exists");
                let n = item.payload()[0];
                if n == 0 {
                    SendDecision::Send(Priority::new(PriorityClass::High, 0.0))
                } else {
                    SendDecision::Send(Priority::new(PriorityClass::Normal, f64::from(n)))
                }
            }
        }
        let mut a = host(1, "a");
        let mut c = host(3, "c");
        // One filter-matched item and three policy items.
        a.insert(dest("c"), b"\xffmatched".to_vec()).unwrap();
        for n in [2u8, 1, 0] {
            a.insert(dest("x"), vec![n]).unwrap();
        }
        let request = begin_sync(&mut c, &mut NoExtension, SimTime::ZERO, Some(a.id()));
        let batch = prepare_batch(
            &mut a,
            &mut Classed,
            &request,
            SyncLimits::unlimited(),
            SimTime::ZERO,
        );
        let first_bytes: Vec<u8> = batch.entries.iter().map(|e| e.item.payload()[0]).collect();
        assert_eq!(
            first_bytes,
            vec![0xff, 0, 1, 2],
            "matched first, then class/cost order"
        );
        assert!(batch.entries[0].matched_filter);
    }

    #[test]
    fn nan_cost_sorts_last() {
        let p_nan = Priority::new(PriorityClass::Normal, f64::NAN);
        assert_eq!(p_nan.cost(), f64::INFINITY);
    }

    #[test]
    fn deletion_propagates_and_clears_relays() {
        let mut a = host(1, "a");
        let mut b = host(2, "b");
        let mut c = host(3, "c");
        let id = a.insert(dest("b"), b"m".to_vec()).unwrap();

        // Flood to relay c, deliver to b.
        let mut flood = FloodAll;
        sync_with(
            &mut a,
            &mut flood,
            &mut c,
            &mut NoExtension,
            SyncLimits::unlimited(),
            SimTime::ZERO,
        );
        sync_once(&mut a, &mut b, SimTime::ZERO);
        assert!(c.contains_item(id));

        // b deletes after reading; tombstone flows b -> c (policy flood).
        b.delete(id).unwrap();
        let mut flood_b = FloodAll;
        sync_with(
            &mut b,
            &mut flood_b,
            &mut c,
            &mut NoExtension,
            SyncLimits::unlimited(),
            SimTime::from_secs(5),
        );
        let stored = c.item(id).expect("tombstone replaces relay copy");
        assert!(stored.is_deleted());
        assert_eq!(c.relay_load(), 0, "tombstones don't occupy relay budget");
    }

    #[test]
    fn on_delivered_sees_new_items() {
        struct Recorder(Vec<ItemId>);
        impl SyncExtension for Recorder {
            fn on_delivered(&mut self, _cx: &mut HostContext<'_>, delivered: &[ItemId]) {
                self.0.extend_from_slice(delivered);
            }
        }
        let mut a = host(1, "a");
        let mut b = host(2, "b");
        let id = a.insert(dest("b"), vec![]).unwrap();
        let mut rec = Recorder(Vec::new());
        sync_with(
            &mut a,
            &mut NoExtension,
            &mut b,
            &mut rec,
            SyncLimits::unlimited(),
            SimTime::from_secs(42),
        );
        assert_eq!(rec.0, vec![id]);
    }

    #[test]
    fn routing_state_roundtrip() {
        let s = RoutingState::from_bytes(vec![1, 2, 3]);
        assert_eq!(s.as_bytes(), &[1, 2, 3]);
        assert!(!s.is_empty());
        assert!(RoutingState::empty().is_empty());
        assert!(format!("{s:?}").contains("3 bytes"));
    }
}
