//! Thread-safe string interning for attribute names and string values.
//!
//! Items in a DTN deployment repeat the same few strings endlessly: every
//! message carries `"src"`/`"dest"`/`"sent_at"` attribute names, and the
//! hot Enron recipient and folder values recur across hundreds of messages
//! and thousands of relayed copies. An [`IStr`] stores each distinct string
//! once per process behind an `Arc<str>`; constructing one from text that
//! was seen before is a hash lookup plus a reference-count bump, and
//! cloning one never allocates.

use std::borrow::Borrow;
use std::cmp::Ordering;
use std::collections::HashSet;
use std::fmt;
use std::ops::Deref;
use std::sync::{Arc, Mutex, OnceLock};

/// Interner capacity guard: decoding adversarial input must not let the
/// table grow without bound, so when it exceeds this many distinct strings
/// it is reset (live `IStr`s keep their allocation; future interns simply
/// re-deduplicate from scratch).
const INTERN_CAP: usize = 1 << 16;

fn table() -> &'static Mutex<HashSet<Arc<str>>> {
    static TABLE: OnceLock<Mutex<HashSet<Arc<str>>>> = OnceLock::new();
    TABLE.get_or_init(|| Mutex::new(HashSet::new()))
}

/// An interned, immutable string with the read API of `&str`.
///
/// Equality, ordering, hashing, `Display`, and `Debug` are all identical
/// to `String`'s (`Debug` included — filter fingerprints hash a `Debug`
/// render of string values, and interning must never change a verdict).
/// `Borrow<str>` + `Ord` agreement means a `BTreeMap<IStr, _>` is still
/// keyed and queried by `&str`.
#[derive(Clone)]
pub struct IStr(Arc<str>);

impl IStr {
    /// Interns `s`, returning the process-wide shared copy.
    pub fn new(s: &str) -> IStr {
        let mut set = table().lock().unwrap_or_else(|e| e.into_inner());
        if let Some(existing) = set.get(s) {
            return IStr(existing.clone());
        }
        if set.len() >= INTERN_CAP {
            set.clear();
        }
        let arc: Arc<str> = Arc::from(s);
        set.insert(arc.clone());
        IStr(arc)
    }

    /// A *non*-interned `IStr`: a private allocation that deliberately
    /// bypasses the table. Pure pessimization used only by the A/B
    /// benchmarking knob that emulates the pre-interning data plane
    /// (see `Replica::set_owned_copies`).
    pub fn new_unshared(s: &str) -> IStr {
        IStr(Arc::from(s))
    }

    /// The string contents.
    pub fn as_str(&self) -> &str {
        &self.0
    }

    /// How many handles share this allocation (1 for an unshared string).
    pub fn share_count(&self) -> usize {
        Arc::strong_count(&self.0)
    }
}

impl Deref for IStr {
    type Target = str;

    fn deref(&self) -> &str {
        &self.0
    }
}

impl AsRef<str> for IStr {
    fn as_ref(&self) -> &str {
        &self.0
    }
}

impl Borrow<str> for IStr {
    fn borrow(&self) -> &str {
        &self.0
    }
}

impl From<&str> for IStr {
    fn from(s: &str) -> IStr {
        IStr::new(s)
    }
}

impl From<String> for IStr {
    fn from(s: String) -> IStr {
        IStr::new(&s)
    }
}

impl From<&String> for IStr {
    fn from(s: &String) -> IStr {
        IStr::new(s)
    }
}

impl From<IStr> for String {
    fn from(s: IStr) -> String {
        s.as_str().to_owned()
    }
}

impl PartialEq for IStr {
    fn eq(&self, other: &IStr) -> bool {
        Arc::ptr_eq(&self.0, &other.0) || self.0 == other.0
    }
}

impl Eq for IStr {}

impl PartialEq<str> for IStr {
    fn eq(&self, other: &str) -> bool {
        self.as_str() == other
    }
}

impl PartialEq<&str> for IStr {
    fn eq(&self, other: &&str) -> bool {
        self.as_str() == *other
    }
}

impl PartialEq<String> for IStr {
    fn eq(&self, other: &String) -> bool {
        self.as_str() == other.as_str()
    }
}

impl PartialOrd for IStr {
    fn partial_cmp(&self, other: &IStr) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for IStr {
    fn cmp(&self, other: &IStr) -> Ordering {
        self.as_str().cmp(other.as_str())
    }
}

impl std::hash::Hash for IStr {
    fn hash<H: std::hash::Hasher>(&self, state: &mut H) {
        // Must agree with `str`'s hash for Borrow<str>-keyed lookups.
        self.as_str().hash(state);
    }
}

impl fmt::Display for IStr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Display::fmt(self.as_str(), f)
    }
}

impl fmt::Debug for IStr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        // Renders exactly like String's Debug (quoted + escaped); filter
        // fingerprints depend on this.
        fmt::Debug::fmt(self.as_str(), f)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn interning_deduplicates() {
        let a = IStr::new("intern-test-dedup");
        let b = IStr::new("intern-test-dedup");
        assert!(Arc::ptr_eq(&a.0, &b.0), "same text, same allocation");
        assert!(a.share_count() >= 2);
    }

    #[test]
    fn unshared_strings_bypass_the_table() {
        let a = IStr::new("intern-test-unshared");
        let b = IStr::new_unshared("intern-test-unshared");
        assert!(!Arc::ptr_eq(&a.0, &b.0));
        assert_eq!(a, b, "equality is still over contents");
    }

    #[test]
    fn debug_and_display_match_string() {
        let s = "quote\"and\\slash\n";
        let i = IStr::new(s);
        assert_eq!(format!("{i}"), s);
        assert_eq!(format!("{i:?}"), format!("{:?}", s.to_string()));
    }

    #[test]
    fn ordering_and_borrow_agree_with_str() {
        use std::collections::BTreeMap;
        let mut m: BTreeMap<IStr, i32> = BTreeMap::new();
        m.insert(IStr::new("b"), 2);
        m.insert(IStr::new("a"), 1);
        assert_eq!(m.get("a"), Some(&1), "lookup by &str");
        let keys: Vec<&str> = m.keys().map(IStr::as_str).collect();
        assert_eq!(keys, ["a", "b"], "str ordering");
    }

    #[test]
    fn table_reset_keeps_live_strings_valid() {
        let keep = IStr::new("intern-test-survivor");
        {
            let mut set = table().lock().unwrap();
            set.clear();
        }
        assert_eq!(keep.as_str(), "intern-test-survivor");
        let again = IStr::new("intern-test-survivor");
        assert_eq!(keep, again, "content equality survives a reset");
    }
}
