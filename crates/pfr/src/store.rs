//! The per-replica item store, including the push-out and relay stores.

use std::collections::{BTreeMap, VecDeque};

use serde::{Deserialize, Serialize};

use crate::filter::Filter;
use crate::id::{ItemId, ReplicaId, Version};
use crate::item::Item;
use crate::knowledge::Knowledge;
use crate::time::SimTime;

/// Why a replica is holding an item.
///
/// The paper's Cimbiosys stores items matching the replica's filter plus a
/// *push-out store* of locally-created out-of-filter items awaiting
/// propagation (§IV-C); the DTN extension adds a third category, foreign
/// items accepted for *relay* by a routing policy. Storage constraints
/// (paper §VI-D) apply only to the relay category — "excluding messages for
/// which the node itself is the sender or the destination".
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum StoreKind {
    /// The item matches this replica's filter (it is "ours").
    InFilter,
    /// Created locally but outside our filter: held until propagated
    /// (Cimbiosys's push-out store). Never evicted.
    PushOut,
    /// Received from a peer outside our filter, held only to forward on
    /// behalf of others (the DTN relay buffer). Evicted FIFO under storage
    /// constraints.
    Relay,
}

/// Policy for what eviction does to a replica's knowledge.
///
/// The substrate's knowledge permanently records every received version, so
/// after an eviction the default behaviour is that the same version is
/// never accepted again (`RetainKnowledge`) — the evicting node simply
/// stops participating in that message's dissemination, and other copies
/// carry it. This matches the replication semantics; the alternative of
/// forgetting would re-open the node as a relay at the cost of repeated
/// transmissions, and is not offered because it would break at-most-once
/// delivery accounting.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Serialize, Deserialize)]
#[non_exhaustive]
pub enum EvictionMode {
    /// Keep the evicted version in knowledge (never re-receive it).
    #[default]
    RetainKnowledge,
}

#[derive(Clone, Debug)]
pub(crate) struct StoredItem {
    pub item: Item,
    pub kind: StoreKind,
    pub received_at: SimTime,
}

/// The store: all items held by one replica, with relay FIFO accounting.
#[derive(Clone, Debug, Default)]
pub(crate) struct ItemStore {
    items: BTreeMap<ItemId, StoredItem>,
    /// Arrival order of relay items, oldest first, for FIFO eviction.
    relay_fifo: VecDeque<ItemId>,
    /// Version index: origin replica → (version counter → holding item).
    /// Mirrors the *current* version of every stored item so sync candidate
    /// selection can walk only the suffix of each origin's counters beyond
    /// a requester's knowledge vector instead of scanning the whole store.
    /// Maintained by [`ItemStore::put`] / [`ItemStore::remove`], which every
    /// mutation path funnels through.
    version_index: BTreeMap<ReplicaId, BTreeMap<u64, ItemId>>,
}

impl ItemStore {
    pub fn new() -> Self {
        ItemStore::default()
    }

    pub fn get(&self, id: ItemId) -> Option<&StoredItem> {
        self.items.get(&id)
    }

    pub fn get_mut(&mut self, id: ItemId) -> Option<&mut StoredItem> {
        self.items.get_mut(&id)
    }

    pub fn contains(&self, id: ItemId) -> bool {
        self.items.contains_key(&id)
    }

    pub fn len(&self) -> usize {
        self.items.len()
    }

    pub fn iter(&self) -> impl Iterator<Item = &StoredItem> {
        self.items.values()
    }

    pub fn ids(&self) -> Vec<ItemId> {
        self.items.keys().copied().collect()
    }

    /// Inserts or replaces an item with the given kind, maintaining relay
    /// FIFO order. A replaced item keeps its FIFO position only if it stays
    /// a relay item.
    pub fn put(&mut self, item: Item, kind: StoreKind, received_at: SimTime) {
        let id = item.id();
        let version = item.version();
        let was_relay = self
            .items
            .get(&id)
            .map(|s| s.kind == StoreKind::Relay)
            .unwrap_or(false);
        match (was_relay, kind == StoreKind::Relay) {
            (false, true) => self.relay_fifo.push_back(id),
            (true, false) => self.remove_from_fifo(id),
            _ => {}
        }
        let replaced = self.items.insert(
            id,
            StoredItem {
                item,
                kind,
                received_at,
            },
        );
        if let Some(old) = replaced {
            let old_version = old.item.version();
            if old_version != version {
                self.unindex_version(old_version);
            }
        }
        self.version_index
            .entry(version.replica())
            .or_default()
            .insert(version.counter(), id);
    }

    pub fn remove(&mut self, id: ItemId) -> Option<StoredItem> {
        let removed = self.items.remove(&id);
        if let Some(stored) = &removed {
            if stored.kind == StoreKind::Relay {
                self.remove_from_fifo(id);
            }
            self.unindex_version(stored.item.version());
        }
        removed
    }

    fn unindex_version(&mut self, version: Version) {
        if let Some(by_counter) = self.version_index.get_mut(&version.replica()) {
            by_counter.remove(&version.counter());
            if by_counter.is_empty() {
                self.version_index.remove(&version.replica());
            }
        }
    }

    /// Fills `ids` (cleared first, capacity reused) with the ids of stored
    /// items whose versions `knowledge` has not learned, answered from the
    /// version index: for each origin, only the counter suffix beyond the
    /// requester's vector entry is walked (exceptions prune individual
    /// versions inside that suffix). Ids come out in ascending order —
    /// exactly the order a full scan of the id-keyed store produces, so
    /// callers observe identical candidate sequences.
    pub fn versions_unknown_to_into(&self, knowledge: &Knowledge, ids: &mut Vec<ItemId>) {
        ids.clear();
        for (&origin, by_counter) in &self.version_index {
            let base = knowledge.base_counter(origin);
            for (&counter, &id) in by_counter.range(base.saturating_add(1)..) {
                if !knowledge.contains(Version::new(origin, counter)) {
                    ids.push(id);
                }
            }
        }
        ids.sort_unstable();
    }

    /// The current version of every stored item, ascending by (origin,
    /// counter) — the set a digest-mode peer screens against its Bloom
    /// summary.
    pub fn current_versions(&self) -> impl Iterator<Item = Version> + '_ {
        self.version_index.iter().flat_map(|(&origin, by_counter)| {
            by_counter
                .keys()
                .map(move |&counter| Version::new(origin, counter))
        })
    }

    /// Whether `knowledge`'s per-origin vector watermarks already cover
    /// every stored version. When true, no candidate walk can select
    /// anything, so [`versions_unknown_to_into`](Self::versions_unknown_to_into)
    /// need not run at all. Exceptions are irrelevant here: a version at
    /// or below the watermark is known regardless of them.
    pub fn covered_by(&self, knowledge: &Knowledge) -> bool {
        self.version_index.iter().all(|(&origin, by_counter)| {
            by_counter
                .keys()
                .next_back()
                .is_none_or(|&max| max <= knowledge.base_counter(origin))
        })
    }

    fn remove_from_fifo(&mut self, id: ItemId) {
        if let Some(pos) = self.relay_fifo.iter().position(|&x| x == id) {
            self.relay_fifo.remove(pos);
        }
    }

    /// Number of evictable relay messages: relay-kind, non-tombstone.
    pub fn relay_load(&self) -> usize {
        self.relay_fifo
            .iter()
            .filter(|id| {
                self.items
                    .get(id)
                    .map(|s| !s.item.is_deleted())
                    .unwrap_or(false)
            })
            .count()
    }

    /// Evicts and returns the oldest non-tombstone relay item, if any.
    pub fn evict_oldest_relay(&mut self) -> Option<StoredItem> {
        let victim = self.relay_fifo.iter().copied().find(|id| {
            self.items
                .get(id)
                .map(|s| !s.item.is_deleted())
                .unwrap_or(false)
        })?;
        self.remove(victim)
    }

    /// The relay FIFO order, oldest first (snapshot support).
    pub fn relay_fifo_order(&self) -> Vec<ItemId> {
        self.relay_fifo.iter().copied().collect()
    }

    /// Rebuilds a store from snapshot parts. Relay items listed in
    /// `relay_fifo` keep that eviction order; relay items missing from the
    /// list (corrupt snapshots) are appended in id order.
    pub fn from_parts(items: Vec<(Item, StoreKind, SimTime)>, relay_fifo: Vec<ItemId>) -> Self {
        let mut store = ItemStore::new();
        for (item, kind, received_at) in items {
            store.put(item, kind, received_at);
        }
        // Reorder the FIFO according to the snapshot.
        let mut ordered: VecDeque<ItemId> = relay_fifo
            .into_iter()
            .filter(|id| store.relay_fifo.contains(id))
            .collect();
        for id in &store.relay_fifo {
            if !ordered.contains(id) {
                ordered.push_back(*id);
            }
        }
        store.relay_fifo = ordered;
        store
    }

    /// Re-derives every stored item's kind after a filter change.
    pub fn reclassify(&mut self, own_id: ReplicaId, filter: &Filter) {
        let ids = self.ids();
        for id in ids {
            let stored = self.items.get(&id).expect("id just listed");
            let new_kind = classify(&stored.item, own_id, filter);
            if new_kind != stored.kind {
                let (item, received_at) = {
                    let s = self.items.get(&id).expect("present");
                    (s.item.clone(), s.received_at)
                };
                // put() fixes FIFO membership on kind transitions.
                self.remove(id);
                self.put(item, new_kind, received_at);
            }
        }
    }
}

/// Determines how a replica should hold `item`.
pub(crate) fn classify(item: &Item, own_id: ReplicaId, filter: &Filter) -> StoreKind {
    if filter.matches(item) {
        StoreKind::InFilter
    } else if item.id().origin() == own_id {
        StoreKind::PushOut
    } else {
        StoreKind::Relay
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::id::Version;

    fn rid(n: u64) -> ReplicaId {
        ReplicaId::new(n)
    }

    fn item(origin: u64, seq: u64, dest: &str) -> Item {
        Item::builder(
            ItemId::new(rid(origin), seq),
            Version::new(rid(origin), seq),
        )
        .attr("dest", dest)
        .build()
    }

    #[test]
    fn classify_covers_all_kinds() {
        let me = rid(1);
        let f = Filter::address("dest", "me");
        assert_eq!(classify(&item(2, 1, "me"), me, &f), StoreKind::InFilter);
        assert_eq!(classify(&item(1, 1, "other"), me, &f), StoreKind::PushOut);
        assert_eq!(classify(&item(2, 1, "other"), me, &f), StoreKind::Relay);
    }

    #[test]
    fn relay_fifo_orders_by_arrival() {
        let mut s = ItemStore::new();
        s.put(item(2, 1, "x"), StoreKind::Relay, SimTime::from_secs(1));
        s.put(item(3, 1, "x"), StoreKind::Relay, SimTime::from_secs(2));
        s.put(item(4, 1, "x"), StoreKind::Relay, SimTime::from_secs(3));
        assert_eq!(s.relay_load(), 3);
        let victim = s.evict_oldest_relay().expect("one to evict");
        assert_eq!(victim.item.id().origin(), rid(2), "oldest goes first");
        assert_eq!(s.relay_load(), 2);
        assert_eq!(s.len(), 2);
    }

    #[test]
    fn tombstones_do_not_count_or_evict() {
        let mut s = ItemStore::new();
        let dead = Item::builder(ItemId::new(rid(2), 1), Version::new(rid(2), 1))
            .deleted(true)
            .build();
        s.put(dead, StoreKind::Relay, SimTime::ZERO);
        assert_eq!(s.relay_load(), 0);
        assert!(s.evict_oldest_relay().is_none());
        s.put(item(3, 1, "x"), StoreKind::Relay, SimTime::ZERO);
        let victim = s.evict_oldest_relay().expect("live item evictable");
        assert_eq!(victim.item.id().origin(), rid(3));
    }

    #[test]
    fn replacing_relay_item_keeps_fifo_position() {
        let mut s = ItemStore::new();
        s.put(item(2, 1, "x"), StoreKind::Relay, SimTime::ZERO);
        s.put(item(3, 1, "x"), StoreKind::Relay, SimTime::ZERO);
        // Replace the first item (new version, still relay).
        s.put(item(2, 1, "y"), StoreKind::Relay, SimTime::ZERO);
        let victim = s.evict_oldest_relay().expect("evictable");
        assert_eq!(victim.item.id().origin(), rid(2), "kept original position");
    }

    #[test]
    fn kind_transition_updates_fifo() {
        let mut s = ItemStore::new();
        s.put(item(2, 1, "me"), StoreKind::Relay, SimTime::ZERO);
        assert_eq!(s.relay_load(), 1);
        s.put(item(2, 1, "me"), StoreKind::InFilter, SimTime::ZERO);
        assert_eq!(s.relay_load(), 0);
        assert!(s.evict_oldest_relay().is_none());
        assert_eq!(s.len(), 1);
    }

    #[test]
    fn reclassify_after_filter_change() {
        let me = rid(1);
        let mut s = ItemStore::new();
        s.put(item(2, 1, "me"), StoreKind::InFilter, SimTime::ZERO);
        s.put(item(2, 2, "you"), StoreKind::Relay, SimTime::ZERO);
        // Widen the filter to cover "you" as well.
        let f = Filter::any_address("dest", ["me", "you"]);
        s.reclassify(me, &f);
        assert!(s.iter().all(|st| st.kind == StoreKind::InFilter));
        assert_eq!(s.relay_load(), 0);
    }

    #[test]
    fn remove_missing_returns_none() {
        let mut s = ItemStore::new();
        assert!(s.remove(ItemId::new(rid(9), 9)).is_none());
    }

    /// The version index must mirror the item map exactly: one entry per
    /// stored item, keyed by that item's current version.
    fn assert_index_mirrors_items(s: &ItemStore) {
        let indexed: usize = s.version_index.values().map(|m| m.len()).sum();
        assert_eq!(indexed, s.items.len(), "index entry count drifted");
        for (id, stored) in &s.items {
            let v = stored.item.version();
            assert_eq!(
                s.version_index
                    .get(&v.replica())
                    .and_then(|m| m.get(&v.counter())),
                Some(id),
                "item {id} missing from index under {v}"
            );
        }
    }

    #[test]
    fn version_index_tracks_put_replace_remove() {
        let mut s = ItemStore::new();
        s.put(item(2, 1, "x"), StoreKind::Relay, SimTime::ZERO);
        s.put(item(3, 1, "x"), StoreKind::InFilter, SimTime::ZERO);
        assert_index_mirrors_items(&s);

        // Replace id (2,1) with a newer version written by replica 5.
        let newer = Item::builder(ItemId::new(rid(2), 1), Version::new(rid(5), 9))
            .attr("dest", "x")
            .build();
        s.put(newer, StoreKind::Relay, SimTime::ZERO);
        assert_index_mirrors_items(&s);
        assert!(
            !s.version_index.contains_key(&rid(2)),
            "replaced version must leave the index"
        );

        s.remove(ItemId::new(rid(3), 1));
        assert_index_mirrors_items(&s);
        s.remove(ItemId::new(rid(2), 1));
        assert_index_mirrors_items(&s);
        assert!(s.version_index.is_empty());
    }

    #[test]
    fn versions_unknown_to_walks_suffixes() {
        let mut s = ItemStore::new();
        for seq in 1..=4 {
            s.put(item(2, seq, "x"), StoreKind::InFilter, SimTime::ZERO);
        }
        s.put(item(3, 1, "x"), StoreKind::InFilter, SimTime::ZERO);

        let mut k = Knowledge::new();
        k.insert_prefix(rid(2), 2); // knows 2@1..2
        k.insert(Version::new(rid(2), 4)); // and the exception 2@4
        let mut unknown = Vec::new();
        s.versions_unknown_to_into(&k, &mut unknown);
        assert_eq!(
            unknown,
            vec![ItemId::new(rid(2), 3), ItemId::new(rid(3), 1)]
        );
    }
}
