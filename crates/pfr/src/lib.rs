//! # pfr — peer-to-peer filtered replication
//!
//! A from-scratch implementation of a Cimbiosys-style peer-to-peer
//! *filtered* replication substrate, the foundation of the ICDCS 2011 paper
//! "Peer-to-peer Data Replication Meets Delay Tolerant Networking".
//!
//! The substrate provides:
//!
//! * **Versioned items** ([`Item`]) with content attributes and payloads.
//! * **Content-based filters** ([`Filter`]) — each replica stores and
//!   receives only items matching its filter (*partial replication*).
//! * **Compact knowledge** ([`Knowledge`]) — a version vector plus
//!   exceptions recording exactly which versions a replica has learned,
//!   providing *at-most-once delivery* without per-message summary vectors.
//! * **Pairwise synchronization** ([`sync`]) — topology-independent,
//!   disconnection-tolerant exchange of unknown versions, with an
//!   extension point ([`SyncExtension`]) through which DTN routing
//!   policies inject out-of-filter forwarding (paper §V).
//!
//! Given a connected synchronization topology, every item eventually
//! reaches every replica whose filter selects it (*eventual filter
//! consistency*), and no replica ever accepts the same version twice
//! (*at-most-once delivery*). Both properties are enforced by tests and
//! property tests in this crate.
//!
//! ## Quick example
//!
//! ```
//! use pfr::{sync, Filter, Replica, ReplicaId, SimTime};
//!
//! // Two replicas: `a` writes, `b` subscribes to items addressed to "b".
//! let mut a = Replica::new(ReplicaId::new(1), Filter::address("dest", "a"));
//! let mut b = Replica::new(ReplicaId::new(2), Filter::address("dest", "b"));
//!
//! let mut attrs = pfr::AttributeMap::new();
//! attrs.set("dest", "b");
//! a.insert(attrs, b"hi".to_vec())?;
//!
//! // One pairwise sync delivers the item: b is the target, a the source.
//! let report = sync::sync_once(&mut a, &mut b, SimTime::ZERO);
//! assert_eq!(report.delivered, 1);
//! assert_eq!(b.iter_items().count(), 1);
//! # Ok::<(), pfr::PfrError>(())
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

mod attrs;
mod error;
mod filter;
mod id;
mod intern;
mod item;
mod knowledge;
mod payload;
mod replica;
mod snapshot;
mod store;
mod time;
mod value;

pub mod digest;
pub mod sync;
pub mod wire;

pub use attrs::AttributeMap;
pub use digest::{DigestPolicy, DigestRequest, KnowledgeSummary, ReconState, SyncMode};
pub use error::PfrError;
pub use filter::{CmpOp, Filter};
pub use id::{ItemId, ReplicaId, Version};
pub use intern::IStr;
pub use item::{CausalRelation, Item, ItemBuilder};
pub use knowledge::Knowledge;
pub use payload::Payload;
pub use replica::{ApplyOutcome, ConflictRecord, Replica, ReplicaStats};
pub use store::{EvictionMode, StoreKind};
pub use sync::{Priority, PriorityClass, RoutingState, SendDecision, SyncExtension, SyncLimits};
pub use time::{SimDuration, SimTime};
pub use value::Value;

// Re-exported so downstream crates can reach the observability layer
// through their existing `pfr` dependency.
pub use obs;
