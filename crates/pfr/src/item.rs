//! Replicated items: the unit of storage, filtering, and transfer.

use std::collections::BTreeSet;
use std::fmt;

use serde::{Deserialize, Serialize};

use crate::attrs::AttributeMap;
use crate::id::{ItemId, Version};

/// How two versions of the same item relate causally.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum CausalRelation {
    /// The two are the same version.
    Equal,
    /// The first supersedes the second.
    Supersedes,
    /// The first is superseded by the second.
    SupersededBy,
    /// Neither derives from the other: a concurrent update (conflict).
    Concurrent,
}

/// A versioned, attributed data item.
///
/// An item is created once (acquiring an [`ItemId`]) and may then be updated
/// or deleted; each write stamps a new [`Version`] and records the versions
/// it supersedes, so replicas can distinguish stale copies, newer copies,
/// and genuinely concurrent (conflicting) copies.
///
/// Items carry two attribute maps:
///
/// * [`attrs`](Item::attrs) — application data, versioned: changing it is an
///   update that replicates everywhere.
/// * [`transient`](Item::transient) — per-copy routing metadata (TTL, copy
///   counts, hop lists). It travels with every transmitted copy but is
///   mutable in place without a version bump, implementing the
///   "host-specific metadata fields" of paper §V-A.
///
/// In the DTN application each message is one item whose `dest` attribute
/// names the recipient, and whose payload is the message body (§IV-A).
///
/// # Examples
///
/// ```
/// use pfr::{Item, ItemId, ReplicaId, Version};
///
/// let origin = ReplicaId::new(1);
/// let item = Item::builder(ItemId::new(origin, 1), Version::new(origin, 1))
///     .attr("dest", "bus-9")
///     .payload(b"hello".to_vec())
///     .build();
/// assert_eq!(item.attrs().get_str("dest"), Some("bus-9"));
/// assert!(!item.is_deleted());
/// ```
#[derive(Clone, PartialEq, Serialize, Deserialize)]
pub struct Item {
    id: ItemId,
    version: Version,
    /// All versions of this item superseded by `version` (exclusive).
    ancestors: BTreeSet<Version>,
    attrs: AttributeMap,
    transient: AttributeMap,
    payload: Vec<u8>,
    deleted: bool,
}

impl Item {
    /// Starts building a new item with the given identity and version.
    pub fn builder(id: ItemId, version: Version) -> ItemBuilder {
        ItemBuilder {
            item: Item {
                id,
                version,
                ancestors: BTreeSet::new(),
                attrs: AttributeMap::new(),
                transient: AttributeMap::new(),
                payload: Vec::new(),
                deleted: false,
            },
        }
    }

    /// The item's globally unique identity.
    pub fn id(&self) -> ItemId {
        self.id
    }

    /// The version of this copy.
    pub fn version(&self) -> Version {
        self.version
    }

    /// Versions of this item that this copy supersedes.
    pub fn ancestors(&self) -> impl Iterator<Item = Version> + '_ {
        self.ancestors.iter().copied()
    }

    /// Returns `true` if this copy supersedes (or is) `version`.
    pub fn knows_version(&self, version: Version) -> bool {
        self.version == version || self.ancestors.contains(&version)
    }

    /// How this copy relates causally to another copy of the same item.
    ///
    /// # Panics
    ///
    /// Panics in debug builds if the two copies have different ids.
    pub fn relation_to(&self, other: &Item) -> CausalRelation {
        debug_assert_eq!(self.id, other.id, "comparing copies of different items");
        if self.version == other.version {
            CausalRelation::Equal
        } else if self.ancestors.contains(&other.version) {
            CausalRelation::Supersedes
        } else if other.ancestors.contains(&self.version) {
            CausalRelation::SupersededBy
        } else {
            CausalRelation::Concurrent
        }
    }

    /// The versioned application attributes.
    pub fn attrs(&self) -> &AttributeMap {
        &self.attrs
    }

    /// The per-copy transient routing attributes.
    pub fn transient(&self) -> &AttributeMap {
        &self.transient
    }

    /// Mutable access to the transient attributes.
    ///
    /// Mutations here never create a new version; they affect only this
    /// copy. Versioned attributes can only be changed through
    /// [`Replica::update`](crate::Replica::update), which stamps a new
    /// version.
    pub fn transient_mut(&mut self) -> &mut AttributeMap {
        &mut self.transient
    }

    /// The application payload (a message body, in the DTN application).
    pub fn payload(&self) -> &[u8] {
        &self.payload
    }

    /// Returns `true` if this copy is a deletion tombstone.
    pub fn is_deleted(&self) -> bool {
        self.deleted
    }

    /// Approximate in-memory size in bytes, used by storage accounting.
    pub fn approx_size(&self) -> usize {
        let attr_size = |m: &AttributeMap| -> usize {
            m.iter()
                .map(|(k, v)| k.len() + format!("{v}").len() + 8)
                .sum()
        };
        self.payload.len()
            + attr_size(&self.attrs)
            + attr_size(&self.transient)
            + 16 * (1 + self.ancestors.len())
    }

    /// Produces the successor copy stamped with `new_version`, used by
    /// [`Replica::update`](crate::Replica::update) and delete.
    ///
    /// The successor's ancestor set is this copy's ancestors plus this
    /// copy's version. Transient attributes are dropped: routing metadata
    /// belongs to the copy, not the item, and a new version is a new
    /// logical message for routing purposes.
    pub(crate) fn successor(
        &self,
        new_version: Version,
        attrs: AttributeMap,
        payload: Vec<u8>,
        deleted: bool,
    ) -> Item {
        let mut ancestors = self.ancestors.clone();
        ancestors.insert(self.version);
        Item {
            id: self.id,
            version: new_version,
            ancestors,
            attrs,
            transient: AttributeMap::new(),
            payload,
            deleted,
        }
    }

    /// Returns this copy with one more recorded ancestor version. Used when
    /// reconstructing a copy from the wire; applications use
    /// [`Replica::update`](crate::Replica::update), which maintains
    /// ancestry automatically.
    pub fn with_ancestor(mut self, version: Version) -> Item {
        if version != self.version {
            self.ancestors.insert(version);
        }
        self
    }

    /// Merges a concurrent copy into this one, returning the deterministic
    /// winner. The winner is the copy with the larger version; the loser's
    /// version and ancestors join the winner's ancestor set, so the merge
    /// result supersedes both inputs.
    pub(crate) fn merge_concurrent(self, other: Item) -> Item {
        debug_assert_eq!(self.id, other.id);
        let (mut winner, loser) = if self.version >= other.version {
            (self, other)
        } else {
            (other, self)
        };
        winner.ancestors.insert(loser.version);
        winner.ancestors.extend(loser.ancestors);
        winner.ancestors.remove(&winner.version);
        winner
    }
}

impl fmt::Debug for Item {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Item")
            .field("id", &self.id)
            .field("version", &self.version)
            .field("attrs", &self.attrs)
            .field("transient", &self.transient)
            .field("payload_len", &self.payload.len())
            .field("deleted", &self.deleted)
            .finish()
    }
}

/// Builder for [`Item`] (C-BUILDER).
#[derive(Debug)]
pub struct ItemBuilder {
    item: Item,
}

impl ItemBuilder {
    /// Sets a versioned application attribute.
    pub fn attr(mut self, name: impl Into<String>, value: impl Into<crate::Value>) -> Self {
        self.item.attrs.set(name, value);
        self
    }

    /// Sets a transient (per-copy) routing attribute.
    pub fn transient_attr(
        mut self,
        name: impl Into<String>,
        value: impl Into<crate::Value>,
    ) -> Self {
        self.item.transient.set(name, value);
        self
    }

    /// Sets the payload.
    pub fn payload(mut self, payload: Vec<u8>) -> Self {
        self.item.payload = payload;
        self
    }

    /// Replaces the whole versioned attribute map.
    pub fn attrs(mut self, attrs: AttributeMap) -> Self {
        self.item.attrs = attrs;
        self
    }

    /// Marks the item as a deletion tombstone.
    pub fn deleted(mut self, deleted: bool) -> Self {
        self.item.deleted = deleted;
        self
    }

    /// Finishes building the item.
    pub fn build(self) -> Item {
        self.item
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::id::ReplicaId;

    fn rid(n: u64) -> ReplicaId {
        ReplicaId::new(n)
    }

    fn base_item() -> Item {
        Item::builder(ItemId::new(rid(1), 1), Version::new(rid(1), 1))
            .attr("dest", "b")
            .payload(vec![1, 2, 3])
            .build()
    }

    #[test]
    fn builder_sets_fields() {
        let item = Item::builder(ItemId::new(rid(1), 7), Version::new(rid(1), 9))
            .attr("k", 1i64)
            .transient_attr("ttl", 10i64)
            .payload(vec![9])
            .build();
        assert_eq!(item.id().seq(), 7);
        assert_eq!(item.version().counter(), 9);
        assert_eq!(item.attrs().get_i64("k"), Some(1));
        assert_eq!(item.transient().get_i64("ttl"), Some(10));
        assert_eq!(item.payload(), &[9]);
        assert!(!item.is_deleted());
        assert_eq!(item.ancestors().count(), 0);
    }

    #[test]
    fn successor_supersedes_and_drops_transient() {
        let mut item = base_item();
        item.transient_mut().set("ttl", 5i64);
        let v2 = Version::new(rid(2), 10);
        let succ = item.successor(v2, item.attrs().clone(), vec![], true);
        assert_eq!(succ.version(), v2);
        assert!(succ.is_deleted());
        assert!(succ.knows_version(item.version()));
        assert_eq!(succ.relation_to(&item), CausalRelation::Supersedes);
        assert_eq!(item.relation_to(&succ), CausalRelation::SupersededBy);
        assert!(
            succ.transient().is_empty(),
            "transient metadata must not replicate"
        );
    }

    #[test]
    fn equal_and_concurrent_relations() {
        let item = base_item();
        assert_eq!(item.relation_to(&item.clone()), CausalRelation::Equal);

        let a = item.successor(Version::new(rid(2), 5), item.attrs().clone(), vec![], false);
        let b = item.successor(Version::new(rid(3), 6), item.attrs().clone(), vec![], false);
        assert_eq!(a.relation_to(&b), CausalRelation::Concurrent);
    }

    #[test]
    fn merge_concurrent_is_deterministic_and_supersedes_both() {
        let item = base_item();
        let a = item.successor(
            Version::new(rid(2), 5),
            item.attrs().clone(),
            vec![1],
            false,
        );
        let b = item.successor(
            Version::new(rid(3), 6),
            item.attrs().clone(),
            vec![2],
            false,
        );

        let m1 = a.clone().merge_concurrent(b.clone());
        let m2 = b.clone().merge_concurrent(a.clone());
        assert_eq!(
            m1.version(),
            m2.version(),
            "winner independent of merge order"
        );
        assert_eq!(m1.version(), b.version(), "larger version wins");
        assert!(m1.knows_version(a.version()));
        assert!(m1.knows_version(b.version()) || m1.version() == b.version());
        assert!(m1.knows_version(item.version()));
    }

    #[test]
    fn approx_size_counts_payload() {
        let small = base_item();
        let big = Item::builder(small.id(), small.version())
            .payload(vec![0; 1000])
            .build();
        assert!(big.approx_size() > small.approx_size());
        assert!(big.approx_size() >= 1000);
    }

    #[test]
    fn debug_shows_identity() {
        let s = format!("{:?}", base_item());
        assert!(s.contains("R1#1"));
    }
}
