//! Replicated items: the unit of storage, filtering, and transfer.

use std::collections::{BTreeSet, HashSet};
use std::fmt;
use std::sync::Arc;

use serde::{Deserialize, Serialize};

use crate::attrs::AttributeMap;
use crate::id::{ItemId, Version};
use crate::payload::Payload;

/// How two versions of the same item relate causally.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum CausalRelation {
    /// The two are the same version.
    Equal,
    /// The first supersedes the second.
    Supersedes,
    /// The first is superseded by the second.
    SupersededBy,
    /// Neither derives from the other: a concurrent update (conflict).
    Concurrent,
}

/// A versioned, attributed data item.
///
/// An item is created once (acquiring an [`ItemId`]) and may then be updated
/// or deleted; each write stamps a new [`Version`] and records the versions
/// it supersedes, so replicas can distinguish stale copies, newer copies,
/// and genuinely concurrent (conflicting) copies.
///
/// Items carry two attribute maps:
///
/// * [`attrs`](Item::attrs) — application data, versioned: changing it is an
///   update that replicates everywhere.
/// * [`transient`](Item::transient) — per-copy routing metadata (TTL, copy
///   counts, hop lists). It travels with every transmitted copy but is
///   mutable in place without a version bump, implementing the
///   "host-specific metadata fields" of paper §V-A.
///
/// In the DTN application each message is one item whose `dest` attribute
/// names the recipient, and whose payload is the message body (§IV-A).
///
/// # Examples
///
/// ```
/// use pfr::{Item, ItemId, ReplicaId, Version};
///
/// let origin = ReplicaId::new(1);
/// let item = Item::builder(ItemId::new(origin, 1), Version::new(origin, 1))
///     .attr("dest", "bus-9")
///     .payload(b"hello".to_vec())
///     .build();
/// assert_eq!(item.attrs().get_str("dest"), Some("bus-9"));
/// assert!(!item.is_deleted());
/// ```
#[derive(Clone, PartialEq, Serialize, Deserialize)]
pub struct Item {
    id: ItemId,
    version: Version,
    /// All versions of this item superseded by `version` (exclusive).
    ancestors: BTreeSet<Version>,
    /// Versioned attributes never mutate in place (a change is a new
    /// version), so copies share one map behind an `Arc`.
    attrs: Arc<AttributeMap>,
    /// Transient attributes are copy-on-write: cloning shares the map,
    /// [`Item::transient_mut`] privatizes it only when actually mutated.
    transient: Arc<AttributeMap>,
    payload: Payload,
    deleted: bool,
}

impl Item {
    /// Starts building a new item with the given identity and version.
    pub fn builder(id: ItemId, version: Version) -> ItemBuilder {
        ItemBuilder {
            item: Item {
                id,
                version,
                ancestors: BTreeSet::new(),
                attrs: Arc::new(AttributeMap::new()),
                transient: Arc::new(AttributeMap::new()),
                payload: Payload::empty(),
                deleted: false,
            },
        }
    }

    /// The item's globally unique identity.
    pub fn id(&self) -> ItemId {
        self.id
    }

    /// The version of this copy.
    pub fn version(&self) -> Version {
        self.version
    }

    /// Versions of this item that this copy supersedes.
    pub fn ancestors(&self) -> impl Iterator<Item = Version> + '_ {
        self.ancestors.iter().copied()
    }

    /// Returns `true` if this copy supersedes (or is) `version`.
    pub fn knows_version(&self, version: Version) -> bool {
        self.version == version || self.ancestors.contains(&version)
    }

    /// How this copy relates causally to another copy of the same item.
    ///
    /// # Panics
    ///
    /// Panics in debug builds if the two copies have different ids.
    pub fn relation_to(&self, other: &Item) -> CausalRelation {
        debug_assert_eq!(self.id, other.id, "comparing copies of different items");
        if self.version == other.version {
            CausalRelation::Equal
        } else if self.ancestors.contains(&other.version) {
            CausalRelation::Supersedes
        } else if other.ancestors.contains(&self.version) {
            CausalRelation::SupersededBy
        } else {
            CausalRelation::Concurrent
        }
    }

    /// The versioned application attributes.
    pub fn attrs(&self) -> &AttributeMap {
        &self.attrs
    }

    /// The per-copy transient routing attributes.
    pub fn transient(&self) -> &AttributeMap {
        &self.transient
    }

    /// Mutable access to the transient attributes.
    ///
    /// Mutations here never create a new version; they affect only this
    /// copy. Versioned attributes can only be changed through
    /// [`Replica::update`](crate::Replica::update), which stamps a new
    /// version.
    pub fn transient_mut(&mut self) -> &mut AttributeMap {
        // Copy-on-write: privatize the map only if another copy shares it.
        Arc::make_mut(&mut self.transient)
    }

    /// Replaces this copy's entire transient map with an already-shared
    /// one. The structural-sharing counterpart of [`Item::transient_mut`]:
    /// a policy whose transient state takes only a small closed set of
    /// values (say, a hop budget counting down) can intern one map per
    /// state and stamp outgoing copies with a reference-count bump instead
    /// of privatizing and rewriting a map per copy.
    pub fn replace_transient(&mut self, map: Arc<AttributeMap>) {
        self.transient = map;
    }

    /// The application payload (a message body, in the DTN application).
    pub fn payload(&self) -> &[u8] {
        &self.payload
    }

    /// The payload as a shared buffer handle (clone = reference-count
    /// bump). Storage accounting uses its [`Payload::buffer_id`].
    pub fn payload_shared(&self) -> &Payload {
        &self.payload
    }

    /// Returns `true` if this copy is a deletion tombstone.
    pub fn is_deleted(&self) -> bool {
        self.deleted
    }

    /// Approximate in-memory size in bytes of this copy viewed in
    /// isolation, charging the full payload to the copy.
    ///
    /// Payloads are shared buffers, so summing `approx_size` over copies
    /// over-counts: bytes one buffer holds once are charged once *per
    /// copy*. Storage accounting that walks many copies should use
    /// [`Item::approx_size_deduped`], which charges each distinct backing
    /// buffer exactly once.
    pub fn approx_size(&self) -> usize {
        self.metadata_size() + self.payload.len()
    }

    /// Approximate in-memory size charging shared payload bytes once per
    /// distinct backing buffer: the payload counts only if its
    /// [`Payload::buffer_id`] was not already in `seen_buffers` (which
    /// this call updates). Per-copy metadata is always charged.
    ///
    /// Folding this over every copy in a set of stores yields the real
    /// resident footprint; folding [`Item::approx_size`] yields the
    /// logical (pre-sharing) footprint.
    pub fn approx_size_deduped(&self, seen_buffers: &mut HashSet<usize>) -> usize {
        let payload = if seen_buffers.insert(self.payload.buffer_id()) {
            self.payload.len()
        } else {
            0
        };
        self.metadata_size() + payload
    }

    fn metadata_size(&self) -> usize {
        let attr_size = |m: &AttributeMap| -> usize {
            m.iter()
                .map(|(k, v)| k.len() + format!("{v}").len() + 8)
                .sum()
        };
        attr_size(&self.attrs) + attr_size(&self.transient) + 16 * (1 + self.ancestors.len())
    }

    /// Produces the successor copy stamped with `new_version`, used by
    /// [`Replica::update`](crate::Replica::update) and delete.
    ///
    /// The successor's ancestor set is this copy's ancestors plus this
    /// copy's version. Transient attributes are dropped: routing metadata
    /// belongs to the copy, not the item, and a new version is a new
    /// logical message for routing purposes.
    pub(crate) fn successor(
        &self,
        new_version: Version,
        attrs: impl Into<Arc<AttributeMap>>,
        payload: impl Into<Payload>,
        deleted: bool,
    ) -> Item {
        let mut ancestors = self.ancestors.clone();
        ancestors.insert(self.version);
        Item {
            id: self.id,
            version: new_version,
            ancestors,
            attrs: attrs.into(),
            transient: Arc::new(AttributeMap::new()),
            payload: payload.into(),
            deleted,
        }
    }

    /// The versioned attribute map as a shared handle (used by deletes to
    /// stamp a tombstone without copying the map).
    pub(crate) fn attrs_shared(&self) -> Arc<AttributeMap> {
        Arc::clone(&self.attrs)
    }

    /// Replaces every shared buffer in this copy — payload, attribute
    /// maps, and their interned strings — with freshly allocated private
    /// copies. The bytes are unchanged; only allocation behavior differs.
    /// This emulates the pre-copy-on-write data plane for A/B benchmarking
    /// (see `Replica::set_owned_copies`); production code never calls it.
    pub fn detach_copy(&mut self) {
        self.payload.detach();
        self.attrs = Arc::new(self.attrs.deep_uninterned());
        self.transient = Arc::new(self.transient.deep_uninterned());
    }

    /// Returns this copy with one more recorded ancestor version. Used when
    /// reconstructing a copy from the wire; applications use
    /// [`Replica::update`](crate::Replica::update), which maintains
    /// ancestry automatically.
    pub fn with_ancestor(mut self, version: Version) -> Item {
        if version != self.version {
            self.ancestors.insert(version);
        }
        self
    }

    /// Merges a concurrent copy into this one, returning the deterministic
    /// winner. The winner is the copy with the larger version; the loser's
    /// version and ancestors join the winner's ancestor set, so the merge
    /// result supersedes both inputs.
    pub(crate) fn merge_concurrent(self, other: Item) -> Item {
        debug_assert_eq!(self.id, other.id);
        let (mut winner, loser) = if self.version >= other.version {
            (self, other)
        } else {
            (other, self)
        };
        winner.ancestors.insert(loser.version);
        winner.ancestors.extend(loser.ancestors);
        winner.ancestors.remove(&winner.version);
        winner
    }
}

impl fmt::Debug for Item {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Item")
            .field("id", &self.id)
            .field("version", &self.version)
            .field("attrs", &self.attrs)
            .field("transient", &self.transient)
            .field("payload_len", &self.payload.len())
            .field("deleted", &self.deleted)
            .finish()
    }
}

/// Builder for [`Item`] (C-BUILDER).
#[derive(Debug)]
pub struct ItemBuilder {
    item: Item,
}

impl ItemBuilder {
    /// Sets a versioned application attribute.
    pub fn attr(mut self, name: impl Into<crate::IStr>, value: impl Into<crate::Value>) -> Self {
        Arc::make_mut(&mut self.item.attrs).set(name, value);
        self
    }

    /// Sets a transient (per-copy) routing attribute.
    pub fn transient_attr(
        mut self,
        name: impl Into<crate::IStr>,
        value: impl Into<crate::Value>,
    ) -> Self {
        Arc::make_mut(&mut self.item.transient).set(name, value);
        self
    }

    /// Sets the payload. Accepts owned bytes or an existing (possibly
    /// shared) [`Payload`].
    pub fn payload(mut self, payload: impl Into<Payload>) -> Self {
        self.item.payload = payload.into();
        self
    }

    /// Replaces the whole versioned attribute map.
    pub fn attrs(mut self, attrs: AttributeMap) -> Self {
        self.item.attrs = Arc::new(attrs);
        self
    }

    /// Replaces the whole transient attribute map (used by wire decode to
    /// avoid re-setting entries one by one).
    pub fn transient_attrs(mut self, transient: AttributeMap) -> Self {
        self.item.transient = Arc::new(transient);
        self
    }

    /// Marks the item as a deletion tombstone.
    pub fn deleted(mut self, deleted: bool) -> Self {
        self.item.deleted = deleted;
        self
    }

    /// Finishes building the item.
    pub fn build(self) -> Item {
        self.item
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::id::ReplicaId;

    fn rid(n: u64) -> ReplicaId {
        ReplicaId::new(n)
    }

    fn base_item() -> Item {
        Item::builder(ItemId::new(rid(1), 1), Version::new(rid(1), 1))
            .attr("dest", "b")
            .payload(vec![1, 2, 3])
            .build()
    }

    #[test]
    fn builder_sets_fields() {
        let item = Item::builder(ItemId::new(rid(1), 7), Version::new(rid(1), 9))
            .attr("k", 1i64)
            .transient_attr("ttl", 10i64)
            .payload(vec![9])
            .build();
        assert_eq!(item.id().seq(), 7);
        assert_eq!(item.version().counter(), 9);
        assert_eq!(item.attrs().get_i64("k"), Some(1));
        assert_eq!(item.transient().get_i64("ttl"), Some(10));
        assert_eq!(item.payload(), &[9]);
        assert!(!item.is_deleted());
        assert_eq!(item.ancestors().count(), 0);
    }

    #[test]
    fn successor_supersedes_and_drops_transient() {
        let mut item = base_item();
        item.transient_mut().set("ttl", 5i64);
        let v2 = Version::new(rid(2), 10);
        let succ = item.successor(v2, item.attrs().clone(), vec![], true);
        assert_eq!(succ.version(), v2);
        assert!(succ.is_deleted());
        assert!(succ.knows_version(item.version()));
        assert_eq!(succ.relation_to(&item), CausalRelation::Supersedes);
        assert_eq!(item.relation_to(&succ), CausalRelation::SupersededBy);
        assert!(
            succ.transient().is_empty(),
            "transient metadata must not replicate"
        );
    }

    #[test]
    fn equal_and_concurrent_relations() {
        let item = base_item();
        assert_eq!(item.relation_to(&item.clone()), CausalRelation::Equal);

        let a = item.successor(Version::new(rid(2), 5), item.attrs().clone(), vec![], false);
        let b = item.successor(Version::new(rid(3), 6), item.attrs().clone(), vec![], false);
        assert_eq!(a.relation_to(&b), CausalRelation::Concurrent);
    }

    #[test]
    fn merge_concurrent_is_deterministic_and_supersedes_both() {
        let item = base_item();
        let a = item.successor(
            Version::new(rid(2), 5),
            item.attrs().clone(),
            vec![1],
            false,
        );
        let b = item.successor(
            Version::new(rid(3), 6),
            item.attrs().clone(),
            vec![2],
            false,
        );

        let m1 = a.clone().merge_concurrent(b.clone());
        let m2 = b.clone().merge_concurrent(a.clone());
        assert_eq!(
            m1.version(),
            m2.version(),
            "winner independent of merge order"
        );
        assert_eq!(m1.version(), b.version(), "larger version wins");
        assert!(m1.knows_version(a.version()));
        assert!(m1.knows_version(b.version()) || m1.version() == b.version());
        assert!(m1.knows_version(item.version()));
    }

    #[test]
    fn clone_shares_payload_and_attr_maps() {
        let item = base_item();
        let copy = item.clone();
        assert_eq!(item, copy);
        assert_eq!(
            item.payload_shared().buffer_id(),
            copy.payload_shared().buffer_id(),
            "cloning must share the payload buffer, not copy it"
        );
    }

    #[test]
    fn transient_mut_is_copy_on_write() {
        let mut item = base_item();
        item.transient_mut().set("hops", 1i64);
        let mut copy = item.clone();
        copy.transient_mut().set("hops", 2i64);
        assert_eq!(item.transient().get_i64("hops"), Some(1));
        assert_eq!(copy.transient().get_i64("hops"), Some(2));
    }

    #[test]
    fn detach_copy_preserves_bytes_but_privatizes_buffers() {
        let item = base_item();
        let mut copy = item.clone();
        copy.detach_copy();
        assert_eq!(item, copy, "detaching never changes contents");
        assert_ne!(
            item.payload_shared().buffer_id(),
            copy.payload_shared().buffer_id()
        );
    }

    /// Pins the old-vs-new storage accounting on a two-copy example:
    /// summing the legacy per-copy `approx_size` charges the 1000-byte
    /// payload twice, while `approx_size_deduped` charges the shared
    /// buffer once and only the per-copy metadata twice.
    #[test]
    fn two_copies_charge_shared_payload_once() {
        let item = Item::builder(ItemId::new(rid(1), 1), Version::new(rid(1), 1))
            .attr("dest", "b")
            .payload(vec![0u8; 1000])
            .build();
        let copy = item.clone();

        let legacy: usize = [&item, &copy].iter().map(|i| i.approx_size()).sum();
        let mut seen = HashSet::new();
        let deduped: usize = [&item, &copy]
            .iter()
            .map(|i| i.approx_size_deduped(&mut seen))
            .sum();

        let metadata = item.approx_size() - 1000;
        assert_eq!(
            legacy,
            2 * (1000 + metadata),
            "old: payload charged per copy"
        );
        assert_eq!(
            deduped,
            1000 + 2 * metadata,
            "new: payload charged per buffer"
        );

        // An unrelated buffer with the same bytes is still charged.
        let private = Item::builder(ItemId::new(rid(1), 2), Version::new(rid(1), 2))
            .attr("dest", "b")
            .payload(vec![0u8; 1000])
            .build();
        assert_eq!(private.approx_size_deduped(&mut seen), 1000 + metadata);
    }

    #[test]
    fn approx_size_counts_payload() {
        let small = base_item();
        let big = Item::builder(small.id(), small.version())
            .payload(vec![0; 1000])
            .build();
        assert!(big.approx_size() > small.approx_size());
        assert!(big.approx_size() >= 1000);
    }

    #[test]
    fn debug_shows_identity() {
        let s = format!("{:?}", base_item());
        assert!(s.contains("R1#1"));
    }
}
