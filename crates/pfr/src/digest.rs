//! Digest-mode synchronization: compact set reconciliation in place of
//! full knowledge exchange.
//!
//! Full-mode sync (paper Fig. 4) ships the target's entire [`Knowledge`]
//! — version vector plus exception set — in every request. Under filtered
//! DTN replication the exception set only grows (gaps are permanent, see
//! [`Knowledge`]), so steady-state encounters resend an ever-larger
//! structure the source has mostly seen before. Digest mode replaces the
//! full structure with a summary sized by what *changed*:
//!
//! * [`KnowledgeSummary::Unchanged`] — a checksum (about a dozen bytes)
//!   when nothing changed since the last exchange with this peer.
//! * [`KnowledgeSummary::Delta`] — an invertible sketch ([`recon::Iblt`])
//!   over the knowledge entry set. Both sides cache the previously
//!   exchanged knowledge, so the sketch is sized by the *exact* number of
//!   changed entries; the source subtracts its cached copy and peels the
//!   sketch to recover the target's current knowledge, verified by
//!   checksum.
//! * [`KnowledgeSummary::Bloom`] — first contact, no shared snapshot: a
//!   Bloom filter over the target's known versions. The source screens its
//!   store against the filter; definite misses become candidates
//!   immediately, possible hits are confirmed in one exact
//!   [`VersionQuery`] round, so false positives cost bandwidth, never
//!   correctness.
//!
//! Every path ends with the source holding a knowledge set that selects
//! *exactly* the candidates full mode would have selected, so digest mode
//! is invisible to delivery metrics. Any mismatch — stale cache,
//! undecodable sketch, corrupt frame — resolves to
//! [`SummaryOutcome::Resync`] and the exchange falls back to a full
//! request: degraded bandwidth, never degraded convergence. Fallbacks are
//! counted in the `recon.fallback_rounds` observability counter.

use std::borrow::Cow;
use std::collections::{BTreeSet, HashMap};

use obs::Event;
use recon::hash::key_hash;
use recon::{Bloom, Iblt};

use crate::filter::Filter;
use crate::id::{ReplicaId, Version};
use crate::knowledge::Knowledge;
use crate::replica::Replica;
use crate::sync::{self, RoutingState, SyncExtension, SyncLimits, SyncReport, SyncRequest};
use crate::time::SimTime;
use crate::wire;

/// How sync requests travel between two replicas.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum SyncMode {
    /// Full knowledge in every request (the paper's baseline protocol).
    #[default]
    Full,
    /// Compact summaries with full-exchange fallback (this module).
    Digest,
}

/// Which summary kinds digest mode may choose. `Auto` is the production
/// setting; the `Force*` variants pin one path for tests and experiments.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum DigestPolicy {
    /// Cheapest sound summary: checksum when unchanged, exact-sized IBLT
    /// delta when a shared snapshot exists, and on first contact whichever
    /// of Bloom / full knowledge encodes smaller.
    #[default]
    Auto,
    /// Always summarize with a Bloom filter when the version set is
    /// enumerable (first contact *and* repeat encounters). Exercises the
    /// false-positive query round.
    ForceBloom,
    /// Always send an IBLT delta when a snapshot exists (even when a full
    /// structure would be smaller); full knowledge otherwise.
    ForceIblt,
    /// Never summarize: full knowledge inside the digest framing.
    ForceFull,
}

/// Replica ids above this cannot be packed into sketch keys (they need
/// the tag bit); knowledge mentioning them always travels as
/// [`KnowledgeSummary::Full`].
pub const MAX_DIGEST_REPLICA: u64 = (1 << 63) - 1;

/// Seed for the order-independent knowledge checksum.
const CHECKSUM_SEED: u64 = 0x5afe_c0de_0213_7717;

/// Default Bloom filter density (bits per known version): ~1% false
/// positives, each costing one entry in the exact query round.
const BLOOM_BITS_PER_ITEM: u32 = 10;

/// Largest enumerable version set a Bloom summary will be built over.
/// Beyond this, first contact sends full knowledge (which is compact
/// precisely when the version count is dominated by vector prefixes).
const BLOOM_MAX_VERSIONS: u64 = 4096;

/// Packs one knowledge entry — a vector watermark or an exception — into
/// a 128-bit sketch key: high word `replica << 1 | is_exception`, low
/// word the counter. The tag rides in the *low* bit of the high word so
/// vector keys of small replicas encode as short varints.
fn entry_key(replica: ReplicaId, counter: u64, exception: bool) -> u128 {
    let hi = (replica.as_u64() << 1) | exception as u64;
    ((hi as u128) << 64) | counter as u128
}

/// Sketch key for one concrete version (Bloom membership universe).
fn version_key(v: Version) -> u128 {
    entry_key(v.replica(), v.counter(), false)
}

/// Inverse of [`entry_key`]: `(replica, counter, is_exception)`.
fn key_entry(key: u128) -> (ReplicaId, u64, bool) {
    let hi = (key >> 64) as u64;
    (ReplicaId::new(hi >> 1), key as u64, hi & 1 == 1)
}

/// The knowledge entry set as sketch keys: one key per vector entry, one
/// per exception. Exact and canonical — two equal `Knowledge` values
/// yield the same key set, two different ones differ.
fn knowledge_entry_keys(k: &Knowledge) -> impl Iterator<Item = u128> + '_ {
    k.vector_entries()
        .map(|(r, c)| entry_key(r, c, false))
        .chain(
            k.exceptions()
                .map(|v| entry_key(v.replica(), v.counter(), true)),
        )
}

/// Whether every replica id in `k` fits the packed key layout.
fn digest_capable(k: &Knowledge) -> bool {
    k.vector_entries()
        .all(|(r, _)| r.as_u64() <= MAX_DIGEST_REPLICA)
        && k.exceptions()
            .all(|v| v.replica().as_u64() <= MAX_DIGEST_REPLICA)
}

/// Order-independent checksum of a knowledge entry set. Used as the delta
/// cache key (`base_checksum`) and as the post-peel reconstruction check;
/// a collision costs one fallback round, never correctness of delivery.
pub fn knowledge_checksum(k: &Knowledge) -> u64 {
    knowledge_entry_keys(k).fold(0u64, |acc, key| {
        acc.wrapping_add(key_hash(key, CHECKSUM_SEED))
    })
}

/// Rebuilds a `Knowledge` from an exact entry-key set. Vector watermarks
/// are installed first so exception inserts cannot be absorbed out of
/// their canonical position.
fn knowledge_from_keys<I: IntoIterator<Item = u128>>(keys: I) -> Knowledge {
    let mut k = Knowledge::new();
    let mut exceptions = Vec::new();
    for key in keys {
        let (replica, counter, exception) = key_entry(key);
        if exception {
            exceptions.push(Version::new(replica, counter));
        } else {
            k.insert_prefix(replica, counter);
        }
    }
    for v in exceptions {
        k.insert(v);
    }
    k
}

/// Exact symmetric-difference size between two knowledge entry sets —
/// what lets delta sketches be sized precisely instead of estimated.
fn entry_diff_count(a: &Knowledge, b: &Knowledge) -> usize {
    let sa: BTreeSet<u128> = knowledge_entry_keys(a).collect();
    let sb: BTreeSet<u128> = knowledge_entry_keys(b).collect();
    sa.symmetric_difference(&sb).count()
}

/// Compact stand-in for a [`Knowledge`] structure in a [`DigestRequest`].
#[derive(Clone, Debug, PartialEq)]
pub enum KnowledgeSummary {
    /// The complete structure: first contact with a large enumerable
    /// set, oversized deltas, incompatible replica ids, or
    /// [`DigestPolicy::ForceFull`].
    Full(Knowledge),
    /// Nothing changed since the last exchange with this peer; `checksum`
    /// lets the source confirm its cached copy is the referenced one.
    Unchanged {
        /// Checksum of the (unchanged) knowledge entry set.
        checksum: u64,
    },
    /// Invertible sketch of the current entry set, to be subtracted
    /// against the peer's cached copy of the previous set and peeled.
    Delta {
        /// Checksum of the previously exchanged knowledge (cache key; a
        /// mismatch means the peer lost or never had the snapshot).
        base_checksum: u64,
        /// Checksum of the current knowledge, verified after
        /// reconstruction.
        checksum: u64,
        /// The sketch, sized for the exact entry difference.
        iblt: Iblt,
    },
    /// First contact without a shared snapshot: membership filter over
    /// every individually known version.
    Bloom {
        /// Number of versions inserted into the filter.
        version_count: u64,
        /// The membership filter.
        bloom: Bloom,
    },
}

impl KnowledgeSummary {
    /// Short stable label for observability: "full", "unchanged",
    /// "delta", or "bloom".
    pub fn kind(&self) -> &'static str {
        match self {
            KnowledgeSummary::Full(_) => "full",
            KnowledgeSummary::Unchanged { .. } => "unchanged",
            KnowledgeSummary::Delta { .. } => "delta",
            KnowledgeSummary::Bloom { .. } => "bloom",
        }
    }
}

/// Digest-mode replacement for [`SyncRequest`]: same target identity and
/// routing state, but knowledge travels as a [`KnowledgeSummary`] and the
/// filter is elided once the peer has acknowledged it by fingerprint.
#[derive(Clone, Debug)]
pub struct DigestRequest {
    /// The requesting (target) replica.
    pub target: ReplicaId,
    /// Compact stand-in for the target's knowledge.
    pub summary: KnowledgeSummary,
    /// Fingerprint of the target's filter (see `Filter::fingerprint`).
    pub filter_fingerprint: u64,
    /// The filter itself; `None` when the fingerprint matches the one
    /// this peer cached on an earlier exchange.
    pub filter: Option<Filter>,
    /// Policy routing data, exactly as in full mode.
    pub routing: RoutingState,
}

/// Exact membership round for Bloom summaries: versions the filter
/// flagged as possibly-known, for the target to confirm one by one.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct VersionQuery {
    /// Versions to confirm, in store order.
    pub versions: Vec<Version>,
}

/// Reply to a [`VersionQuery`]: one bit per queried version, set when the
/// target's knowledge actually contains it.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct VersionAnswer {
    count: usize,
    bits: Vec<u8>,
}

impl VersionAnswer {
    /// An all-unknown answer for `count` queried versions.
    pub fn new(count: usize) -> Self {
        VersionAnswer {
            count,
            bits: vec![0u8; count.div_ceil(8)],
        }
    }

    /// Reassembles an answer from decoded parts; `None` if the bitmap
    /// length does not match the count.
    pub fn from_parts(count: usize, bits: Vec<u8>) -> Option<Self> {
        (bits.len() == count.div_ceil(8)).then_some(VersionAnswer { count, bits })
    }

    /// Marks queried version `i` as known.
    pub fn set_known(&mut self, i: usize) {
        self.bits[i / 8] |= 1 << (i % 8);
    }

    /// Whether queried version `i` is known to the target.
    pub fn known(&self, i: usize) -> bool {
        i < self.count && self.bits[i / 8] & (1 << (i % 8)) != 0
    }

    /// Number of queried versions this answer covers.
    pub fn len(&self) -> usize {
        self.count
    }

    /// Whether the answer covers no versions.
    pub fn is_empty(&self) -> bool {
        self.count == 0
    }

    /// The raw bitmap (for wire encoding).
    pub fn bits(&self) -> &[u8] {
        &self.bits
    }
}

/// Answers a [`VersionQuery`] from the target's actual knowledge.
pub fn answer_query(knowledge: &Knowledge, query: &VersionQuery) -> VersionAnswer {
    let mut answer = VersionAnswer::new(query.versions.len());
    for (i, &v) in query.versions.iter().enumerate() {
        if knowledge.contains(v) {
            answer.set_known(i);
        }
    }
    answer
}

/// Builds the synthetic knowledge a Bloom-path source syncs against: the
/// queried versions the target confirmed, as individual entries. Returns
/// the knowledge plus the false-positive count (versions the filter
/// flagged but the target does not know — they become candidates, exactly
/// as full mode would have selected them). `None` if the answer does not
/// match the query's length.
pub fn knowledge_from_answer(
    query: &VersionQuery,
    answer: &VersionAnswer,
) -> Option<(Knowledge, u64)> {
    if answer.len() != query.versions.len() {
        return None;
    }
    let mut known = Knowledge::new();
    let mut false_positives = 0u64;
    for (i, &v) in query.versions.iter().enumerate() {
        if answer.known(i) {
            known.insert(v);
        } else {
            false_positives += 1;
        }
    }
    Some((known, false_positives))
}

/// What a [`KnowledgeSummary`] resolved to on the source side.
#[derive(Clone, Debug)]
pub enum SummaryOutcome {
    /// The target's knowledge — exact for full/unchanged/delta summaries,
    /// a sound conservative subset for resolved Bloom rounds. Proceed
    /// exactly like a full-mode request.
    Resolved(Knowledge),
    /// Bloom screening needs one exact round before candidates are known.
    NeedVersions(VersionQuery),
    /// The summary references state this side does not hold, or a sketch
    /// failed to peel: request a full exchange instead.
    Resync,
}

/// What this side last sent to (or heard from) one peer.
#[derive(Clone, Debug, Default)]
struct PeerRecon {
    /// Summaries built for this peer; salts successive sketch seeds so a
    /// peel failure never repeats with the same cell assignment.
    epoch: u64,
    /// The knowledge this replica last summarized to the peer, with its
    /// checksum (target role: the base the next delta diffs against).
    sent: Option<(Knowledge, u64)>,
    /// Filter fingerprint the peer has acknowledged (target role: when it
    /// matches the current filter, the filter is elided from requests).
    sent_filter_fp: Option<u64>,
    /// The peer's knowledge as of the last exchange, with its checksum
    /// (source role: the base the next received delta subtracts).
    peer_knowledge: Option<(Knowledge, u64)>,
    /// The peer's filter as last received, keyed by fingerprint (source
    /// role: reused when the peer elides it).
    peer_filter: Option<(u64, Filter)>,
}

/// One summarized-but-not-yet-committed exchange (returned by
/// [`ReconState::build_request`], consumed by [`ReconState::commit_sent`]
/// once the sync succeeds — a failed or corrupted exchange must not
/// advance the snapshot cache).
#[derive(Clone, Debug)]
pub struct PendingExchange {
    peer: ReplicaId,
    knowledge: Knowledge,
    checksum: u64,
    filter_fp: u64,
}

/// Cumulative digest-mode counters for one replica (test and experiment
/// accounting; the authoritative stream is the `ReconDigest` event).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
#[non_exhaustive]
pub struct ReconStats {
    /// Digest exchanges resolved (any kind).
    pub exchanges: u64,
    /// Metadata bytes digest mode cost.
    pub digest_bytes: u64,
    /// Metadata bytes the equivalent full requests would have cost.
    pub full_bytes: u64,
    /// Exchanges that fell back to a full request.
    pub fallback_rounds: u64,
    /// Bloom false positives resolved by exact query rounds.
    pub false_positives: u64,
}

/// Per-replica digest-mode state: the policy knobs plus, per peer, the
/// cached snapshots that make exact deltas possible.
///
/// Caches advance only on [`ReconState::commit_sent`] /
/// [`ReconState::commit_peer`], which callers invoke after the exchange
/// succeeds end to end; anything that dies mid-flight leaves both sides
/// on the old (still mutually consistent) snapshot.
#[derive(Clone, Debug)]
pub struct ReconState {
    policy: DigestPolicy,
    bloom_bits_per_item: u32,
    bloom_max_versions: u64,
    peers: HashMap<ReplicaId, PeerRecon>,
    stats: ReconStats,
}

impl Default for ReconState {
    fn default() -> Self {
        ReconState::new()
    }
}

impl ReconState {
    /// Digest state with the default [`DigestPolicy::Auto`] policy.
    pub fn new() -> Self {
        ReconState {
            policy: DigestPolicy::default(),
            bloom_bits_per_item: BLOOM_BITS_PER_ITEM,
            bloom_max_versions: BLOOM_MAX_VERSIONS,
            peers: HashMap::new(),
            stats: ReconStats::default(),
        }
    }

    /// Digest state pinned to one summary policy.
    pub fn with_policy(policy: DigestPolicy) -> Self {
        ReconState {
            policy,
            ..ReconState::new()
        }
    }

    /// The active summary policy.
    pub fn policy(&self) -> DigestPolicy {
        self.policy
    }

    /// Replaces the summary policy.
    pub fn set_policy(&mut self, policy: DigestPolicy) {
        self.policy = policy;
    }

    /// Bloom filter density in bits per version (false-positive rate
    /// ≈ 0.6185^bits).
    pub fn bloom_bits_per_item(&self) -> u32 {
        self.bloom_bits_per_item
    }

    /// Sets the Bloom density, clamped to 1..=64 bits per version. Lower
    /// densities shrink first-contact digests but cost more exact query
    /// rounds; this is the knob the bandwidth sweep turns.
    pub fn set_bloom_bits_per_item(&mut self, bits: u32) {
        self.bloom_bits_per_item = bits.clamp(1, 64);
    }

    /// Cumulative digest counters for this replica.
    pub fn stats(&self) -> ReconStats {
        self.stats
    }

    /// Folds one completed exchange into [`ReconState::stats`].
    pub fn note_exchange(
        &mut self,
        digest_bytes: u64,
        full_bytes: u64,
        fallback_rounds: u64,
        false_positives: u64,
    ) {
        self.stats.exchanges += 1;
        self.stats.digest_bytes += digest_bytes;
        self.stats.full_bytes += full_bytes;
        self.stats.fallback_rounds += fallback_rounds;
        self.stats.false_positives += false_positives;
    }

    /// Drops all per-peer snapshots (a restart that loses digest state;
    /// the next exchange with every peer re-seeds via Bloom or full).
    pub fn clear_peers(&mut self) {
        self.peers.clear();
    }

    /// **Target role.** Summarizes a full-mode request into a
    /// [`DigestRequest`] for `peer`, choosing the cheapest sound summary
    /// the policy allows. Also returns the [`PendingExchange`] to commit
    /// once the sync succeeds.
    pub fn build_request(
        &mut self,
        peer: ReplicaId,
        request: &SyncRequest<'_>,
    ) -> (DigestRequest, PendingExchange) {
        let knowledge = request.knowledge.as_ref();
        let checksum = knowledge_checksum(knowledge);
        let filter_fp = request.filter.fingerprint();
        let record = self.peers.entry(peer).or_default();
        record.epoch += 1;
        let seed = key_hash(
            ((request.target.as_u64() as u128) << 64) | peer.as_u64() as u128,
            0x1db7_c0de ^ record.epoch,
        );

        let summary = if self.policy == DigestPolicy::ForceFull || !digest_capable(knowledge) {
            KnowledgeSummary::Full(knowledge.clone())
        } else if self.policy == DigestPolicy::ForceBloom {
            bloom_summary(
                knowledge,
                self.bloom_bits_per_item,
                self.bloom_max_versions,
                seed,
            )
            .unwrap_or_else(|| KnowledgeSummary::Full(knowledge.clone()))
        } else if let Some((sent, sent_checksum)) = &record.sent {
            if sent == knowledge {
                KnowledgeSummary::Unchanged { checksum }
            } else {
                let d = entry_diff_count(knowledge, sent);
                let mut iblt = Iblt::for_expected_diff(d, seed);
                for key in knowledge_entry_keys(knowledge) {
                    iblt.insert(key);
                }
                // Auto falls back to the full structure when the sketch
                // would not actually be smaller (huge deltas relative to
                // the knowledge itself).
                if self.policy == DigestPolicy::Auto
                    && iblt.encoded_len() >= wire::to_bytes(knowledge).len()
                {
                    KnowledgeSummary::Full(knowledge.clone())
                } else {
                    KnowledgeSummary::Delta {
                        base_checksum: *sent_checksum,
                        checksum,
                        iblt,
                    }
                }
            }
        } else {
            // First contact. A Bloom is worth sending only when the
            // version set is enumerable and the filter encodes smaller
            // than the knowledge it stands in for.
            match self.policy {
                DigestPolicy::ForceIblt => KnowledgeSummary::Full(knowledge.clone()),
                _ => bloom_summary(
                    knowledge,
                    self.bloom_bits_per_item,
                    self.bloom_max_versions,
                    seed,
                )
                .filter(|s| match s {
                    KnowledgeSummary::Bloom { bloom, .. } => {
                        bloom.encoded_len() < wire::to_bytes(knowledge).len()
                    }
                    _ => false,
                })
                .unwrap_or_else(|| KnowledgeSummary::Full(knowledge.clone())),
            }
        };

        let filter = if record.sent_filter_fp == Some(filter_fp) {
            None
        } else {
            Some(request.filter.as_ref().clone())
        };
        let digest = DigestRequest {
            target: request.target,
            summary,
            filter_fingerprint: filter_fp,
            filter,
            routing: request.routing.clone(),
        };
        let pending = PendingExchange {
            peer,
            knowledge: knowledge.clone(),
            checksum,
            filter_fp,
        };
        (digest, pending)
    }

    /// **Target role.** Commits a successful exchange: the peer now holds
    /// this snapshot, so the next summary can delta against it.
    /// `knowledge_shared` says whether the exchange actually conveyed the
    /// exact knowledge set (full/unchanged/delta paths, and fallbacks
    /// that retransmitted the full request) — Bloom rounds convey a lossy
    /// view and must not seed the delta cache.
    pub fn commit_sent(&mut self, pending: PendingExchange, knowledge_shared: bool) {
        let record = self.peers.entry(pending.peer).or_default();
        if knowledge_shared {
            record.sent = Some((pending.knowledge, pending.checksum));
        }
        record.sent_filter_fp = Some(pending.filter_fp);
    }

    /// **Source role.** The target's filter for this request: carried
    /// inline, or recalled from the cache by fingerprint. `None` means
    /// the peer elided a filter this side never saw — a protocol desync
    /// that must resolve as [`SummaryOutcome::Resync`].
    pub fn effective_filter(&self, peer: ReplicaId, request: &DigestRequest) -> Option<Filter> {
        if let Some(f) = &request.filter {
            return Some(f.clone());
        }
        self.peers.get(&peer).and_then(|r| {
            r.peer_filter
                .as_ref()
                .filter(|(fp, _)| *fp == request.filter_fingerprint)
                .map(|(_, f)| f.clone())
        })
    }

    /// **Source role.** Resolves a summary against the cached snapshot
    /// and (for Bloom) the local store. Never fails hard: anything that
    /// cannot be resolved exactly comes back as
    /// [`SummaryOutcome::Resync`].
    pub fn resolve(
        &self,
        local: &Replica,
        peer: ReplicaId,
        summary: &KnowledgeSummary,
    ) -> SummaryOutcome {
        match summary {
            KnowledgeSummary::Full(k) => SummaryOutcome::Resolved(k.clone()),
            KnowledgeSummary::Unchanged { checksum } => {
                match self
                    .peers
                    .get(&peer)
                    .and_then(|r| r.peer_knowledge.as_ref())
                {
                    Some((cached, cached_sum)) if cached_sum == checksum => {
                        SummaryOutcome::Resolved(cached.clone())
                    }
                    _ => SummaryOutcome::Resync,
                }
            }
            KnowledgeSummary::Delta {
                base_checksum,
                checksum,
                iblt,
            } => {
                let Some((cached, cached_sum)) = self
                    .peers
                    .get(&peer)
                    .and_then(|r| r.peer_knowledge.as_ref())
                else {
                    return SummaryOutcome::Resync;
                };
                if cached_sum != base_checksum {
                    return SummaryOutcome::Resync;
                }
                // Rebuild the peer's previous entry set under the sketch's
                // own geometry (seed and cell count ride in its encoding),
                // subtract, and peel what remains: the exact entry-level
                // symmetric difference.
                let mut local_sketch = Iblt::with_cells(iblt.cells(), iblt.seed());
                for key in knowledge_entry_keys(cached) {
                    local_sketch.insert(key);
                }
                let Ok(sub) = iblt.subtract(&local_sketch) else {
                    return SummaryOutcome::Resync;
                };
                let Ok(diff) = sub.decode() else {
                    return SummaryOutcome::Resync;
                };
                let mut keys: BTreeSet<u128> = knowledge_entry_keys(cached).collect();
                for key in &diff.only_remote {
                    if !keys.remove(key) {
                        return SummaryOutcome::Resync;
                    }
                }
                for key in &diff.only_local {
                    if !keys.insert(*key) {
                        return SummaryOutcome::Resync;
                    }
                }
                let rebuilt = knowledge_from_keys(keys);
                if knowledge_checksum(&rebuilt) != *checksum {
                    return SummaryOutcome::Resync;
                }
                SummaryOutcome::Resolved(rebuilt)
            }
            KnowledgeSummary::Bloom { bloom, .. } => {
                // Screen every stored current version. Definite misses
                // need no confirmation — the filter has no false
                // negatives — so only possible hits go to the query round.
                let uncertain: Vec<Version> = local
                    .stored_versions()
                    .filter(|&v| bloom.contains(version_key(v)))
                    .collect();
                if uncertain.is_empty() {
                    SummaryOutcome::Resolved(Knowledge::new())
                } else {
                    SummaryOutcome::NeedVersions(VersionQuery {
                        versions: uncertain,
                    })
                }
            }
        }
    }

    /// **Source role.** Commits a successful exchange: caches the
    /// target's filter, and — when the exchange conveyed it exactly —
    /// the target's knowledge for the next delta round.
    pub fn commit_peer(
        &mut self,
        peer: ReplicaId,
        knowledge: Option<Knowledge>,
        filter_fp: u64,
        filter: &Filter,
    ) {
        let record = self.peers.entry(peer).or_default();
        if let Some(k) = knowledge {
            let sum = knowledge_checksum(&k);
            record.peer_knowledge = Some((k, sum));
        }
        if record.peer_filter.as_ref().map(|(fp, _)| *fp) != Some(filter_fp) {
            record.peer_filter = Some((filter_fp, filter.clone()));
        }
    }
}

/// Builds a Bloom summary over `knowledge`'s version set, or `None` when
/// the set is too large to enumerate.
fn bloom_summary(
    knowledge: &Knowledge,
    bits_per_item: u32,
    max_versions: u64,
    seed: u64,
) -> Option<KnowledgeSummary> {
    let version_count = knowledge.version_count();
    if version_count > max_versions {
        return None;
    }
    let mut bloom = Bloom::for_items(version_count as usize, bits_per_item, seed);
    for (replica, base) in knowledge.vector_entries() {
        for counter in 1..=base {
            bloom.insert(entry_key(replica, counter, false));
        }
    }
    for v in knowledge.exceptions() {
        bloom.insert(version_key(v));
    }
    Some(KnowledgeSummary::Bloom {
        version_count,
        bloom,
    })
}

/// Runs one full one-directional **digest-mode** sync in process:
/// `target` pulls from `source`, with each side's [`ReconState`] holding
/// the snapshot caches. Delivery behaviour is identical to
/// [`sync::sync_with`] — same candidates, same batch, same events — plus
/// one [`Event::ReconDigest`] accounting the metadata bytes both modes
/// would have spent.
#[allow(clippy::too_many_arguments)]
pub fn sync_with_digest(
    source: &mut Replica,
    source_ext: &mut dyn SyncExtension,
    source_recon: &mut ReconState,
    target: &mut Replica,
    target_ext: &mut dyn SyncExtension,
    target_recon: &mut ReconState,
    limits: SyncLimits,
    now: SimTime,
) -> SyncReport {
    let source_id = source.id();
    let target_id = target.id();
    let full_request = sync::begin_sync(target, target_ext, now, Some(source_id)).into_owned();
    let full_bytes = wire::to_bytes(&full_request).len() as u64;
    let (digest_request, pending) = target_recon.build_request(source_id, &full_request);
    let mut digest_bytes = wire::to_bytes(&digest_request).len() as u64;
    let mut fallback_rounds = 0u64;
    let mut false_positives = 0u64;
    let mut kind = digest_request.summary.kind();

    let outcome = match source_recon.effective_filter(target_id, &digest_request) {
        Some(_) => source_recon.resolve(source, target_id, &digest_request.summary),
        None => SummaryOutcome::Resync,
    };

    // The knowledge the source will have exchanged exactly (and may
    // therefore cache for the next delta); `None` on Bloom rounds.
    let mut source_cache: Option<Knowledge> = None;
    let request: SyncRequest<'static> = match outcome {
        SummaryOutcome::Resolved(knowledge) => {
            if kind != "bloom" {
                source_cache = Some(knowledge.clone());
            }
            let filter = source_recon
                .effective_filter(target_id, &digest_request)
                .expect("filter resolved above");
            SyncRequest {
                target: target_id,
                knowledge: Cow::Owned(knowledge),
                filter: Cow::Owned(filter),
                routing: digest_request.routing.clone(),
            }
        }
        SummaryOutcome::NeedVersions(query) => {
            fallback_rounds += 1;
            digest_bytes += wire::to_bytes(&query).len() as u64;
            let answer = answer_query(target.knowledge(), &query);
            digest_bytes += wire::to_bytes(&answer).len() as u64;
            let (known, fps) =
                knowledge_from_answer(&query, &answer).expect("answer sized to query");
            false_positives = fps;
            let filter = source_recon
                .effective_filter(target_id, &digest_request)
                .expect("filter resolved above");
            SyncRequest {
                target: target_id,
                knowledge: Cow::Owned(known),
                filter: Cow::Owned(filter),
                routing: digest_request.routing.clone(),
            }
        }
        SummaryOutcome::Resync => {
            // Full retransmission: one resync byte on the wire, then the
            // plain request. Counted against digest mode — fallbacks are
            // its cost, not full mode's.
            fallback_rounds += 1;
            kind = "full";
            digest_bytes += 1 + full_bytes;
            source_cache = Some(full_request.knowledge.as_ref().clone());
            full_request.clone()
        }
    };

    source.observer().emit(|| Event::ReconDigest {
        replica: source_id.as_u64(),
        peer: target_id.as_u64(),
        kind,
        digest_bytes,
        full_bytes,
        fallback_rounds,
        false_positives,
    });
    source_recon.note_exchange(digest_bytes, full_bytes, fallback_rounds, false_positives);

    let batch = sync::prepare_batch(source, source_ext, &request, limits, now);
    let (report, spent_entries) = sync::apply_batch_recycling(target, target_ext, batch, now);
    source.recycle_batch_entries(spent_entries);

    // Both ends saw the exchange succeed: advance the snapshot caches in
    // lockstep (Bloom rounds advance only the filter caches).
    let knowledge_shared = kind != "bloom";
    target_recon.commit_sent(pending, knowledge_shared);
    let filter_fp = digest_request.filter_fingerprint;
    source_recon.commit_peer(target_id, source_cache, filter_fp, request.filter.as_ref());
    report
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::attrs::AttributeMap;
    use crate::sync::NoExtension;

    fn rid(n: u64) -> ReplicaId {
        ReplicaId::new(n)
    }

    fn dest(d: &str) -> AttributeMap {
        let mut a = AttributeMap::new();
        a.set("dest", d);
        a
    }

    fn host(n: u64, addr: &str) -> Replica {
        Replica::new(rid(n), Filter::address("dest", addr))
    }

    fn digest_sync(
        source: &mut Replica,
        source_recon: &mut ReconState,
        target: &mut Replica,
        target_recon: &mut ReconState,
        at: u64,
    ) -> SyncReport {
        sync_with_digest(
            source,
            &mut NoExtension,
            source_recon,
            target,
            &mut NoExtension,
            target_recon,
            SyncLimits::unlimited(),
            SimTime::from_secs(at),
        )
    }

    #[test]
    fn entry_keys_roundtrip_and_checksum_is_order_free() {
        let r = rid(9);
        let mut k = Knowledge::new();
        k.insert_prefix(r, 5);
        k.insert(Version::new(r, 9));
        k.insert(Version::new(rid(3), 2));
        let keys: Vec<u128> = knowledge_entry_keys(&k).collect();
        let rebuilt = knowledge_from_keys(keys.iter().rev().copied());
        assert_eq!(rebuilt, k);
        assert_eq!(knowledge_checksum(&rebuilt), knowledge_checksum(&k));
    }

    #[test]
    fn digest_sync_matches_full_sync_behaviour() {
        // Same initial state, one run per mode: delivered sets must agree.
        let mut a1 = host(1, "a");
        let mut b1 = host(2, "b");
        let mut a2 = host(1, "a");
        let mut b2 = host(2, "b");
        for i in 0..20u8 {
            let d = dest(if i % 3 == 0 { "b" } else { "x" });
            a1.insert(d.clone(), vec![i]).unwrap();
            a2.insert(d, vec![i]).unwrap();
        }
        let full = sync::sync_once(&mut a1, &mut b1, SimTime::ZERO);
        let (mut ra, mut rb) = (ReconState::new(), ReconState::new());
        let dig = digest_sync(&mut a2, &mut ra, &mut b2, &mut rb, 0);
        assert_eq!(full.delivered, dig.delivered);
        assert_eq!(full.transmitted, dig.transmitted);
        assert_eq!(b1.item_count(), b2.item_count());
    }

    #[test]
    fn repeat_encounters_settle_into_unchanged_and_delta() {
        let mut a = host(1, "a");
        let mut b = host(2, "b");
        let mut c = host(3, "c");
        let (mut ra, mut rb) = (ReconState::new(), ReconState::new());
        let (mut rc_a, mut rc) = (ReconState::new(), ReconState::new());
        for i in 0..200u8 {
            a.insert(dest("b"), vec![i]).unwrap();
        }
        // First contact seeds the snapshot caches (full or bloom).
        digest_sync(&mut a, &mut ra, &mut b, &mut rb, 0);
        // Nothing changed: the second exchange must be "unchanged".
        digest_sync(&mut a, &mut ra, &mut b, &mut rb, 1);
        assert_eq!(ra.stats().exchanges, 2);
        assert_eq!(ra.stats().fallback_rounds, 0);
        // b's knowledge changed a little (new items from c): delta path.
        for i in 0..4u8 {
            c.insert(dest("b"), vec![i]).unwrap();
        }
        digest_sync(&mut c, &mut rc_a, &mut b, &mut rc, 2);
        let before = ra.stats().digest_bytes;
        digest_sync(&mut a, &mut ra, &mut b, &mut rb, 3);
        let delta_cost = ra.stats().digest_bytes - before;
        assert_eq!(ra.stats().fallback_rounds, 0, "delta must peel cleanly");
        // The delta must be far cheaper than resending 200+ versions of
        // knowledge in full.
        assert!(
            delta_cost < ra.stats().full_bytes / 2,
            "delta {delta_cost}B vs cumulative full {}B",
            ra.stats().full_bytes
        );
        assert_eq!(b.item_count(), 204);
    }

    #[test]
    fn unchanged_costs_a_fraction_of_full() {
        let mut a = host(1, "a");
        let mut b = host(2, "b");
        let (mut ra, mut rb) = (ReconState::new(), ReconState::new());
        // Interleave destinations so b learns only every other version:
        // permanent gaps, so its knowledge is exception-heavy — the
        // structure full mode keeps resending and digest mode does not.
        for i in 0..100u8 {
            a.insert(dest(if i % 2 == 0 { "b" } else { "x" }), vec![i])
                .unwrap();
        }
        // First sync delivers; second conveys the now-stable knowledge
        // (summaries snapshot the pre-batch state, so the cache lags one
        // exchange); the third is the steady state digest mode is for.
        digest_sync(&mut a, &mut ra, &mut b, &mut rb, 0);
        digest_sync(&mut a, &mut ra, &mut b, &mut rb, 1);
        let (d0, f0) = (ra.stats().digest_bytes, ra.stats().full_bytes);
        digest_sync(&mut a, &mut ra, &mut b, &mut rb, 2);
        let steady = ra.stats().digest_bytes - d0;
        let steady_full = ra.stats().full_bytes - f0;
        assert!(
            steady * 4 < steady_full,
            "unchanged summary {steady}B vs full request {steady_full}B"
        );
    }

    #[test]
    fn forced_bloom_resolves_false_positives_exactly() {
        let mut a = host(1, "a");
        let mut b = host(2, "b");
        let mut rb = ReconState::with_policy(DigestPolicy::ForceBloom);
        let mut ra = ReconState::with_policy(DigestPolicy::ForceBloom);
        // b knows plenty (its own writes), a stores items b has never
        // seen plus nothing b knows — every stored version screens
        // against a populated filter.
        for i in 0..50u8 {
            b.insert(dest("b"), vec![i]).unwrap();
        }
        for i in 0..30u8 {
            a.insert(dest("b"), vec![i]).unwrap();
        }
        let report = digest_sync(&mut a, &mut ra, &mut b, &mut rb, 0);
        assert_eq!(report.delivered, 30, "bloom path delivers everything");
        // Idempotent under bloom too: b now knows a's versions, so the
        // query round confirms them and nothing is re-sent.
        let report = digest_sync(&mut a, &mut ra, &mut b, &mut rb, 1);
        assert_eq!(report.transmitted, 0);
    }

    #[test]
    fn lost_cache_falls_back_to_full_and_recovers() {
        let mut a = host(1, "a");
        let mut b = host(2, "b");
        let (mut ra, mut rb) = (ReconState::new(), ReconState::new());
        for i in 0..150u8 {
            a.insert(dest("b"), vec![i]).unwrap();
        }
        digest_sync(&mut a, &mut ra, &mut b, &mut rb, 0);
        // Source forgets everything (restart): the next Unchanged/Delta
        // summary references a snapshot it no longer holds.
        ra.clear_peers();
        let report = digest_sync(&mut a, &mut ra, &mut b, &mut rb, 1);
        assert_eq!(ra.stats().fallback_rounds, 1, "resync round taken");
        assert_eq!(report.duplicates, 0);
        // And the fallback re-seeded the caches: next round is cheap again.
        let before = ra.stats().digest_bytes;
        digest_sync(&mut a, &mut ra, &mut b, &mut rb, 2);
        assert!(ra.stats().digest_bytes - before < 64);
        assert_eq!(ra.stats().fallback_rounds, 1);
    }

    #[test]
    fn huge_replica_ids_force_full_summaries() {
        let big = rid(u64::MAX - 3);
        let mut a = Replica::new(rid(1), Filter::address("dest", "a"));
        let mut b = Replica::new(big, Filter::address("dest", "b"));
        let (mut ra, mut rb) = (ReconState::new(), ReconState::new());
        b.insert(dest("b"), vec![1]).unwrap();
        a.insert(dest("b"), vec![2]).unwrap();
        for at in 0..3 {
            digest_sync(&mut a, &mut ra, &mut b, &mut rb, at);
        }
        assert_eq!(ra.stats().fallback_rounds, 0);
        assert_eq!(b.item_count(), 2);
    }

    #[test]
    fn version_answer_bitmap_roundtrips() {
        let mut ans = VersionAnswer::new(11);
        for i in [0usize, 3, 7, 10] {
            ans.set_known(i);
        }
        for i in 0..11 {
            assert_eq!(ans.known(i), [0usize, 3, 7, 10].contains(&i));
        }
        assert!(!ans.known(11), "out of range is unknown");
        let rebuilt = VersionAnswer::from_parts(11, ans.bits().to_vec()).unwrap();
        assert_eq!(rebuilt, ans);
        assert!(VersionAnswer::from_parts(11, vec![0u8; 1]).is_none());
    }
}
