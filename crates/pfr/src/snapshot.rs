//! Durable replica state: snapshot and restore.
//!
//! A DTN device can reboot between encounters; everything a replica needs
//! to resume — identity, filter, knowledge, stored items (with their
//! store classification, arrival order, and transient routing metadata),
//! and write counters — serializes through the same compact wire codec the
//! sync protocol uses. Restoring a snapshot yields a replica that behaves
//! identically from that point on; in particular its knowledge matches its
//! store, so at-most-once delivery is preserved across the restart.

use crate::error::PfrError;
use crate::filter::Filter;
use crate::id::{ItemId, ReplicaId};
use crate::item::Item;
use crate::knowledge::Knowledge;
use crate::replica::Replica;
use crate::store::StoreKind;
use crate::time::SimTime;
use crate::wire::{Decode, Encode, Reader, WireError, Writer};

/// Snapshot format version, bumped on layout changes.
const SNAPSHOT_VERSION: u8 = 1;

impl Encode for StoreKind {
    fn encode(&self, w: &mut Writer) {
        w.put_u8(match self {
            StoreKind::InFilter => 0,
            StoreKind::PushOut => 1,
            StoreKind::Relay => 2,
        });
    }
}

impl Decode for StoreKind {
    fn decode(r: &mut Reader<'_>) -> Result<Self, WireError> {
        match r.get_u8()? {
            0 => Ok(StoreKind::InFilter),
            1 => Ok(StoreKind::PushOut),
            2 => Ok(StoreKind::Relay),
            tag => Err(WireError::InvalidTag {
                what: "StoreKind",
                tag,
            }),
        }
    }
}

impl Replica {
    /// Serializes the replica's full durable state.
    pub fn snapshot(&self) -> Vec<u8> {
        let mut w = Writer::new();
        self.snapshot_into(&mut w);
        w.into_bytes()
    }

    /// Serializes the replica's full durable state into a caller-owned
    /// [`Writer`], clearing it first. Steady-state snapshotting (the
    /// sharded emulator spills thousands of replicas per run) reuses one
    /// buffer instead of allocating per snapshot.
    pub fn snapshot_into(&self, w: &mut Writer) {
        w.clear();
        w.put_u8(SNAPSHOT_VERSION);
        self.id().encode(w);
        self.filter().encode(w);
        self.knowledge().encode(w);
        w.put_varint(self.next_item_seq_raw());
        w.put_varint(self.next_version_counter_raw());
        match self.relay_limit() {
            None => w.put_u8(0),
            Some(n) => {
                w.put_u8(1);
                w.put_varint(n as u64);
            }
        }
        let ids = self.item_ids();
        w.put_varint(ids.len() as u64);
        for id in &ids {
            let item = self.item(*id).expect("listed id present");
            let kind = self.store_kind(*id).expect("listed id present");
            let received_at = self.received_at(*id).expect("listed id present");
            item.encode(w);
            kind.encode(w);
            w.put_varint(received_at.as_secs());
        }
        let fifo = self.relay_fifo_order();
        fifo.encode(w);
    }

    /// Reconstructs a replica from a snapshot.
    ///
    /// # Errors
    ///
    /// Returns [`PfrError::BadSnapshot`] for an unknown format version or
    /// trailing garbage, and [`PfrError::SnapshotDecode`] when bytes
    /// inside a field are corrupt.
    pub fn restore(bytes: &[u8]) -> Result<Replica, PfrError> {
        match bytes.first() {
            Some(&v) if v != SNAPSHOT_VERSION => {
                return Err(PfrError::BadSnapshot {
                    version: Some(v),
                    trailing: 0,
                });
            }
            Some(_) => {}
            None => {
                return Err(PfrError::SnapshotDecode {
                    message: "empty snapshot".into(),
                });
            }
        }
        // Restore decodes through the shared-buffer path: every restored
        // item's payload is a slice into this one backing buffer instead
        // of a private allocation per item.
        let backing: std::sync::Arc<[u8]> = bytes[1..].into();
        let mut r = Reader::shared(&backing);
        (|| -> Result<Replica, WireError> {
            let id = ReplicaId::decode(&mut r)?;
            let filter = Filter::decode(&mut r)?;
            let knowledge = Knowledge::decode(&mut r)?;
            let next_item_seq = r.get_varint()?;
            let next_version_counter = r.get_varint()?;
            let relay_limit = match r.get_u8()? {
                0 => None,
                _ => Some(r.get_varint()? as usize),
            };
            let n = r.get_len(8)?;
            let mut items: Vec<(Item, StoreKind, SimTime)> = Vec::with_capacity(n);
            for _ in 0..n {
                let item = Item::decode(&mut r)?;
                let kind = StoreKind::decode(&mut r)?;
                let received_at = SimTime::from_secs(r.get_varint()?);
                items.push((item, kind, received_at));
            }
            let fifo = Vec::<ItemId>::decode(&mut r)?;
            if r.remaining() != 0 {
                return Err(WireError::TrailingBytes(r.remaining()));
            }
            Ok(Replica::from_parts(
                id,
                filter,
                knowledge,
                next_item_seq,
                next_version_counter,
                relay_limit,
                items,
                fifo,
            ))
        })()
        .map_err(|e| match e {
            // The trailing-bytes check is the last step above, so this
            // arm fires only for garbage after a fully decoded snapshot.
            WireError::TrailingBytes(n) => PfrError::BadSnapshot {
                version: None,
                trailing: n,
            },
            e => PfrError::SnapshotDecode {
                message: e.to_string(),
            },
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::attrs::AttributeMap;
    use crate::sync;

    fn dest(d: &str) -> AttributeMap {
        let mut a = AttributeMap::new();
        a.set("dest", d);
        a
    }

    fn populated_replica() -> Replica {
        let mut other = Replica::new(ReplicaId::new(9), Filter::All);
        let mut r = Replica::new(ReplicaId::new(1), Filter::address("dest", "me"));
        r.set_relay_limit(Some(5));
        r.insert(dest("me"), b"mine".to_vec()).unwrap();
        let out = r.insert(dest("elsewhere"), b"pushout".to_vec()).unwrap();
        r.set_transient(out, "dtn.ttl", 7i64).unwrap();
        // Receive a relay item and an in-filter item from a peer.
        for d in ["relayed", "me"] {
            let id = other.insert(dest(d), d.as_bytes().to_vec()).unwrap();
            let item = other.item(id).unwrap().clone();
            r.apply_remote(item, SimTime::from_secs(42));
        }
        r
    }

    #[test]
    fn snapshot_roundtrip_preserves_observable_state() {
        let original = populated_replica();
        let restored = Replica::restore(&original.snapshot()).expect("restore");

        assert_eq!(restored.id(), original.id());
        assert_eq!(restored.filter(), original.filter());
        assert_eq!(restored.knowledge(), original.knowledge());
        assert_eq!(restored.relay_limit(), original.relay_limit());
        assert_eq!(restored.item_ids(), original.item_ids());
        for id in original.item_ids() {
            assert_eq!(restored.item(id), original.item(id), "item {id}");
            assert_eq!(restored.store_kind(id), original.store_kind(id));
            assert_eq!(restored.received_at(id), original.received_at(id));
        }
    }

    #[test]
    fn restored_replica_continues_allocating_fresh_versions() {
        let mut original = populated_replica();
        let mut restored = Replica::restore(&original.snapshot()).expect("restore");
        let id_a = original.insert(dest("x"), vec![]).unwrap();
        let id_b = restored.insert(dest("x"), vec![]).unwrap();
        assert_eq!(id_a, id_b, "counters resume identically");
        assert_eq!(
            original.item(id_a).unwrap().version(),
            restored.item(id_b).unwrap().version()
        );
    }

    #[test]
    fn restart_does_not_break_at_most_once() {
        let mut source = Replica::new(ReplicaId::new(2), Filter::All);
        let mut target = Replica::new(ReplicaId::new(1), Filter::address("dest", "me"));
        let id = source.insert(dest("me"), b"m".to_vec()).unwrap();
        sync::sync_once(&mut source, &mut target, SimTime::ZERO);
        assert!(target.contains_item(id));

        // Crash and restore the target; the source tries again.
        let mut target = Replica::restore(&target.snapshot()).expect("restore");
        let report = sync::sync_once(&mut source, &mut target, SimTime::from_secs(60));
        assert_eq!(report.transmitted, 0, "knowledge survived the restart");
        assert_eq!(report.duplicates, 0);
    }

    #[test]
    fn restore_after_stale_snapshot_reconverges() {
        // Snapshot, receive more items, crash back to the snapshot: the
        // lost items are re-replicated without duplicate deliveries.
        let mut source = Replica::new(ReplicaId::new(2), Filter::All);
        let mut target = Replica::new(ReplicaId::new(1), Filter::address("dest", "me"));
        let early = source.insert(dest("me"), b"early".to_vec()).unwrap();
        sync::sync_once(&mut source, &mut target, SimTime::ZERO);
        let snapshot = target.snapshot();

        let late = source.insert(dest("me"), b"late".to_vec()).unwrap();
        sync::sync_once(&mut source, &mut target, SimTime::from_secs(10));
        assert!(target.contains_item(late));

        let mut target = Replica::restore(&snapshot).expect("restore");
        assert!(!target.contains_item(late), "rolled back");
        let report = sync::sync_once(&mut source, &mut target, SimTime::from_secs(20));
        assert_eq!(report.transmitted, 1, "only the lost item is re-sent");
        assert!(target.contains_item(late));
        assert!(target.contains_item(early));
        assert_eq!(report.duplicates, 0);
    }

    #[test]
    fn relay_fifo_order_survives_restore() {
        let mut other = Replica::new(ReplicaId::new(9), Filter::All);
        let mut r = Replica::new(ReplicaId::new(1), Filter::address("dest", "me"));
        let mut relay_ids = Vec::new();
        for i in 0..3 {
            let id = other.insert(dest(&format!("d{i}")), vec![i]).unwrap();
            let item = other.item(id).unwrap().clone();
            r.apply_remote(item, SimTime::from_secs(i as u64));
            relay_ids.push(id);
        }
        let mut restored = Replica::restore(&r.snapshot()).expect("restore");
        restored.set_relay_limit(Some(2));
        // Oldest relay item must be the first evicted, as before the crash.
        assert!(!restored.contains_item(relay_ids[0]));
        assert!(restored.contains_item(relay_ids[1]));
        assert!(restored.contains_item(relay_ids[2]));
    }

    #[test]
    fn restored_payloads_share_one_snapshot_buffer() {
        let original = populated_replica();
        let restored = Replica::restore(&original.snapshot()).expect("restore");
        let buffer_ids: Vec<usize> = restored
            .iter_items()
            .map(|i| i.payload_shared())
            .filter(|p| !p.is_empty())
            .map(|p| p.buffer_id())
            .collect();
        assert!(buffer_ids.len() >= 2, "fixture has payload-bearing items");
        assert!(
            buffer_ids.windows(2).all(|w| w[0] == w[1]),
            "all restored payloads slice the same backing buffer"
        );
    }

    #[test]
    fn corrupt_snapshots_fail_cleanly() {
        let replica = populated_replica();
        let good = replica.snapshot();
        // Truncations and bit flips must all produce errors, not panics.
        for cut in [0, 1, good.len() / 2, good.len() - 1] {
            let err = Replica::restore(&good[..cut]).unwrap_err();
            assert!(matches!(err, PfrError::SnapshotDecode { .. }));
        }
        let mut bad_version = good.clone();
        bad_version[0] = 99;
        let err = Replica::restore(&bad_version).unwrap_err();
        assert_eq!(
            err,
            PfrError::BadSnapshot {
                version: Some(99),
                trailing: 0
            }
        );
        assert!(err.to_string().contains("snapshot"));
    }

    #[test]
    fn trailing_garbage_is_a_typed_error() {
        let mut padded = populated_replica().snapshot();
        padded.extend_from_slice(b"junk");
        let err = Replica::restore(&padded).unwrap_err();
        assert_eq!(
            err,
            PfrError::BadSnapshot {
                version: None,
                trailing: 4
            }
        );
        assert!(err.to_string().contains("4 trailing bytes"));
    }
}
