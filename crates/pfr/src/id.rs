//! Identifiers for replicas, items, and item versions.
//!
//! All identifiers are small `Copy` newtypes (C-NEWTYPE) with total
//! orderings, so they can be used as map keys and serialized compactly on
//! the wire.

use std::fmt;

use serde::{Deserialize, Serialize};

/// Identifies a replica (a host participating in replication).
///
/// In the DTN application every device — every bus in the vehicular
/// experiments — runs exactly one replica, so a `ReplicaId` doubles as a
/// host/node identifier.
///
/// # Examples
///
/// ```
/// use pfr::ReplicaId;
///
/// let a = ReplicaId::new(1);
/// let b = ReplicaId::new(2);
/// assert!(a < b);
/// assert_eq!(a.as_u64(), 1);
/// ```
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct ReplicaId(u64);

impl ReplicaId {
    /// Creates a replica identifier from a raw integer.
    pub const fn new(raw: u64) -> Self {
        ReplicaId(raw)
    }

    /// Returns the raw integer value.
    pub const fn as_u64(self) -> u64 {
        self.0
    }
}

impl fmt::Debug for ReplicaId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "R{}", self.0)
    }
}

impl fmt::Display for ReplicaId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "R{}", self.0)
    }
}

impl From<u64> for ReplicaId {
    fn from(raw: u64) -> Self {
        ReplicaId(raw)
    }
}

/// Globally unique identifier for a replicated item.
///
/// An item id is the pair of the replica that created the item (its
/// *origin*) and a sequence number local to that origin. Origins allocate
/// sequence numbers monotonically, so ids never collide without any
/// coordination — exactly what a disconnected system needs.
///
/// # Examples
///
/// ```
/// use pfr::{ItemId, ReplicaId};
///
/// let id = ItemId::new(ReplicaId::new(7), 42);
/// assert_eq!(id.origin(), ReplicaId::new(7));
/// assert_eq!(id.seq(), 42);
/// ```
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct ItemId {
    origin: ReplicaId,
    seq: u64,
}

impl ItemId {
    /// Creates an item id from an origin replica and a per-origin sequence
    /// number.
    pub const fn new(origin: ReplicaId, seq: u64) -> Self {
        ItemId { origin, seq }
    }

    /// The replica that created the item.
    pub const fn origin(self) -> ReplicaId {
        self.origin
    }

    /// The origin-local sequence number.
    pub const fn seq(self) -> u64 {
        self.seq
    }
}

impl fmt::Debug for ItemId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}#{}", self.origin, self.seq)
    }
}

impl fmt::Display for ItemId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}#{}", self.origin, self.seq)
    }
}

/// A version stamp for one write to one item.
///
/// A version is the pair of the replica that performed the write and a
/// counter local to that replica. Counters are allocated from a single
/// per-replica sequence shared by all items, which is what lets
/// [`Knowledge`](crate::Knowledge) compact runs of versions into a single
/// vector entry.
///
/// Versions from the same replica are totally ordered by counter; versions
/// from different replicas are only ordered arbitrarily (by `(counter,
/// replica)`), which [`Replica`](crate::Replica) uses as a deterministic
/// last-writer-wins tiebreak for concurrent updates.
///
/// # Examples
///
/// ```
/// use pfr::{ReplicaId, Version};
///
/// let v1 = Version::new(ReplicaId::new(1), 10);
/// let v2 = Version::new(ReplicaId::new(2), 11);
/// assert!(v1 < v2); // ordered by counter first
/// ```
#[derive(Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Version {
    counter: u64,
    replica: ReplicaId,
}

impl Version {
    /// Creates a version stamp.
    pub const fn new(replica: ReplicaId, counter: u64) -> Self {
        Version { counter, replica }
    }

    /// The replica that performed the write.
    pub const fn replica(self) -> ReplicaId {
        self.replica
    }

    /// The per-replica write counter.
    pub const fn counter(self) -> u64 {
        self.counter
    }
}

impl PartialOrd for Version {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Version {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        (self.counter, self.replica).cmp(&(other.counter, other.replica))
    }
}

impl fmt::Debug for Version {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}@{}", self.replica, self.counter)
    }
}

impl fmt::Display for Version {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}@{}", self.replica, self.counter)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn replica_id_roundtrip_and_order() {
        let a = ReplicaId::new(3);
        let b = ReplicaId::from(9);
        assert_eq!(a.as_u64(), 3);
        assert!(a < b);
        assert_eq!(format!("{a}"), "R3");
        assert_eq!(format!("{a:?}"), "R3");
    }

    #[test]
    fn item_id_accessors_and_display() {
        let id = ItemId::new(ReplicaId::new(5), 77);
        assert_eq!(id.origin().as_u64(), 5);
        assert_eq!(id.seq(), 77);
        assert_eq!(format!("{id}"), "R5#77");
    }

    #[test]
    fn item_ids_from_different_origins_never_collide() {
        let a = ItemId::new(ReplicaId::new(1), 1);
        let b = ItemId::new(ReplicaId::new(2), 1);
        assert_ne!(a, b);
    }

    #[test]
    fn version_orders_by_counter_then_replica() {
        let v1 = Version::new(ReplicaId::new(9), 1);
        let v2 = Version::new(ReplicaId::new(1), 2);
        assert!(v1 < v2, "counter dominates ordering");

        let v3 = Version::new(ReplicaId::new(1), 2);
        let v4 = Version::new(ReplicaId::new(2), 2);
        assert!(v3 < v4, "replica breaks counter ties");
    }

    #[test]
    fn version_display() {
        let v = Version::new(ReplicaId::new(4), 12);
        assert_eq!(format!("{v}"), "R4@12");
    }

    #[test]
    fn ids_usable_as_map_keys() {
        use std::collections::BTreeMap;
        let mut m = BTreeMap::new();
        m.insert(ItemId::new(ReplicaId::new(1), 1), "x");
        m.insert(ItemId::new(ReplicaId::new(1), 2), "y");
        assert_eq!(m.len(), 2);
    }
}
