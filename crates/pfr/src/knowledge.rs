//! Knowledge: the compact record of which versions a replica has learned.
//!
//! Knowledge is the replication substrate's substitute for the ad-hoc
//! duplicate-suppression machinery of DTN protocols (summary vectors, hop
//! lists): a replica never accepts — and a sync partner never re-sends — a
//! version contained in its knowledge, which yields *at-most-once delivery*
//! for free (paper §II-B, §III).

use std::collections::{BTreeMap, BTreeSet};
use std::fmt;

use serde::{Deserialize, Serialize};

use crate::id::{ReplicaId, Version};

/// A compact set of [`Version`]s: a version vector plus an exception set.
///
/// The *vector* component maps each replica to the highest counter `c` such
/// that **all** versions `1..=c` from that replica are known. Versions known
/// out of order (because filtered replication delivers only a subset of each
/// origin's writes) are tracked individually in the *exception* set and
/// absorbed into the vector as gaps fill in.
///
/// The representation is therefore proportional to the number of replicas
/// plus the number of out-of-order receipts — for full replication it
/// degenerates to the classic version vector whose compactness the paper
/// highlights, while remaining *sound* for partial (filtered) replication,
/// where gaps are permanent.
///
/// `Knowledge` forms a join-semilattice under [`merge`](Knowledge::merge):
/// the operation is commutative, associative, and idempotent (property
/// tested).
///
/// # Examples
///
/// ```
/// use pfr::{Knowledge, ReplicaId, Version};
///
/// let r = ReplicaId::new(1);
/// let mut k = Knowledge::new();
/// k.insert(Version::new(r, 1));
/// k.insert(Version::new(r, 3)); // out of order: kept as an exception
/// assert!(k.contains(Version::new(r, 1)));
/// assert!(!k.contains(Version::new(r, 2)));
/// k.insert(Version::new(r, 2)); // gap fills: vector compacts to 3
/// assert_eq!(k.base_counter(r), 3);
/// assert_eq!(k.exception_count(), 0);
/// ```
#[derive(Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct Knowledge {
    /// replica -> highest prefix-complete counter.
    vector: BTreeMap<ReplicaId, u64>,
    /// Individually known versions above the vector entry.
    exceptions: BTreeSet<Version>,
}

impl Knowledge {
    /// Creates empty knowledge (no versions known).
    pub fn new() -> Self {
        Knowledge::default()
    }

    /// Returns `true` if `version` is known.
    pub fn contains(&self, version: Version) -> bool {
        let base = self.base_counter(version.replica());
        version.counter() <= base || self.exceptions.contains(&version)
    }

    /// The highest counter `c` for `replica` such that all of `1..=c` is
    /// known (0 if nothing prefix-complete is known).
    pub fn base_counter(&self, replica: ReplicaId) -> u64 {
        self.vector.get(&replica).copied().unwrap_or(0)
    }

    /// Records one version as known. Idempotent.
    ///
    /// Consecutive exceptions are folded into the vector whenever the
    /// insertion closes a gap, keeping the representation compact.
    pub fn insert(&mut self, version: Version) {
        let r = version.replica();
        let base = self.base_counter(r);
        if version.counter() <= base {
            return;
        }
        if version.counter() == base + 1 {
            let mut new_base = version.counter();
            // Absorb any exceptions that are now contiguous.
            while self.exceptions.remove(&Version::new(r, new_base + 1)) {
                new_base += 1;
            }
            self.vector.insert(r, new_base);
        } else {
            self.exceptions.insert(version);
        }
    }

    /// Records that *all* versions `1..=counter` from `replica` are known.
    ///
    /// This is how a replica advances knowledge of its own writes (which it
    /// trivially observes in order), and how trusted checkpoints are
    /// installed.
    pub fn insert_prefix(&mut self, replica: ReplicaId, counter: u64) {
        let base = self.base_counter(replica);
        if counter <= base {
            return;
        }
        let mut new_base = counter;
        while self.exceptions.remove(&Version::new(replica, new_base + 1)) {
            new_base += 1;
        }
        self.vector.insert(replica, new_base);
        // Drop exceptions swallowed by the new prefix.
        let swallowed: Vec<Version> = self
            .exceptions
            .iter()
            .filter(|v| v.replica() == replica && v.counter() <= new_base)
            .copied()
            .collect();
        for v in swallowed {
            self.exceptions.remove(&v);
        }
    }

    /// Merges another replica's knowledge into this one (set union).
    ///
    /// After merging, `self.contains(v)` holds exactly when either input
    /// contained `v`.
    pub fn merge(&mut self, other: &Knowledge) {
        for (&replica, &counter) in &other.vector {
            self.insert_prefix(replica, counter);
        }
        for &v in &other.exceptions {
            self.insert(v);
        }
    }

    /// Returns `true` if every version in `other` is also in `self`.
    pub fn dominates(&self, other: &Knowledge) -> bool {
        other.vector.iter().all(|(&r, &c)| self.covers_prefix(r, c))
            && other.exceptions.iter().all(|&v| self.contains(v))
    }

    fn covers_prefix(&self, replica: ReplicaId, counter: u64) -> bool {
        let base = self.base_counter(replica);
        if counter <= base {
            return true;
        }
        (base + 1..=counter).all(|c| self.exceptions.contains(&Version::new(replica, c)))
    }

    /// Iterates over `(replica, prefix counter)` vector entries.
    pub fn vector_entries(&self) -> impl Iterator<Item = (ReplicaId, u64)> + '_ {
        self.vector.iter().map(|(&r, &c)| (r, c))
    }

    /// Iterates over exception versions.
    pub fn exceptions(&self) -> impl Iterator<Item = Version> + '_ {
        self.exceptions.iter().copied()
    }

    /// Number of replicas with a vector entry.
    pub fn replica_count(&self) -> usize {
        self.vector.len()
    }

    /// Number of out-of-order exceptions currently held.
    ///
    /// This is the metadata-size metric the paper's "compact knowledge"
    /// claim is about; the storage experiments report it.
    pub fn exception_count(&self) -> usize {
        self.exceptions.len()
    }

    /// Returns `true` if no versions are known.
    pub fn is_empty(&self) -> bool {
        self.vector.is_empty() && self.exceptions.is_empty()
    }

    /// Total number of versions contained (for testing and metrics; cost is
    /// O(vector entries), not O(versions)).
    pub fn version_count(&self) -> u64 {
        self.vector.values().sum::<u64>() + self.exceptions.len() as u64
    }
}

impl fmt::Debug for Knowledge {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Knowledge{{")?;
        for (i, (r, c)) in self.vector.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{r}:{c}")?;
        }
        if !self.exceptions.is_empty() {
            write!(f, " +{} exc", self.exceptions.len())?;
        }
        write!(f, "}}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn r(n: u64) -> ReplicaId {
        ReplicaId::new(n)
    }
    fn v(replica: u64, counter: u64) -> Version {
        Version::new(r(replica), counter)
    }

    #[test]
    fn empty_knowledge_contains_nothing() {
        let k = Knowledge::new();
        assert!(!k.contains(v(1, 1)));
        assert!(k.is_empty());
        assert_eq!(k.version_count(), 0);
    }

    #[test]
    fn in_order_insertions_stay_in_vector() {
        let mut k = Knowledge::new();
        for c in 1..=100 {
            k.insert(v(1, c));
        }
        assert_eq!(k.base_counter(r(1)), 100);
        assert_eq!(k.exception_count(), 0);
        assert_eq!(k.version_count(), 100);
    }

    #[test]
    fn out_of_order_insertions_become_exceptions_then_compact() {
        let mut k = Knowledge::new();
        k.insert(v(1, 5));
        k.insert(v(1, 3));
        assert_eq!(k.base_counter(r(1)), 0);
        assert_eq!(k.exception_count(), 2);
        k.insert(v(1, 1));
        assert_eq!(k.base_counter(r(1)), 1);
        k.insert(v(1, 2)); // closes gap to 3
        assert_eq!(k.base_counter(r(1)), 3);
        assert_eq!(k.exception_count(), 1); // 5 still floating
        k.insert(v(1, 4));
        assert_eq!(k.base_counter(r(1)), 5);
        assert_eq!(k.exception_count(), 0);
    }

    #[test]
    fn insert_is_idempotent() {
        let mut k = Knowledge::new();
        k.insert(v(1, 1));
        k.insert(v(1, 1));
        k.insert(v(1, 3));
        k.insert(v(1, 3));
        assert_eq!(k.version_count(), 2);
    }

    #[test]
    fn insert_prefix_swallows_exceptions() {
        let mut k = Knowledge::new();
        k.insert(v(1, 3));
        k.insert(v(1, 7));
        k.insert_prefix(r(1), 5);
        assert_eq!(k.base_counter(r(1)), 5);
        assert_eq!(k.exception_count(), 1); // only 7 remains
        assert!(k.contains(v(1, 3)));
        assert!(k.contains(v(1, 7)));
        assert!(!k.contains(v(1, 6)));
    }

    #[test]
    fn insert_prefix_absorbs_adjacent_exceptions() {
        let mut k = Knowledge::new();
        k.insert(v(1, 4));
        k.insert(v(1, 5));
        k.insert_prefix(r(1), 3);
        assert_eq!(k.base_counter(r(1)), 5);
        assert_eq!(k.exception_count(), 0);
    }

    #[test]
    fn insert_prefix_is_monotone() {
        let mut k = Knowledge::new();
        k.insert_prefix(r(1), 10);
        k.insert_prefix(r(1), 4); // no-op, must not regress
        assert_eq!(k.base_counter(r(1)), 10);
    }

    #[test]
    fn merge_unions_both_sides() {
        let mut a = Knowledge::new();
        a.insert_prefix(r(1), 5);
        a.insert(v(2, 3));
        let mut b = Knowledge::new();
        b.insert_prefix(r(2), 2);
        b.insert(v(1, 8));
        a.merge(&b);
        assert!(a.contains(v(1, 5)));
        assert!(a.contains(v(1, 8)));
        assert!(!a.contains(v(1, 7)));
        assert!(a.contains(v(2, 2)));
        assert!(a.contains(v(2, 3)));
        assert_eq!(
            a.base_counter(r(2)),
            3,
            "merge compacts 1..=2 plus exception 3"
        );
    }

    #[test]
    fn dominates_requires_superset() {
        let mut a = Knowledge::new();
        a.insert_prefix(r(1), 5);
        let mut b = Knowledge::new();
        b.insert(v(1, 2));
        assert!(a.dominates(&b));
        assert!(!b.dominates(&a));
        // Exceptions can cover a prefix claim.
        let mut c = Knowledge::new();
        c.insert(v(1, 1));
        c.insert(v(1, 2));
        let mut d = Knowledge::new();
        d.insert_prefix(r(1), 2);
        assert!(c.dominates(&d));
        assert!(d.dominates(&c));
    }

    #[test]
    fn dominates_self_and_empty() {
        let mut a = Knowledge::new();
        a.insert(v(3, 9));
        assert!(a.dominates(&a.clone()));
        assert!(a.dominates(&Knowledge::new()));
        assert!(!Knowledge::new().dominates(&a));
    }

    #[test]
    fn debug_is_nonempty() {
        let mut k = Knowledge::new();
        assert!(!format!("{k:?}").is_empty());
        k.insert_prefix(r(1), 2);
        k.insert(v(2, 5));
        let s = format!("{k:?}");
        assert!(s.contains("R1:2") && s.contains("exc"));
    }
}
