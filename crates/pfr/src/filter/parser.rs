//! Recursive-descent parser for the filter query language.
//!
//! Grammar (whitespace-insensitive):
//!
//! ```text
//! expr       := or
//! or         := and ("or" and)*
//! and        := unary ("and" unary)*
//! unary      := "not" unary | primary
//! primary    := "(" expr ")" | "all" | "none" | "exists" ident | predicate
//! predicate  := ident cmp value
//!             | ident "in" "[" (value ("," value)*)? "]"
//!             | ident "contains" value
//! cmp        := "=" | "!=" | "<" | "<=" | ">" | ">="
//! value      := string | number | "true" | "false" | "[" ... "]"
//! ```

use crate::error::PfrError;
use crate::value::Value;

use super::{CmpOp, Filter};

pub(super) fn parse(text: &str) -> Result<Filter, PfrError> {
    let mut p = Parser {
        text,
        bytes: text.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let filter = p.parse_or()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(p.error("trailing input after filter expression"));
    }
    Ok(filter)
}

struct Parser<'a> {
    text: &'a str,
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn error(&self, message: impl Into<String>) -> PfrError {
        PfrError::FilterParse {
            offset: self.pos,
            message: message.into(),
        }
    }

    fn skip_ws(&mut self) {
        while self.pos < self.bytes.len() && self.bytes[self.pos].is_ascii_whitespace() {
            self.pos += 1;
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn eat(&mut self, byte: u8) -> bool {
        if self.peek() == Some(byte) {
            self.pos += 1;
            true
        } else {
            false
        }
    }

    /// Consumes `word` if it appears as a whole keyword at the cursor.
    fn eat_keyword(&mut self, word: &str) -> bool {
        let end = self.pos + word.len();
        if end <= self.bytes.len()
            && self.text[self.pos..end].eq_ignore_ascii_case(word)
            && !matches!(self.bytes.get(end), Some(b) if is_ident_byte(*b))
        {
            self.pos = end;
            self.skip_ws();
            true
        } else {
            false
        }
    }

    fn parse_or(&mut self) -> Result<Filter, PfrError> {
        let mut arms = vec![self.parse_and()?];
        while self.eat_keyword("or") {
            arms.push(self.parse_and()?);
        }
        Ok(if arms.len() == 1 {
            arms.pop().expect("len checked")
        } else {
            Filter::Or(arms)
        })
    }

    fn parse_and(&mut self) -> Result<Filter, PfrError> {
        let mut arms = vec![self.parse_unary()?];
        while self.eat_keyword("and") {
            arms.push(self.parse_unary()?);
        }
        Ok(if arms.len() == 1 {
            arms.pop().expect("len checked")
        } else {
            Filter::And(arms)
        })
    }

    fn parse_unary(&mut self) -> Result<Filter, PfrError> {
        if self.eat_keyword("not") {
            Ok(Filter::Not(Box::new(self.parse_unary()?)))
        } else {
            self.parse_primary()
        }
    }

    fn parse_primary(&mut self) -> Result<Filter, PfrError> {
        self.skip_ws();
        if self.eat(b'(') {
            self.skip_ws();
            let inner = self.parse_or()?;
            self.skip_ws();
            if !self.eat(b')') {
                return Err(self.error("expected ')'"));
            }
            self.skip_ws();
            return Ok(inner);
        }
        if self.eat_keyword("all") {
            return Ok(Filter::All);
        }
        if self.eat_keyword("none") {
            return Ok(Filter::None);
        }
        if self.eat_keyword("exists") {
            let attr = self.parse_ident()?;
            return Ok(Filter::Exists(attr));
        }
        self.parse_predicate()
    }

    fn parse_predicate(&mut self) -> Result<Filter, PfrError> {
        let attr = self.parse_ident()?;
        self.skip_ws();
        if self.eat_keyword("in") {
            let values = self.parse_list()?;
            return Ok(Filter::In { attr, values });
        }
        if self.eat_keyword("contains") {
            let value = self.parse_value()?;
            return Ok(Filter::Contains { attr, value });
        }
        let op = self.parse_cmp_op()?;
        self.skip_ws();
        let value = self.parse_value()?;
        Ok(Filter::Cmp { attr, op, value })
    }

    fn parse_cmp_op(&mut self) -> Result<CmpOp, PfrError> {
        let op = match self.peek() {
            Some(b'=') => {
                self.pos += 1;
                CmpOp::Eq
            }
            Some(b'!') => {
                self.pos += 1;
                if !self.eat(b'=') {
                    return Err(self.error("expected '=' after '!'"));
                }
                CmpOp::Ne
            }
            Some(b'<') => {
                self.pos += 1;
                if self.eat(b'=') {
                    CmpOp::Le
                } else {
                    CmpOp::Lt
                }
            }
            Some(b'>') => {
                self.pos += 1;
                if self.eat(b'=') {
                    CmpOp::Ge
                } else {
                    CmpOp::Gt
                }
            }
            _ => return Err(self.error("expected comparison operator")),
        };
        Ok(op)
    }

    fn parse_ident(&mut self) -> Result<String, PfrError> {
        self.skip_ws();
        let start = self.pos;
        while self.pos < self.bytes.len() && is_ident_byte(self.bytes[self.pos]) {
            self.pos += 1;
        }
        if self.pos == start {
            return Err(self.error("expected attribute name"));
        }
        let ident = self.text[start..self.pos].to_owned();
        self.skip_ws();
        Ok(ident)
    }

    fn parse_list(&mut self) -> Result<Vec<Value>, PfrError> {
        self.skip_ws();
        if !self.eat(b'[') {
            return Err(self.error("expected '['"));
        }
        let mut values = Vec::new();
        self.skip_ws();
        if self.eat(b']') {
            self.skip_ws();
            return Ok(values);
        }
        loop {
            values.push(self.parse_value()?);
            self.skip_ws();
            if self.eat(b']') {
                break;
            }
            if !self.eat(b',') {
                return Err(self.error("expected ',' or ']' in list"));
            }
            self.skip_ws();
        }
        self.skip_ws();
        Ok(values)
    }

    fn parse_value(&mut self) -> Result<Value, PfrError> {
        self.skip_ws();
        match self.peek() {
            Some(b'"') => self.parse_string().map(Value::from),
            Some(b'[') => self.parse_list().map(Value::List),
            Some(b) if b == b'-' || b.is_ascii_digit() => self.parse_number(),
            _ => {
                if self.eat_keyword("true") {
                    Ok(Value::Bool(true))
                } else if self.eat_keyword("false") {
                    Ok(Value::Bool(false))
                } else {
                    Err(self.error("expected value (string, number, bool, or list)"))
                }
            }
        }
    }

    fn parse_string(&mut self) -> Result<String, PfrError> {
        debug_assert_eq!(self.peek(), Some(b'"'));
        self.pos += 1;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(self.error("unterminated string literal")),
                Some(b'"') => {
                    self.pos += 1;
                    break;
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'n') => out.push('\n'),
                        Some(b't') => out.push('\t'),
                        _ => return Err(self.error("bad escape sequence")),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Consume a full UTF-8 scalar, not just one byte.
                    let rest = &self.text[self.pos..];
                    let ch = rest.chars().next().expect("peeked non-empty");
                    out.push(ch);
                    self.pos += ch.len_utf8();
                }
            }
        }
        self.skip_ws();
        Ok(out)
    }

    fn parse_number(&mut self) -> Result<Value, PfrError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let mut is_float = false;
        while let Some(b) = self.peek() {
            match b {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' if self.pos > start => {
                    is_float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let slice = &self.text[start..self.pos];
        self.skip_ws();
        if is_float {
            slice
                .parse::<f64>()
                .map(Value::Float)
                .map_err(|e| self.error(format!("bad float literal {slice:?}: {e}")))
        } else {
            slice
                .parse::<i64>()
                .map(Value::Int)
                .map_err(|e| self.error(format!("bad integer literal {slice:?}: {e}")))
        }
    }
}

fn is_ident_byte(b: u8) -> bool {
    b.is_ascii_alphanumeric() || b == b'_' || b == b'.' || b == b'-'
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse_ok(text: &str) -> Filter {
        parse(text).unwrap_or_else(|e| panic!("parse {text:?} failed: {e}"))
    }

    #[test]
    fn parses_keywords() {
        assert_eq!(parse_ok("all"), Filter::All);
        assert_eq!(parse_ok("none"), Filter::None);
        assert_eq!(
            parse_ok("  ALL  "),
            Filter::All,
            "case-insensitive keywords"
        );
    }

    #[test]
    fn parses_comparisons() {
        let f = parse_ok(r#"dest = "a""#);
        assert_eq!(
            f,
            Filter::Cmp {
                attr: "dest".into(),
                op: CmpOp::Eq,
                value: Value::from("a"),
            }
        );
        assert!(matches!(
            parse_ok("n >= 3"),
            Filter::Cmp { op: CmpOp::Ge, .. }
        ));
        assert!(matches!(
            parse_ok("n != 3"),
            Filter::Cmp { op: CmpOp::Ne, .. }
        ));
        assert!(matches!(
            parse_ok("n < -2"),
            Filter::Cmp { op: CmpOp::Lt, .. }
        ));
        assert!(matches!(
            parse_ok("x = 1.5"),
            Filter::Cmp {
                value: Value::Float(_),
                ..
            }
        ));
        assert!(matches!(
            parse_ok("x = true"),
            Filter::Cmp {
                value: Value::Bool(true),
                ..
            }
        ));
    }

    #[test]
    fn parses_in_and_contains() {
        let f = parse_ok(r#"dest in ["a", "b"]"#);
        assert_eq!(
            f,
            Filter::In {
                attr: "dest".into(),
                values: vec![Value::from("a"), Value::from("b")],
            }
        );
        assert_eq!(
            parse_ok("t in []"),
            Filter::In {
                attr: "t".into(),
                values: vec![]
            }
        );
        let f = parse_ok(r#"dest contains "a""#);
        assert_eq!(f, Filter::address("dest", "a"));
    }

    #[test]
    fn parses_boolean_structure_with_precedence() {
        // and binds tighter than or
        let f = parse_ok(r#"a = 1 or b = 2 and c = 3"#);
        match f {
            Filter::Or(arms) => {
                assert_eq!(arms.len(), 2);
                assert!(matches!(arms[1], Filter::And(_)));
            }
            other => panic!("expected Or, got {other:?}"),
        }
        // parentheses override
        let f = parse_ok(r#"(a = 1 or b = 2) and c = 3"#);
        assert!(matches!(f, Filter::And(_)));
    }

    #[test]
    fn parses_not_and_exists() {
        let f = parse_ok("not exists x");
        assert_eq!(f, Filter::Not(Box::new(Filter::Exists("x".into()))));
        let f = parse_ok("not not all");
        assert_eq!(f, Filter::Not(Box::new(Filter::Not(Box::new(Filter::All)))));
    }

    #[test]
    fn string_escapes() {
        let f = parse_ok(r#"s = "a\"b\\c\nd""#);
        match f {
            Filter::Cmp {
                value: Value::Str(s),
                ..
            } => assert_eq!(s, "a\"b\\c\nd"),
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn unicode_strings() {
        let f = parse_ok("s = \"héllo→\"");
        match f {
            Filter::Cmp {
                value: Value::Str(s),
                ..
            } => assert_eq!(s, "héllo→"),
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn errors_carry_offsets() {
        for bad in [
            "",
            "dest =",
            "dest in [",
            "x ~ 1",
            "(all",
            "all garbage",
            "\"x\"",
        ] {
            let err = parse(bad).unwrap_err();
            match err {
                PfrError::FilterParse { offset, .. } => assert!(offset <= bad.len()),
                other => panic!("expected parse error for {bad:?}, got {other:?}"),
            }
        }
    }

    #[test]
    fn keyword_prefix_identifiers_are_not_keywords() {
        // "android" starts with "and"; "order" starts with "or".
        let f = parse_ok(r#"android = 1"#);
        assert!(matches!(f, Filter::Cmp { ref attr, .. } if attr == "android"));
        let f = parse_ok(r#"order = 1 or all"#);
        assert!(matches!(f, Filter::Or(_)));
    }
}
