//! Conservative filter implication (subsumption) analysis.
//!
//! `f.implies(g)` returns `true` only when every item matching `f` is
//! guaranteed to match `g` — i.e. `f`'s item set is a subset of `g`'s.
//! Cimbiosys organizes replicas into hierarchies where a parent's filter
//! subsumes its children's; this check is the decision procedure such
//! topologies need. The analysis is *sound but incomplete*: a `false`
//! answer means "could not prove it", never "disproved" (full subsumption
//! for this predicate language is NP-hard via SAT).

use std::cmp::Ordering;

use crate::value::Value;

use super::{CmpOp, Filter};

impl Filter {
    /// Returns `true` if every item matching `self` provably matches
    /// `other` (see module docs; sound, incomplete).
    ///
    /// # Examples
    ///
    /// ```
    /// use pfr::Filter;
    ///
    /// let narrow = Filter::parse(r#"topic = "sports" and priority >= 5"#)?;
    /// let wide = Filter::parse(r#"topic in ["sports", "news"]"#)?;
    /// assert!(narrow.implies(&wide));
    /// assert!(!wide.implies(&narrow));
    /// # Ok::<(), pfr::PfrError>(())
    /// ```
    pub fn implies(&self, other: &Filter) -> bool {
        use Filter::*;

        // Universal rules first.
        if matches!(other, All) || matches!(self, None) {
            return true;
        }
        if self == other {
            return true;
        }
        match (self, other) {
            // Conjunction on the left: any conjunct proving `other`
            // suffices (the conjunction only narrows further).
            (And(arms), _) if arms.iter().any(|arm| arm.implies(other)) => return true,
            _ => {}
        }
        match other {
            // Conjunction on the right: must prove every conjunct.
            And(arms) => return arms.iter().all(|arm| self.implies(arm)),
            // Disjunction on the right: proving any disjunct suffices —
            // but a left disjunction must distribute first.
            Or(arms) => {
                if let Or(left_arms) = self {
                    return left_arms
                        .iter()
                        .all(|left| arms.iter().any(|right| left.implies(right)));
                }
                return arms.iter().any(|arm| self.implies(arm));
            }
            _ => {}
        }
        match (self, other) {
            // Disjunction on the left: every disjunct must prove `other`.
            (Or(arms), _) => arms.iter().all(|arm| arm.implies(other)),
            // Contrapositive for negations.
            (Not(a), Not(b)) => b.implies(a),

            // Any positive predicate on an attribute implies its existence
            // (all evaluate to false when the attribute is missing).
            (Cmp { attr, .. }, Exists(e))
            | (In { attr, .. }, Exists(e))
            | (Contains { attr, .. }, Exists(e)) => attr == e,

            // Equality vs. membership.
            (
                Cmp {
                    attr: a,
                    op: CmpOp::Eq,
                    value: v,
                },
                In { attr: b, values },
            ) => a == b && values.iter().any(|w| v.semantic_eq(w)),
            (
                In { attr: a, values },
                In {
                    attr: b,
                    values: supers,
                },
            ) => {
                a == b
                    && !values.is_empty()
                    && values
                        .iter()
                        .all(|v| supers.iter().any(|w| v.semantic_eq(w)))
            }
            (
                In { attr: a, values },
                Cmp {
                    attr: b,
                    op: CmpOp::Eq,
                    value: w,
                },
            ) => a == b && !values.is_empty() && values.iter().all(|v| v.semantic_eq(w)),
            // A scalar equality satisfies a Contains probe for that value.
            (
                Cmp {
                    attr: a,
                    op: CmpOp::Eq,
                    value: v,
                },
                Contains { attr: b, value: w },
            ) => a == b && !matches!(v, Value::List(_)) && v.semantic_eq(w),

            // Ordered comparisons over the same attribute.
            (
                Cmp {
                    attr: a,
                    op: op1,
                    value: v1,
                },
                Cmp {
                    attr: b,
                    op: op2,
                    value: v2,
                },
            ) => a == b && cmp_implies(*op1, v1, *op2, v2),

            _ => false,
        }
    }
}

/// Does `attr op1 v1` imply `attr op2 v2`?
fn cmp_implies(op1: CmpOp, v1: &Value, op2: CmpOp, v2: &Value) -> bool {
    use CmpOp::*;
    let Some(ord) = v1.partial_cmp_same_type(v2) else {
        return false;
    };
    match (op1, op2) {
        (Eq, Eq) => ord == Ordering::Equal,
        (Eq, Ne) => ord != Ordering::Equal,
        (Eq, Lt) => ord == Ordering::Less,
        (Eq, Le) => ord != Ordering::Greater,
        (Eq, Gt) => ord == Ordering::Greater,
        (Eq, Ge) => ord != Ordering::Less,
        // attr < v1 implies attr < v2 when v1 <= v2, etc.
        (Lt, Lt) | (Lt, Le) | (Le, Le) => ord != Ordering::Greater,
        (Le, Lt) => ord == Ordering::Less,
        (Gt, Gt) | (Gt, Ge) | (Ge, Ge) => ord != Ordering::Less,
        (Ge, Gt) => ord == Ordering::Greater,
        // attr < v1 implies attr != v2 when v2 >= v1.
        (Lt, Ne) => ord != Ordering::Greater,
        (Gt, Ne) => ord != Ordering::Less,
        (Le, Ne) => ord == Ordering::Less,
        (Ge, Ne) => ord == Ordering::Greater,
        _ => false,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn f(text: &str) -> Filter {
        Filter::parse(text).unwrap_or_else(|e| panic!("parse {text:?}: {e}"))
    }

    #[test]
    fn universal_rules() {
        assert!(f(r#"x = 1"#).implies(&Filter::All));
        assert!(Filter::None.implies(&f(r#"x = 1"#)));
        assert!(f(r#"x = 1"#).implies(&f(r#"x = 1"#)));
        assert!(!Filter::All.implies(&f(r#"x = 1"#)));
    }

    #[test]
    fn equality_and_membership() {
        assert!(f(r#"t = "a""#).implies(&f(r#"t in ["a", "b"]"#)));
        assert!(!f(r#"t = "c""#).implies(&f(r#"t in ["a", "b"]"#)));
        assert!(f(r#"t in ["a"]"#).implies(&f(r#"t = "a""#)));
        assert!(f(r#"t in ["a", "b"]"#).implies(&f(r#"t in ["b", "a", "c"]"#)));
        assert!(!f(r#"t in ["a", "z"]"#).implies(&f(r#"t in ["a", "b"]"#)));
        assert!(f(r#"t = "a""#).implies(&f(r#"t contains "a""#)));
        // Different attributes never imply each other.
        assert!(!f(r#"t = "a""#).implies(&f(r#"u = "a""#)));
    }

    #[test]
    fn empty_in_is_treated_conservatively() {
        // `t in []` matches nothing, so it *does* imply everything — but
        // the checker is allowed to say "unproven". It must never claim
        // the reverse direction.
        assert!(!f(r#"t = "a""#).implies(&f(r#"t in []"#)));
    }

    #[test]
    fn ordered_ranges() {
        assert!(f("n < 5").implies(&f("n < 9")));
        assert!(f("n < 5").implies(&f("n <= 5")));
        assert!(!f("n < 9").implies(&f("n < 5")));
        assert!(f("n >= 7").implies(&f("n > 2")));
        assert!(f("n = 3").implies(&f("n <= 3")));
        assert!(f("n = 3").implies(&f("n != 4")));
        assert!(f("n < 3").implies(&f("n != 3")));
        assert!(!f("n <= 3").implies(&f("n != 3")));
        // Cross-type: unprovable.
        assert!(!f("n < 5").implies(&f(r#"n < "x""#)));
    }

    #[test]
    fn existence() {
        assert!(f(r#"t = "a""#).implies(&f("exists t")));
        assert!(f(r#"t in ["a"]"#).implies(&f("exists t")));
        assert!(f(r#"t contains "a""#).implies(&f("exists t")));
        assert!(
            f("t != 3").implies(&f("exists t")),
            "Ne is false on missing attrs"
        );
        assert!(!f(r#"t = "a""#).implies(&f("exists u")));
    }

    #[test]
    fn connectives() {
        // Narrow conjunction implies its parts and wider forms.
        let narrow = f(r#"topic = "sports" and priority >= 5"#);
        assert!(narrow.implies(&f(r#"topic = "sports""#)));
        assert!(narrow.implies(&f("priority > 1")));
        assert!(narrow.implies(&f(r#"topic in ["sports", "news"]"#)));
        assert!(!f(r#"topic = "sports""#).implies(&narrow));

        // Disjunction on the left needs all arms.
        let either = f(r#"t = "a" or t = "b""#);
        assert!(either.implies(&f(r#"t in ["a", "b", "c"]"#)));
        assert!(!either.implies(&f(r#"t = "a""#)));

        // Disjunction on the right needs one arm per left arm.
        assert!(f(r#"t = "a""#).implies(&either));
        let wider = f(r#"t = "b" or t = "a" or t = "z""#);
        assert!(either.implies(&wider));

        // Right-side conjunction needs every conjunct.
        assert!(f(r#"t = "a" and n = 1"#).implies(&f(r#"(exists t) and (exists n)"#)));

        // Contrapositive.
        assert!(f(r#"not (t in ["a", "b"])"#).implies(&f(r#"not (t = "a")"#)));
        assert!(!f(r#"not (t = "a")"#).implies(&f(r#"not (t in ["a", "b"])"#)));
    }

    #[test]
    fn address_filters_form_a_hierarchy() {
        // The DTN use case: a hub filter covering several hosts subsumes
        // each host's own filter.
        let host = Filter::address("dest", "bus-3");
        let hub = Filter::any_address("dest", ["bus-1", "bus-2", "bus-3"]);
        assert!(host.implies(&hub));
        assert!(!hub.implies(&host));
    }
}
