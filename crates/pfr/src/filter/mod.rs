//! Content-based filters: query-like predicates over item attributes.
//!
//! A replica's filter defines which items it stores and receives during
//! synchronization — the mechanism that gives peer-to-peer *filtered*
//! replication its selective delivery (paper §II-B). In the DTN messaging
//! application each host's filter selects the messages addressed to it
//! (and, for the multi-address strategies of §IV-B, to a chosen set of
//! other hosts).

mod implies;
mod parser;

use std::fmt;

use serde::{Deserialize, Serialize};

use crate::error::PfrError;
use crate::item::Item;
use crate::value::Value;

/// Comparison operators usable in filter predicates.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum CmpOp {
    /// `=`
    Eq,
    /// `!=`
    Ne,
    /// `<`
    Lt,
    /// `<=`
    Le,
    /// `>`
    Gt,
    /// `>=`
    Ge,
}

impl CmpOp {
    fn symbol(self) -> &'static str {
        match self {
            CmpOp::Eq => "=",
            CmpOp::Ne => "!=",
            CmpOp::Lt => "<",
            CmpOp::Le => "<=",
            CmpOp::Gt => ">",
            CmpOp::Ge => ">=",
        }
    }
}

/// A content-based filter: a predicate expression over item attributes.
///
/// Filters are serializable values exchanged during synchronization, have a
/// canonical text form (via `Display`) and a parser
/// ([`Filter::parse`]) for the same small query language:
///
/// ```text
/// dest = "bus-3" or dest in ["bus-4", "bus-5"] and not deleted = true
/// ```
///
/// Missing attributes make comparison predicates false (never an error),
/// matching the usual semantics of content-based publish/subscribe filters.
///
/// # Examples
///
/// ```
/// use pfr::{Filter, Item, ItemId, ReplicaId, Version};
///
/// let filter = Filter::parse(r#"dest = "a" or dest = "b""#)?;
/// let item = Item::builder(
///     ItemId::new(ReplicaId::new(1), 1),
///     Version::new(ReplicaId::new(1), 1),
/// )
/// .attr("dest", "a")
/// .build();
/// assert!(filter.matches(&item));
/// # Ok::<(), pfr::PfrError>(())
/// ```
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub enum Filter {
    /// Matches every item (epidemic-style full replication).
    All,
    /// Matches no item.
    None,
    /// `attr op value` comparison. Equality uses
    /// [`Value::semantic_eq`]; ordered comparisons are false across types.
    Cmp {
        /// Attribute name.
        attr: String,
        /// Operator.
        op: CmpOp,
        /// Right-hand-side constant.
        value: Value,
    },
    /// `attr in [v1, v2, ...]` — the attribute equals one of the listed
    /// values.
    In {
        /// Attribute name.
        attr: String,
        /// Allowed values.
        values: Vec<Value>,
    },
    /// `attr contains v` — the attribute is a list containing `v` (or a
    /// scalar equal to `v`, so single- and multi-destination addresses can
    /// be filtered uniformly).
    Contains {
        /// Attribute name.
        attr: String,
        /// Element searched for.
        value: Value,
    },
    /// `exists attr` — the attribute is present.
    Exists(String),
    /// Logical negation.
    Not(Box<Filter>),
    /// Logical conjunction (true when empty).
    And(Vec<Filter>),
    /// Logical disjunction (false when empty).
    Or(Vec<Filter>),
}

impl Filter {
    /// Parses a filter from its text form.
    ///
    /// # Errors
    ///
    /// Returns [`PfrError::FilterParse`] with the byte offset of the first
    /// offending token.
    pub fn parse(text: &str) -> Result<Filter, PfrError> {
        parser::parse(text)
    }

    /// Builds the common "address selector" filter: matches items whose
    /// `attr` equals `addr` or is a list containing `addr`.
    pub fn address(attr: impl Into<String>, addr: impl Into<Value>) -> Filter {
        Filter::Contains {
            attr: attr.into(),
            value: addr.into(),
        }
    }

    /// Builds a disjunction of [`Filter::address`] selectors over several
    /// addresses — the "multi-address filter" of paper §IV-B.
    pub fn any_address<A, I>(attr: &str, addrs: I) -> Filter
    where
        A: Into<Value>,
        I: IntoIterator<Item = A>,
    {
        let arms: Vec<Filter> = addrs
            .into_iter()
            .map(|a| Filter::address(attr, a))
            .collect();
        match arms.len() {
            0 => Filter::None,
            1 => arms.into_iter().next().expect("len checked"),
            _ => Filter::Or(arms),
        }
    }

    /// Evaluates the filter against an item's versioned attributes.
    pub fn matches(&self, item: &Item) -> bool {
        self.matches_attrs(item.attrs())
    }

    /// A 64-bit fingerprint of the filter's canonical text form (its
    /// [`std::fmt::Display`] rendering, which round-trips through the
    /// parser). Equal fingerprints identify semantically equal filters
    /// up to hash collisions; sync uses this to key per-filter match
    /// memos without holding filter clones.
    pub fn fingerprint(&self) -> u64 {
        use std::collections::hash_map::DefaultHasher;
        use std::hash::{Hash, Hasher};
        let mut hasher = DefaultHasher::new();
        self.to_string().hash(&mut hasher);
        hasher.finish()
    }

    /// Evaluates the filter against a bare attribute map.
    pub fn matches_attrs(&self, attrs: &crate::AttributeMap) -> bool {
        match self {
            Filter::All => true,
            Filter::None => false,
            Filter::Cmp { attr, op, value } => match attrs.get(attr) {
                None => false,
                Some(actual) => match op {
                    CmpOp::Eq => actual.semantic_eq(value),
                    CmpOp::Ne => !actual.semantic_eq(value),
                    ordered => match actual.partial_cmp_same_type(value) {
                        None => false,
                        Some(ord) => match ordered {
                            CmpOp::Lt => ord == std::cmp::Ordering::Less,
                            CmpOp::Le => ord != std::cmp::Ordering::Greater,
                            CmpOp::Gt => ord == std::cmp::Ordering::Greater,
                            CmpOp::Ge => ord != std::cmp::Ordering::Less,
                            CmpOp::Eq | CmpOp::Ne => unreachable!("handled above"),
                        },
                    },
                },
            },
            Filter::In { attr, values } => attrs
                .get(attr)
                .is_some_and(|actual| values.iter().any(|v| actual.semantic_eq(v))),
            Filter::Contains { attr, value } => match attrs.get(attr) {
                None => false,
                Some(Value::List(items)) => items.iter().any(|v| v.semantic_eq(value)),
                Some(scalar) => scalar.semantic_eq(value),
            },
            Filter::Exists(attr) => attrs.contains(attr),
            Filter::Not(inner) => !inner.matches_attrs(attrs),
            Filter::And(arms) => arms.iter().all(|f| f.matches_attrs(attrs)),
            Filter::Or(arms) => arms.iter().any(|f| f.matches_attrs(attrs)),
        }
    }

    /// Returns the disjunction of `self` and `other`, flattening nested
    /// `Or`s — used to widen a host's filter with extra addresses.
    pub fn or(self, other: Filter) -> Filter {
        match (self, other) {
            (Filter::Or(mut a), Filter::Or(b)) => {
                a.extend(b);
                Filter::Or(a)
            }
            (Filter::Or(mut a), b) => {
                a.push(b);
                Filter::Or(a)
            }
            (a, Filter::Or(mut b)) => {
                b.insert(0, a);
                Filter::Or(b)
            }
            (a, b) => Filter::Or(vec![a, b]),
        }
    }
}

impl fmt::Display for Filter {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Filter::All => write!(f, "all"),
            Filter::None => write!(f, "none"),
            Filter::Cmp { attr, op, value } => write!(f, "{attr} {} {value}", op.symbol()),
            Filter::In { attr, values } => {
                write!(f, "{attr} in [")?;
                for (i, v) in values.iter().enumerate() {
                    if i > 0 {
                        write!(f, ", ")?;
                    }
                    write!(f, "{v}")?;
                }
                write!(f, "]")
            }
            Filter::Contains { attr, value } => write!(f, "{attr} contains {value}"),
            Filter::Exists(attr) => write!(f, "exists {attr}"),
            Filter::Not(inner) => write!(f, "not ({inner})"),
            Filter::And(arms) => write_joined(f, arms, "and"),
            Filter::Or(arms) => write_joined(f, arms, "or"),
        }
    }
}

fn write_joined(f: &mut fmt::Formatter<'_>, arms: &[Filter], word: &str) -> fmt::Result {
    if arms.is_empty() {
        // Canonical empty forms parse back to the right identity element.
        return match word {
            "and" => write!(f, "all"),
            _ => write!(f, "none"),
        };
    }
    for (i, arm) in arms.iter().enumerate() {
        if i > 0 {
            write!(f, " {word} ")?;
        }
        write!(f, "({arm})")?;
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::id::{ItemId, ReplicaId, Version};

    fn item_with(attrs: &[(&str, Value)]) -> Item {
        let mut b = Item::builder(
            ItemId::new(ReplicaId::new(1), 1),
            Version::new(ReplicaId::new(1), 1),
        );
        for (k, v) in attrs {
            b = b.attr(*k, v.clone());
        }
        b.build()
    }

    #[test]
    fn all_and_none() {
        let item = item_with(&[]);
        assert!(Filter::All.matches(&item));
        assert!(!Filter::None.matches(&item));
    }

    #[test]
    fn eq_and_ne() {
        let item = item_with(&[("dest", Value::from("a"))]);
        let eq = Filter::Cmp {
            attr: "dest".into(),
            op: CmpOp::Eq,
            value: Value::from("a"),
        };
        assert!(eq.matches(&item));
        let ne = Filter::Cmp {
            attr: "dest".into(),
            op: CmpOp::Ne,
            value: Value::from("b"),
        };
        assert!(ne.matches(&item));
    }

    #[test]
    fn missing_attribute_is_false_not_error() {
        let item = item_with(&[]);
        let f = Filter::Cmp {
            attr: "missing".into(),
            op: CmpOp::Eq,
            value: Value::from(1i64),
        };
        assert!(!f.matches(&item));
        // Even Ne is false when the attribute is missing.
        let f = Filter::Cmp {
            attr: "missing".into(),
            op: CmpOp::Ne,
            value: Value::from(1i64),
        };
        assert!(!f.matches(&item));
    }

    #[test]
    fn ordered_comparisons() {
        let item = item_with(&[("size", Value::from(10i64))]);
        let mk = |op, v: i64| Filter::Cmp {
            attr: "size".into(),
            op,
            value: Value::from(v),
        };
        assert!(mk(CmpOp::Lt, 11).matches(&item));
        assert!(mk(CmpOp::Le, 10).matches(&item));
        assert!(mk(CmpOp::Gt, 9).matches(&item));
        assert!(mk(CmpOp::Ge, 10).matches(&item));
        assert!(!mk(CmpOp::Lt, 10).matches(&item));
        // Cross-type ordered comparison is false.
        let f = Filter::Cmp {
            attr: "size".into(),
            op: CmpOp::Lt,
            value: Value::from("x"),
        };
        assert!(!f.matches(&item));
    }

    #[test]
    fn in_predicate() {
        let item = item_with(&[("dest", Value::from("b"))]);
        let f = Filter::In {
            attr: "dest".into(),
            values: vec![Value::from("a"), Value::from("b")],
        };
        assert!(f.matches(&item));
        let f = Filter::In {
            attr: "dest".into(),
            values: vec![],
        };
        assert!(!f.matches(&item));
    }

    #[test]
    fn contains_handles_lists_and_scalars() {
        let multi = item_with(&[(
            "dest",
            Value::List(vec![Value::from("a"), Value::from("b")]),
        )]);
        let single = item_with(&[("dest", Value::from("a"))]);
        let f = Filter::address("dest", "a");
        assert!(f.matches(&multi));
        assert!(f.matches(&single));
        let g = Filter::address("dest", "z");
        assert!(!g.matches(&multi));
        assert!(!g.matches(&single));
    }

    #[test]
    fn any_address_builds_identity_cases() {
        assert_eq!(
            Filter::any_address("dest", Vec::<&str>::new()),
            Filter::None
        );
        let one = Filter::any_address("dest", ["a"]);
        assert!(matches!(one, Filter::Contains { .. }));
        let many = Filter::any_address("dest", ["a", "b"]);
        let item = item_with(&[("dest", Value::from("b"))]);
        assert!(many.matches(&item));
    }

    #[test]
    fn boolean_connectives() {
        let item = item_with(&[("a", Value::from(1i64)), ("b", Value::from(2i64))]);
        let a1 = Filter::Cmp {
            attr: "a".into(),
            op: CmpOp::Eq,
            value: Value::from(1i64),
        };
        let b9 = Filter::Cmp {
            attr: "b".into(),
            op: CmpOp::Eq,
            value: Value::from(9i64),
        };
        assert!(Filter::And(vec![a1.clone()]).matches(&item));
        assert!(!Filter::And(vec![a1.clone(), b9.clone()]).matches(&item));
        assert!(Filter::Or(vec![a1.clone(), b9.clone()]).matches(&item));
        assert!(Filter::Not(Box::new(b9)).matches(&item));
        assert!(Filter::And(vec![]).matches(&item), "empty and is true");
        assert!(!Filter::Or(vec![]).matches(&item), "empty or is false");
    }

    #[test]
    fn exists_predicate() {
        let item = item_with(&[("x", Value::from(true))]);
        assert!(Filter::Exists("x".into()).matches(&item));
        assert!(!Filter::Exists("y".into()).matches(&item));
    }

    #[test]
    fn or_combinator_flattens() {
        let a = Filter::address("dest", "a");
        let b = Filter::address("dest", "b");
        let c = Filter::address("dest", "c");
        let combined = a.or(b).or(c);
        match &combined {
            Filter::Or(arms) => assert_eq!(arms.len(), 3),
            other => panic!("expected flattened Or, got {other:?}"),
        }
    }

    #[test]
    fn display_round_trips_through_parse() {
        let filters = vec![
            Filter::All,
            Filter::None,
            Filter::address("dest", "bus-1"),
            Filter::any_address("dest", ["a", "b", "c"]),
            Filter::And(vec![
                Filter::Exists("x".into()),
                Filter::Not(Box::new(Filter::Cmp {
                    attr: "n".into(),
                    op: CmpOp::Ge,
                    value: Value::from(3i64),
                })),
            ]),
            Filter::In {
                attr: "t".into(),
                values: vec![Value::from("a"), Value::from(1i64), Value::from(true)],
            },
        ];
        for f in filters {
            let text = f.to_string();
            let parsed =
                Filter::parse(&text).unwrap_or_else(|e| panic!("failed to parse {text:?}: {e}"));
            assert_eq!(parsed, f, "round trip of {text:?}");
        }
    }
}
