//! Shared, cheaply-clonable item payloads.
//!
//! A [`Payload`] is an `Arc<[u8]>`-backed byte buffer with the same `&[u8]`
//! read API a `Vec<u8>` payload had. Cloning a payload bumps a reference
//! count instead of copying the bytes, so the many copies a DTN routing
//! policy deliberately multiplies (Epidemic/Spray-and-Wait, paper §V–§VI)
//! share one allocation. A payload may also be a *sub-slice* of a larger
//! shared buffer: wire decode hands every item in a received batch a slice
//! of the one frame buffer instead of a per-item allocation.

use std::fmt;
use std::ops::Deref;
use std::sync::{Arc, OnceLock};

/// Returns the process-wide empty backing buffer, so empty payloads
/// (deletion tombstones, attribute-only items) never allocate.
fn empty_buf() -> Arc<[u8]> {
    static EMPTY: OnceLock<Arc<[u8]>> = OnceLock::new();
    EMPTY.get_or_init(|| Arc::from(&[][..])).clone()
}

/// An immutable, reference-counted byte payload.
///
/// Equality, ordering, and hashing are defined over the *bytes*, exactly as
/// for the `Vec<u8>` it replaces; whether two payloads share a backing
/// buffer is observable only through [`Payload::buffer_id`], which storage
/// accounting uses to charge shared bytes once per distinct buffer.
///
/// # Examples
///
/// ```
/// use pfr::Payload;
///
/// let a = Payload::from(b"hello".to_vec());
/// let b = a.clone(); // reference-count bump, no byte copy
/// assert_eq!(&a[..], b"hello");
/// assert_eq!(a, b);
/// assert_eq!(a.buffer_id(), b.buffer_id());
/// ```
#[derive(Clone)]
pub struct Payload {
    buf: Arc<[u8]>,
    start: usize,
    len: usize,
}

impl Payload {
    /// The empty payload. Never allocates: all empty payloads share one
    /// process-wide backing buffer.
    pub fn empty() -> Payload {
        Payload {
            buf: empty_buf(),
            start: 0,
            len: 0,
        }
    }

    /// A payload that is a sub-slice of a shared backing buffer.
    ///
    /// # Panics
    ///
    /// Panics if `start + len` is out of bounds of `buf`.
    pub fn from_shared(buf: Arc<[u8]>, start: usize, len: usize) -> Payload {
        assert!(
            start.checked_add(len).is_some_and(|end| end <= buf.len()),
            "payload slice {start}..{} out of bounds of buffer of {} bytes",
            start + len,
            buf.len()
        );
        Payload { buf, start, len }
    }

    /// The payload bytes.
    pub fn as_slice(&self) -> &[u8] {
        &self.buf[self.start..self.start + self.len]
    }

    /// Length in bytes.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Returns `true` if the payload has no bytes.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// An opaque identifier of the *backing buffer*: two payloads share
    /// their bytes if and only if their buffer ids are equal. Used to
    /// charge shared bytes once per distinct buffer in storage accounting.
    pub fn buffer_id(&self) -> usize {
        Arc::as_ptr(&self.buf) as *const u8 as usize
    }

    /// How many payloads (and other handles) currently share the backing
    /// buffer.
    pub fn share_count(&self) -> usize {
        Arc::strong_count(&self.buf)
    }

    /// Replaces the backing buffer with a freshly allocated private copy
    /// of the bytes. Pure pessimization — the bytes are unchanged — kept
    /// for A/B benchmarking of the pre-copy-on-write data plane (see
    /// `Replica::set_owned_copies`).
    pub fn detach(&mut self) {
        *self = Payload::from(self.as_slice());
    }
}

impl Deref for Payload {
    type Target = [u8];

    fn deref(&self) -> &[u8] {
        self.as_slice()
    }
}

impl AsRef<[u8]> for Payload {
    fn as_ref(&self) -> &[u8] {
        self.as_slice()
    }
}

impl From<Vec<u8>> for Payload {
    fn from(bytes: Vec<u8>) -> Payload {
        if bytes.is_empty() {
            return Payload::empty();
        }
        let len = bytes.len();
        Payload {
            buf: Arc::from(bytes),
            start: 0,
            len,
        }
    }
}

impl From<&[u8]> for Payload {
    fn from(bytes: &[u8]) -> Payload {
        if bytes.is_empty() {
            return Payload::empty();
        }
        Payload {
            buf: Arc::from(bytes),
            start: 0,
            len: bytes.len(),
        }
    }
}

impl<const N: usize> From<&[u8; N]> for Payload {
    fn from(bytes: &[u8; N]) -> Payload {
        Payload::from(&bytes[..])
    }
}

impl PartialEq for Payload {
    fn eq(&self, other: &Payload) -> bool {
        self.as_slice() == other.as_slice()
    }
}

impl Eq for Payload {}

impl PartialEq<[u8]> for Payload {
    fn eq(&self, other: &[u8]) -> bool {
        self.as_slice() == other
    }
}

impl PartialEq<Vec<u8>> for Payload {
    fn eq(&self, other: &Vec<u8>) -> bool {
        self.as_slice() == other.as_slice()
    }
}

impl std::hash::Hash for Payload {
    fn hash<H: std::hash::Hasher>(&self, state: &mut H) {
        self.as_slice().hash(state);
    }
}

impl fmt::Debug for Payload {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Payload({} bytes", self.len)?;
        if self.share_count() > 1 {
            write!(f, ", shared x{}", self.share_count())?;
        }
        write!(f, ")")
    }
}

impl Default for Payload {
    fn default() -> Payload {
        Payload::empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn clone_shares_the_backing_buffer() {
        let a = Payload::from(b"hello".to_vec());
        let b = a.clone();
        assert_eq!(a, b);
        assert_eq!(a.buffer_id(), b.buffer_id());
        assert!(a.share_count() >= 2);
    }

    #[test]
    fn empty_payloads_share_one_static_buffer() {
        let a = Payload::empty();
        let b = Payload::from(Vec::new());
        let c = Payload::from(&b""[..]);
        assert_eq!(a.buffer_id(), b.buffer_id());
        assert_eq!(a.buffer_id(), c.buffer_id());
        assert!(a.is_empty() && b.is_empty() && c.is_empty());
    }

    #[test]
    fn shared_sub_slices_expose_only_their_window() {
        let frame: Arc<[u8]> = Arc::from(&b"xxhelloyy"[..]);
        let p = Payload::from_shared(frame.clone(), 2, 5);
        assert_eq!(&p[..], b"hello");
        assert_eq!(p.len(), 5);
        let q = Payload::from_shared(frame, 7, 2);
        assert_eq!(&q[..], b"yy");
        assert_eq!(p.buffer_id(), q.buffer_id(), "same frame, same buffer");
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn out_of_bounds_slice_panics() {
        let frame: Arc<[u8]> = Arc::from(&b"abc"[..]);
        Payload::from_shared(frame, 2, 5);
    }

    #[test]
    fn equality_is_over_bytes_not_buffers() {
        let a = Payload::from(b"same".to_vec());
        let b = Payload::from(b"same".to_vec());
        assert_eq!(a, b);
        assert_ne!(a.buffer_id(), b.buffer_id());
    }

    #[test]
    fn detach_copies_out_of_the_shared_buffer() {
        let a = Payload::from(b"payload".to_vec());
        let mut b = a.clone();
        assert_eq!(a.buffer_id(), b.buffer_id());
        b.detach();
        assert_eq!(a, b, "bytes unchanged");
        assert_ne!(a.buffer_id(), b.buffer_id(), "buffer now private");
    }
}
