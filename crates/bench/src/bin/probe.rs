//! Quick smoke probe: runs the unconstrained policy comparison on the
//! paper-scale scenario and prints one summary line per policy. Handy for
//! eyeballing result shapes after a change without running the full bench
//! suite (`cargo run --release -p replidtn-bench --bin probe`).

use dtn::{EncounterBudget, PolicyKind};
use emu::experiments::{policy_comparison, Scenario};

fn main() {
    let t0 = std::time::Instant::now();
    let scenario = Scenario::paper();
    println!(
        "scenario: {} encounters, {} messages, {} days, {:.1} buses/day",
        scenario.trace.len(),
        scenario.workload.len(),
        scenario.trace.days(),
        scenario.trace.mean_nodes_per_day()
    );
    let runs = policy_comparison(&scenario, EncounterBudget::unlimited(), None);
    for run in &runs {
        println!(
            "{:>10}: mean {:.1}h  12h {:>5.1}%  delivered {:>5.1}%  max {:.1}d  copies(del/end) {:.1}/{:.1}  tx {}",
            run.policy.label(),
            run.result.mean_delay_hours,
            run.result.delivered_within_12h_pct,
            run.result.delivery_rate_pct,
            run.max_delay_days.unwrap_or(0.0),
            run.copies_at_delivery.unwrap_or(0.0),
            run.copies_at_end.unwrap_or(0.0),
            run.result.metrics.transmissions,
        );
    }
    let _ = PolicyKind::ALL;
    println!("elapsed: {:.1}s", t0.elapsed().as_secs_f64());
}
