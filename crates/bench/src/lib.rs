//! # benchkit — shared plumbing for the experiment benches
//!
//! Each bench target under `benches/` regenerates one table or figure of
//! the paper. The heavy lifting lives in [`emu::experiments`]; this crate
//! provides the shared scenario construction and printing helpers so each
//! bench is a thin `main`.
//!
//! Set `REPLIDTN_SMALL=1` to run the benches on the scaled-down scenario
//! (useful for smoke-testing the harness; the printed numbers then do not
//! correspond to the paper's figures).

use std::sync::Arc;

use dtn::EncounterBudget;
use emu::experiments::{self, PolicyRun, Scenario};
use emu::report::{fmt_opt, render_cdf, Table};
use obs::Observer;

/// The figure-5/6 sweep of extra filter addresses.
pub const FILTER_KS: [usize; 5] = [1, 2, 4, 8, 16];

/// Builds the experiment scenario (paper scale unless `REPLIDTN_SMALL` is
/// set).
pub fn scenario() -> Scenario {
    if std::env::var_os("REPLIDTN_SMALL").is_some() {
        Scenario::small()
    } else {
        Scenario::paper()
    }
}

/// Prints the figure-5 table: average message delay per filter strategy.
pub fn print_fig5(scenario: &Scenario) {
    print_fig5_with(scenario, None);
}

/// [`print_fig5`] with an observer receiving every run's event stream.
pub fn print_fig5_with(scenario: &Scenario, observer: Option<Arc<dyn Observer>>) {
    let series = experiments::filter_sweep_with(scenario, &FILTER_KS, observer);
    let mut table = Table::new(
        "Figure 5: average message delay (hours) vs addresses in filter",
        vec!["addresses", "random", "selected"],
    );
    let labels: Vec<String> = series[0].1.iter().map(|r| r.label.clone()).collect();
    for (i, label) in labels.iter().enumerate() {
        table.row(vec![
            label.clone(),
            format!("{:.1}", series[0].1[i].mean_delay_hours),
            format!("{:.1}", series[1].1[i].mean_delay_hours),
        ]);
    }
    println!("{table}");
}

/// Prints the figure-6 table: % delivered within 12 hours per strategy.
pub fn print_fig6(scenario: &Scenario) {
    print_fig6_with(scenario, None);
}

/// [`print_fig6`] with an observer receiving every run's event stream.
pub fn print_fig6_with(scenario: &Scenario, observer: Option<Arc<dyn Observer>>) {
    let series = experiments::filter_sweep_with(scenario, &FILTER_KS, observer);
    let mut table = Table::new(
        "Figure 6: % messages delivered within 12 hours vs addresses in filter",
        vec!["addresses", "random", "selected"],
    );
    let labels: Vec<String> = series[0].1.iter().map(|r| r.label.clone()).collect();
    for (i, label) in labels.iter().enumerate() {
        table.row(vec![
            label.clone(),
            format!("{:.1}", series[0].1[i].delivered_within_12h_pct),
            format!("{:.1}", series[1].1[i].delivered_within_12h_pct),
        ]);
    }
    println!("{table}");
}

/// Runs the unconstrained policy comparison shared by figures 7a/7b/8.
pub fn unconstrained_runs(scenario: &Scenario) -> Vec<PolicyRun> {
    unconstrained_runs_with(scenario, None)
}

/// [`unconstrained_runs`] with an observer receiving every run's event
/// stream.
pub fn unconstrained_runs_with(
    scenario: &Scenario,
    observer: Option<Arc<dyn Observer>>,
) -> Vec<PolicyRun> {
    experiments::policy_comparison_with(scenario, EncounterBudget::unlimited(), None, observer)
}

/// Prints an hourly CDF (figures 7a, 9, 10) for a set of runs.
pub fn print_hourly_cdfs(title: &str, runs: &[PolicyRun]) {
    println!("== {title} ==");
    let mut table = Table::new(
        "% messages delivered within N hours",
        std::iter::once("policy".to_string())
            .chain((1..=12).map(|h| format!("{h}h")))
            .collect::<Vec<String>>(),
    );
    for run in runs {
        let mut cells = vec![run.policy.label().to_string()];
        cells.extend(
            run.cdf_hours
                .iter()
                .map(|p| format!("{:.1}", p.delivered_pct)),
        );
        table.row(cells);
    }
    println!("{table}");
    for run in runs {
        println!("{}", render_cdf(run.policy.label(), &run.cdf_hours));
    }
}

/// Prints the daily CDF of figure 7b plus worst-case delays.
pub fn print_fig7b(runs: &[PolicyRun]) {
    let mut table = Table::new(
        "Figure 7b: % messages delivered within N days",
        std::iter::once("policy".to_string())
            .chain((1..=10).map(|d| format!("{d}d")))
            .chain(std::iter::once("worst".to_string()))
            .collect::<Vec<String>>(),
    );
    for run in runs {
        let mut cells = vec![run.policy.label().to_string()];
        cells.extend(
            run.cdf_days
                .iter()
                .map(|p| format!("{:.1}", p.delivered_pct)),
        );
        cells.push(
            run.max_delay_days
                .map(|d| format!("{d:.1}d"))
                .unwrap_or_else(|| "-".to_string()),
        );
        table.row(cells);
    }
    println!("{table}");
}

/// Prints the figure-8 table: average stored copies per message.
pub fn print_fig8(runs: &[PolicyRun]) {
    let mut table = Table::new(
        "Figure 8: avg copies of messages stored in the network",
        vec!["policy", "at delivery", "at end of experiment"],
    );
    for run in runs {
        table.row(vec![
            run.policy.label().to_string(),
            fmt_opt(run.copies_at_delivery),
            fmt_opt(run.copies_at_end),
        ]);
    }
    println!("{table}");
}

/// Prints a traffic/delivery summary used alongside several figures.
pub fn print_summary(runs: &[PolicyRun]) {
    let mut table = Table::new(
        "Run summary",
        vec![
            "policy",
            "mean delay (h)",
            "within 12h (%)",
            "delivered (%)",
            "transmissions",
            "duplicates",
        ],
    );
    for run in runs {
        table.row(vec![
            run.policy.label().to_string(),
            format!("{:.1}", run.result.mean_delay_hours),
            format!("{:.1}", run.result.delivered_within_12h_pct),
            format!("{:.1}", run.result.delivery_rate_pct),
            run.result.metrics.transmissions.to_string(),
            run.result.metrics.duplicates.to_string(),
        ]);
    }
    println!("{table}");
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn small_scenario_pipeline_smoke() {
        let scenario = Scenario::small();
        let runs = unconstrained_runs(&scenario);
        assert_eq!(runs.len(), 5);
        print_hourly_cdfs("smoke", &runs);
        print_fig7b(&runs);
        print_fig8(&runs);
        print_summary(&runs);
    }
}
