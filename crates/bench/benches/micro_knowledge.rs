//! Criterion micro-benchmarks for the knowledge (version vector +
//! exceptions) structure: insert, merge, and membership — the hot path of
//! every synchronization.

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};
use pfr::{Knowledge, ReplicaId, Version};

fn build_knowledge(replicas: u64, versions_each: u64) -> Knowledge {
    let mut k = Knowledge::new();
    for r in 1..=replicas {
        k.insert_prefix(ReplicaId::new(r), versions_each);
    }
    k
}

fn bench_insert_in_order(c: &mut Criterion) {
    c.bench_function("knowledge/insert_in_order_1k", |b| {
        b.iter(|| {
            let mut k = Knowledge::new();
            for counter in 1..=1000u64 {
                k.insert(Version::new(ReplicaId::new(1), counter));
            }
            black_box(k)
        })
    });
}

fn bench_insert_out_of_order(c: &mut Criterion) {
    c.bench_function("knowledge/insert_reverse_1k", |b| {
        b.iter(|| {
            let mut k = Knowledge::new();
            for counter in (1..=1000u64).rev() {
                k.insert(Version::new(ReplicaId::new(1), counter));
            }
            black_box(k)
        })
    });
}

fn bench_contains(c: &mut Criterion) {
    let k = build_knowledge(50, 1000);
    c.bench_function("knowledge/contains_hit", |b| {
        b.iter(|| black_box(k.contains(Version::new(ReplicaId::new(25), 500))))
    });
    c.bench_function("knowledge/contains_miss", |b| {
        b.iter(|| black_box(k.contains(Version::new(ReplicaId::new(25), 5000))))
    });
}

fn bench_merge(c: &mut Criterion) {
    let mut group = c.benchmark_group("knowledge/merge");
    for replicas in [10u64, 50, 200] {
        let a = build_knowledge(replicas, 100);
        let b_k = build_knowledge(replicas, 200);
        group.bench_with_input(BenchmarkId::from_parameter(replicas), &replicas, |b, _| {
            b.iter(|| {
                let mut merged = a.clone();
                merged.merge(&b_k);
                black_box(merged)
            })
        });
    }
    group.finish();
}

/// Short sampling profile: micro-benchmarks here are stable enough that
/// 2-second measurement windows give tight intervals.
fn quick() -> Criterion {
    Criterion::default()
        .sample_size(20)
        .nresamples(10_000)
        .warm_up_time(std::time::Duration::from_millis(400))
        .measurement_time(std::time::Duration::from_secs(2))
}

criterion_group! {
    name = benches;
    config = quick();
    targets = bench_insert_in_order,
    bench_insert_out_of_order,
    bench_contains,
    bench_merge
}
criterion_main!(benches);
