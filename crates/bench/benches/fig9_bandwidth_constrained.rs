//! Regenerates Figure 9: delay CDF when bandwidth is constrained to one
//! message exchanged per encounter (paper §VI-D).

use dtn::EncounterBudget;
use emu::experiments::policy_comparison;

fn main() {
    let scenario = benchkit::scenario();
    let runs = policy_comparison(&scenario, EncounterBudget::max_messages(1), None);
    benchkit::print_hourly_cdfs(
        "Figure 9: delay CDF (0-12 hours), 1 message per encounter",
        &runs,
    );
    benchkit::print_summary(&runs);
}
