//! Topology independence in numbers (paper §I/§III): every connected sync
//! topology converges; knowledge makes anti-entropy zero-redundancy (the
//! transmission count equals the exact number of receipts needed,
//! regardless of shape); only the number of rounds differs.

use emu::report::Table;
use emu::topology::{rounds_to_convergence, Topology};

fn main() {
    let topologies = [
        Topology::FullMesh,
        Topology::Star,
        Topology::Tree { fanout: 2 },
        Topology::RandomGossip { seed: 7 },
        Topology::Ring,
        Topology::Chain,
    ];
    for n in [8usize, 16, 32, 64] {
        let mut table = Table::new(
            format!("Anti-entropy convergence, {n} full replicas, {n} items"),
            vec!["topology", "rounds", "transmissions", "needed (n*(n-1))"],
        );
        for topology in &topologies {
            let result =
                rounds_to_convergence(n, topology, 10_000).expect("connected topologies converge");
            table.row(vec![
                topology.label(),
                result.rounds.to_string(),
                result.transmissions.to_string(),
                (n * (n - 1)).to_string(),
            ]);
        }
        println!("{table}");
    }
    println!("transmissions == needed everywhere: knowledge-driven sync never re-sends.");
}
