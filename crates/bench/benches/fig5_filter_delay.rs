//! Regenerates Figure 5: average message delay in the simple DTN
//! application as hosts add extra addresses (random vs selected) to their
//! filters (paper §VI-B).

fn main() {
    let scenario = benchkit::scenario();
    benchkit::print_fig5(&scenario);
}
