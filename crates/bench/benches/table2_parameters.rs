//! Regenerates Table II: the DTN protocol parameters used in the
//! experiments (paper §VI-C).

use dtn::PolicyKind;
use emu::report::Table;

fn main() {
    let mut table = Table::new(
        "Table II: DTN protocol parameters",
        vec!["Protocol", "Parameter", "Value"],
    );
    for kind in PolicyKind::ALL {
        let summary = kind.build().summary();
        for (name, value) in summary.parameters {
            table.row(vec![summary.protocol.to_string(), name, value]);
        }
    }
    println!("{table}");
}
