//! Ablation studies beyond the paper's figures: sweeps over the design
//! parameters DESIGN.md calls out — epidemic TTL, spray copy budget,
//! PROPHET predictability floor, MaxProp acknowledgements, and the
//! severity of the bandwidth/storage constraints.

use dtn::{
    EncounterBudget, EpidemicPolicy, MaxPropPolicy, PolicyKind, ProphetParams, ProphetPolicy,
    SprayAndWaitPolicy,
};
use emu::experiments::Scenario;
use emu::report::Table;
use emu::{Emulation, EmulationConfig, PolicySpec, SweepRunner};
use pfr::SimDuration;

struct Row {
    label: String,
    within_12h_pct: f64,
    delivery_pct: f64,
    transmissions: u64,
    copies_at_end: f64,
}

fn run(
    scenario: &Scenario,
    spec: PolicySpec,
    budget: EncounterBudget,
    relay: Option<usize>,
) -> Row {
    let label = spec.label();
    let config = EmulationConfig {
        policy: spec,
        budget,
        relay_limit: relay,
        ..EmulationConfig::default()
    };
    let metrics = Emulation::new(&scenario.trace, &scenario.workload, config).run();
    Row {
        label,
        within_12h_pct: metrics.delivered_within(SimDuration::from_hours(12)) * 100.0,
        delivery_pct: metrics.delivery_rate() * 100.0,
        transmissions: metrics.transmissions,
        copies_at_end: metrics.mean_copies_at_end().unwrap_or(0.0),
    }
}

fn print_rows(title: &str, rows: &[Row]) {
    let mut table = Table::new(
        title,
        vec![
            "variant",
            "within 12h (%)",
            "delivered (%)",
            "transfers",
            "copies@end",
        ],
    );
    for row in rows {
        table.row(vec![
            row.label.clone(),
            format!("{:.1}", row.within_12h_pct),
            format!("{:.1}", row.delivery_pct),
            row.transmissions.to_string(),
            format!("{:.1}", row.copies_at_end),
        ]);
    }
    println!("{table}");
}

fn main() {
    let scenario = benchkit::scenario();
    let runner = SweepRunner::new();

    // 1. Epidemic TTL: how much hop budget does flooding actually need?
    let rows: Vec<Row> = runner.run(vec![1u32, 2, 4, 10, 32], |ttl| {
        run(
            &scenario,
            PolicySpec::custom(format!("epidemic ttl={ttl}"), move || {
                Box::new(EpidemicPolicy::new(ttl))
            }),
            EncounterBudget::unlimited(),
            None,
        )
    });
    print_rows("Ablation: epidemic TTL (Table II default: 10)", &rows);

    // 2. Spray and Wait copy budget: delivery vs storage.
    let rows: Vec<Row> = runner.run(vec![2u32, 4, 8, 16, 32], |copies| {
        run(
            &scenario,
            PolicySpec::custom(format!("spray copies={copies}"), move || {
                Box::new(SprayAndWaitPolicy::new(copies))
            }),
            EncounterBudget::unlimited(),
            None,
        )
    });
    print_rows("Ablation: spray copy budget (Table II default: 8)", &rows);

    // 3. PROPHET floor: why gradient forwarding needs pruning.
    let rows: Vec<Row> = runner.run(vec![0.0f64, 0.1, 0.3, 0.5], |floor| {
        run(
            &scenario,
            PolicySpec::custom(format!("prophet floor={floor}"), move || {
                Box::new(ProphetPolicy::new(ProphetParams {
                    floor,
                    ..ProphetParams::default()
                }))
            }),
            EncounterBudget::unlimited(),
            None,
        )
    });
    print_rows(
        "Ablation: PROPHET predictability floor (0 = pure protocol, floods)",
        &rows,
    );

    // 4. MaxProp acknowledgements: delivery unchanged, storage slashed.
    let rows: Vec<Row> = runner.run(vec![true, false], |acks| {
        run(
            &scenario,
            PolicySpec::custom(
                format!("maxprop acks={}", if acks { "on" } else { "off" }),
                move || Box::new(MaxPropPolicy::default().with_acks(acks)),
            ),
            EncounterBudget::unlimited(),
            None,
        )
    });
    print_rows("Ablation: MaxProp delivery acknowledgements", &rows);

    // 5. Constraint severity around the paper's extreme settings.
    let mut rows = runner.run(vec![1usize, 2, 4, 8], |budget| {
        let mut row = run(
            &scenario,
            PolicySpec::Kind(PolicyKind::MaxProp),
            EncounterBudget::max_messages(budget),
            None,
        );
        row.label = format!("maxprop bw={budget}/encounter");
        row
    });
    rows.extend(runner.run(vec![1usize, 2, 4, 8], |relay| {
        let mut row = run(
            &scenario,
            PolicySpec::Kind(PolicyKind::MaxProp),
            EncounterBudget::unlimited(),
            Some(relay),
        );
        row.label = format!("maxprop storage={relay} msgs");
        row
    }));
    print_rows(
        "Ablation: constraint severity (paper uses bw=1, storage=2)",
        &rows,
    );

    // 6. Crash resilience: reboots lose in-memory routing state but never
    //    the durable replica, so correctness holds and only routing
    //    efficiency degrades.
    let mut rows = Vec::new();
    for crash_rate in [0.0f64, 0.05, 0.2, 0.5] {
        for policy in [PolicyKind::Prophet, PolicyKind::MaxProp] {
            let config = EmulationConfig {
                policy: policy.into(),
                crash_rate,
                ..EmulationConfig::default()
            };
            let metrics = Emulation::new(&scenario.trace, &scenario.workload, config).run();
            assert_eq!(metrics.duplicates, 0, "at-most-once must survive crashes");
            rows.push(Row {
                label: format!("{} crash={crash_rate}", policy.label()),
                within_12h_pct: metrics.delivered_within(SimDuration::from_hours(12)) * 100.0,
                delivery_pct: metrics.delivery_rate() * 100.0,
                transmissions: metrics.transmissions,
                copies_at_end: metrics.mean_copies_at_end().unwrap_or(0.0),
            });
        }
    }
    print_rows(
        "Ablation: crash injection (reboots lose routing state, never messages)",
        &rows,
    );
}
