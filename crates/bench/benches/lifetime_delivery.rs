//! Bounded message lifetimes: true delivery rates when messages expire.
//!
//! The paper's Figure 6 reads bounded-lifetime delivery off the
//! unbounded-run CDF ("what message delivery rate would look like for
//! messages with bounded lifetimes"). This experiment implements real
//! expiry — holders purge expired copies, senders tombstone their
//! originals, late arrivals don't count — and sweeps the lifetime bound.
//! The CDF approximation and the real mechanism agree exactly (e.g. the
//! 12-hour row reproduces Figure 7a's 12-hour column), validating the
//! paper's shortcut: under FIFO-free, unconstrained storage, expiring a
//! message can never have helped deliver another one.

use dtn::{EncounterBudget, PolicyKind};
use emu::report::Table;
use emu::{Emulation, EmulationConfig};
use pfr::SimDuration;

fn main() {
    let scenario = benchkit::scenario();
    let lifetimes = [
        SimDuration::from_hours(6),
        SimDuration::from_hours(12),
        SimDuration::from_days(1),
        SimDuration::from_days(2),
        SimDuration::from_days(4),
    ];
    let policies = [
        PolicyKind::Direct,
        PolicyKind::SprayAndWait,
        PolicyKind::MaxProp,
    ];

    let mut table = Table::new(
        "Delivery rate (%) with bounded message lifetimes",
        std::iter::once("lifetime".to_string())
            .chain(policies.iter().map(|p| p.label().to_string()))
            .collect::<Vec<_>>(),
    );
    for lifetime in lifetimes {
        let mut cells = vec![lifetime.to_string()];
        for policy in policies {
            let config = EmulationConfig {
                policy: policy.into(),
                budget: EncounterBudget::unlimited(),
                message_lifetime: Some(lifetime),
                ..EmulationConfig::default()
            };
            let metrics = Emulation::new(&scenario.trace, &scenario.workload, config).run();
            assert_eq!(metrics.duplicates, 0);
            cells.push(format!("{:.1}", metrics.delivery_rate() * 100.0));
        }
        table.row(cells);
    }
    println!("{table}");
    println!("(unbounded-lifetime reference: see fig7 benches)");
}
