//! Macro benchmark for the city-scale sharded engine: a fleet one order
//! of magnitude (or more) beyond the paper's 34 DieselNet buses, streamed
//! from an on-disk spool and replayed three ways —
//!
//! * **spill**: sharded workers + a resident-replica cap, cold state
//!   spilled through `store::SpillFile` (the bounded-RSS configuration),
//! * **sharded**: same workers, every replica resident,
//! * **serial**: the reference single-threaded in-memory engine (skipped
//!   at scales where materializing the trace stops being reasonable).
//!
//! All modes must produce identical [`ExperimentMetrics`] — the sharded
//! engine is an execution strategy, not a model change — and the bench
//! asserts that before reporting anything. An instrumented re-run of the
//! spill mode captures the `shard.*` counters (handoffs, spills,
//! unspills) so the report proves the scale machinery actually engaged.
//! Results land in `BENCH_scale.json` in the working directory.
//!
//! The replay runs Epidemic under the paper's Figure-10-style storage
//! constraint (a small per-node relay cap): city buses are
//! storage-constrained relays, not archives, and the cap keeps per-node
//! stores — and therefore spill snapshots — proportional to the
//! constraint instead of to the whole message population. (Unconstrained
//! Epidemic at city scale floods every store to thousands of items,
//! which measures snapshot serialization, not the engine.)
//!
//! `REPLIDTN_SCALE` multiplies the paper's topology along every axis
//! (default 10: a 340-vehicle fleet); `REPLIDTN_SCALE_DAYS` sets the
//! replay horizon (default 6); `REPLIDTN_SCALE_RESIDENT` overrides the
//! resident-replica cap (default 3/5 of the fleet — DieselNet's daily
//! active set is ~2/3 of the fleet with near-uniform touch frequency, so
//! a much smaller cap measures pure thrash, not residency management).
//! CI's scale-smoke sets scale low for a fast structural check. Peak RSS
//! comes from `/proc/self/status` `VmHWM`, reset per mode via
//! `/proc/self/clear_refs` where the kernel allows; the spill mode is
//! measured first so its reading stays honest even on kernels that
//! refuse the reset (`VmHWM` only ratchets upward).
//!
//! Beyond wall time and RSS, the report carries the residency health
//! numbers the perf guard gates: the *thrash ratio* (unspills per
//! encounter — below 0.3 the engine restores state ahead of need instead
//! of faulting on it) and the spill file's high-water size (with
//! free-list slot reuse it plateaus at the peak parked set).

use std::sync::Arc;
use std::time::Instant;

use dtn::PolicyKind;
use emu::{Emulation, EmulationConfig, ExperimentMetrics};
use obs::Registry;
use traces::{DieselNetConfig, EmailConfig, EncounterTrace};

/// Best-effort reset of the peak-RSS high-water mark, so each mode's
/// `VmHWM` reading is its own peak rather than the process maximum.
fn reset_peak_rss() {
    let _ = std::fs::write("/proc/self/clear_refs", "5");
}

/// Peak resident set size in KiB (`VmHWM`), or 0 off Linux.
fn peak_rss_kb() -> u64 {
    std::fs::read_to_string("/proc/self/status")
        .ok()
        .and_then(|status| {
            status
                .lines()
                .find(|l| l.starts_with("VmHWM:"))
                .and_then(|l| l.split_whitespace().nth(1))
                .and_then(|v| v.parse().ok())
        })
        .unwrap_or(0)
}

struct ModeResult {
    metrics: ExperimentMetrics,
    seconds: f64,
    encounters_per_sec: f64,
    peak_rss_kb: u64,
}

fn measure(encounters: u64, run: impl FnOnce() -> ExperimentMetrics) -> ModeResult {
    reset_peak_rss();
    let started = Instant::now();
    let metrics = run();
    let seconds = started.elapsed().as_secs_f64();
    ModeResult {
        encounters_per_sec: encounters as f64 / seconds.max(1e-9),
        seconds,
        peak_rss_kb: peak_rss_kb(),
        metrics,
    }
}

/// Per-node relay-store cap (the paper's Figure 10 uses 2; 4 leaves the
/// policies a little more room while keeping stores — and spill
/// snapshots — small).
const RELAY_LIMIT: usize = 4;

fn env_num(name: &str, default: u64) -> u64 {
    std::env::var(name)
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
        .max(1)
}

fn main() {
    let scale = env_num("REPLIDTN_SCALE", 10) as usize;
    let days = env_num("REPLIDTN_SCALE_DAYS", 6);
    let trace_config = DieselNetConfig {
        days,
        ..DieselNetConfig::city(scale)
    };
    let fleet = trace_config.fleet_size;
    let workload = EmailConfig {
        injection_days: days.min(8),
        ..EmailConfig::city(scale)
    }
    .generate();

    let pid = std::process::id();
    let spool_path = std::env::temp_dir().join(format!("replidtn-macro-scale-{pid}.spool"));
    let spill_dir = std::env::temp_dir().join(format!("replidtn-macro-scale-spill-{pid}"));
    std::fs::create_dir_all(&spill_dir).expect("spill dir");
    let spooled = trace_config
        .generate_spooled(&spool_path)
        .expect("spool city trace");

    let workers = env_num(
        "REPLIDTN_SCALE_WORKERS",
        std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(4)
            .clamp(2, 8) as u64,
    ) as usize;
    let resident_limit =
        env_num("REPLIDTN_SCALE_RESIDENT", (fleet * 3 / 5).max(16) as u64) as usize;

    println!(
        "macro_scale: Epidemic (relay cap {RELAY_LIMIT}), scale {scale} \
         ({fleet} vehicles, {:.0}x the paper's 34), {days} day(s), \
         {} encounters, {} messages, {workers} workers",
        fleet as f64 / 34.0,
        spooled.len(),
        workload.len()
    );

    let spill_config = EmulationConfig {
        policy: PolicyKind::Epidemic.into(),
        relay_limit: Some(RELAY_LIMIT),
        shards: Some(workers),
        spill_dir: Some(spill_dir.clone()),
        resident_limit: Some(resident_limit),
        ..EmulationConfig::default()
    };
    let spill = measure(spooled.len(), || {
        Emulation::from_spooled(&spooled, &workload, spill_config.clone()).run()
    });
    println!(
        "  spill   : {:7.2}s, {:8.0} encounters/sec, {} KiB peak RSS \
         (resident cap {resident_limit}/{fleet})",
        spill.seconds, spill.encounters_per_sec, spill.peak_rss_kb
    );

    let sharded_config = EmulationConfig {
        spill_dir: None,
        resident_limit: None,
        ..spill_config.clone()
    };
    let sharded = measure(spooled.len(), || {
        Emulation::from_spooled(&spooled, &workload, sharded_config).run()
    });
    println!(
        "  sharded : {:7.2}s, {:8.0} encounters/sec, {} KiB peak RSS",
        sharded.seconds, sharded.encounters_per_sec, sharded.peak_rss_kb
    );
    assert_eq!(
        spill.metrics, sharded.metrics,
        "spilling cold replicas must not change the run"
    );

    // Instrumented spill re-run: prove the scale machinery engaged (cross-
    // shard handoffs happened, the cap forced spills) and that observation
    // does not perturb the run. Its wall time is not reported.
    let registry = Arc::new(Registry::new());
    let observed = Emulation::from_spooled(
        &spooled,
        &workload,
        EmulationConfig {
            observer: Some(registry.clone()),
            ..spill_config
        },
    )
    .run();
    assert_eq!(
        spill.metrics, observed,
        "attaching an observer must not change run results"
    );
    let snap = registry.snapshot();
    let (handoffs, spills, unspills, evictions) = (
        snap.counter("shard.handoffs"),
        snap.counter("shard.spills"),
        snap.counter("shard.unspills"),
        snap.counter("shard.evictions"),
    );
    let (resident_peak, spill_file_bytes) = (
        snap.gauge("shard.resident_peak"),
        snap.gauge("shard.spill_file_bytes"),
    );
    assert!(handoffs > 0, "a multi-shard city run must cross shards");
    assert!(spills > 0, "the resident cap must force spills");
    let thrash_ratio = unspills as f64 / spooled.len().max(1) as f64;
    println!(
        "  shard   : {handoffs} handoffs, {spills} spills, {unspills} unspills \
         ({thrash_ratio:.3} unspills/encounter), peak {resident_peak} resident, \
         spill file high-water {spill_file_bytes} bytes"
    );

    // Serial in-memory baseline: the differential anchor. The *same*
    // spool is materialized into an in-memory trace (the spool enforces
    // the identical (time, a, b) order `from_encounters` sorts by, so the
    // schedules match exactly); `DieselNetConfig::generate` would build a
    // different — equally-distributed but not identical — schedule.
    // Skipped at scales where materializing every encounter stops being
    // reasonable; the spill-vs-sharded equality above still gates those.
    let serial = (scale <= 100).then(|| {
        let trace = EncounterTrace::from_encounters(
            spooled
                .iter()
                .expect("reopen spool for serial baseline")
                .collect(),
        );
        let result = measure(trace.len() as u64, || {
            Emulation::new(
                &trace,
                &workload,
                EmulationConfig {
                    policy: PolicyKind::Epidemic.into(),
                    relay_limit: Some(RELAY_LIMIT),
                    ..EmulationConfig::default()
                },
            )
            .run()
        });
        assert_eq!(
            result.metrics, spill.metrics,
            "the sharded engine diverged from the serial reference"
        );
        println!(
            "  serial  : {:7.2}s, {:8.0} encounters/sec, {} KiB peak RSS",
            result.seconds, result.encounters_per_sec, result.peak_rss_kb
        );
        result
    });

    let serial_json = serial.as_ref().map_or("null".to_string(), |s| {
        format!(
            "{{\"seconds\": {:.3}, \"encounters_per_sec\": {:.1}, \"peak_rss_kb\": {}}}",
            s.seconds, s.encounters_per_sec, s.peak_rss_kb
        )
    });
    let json = format!(
        concat!(
            "{{\n",
            "  \"bench\": \"macro_scale\",\n",
            "  \"policy\": \"epidemic\",\n",
            "  \"scale\": {scale},\n",
            "  \"fleet\": {fleet},\n",
            "  \"fleet_vs_paper\": {fleet_ratio:.1},\n",
            "  \"days\": {days},\n",
            "  \"encounters\": {encounters},\n",
            "  \"messages\": {messages},\n",
            "  \"workers\": {workers},\n",
            "  \"relay_limit\": {relay_limit},\n",
            "  \"resident_limit\": {resident_limit},\n",
            "  \"metrics_identical\": true,\n",
            "  \"shard\": {{\"handoffs\": {handoffs}, \"spills\": {spills}, ",
            "\"unspills\": {unspills}, \"evictions\": {evictions}, ",
            "\"thrash_ratio\": {thrash_ratio:.4}, ",
            "\"resident_peak\": {resident_peak}, ",
            "\"spill_file_bytes\": {spill_file_bytes}}},\n",
            "  \"spill\": {{\"seconds\": {spill_s:.3}, \"encounters_per_sec\": {spill_eps:.1}, ",
            "\"peak_rss_kb\": {spill_rss}}},\n",
            "  \"sharded\": {{\"seconds\": {shard_s:.3}, \"encounters_per_sec\": {shard_eps:.1}, ",
            "\"peak_rss_kb\": {shard_rss}}},\n",
            "  \"serial\": {serial_json}\n",
            "}}\n",
        ),
        scale = scale,
        fleet = fleet,
        fleet_ratio = fleet as f64 / 34.0,
        days = days,
        encounters = spooled.len(),
        messages = workload.len(),
        workers = workers,
        relay_limit = RELAY_LIMIT,
        resident_limit = resident_limit,
        handoffs = handoffs,
        spills = spills,
        unspills = unspills,
        evictions = evictions,
        thrash_ratio = thrash_ratio,
        resident_peak = resident_peak,
        spill_file_bytes = spill_file_bytes,
        spill_s = spill.seconds,
        spill_eps = spill.encounters_per_sec,
        spill_rss = spill.peak_rss_kb,
        shard_s = sharded.seconds,
        shard_eps = sharded.encounters_per_sec,
        shard_rss = sharded.peak_rss_kb,
        serial_json = serial_json,
    );
    std::fs::write("BENCH_scale.json", &json).expect("write BENCH_scale.json");
    println!("  wrote BENCH_scale.json");

    let _ = std::fs::remove_file(&spool_path);
    let _ = std::fs::remove_dir_all(&spill_dir);
}
