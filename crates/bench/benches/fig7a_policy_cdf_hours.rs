//! Regenerates Figure 7a: the cumulative distribution of message delays
//! (first 12 hours) for the DTN routing policies, unconstrained (§VI-C).

fn main() {
    let scenario = benchkit::scenario();
    let runs = benchkit::unconstrained_runs(&scenario);
    benchkit::print_hourly_cdfs("Figure 7a: delay CDF (0-12 hours), unconstrained", &runs);
    benchkit::print_summary(&runs);
}
