//! Criterion micro-benchmarks for the DTN policy hooks: per-item `toSend`
//! decision cost for each protocol, including MaxProp's modified-Dijkstra
//! path scoring.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use dtn::{DtnNode, EncounterBudget, PolicyKind};
use pfr::{ReplicaId, SimTime};

fn bench_encounter(c: &mut Criterion) {
    let mut group = c.benchmark_group("policy/encounter_100_messages");
    for kind in PolicyKind::ALL {
        group.bench_function(kind.label(), |b| {
            b.iter_batched(
                || {
                    let mut a = DtnNode::new(ReplicaId::new(1), "a", kind);
                    let b_node = DtnNode::new(ReplicaId::new(2), "b", kind);
                    for i in 0..100u32 {
                        a.send(&format!("dest-{}", i % 10), vec![0u8; 32], SimTime::ZERO)
                            .expect("send");
                    }
                    (a, b_node)
                },
                |(mut a, mut b)| {
                    black_box(a.encounter(
                        &mut b,
                        SimTime::from_secs(60),
                        EncounterBudget::unlimited(),
                    ))
                },
                criterion::BatchSize::SmallInput,
            )
        });
    }
    group.finish();
}

/// Short sampling profile: micro-benchmarks here are stable enough that
/// 2-second measurement windows give tight intervals.
fn quick() -> Criterion {
    Criterion::default()
        .sample_size(20)
        .nresamples(10_000)
        .warm_up_time(std::time::Duration::from_millis(400))
        .measurement_time(std::time::Duration::from_secs(2))
}

criterion_group! {
    name = benches;
    config = quick();
    targets = bench_encounter
}
criterion_main!(benches);
