//! Regenerates Figure 10: delay CDF when each node may store at most two
//! relay messages (FIFO eviction), excluding messages for which the node
//! is the sender or the destination (paper §VI-D).

use dtn::EncounterBudget;
use emu::experiments::policy_comparison;

fn main() {
    let scenario = benchkit::scenario();
    let runs = policy_comparison(&scenario, EncounterBudget::unlimited(), Some(2));
    benchkit::print_hourly_cdfs(
        "Figure 10: delay CDF (0-12 hours), max 2 relay messages per node",
        &runs,
    );
    benchkit::print_summary(&runs);
}
