//! Regenerates Figure 6: percentage of messages delivered within 12 hours
//! as hosts add extra addresses (random vs selected) to their filters
//! (paper §VI-B).

fn main() {
    let scenario = benchkit::scenario();
    benchkit::print_fig6(&scenario);
}
