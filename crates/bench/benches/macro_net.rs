//! Load generator for the async reactor (`crates/net`), run once per
//! poll backend over real loopback TCP. Each run has two phases. An
//! unmeasured warm-up bursts `sessions` detached syncs at once, which
//! leaves the standing state of a DTN hub: that many pooled client
//! connections with as many responders parked on the server. The
//! measured phase then issues the same number of sessions again, a
//! small window at a time, over that fabric — the regime where the
//! backends diverge, because a sweeping poller probes every parked
//! socket on every pass while an event-driven one touches only the
//! active few. Reported per backend: session throughput, client-side
//! per-session latency quantiles, and the reactor's syscall / wakeup
//! accounting (measured-phase deltas), so the artifact captures the
//! epoll-vs-sweep comparison directly. A final section measures gossip
//! membership convergence: a seed-chained cluster must heal to a full
//! alive view within a bounded number of rounds.
//!
//! Results land in `BENCH_net.json`; the perf guard gates structurally
//! on every run (both backend sections present, nonzero throughput,
//! p99 >= p50 > 0, zero failures, syscall counters present, bounded
//! gossip convergence) and quantitatively (epoll >= 3x sweep
//! sessions/s, epoll p99 below sweep p99, fewer syscalls per session)
//! only when the artifact claims a >= 1,000-session run — the committed
//! artifact does; CI's smoke run shrinks the burst via
//! `REPLIDTN_NET_SESSIONS`.
//!
//! `REPLIDTN_NET_SESSIONS` overrides the burst size (default 1200);
//! `REPLIDTN_NET_GOSSIP_NODES` the gossip cluster size (default 12).

use std::sync::Arc;
use std::time::{Duration, Instant};

use dtn::{DtnNode, PolicyKind};
use net::{MembershipConfig, NetConfig, NetNode, PeerStatus, PollBackend};
use obs::{Obs, Registry};
use pfr::{ReplicaId, SimTime};

fn env_usize(name: &str, default: usize) -> usize {
    std::env::var(name)
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
        .max(1)
}

/// The session burst: `sessions` detached syncs against one server, all
/// registered before any is awaited. Returns the metrics JSON fragment
/// values the caller stitches together.
struct BurstResult {
    backend: &'static str,
    messages: usize,
    peak: usize,
    completed: u64,
    failed: u64,
    backpressure_stalls: u64,
    syscalls: u64,
    wakeups: u64,
    syscalls_per_session: f64,
    elapsed_s: f64,
    sessions_per_sec: f64,
    p50_micros: u64,
    p99_micros: u64,
    max_micros: u64,
}

fn session_burst(backend: PollBackend, sessions: usize) -> BurstResult {
    // Enough payload traffic that sessions move real data, small enough
    // that per-session protocol CPU does not drown the scheduling cost
    // under measurement.
    let messages = sessions.min(64);
    let registry = Arc::new(Registry::new());

    let mut server_node = DtnNode::new(ReplicaId::new(2), "server", PolicyKind::Epidemic);
    server_node
        .replica_mut()
        .set_observer(Obs::new(registry.clone()));
    let mut client_node = DtnNode::new(ReplicaId::new(1), "client", PolicyKind::Epidemic);
    // Traffic both ways: sessions pull payloads, not just knowledge.
    for i in 0..messages {
        let payload = vec![0x5A; 256];
        client_node
            .send("server", payload.clone(), SimTime::from_secs(i as u64))
            .expect("inject");
        server_node
            .send("client", payload, SimTime::from_secs(i as u64))
            .expect("inject");
    }

    let server = NetNode::start(
        server_node,
        "127.0.0.1:0",
        NetConfig {
            backend,
            max_sessions: sessions + 64,
            gossip_interval: Duration::ZERO,
            ..NetConfig::default()
        },
    )
    .expect("bind server");
    let client = NetNode::start(
        client_node,
        "127.0.0.1:0",
        NetConfig {
            backend,
            max_sessions: sessions + 64,
            gossip_interval: Duration::ZERO,
            ..NetConfig::default()
        },
    )
    .expect("bind client");
    let addr = server.local_addr().to_string();

    // Phase 1 (unmeasured warm-up): a full concurrent burst opens the
    // contact fabric — `sessions` connections that end up pooled on the
    // client with as many responders parked on the server, the standing
    // state of a DTN hub holding many open contacts.
    let tickets: Vec<_> = (0..sessions)
        .map(|i| {
            client
                .sync_detached(&addr, SimTime::from_secs(3600 + i as u64))
                .expect("register session")
        })
        .collect();
    for (i, ticket) in tickets.into_iter().enumerate() {
        let result = ticket.wait();
        assert!(
            result.is_ok(),
            "warm-up session {i} failed: {:?}",
            result.error
        );
    }
    let warm_client = client.stats();
    let warm_server = server.stats();

    // Phase 2 (measured): the same burst size again, `WINDOW` sessions
    // in flight at a time over the standing fabric. Only a handful of
    // the open sockets are active at any instant, so a backend that
    // probes every parked connection pays for the whole fabric on every
    // pass while an event-driven one pays only for the active few.
    const WINDOW: usize = 8;
    let started = Instant::now();
    let mut latencies: Vec<u64> = std::thread::scope(|scope| {
        let client = &client;
        let addr = &addr;
        let handles: Vec<_> = (0..WINDOW)
            .map(|w| {
                scope.spawn(move || {
                    let share = sessions / WINDOW + usize::from(w < sessions % WINDOW);
                    let mut lat = Vec::with_capacity(share);
                    for s in 0..share {
                        let t0 = Instant::now();
                        let result = client.sync_with(addr, SimTime::from_secs(7200 + s as u64));
                        assert!(result.is_ok(), "session failed: {:?}", result.error);
                        lat.push(t0.elapsed().as_micros() as u64);
                    }
                    lat
                })
            })
            .collect();
        handles
            .into_iter()
            .flat_map(|h| h.join().expect("window thread"))
            .collect()
    });
    let elapsed_s = started.elapsed().as_secs_f64();

    let server_stats = server.stats();
    let client_stats = client.stats();
    assert_eq!(client_stats.failed, 0, "client sessions failed");
    assert_eq!(
        client_stats.completed - warm_client.completed,
        sessions as u64,
        "measured sessions lost"
    );
    assert!(server_stats.peak_sessions >= 1, "no session ever opened");
    assert!(client_stats.syscalls > 0, "syscall accounting missing");
    assert!(client_stats.wakeups > 0, "wakeup accounting missing");

    let server_node = server.stop();
    let client_node = client.stop();
    assert_eq!(
        server_node.inbox().len(),
        messages,
        "at-most-once delivery broke under the burst"
    );
    assert_eq!(
        client_node.inbox().len(),
        messages,
        "pull path lost messages"
    );

    let snapshot = registry.snapshot();
    let hist = snapshot
        .histogram("net.session_micros")
        .expect("server sessions observed");
    assert!(hist.count() >= sessions as u64, "histogram missed sessions");

    latencies.sort_unstable();
    let quantile = |q: f64| latencies[((latencies.len() - 1) as f64 * q) as usize];
    // Syscall/wakeup deltas isolate the measured phase from the warm-up.
    let syscalls = (client_stats.syscalls + server_stats.syscalls)
        - (warm_client.syscalls + warm_server.syscalls);
    BurstResult {
        backend: client_stats.backend,
        messages,
        peak: server_stats.peak_sessions,
        completed: client_stats.completed - warm_client.completed,
        failed: client_stats.failed,
        backpressure_stalls: client_stats.backpressure_stalls + server_stats.backpressure_stalls,
        syscalls,
        wakeups: (client_stats.wakeups + server_stats.wakeups)
            - (warm_client.wakeups + warm_server.wakeups),
        syscalls_per_session: syscalls as f64 / sessions as f64,
        elapsed_s,
        sessions_per_sec: sessions as f64 / elapsed_s.max(1e-9),
        p50_micros: quantile(0.5),
        p99_micros: quantile(0.99),
        max_micros: *latencies.last().expect("latencies recorded"),
    }
}

/// Gossip convergence: `n` nodes chained by seeds (each knows only its
/// predecessor) gossip until every view holds all `n - 1` peers alive.
/// Returns (rounds, bound).
fn gossip_convergence(n: usize) -> (usize, usize) {
    let nodes: Vec<NetNode> = (1..=n as u64)
        .map(|i| {
            NetNode::start(
                DtnNode::new(ReplicaId::new(i), &format!("g{i}"), PolicyKind::Epidemic),
                "127.0.0.1:0",
                NetConfig {
                    gossip_interval: Duration::ZERO,
                    gossip: MembershipConfig {
                        seed: i,
                        ..MembershipConfig::default()
                    },
                    ..NetConfig::default()
                },
            )
            .expect("bind gossip node")
        })
        .collect();
    for pair in nodes.windows(2) {
        pair[1].add_seed(pair[0].local_addr().to_string());
    }

    let bound = 2 * n;
    let mut rounds = 0;
    loop {
        rounds += 1;
        for node in &nodes {
            node.gossip_now();
        }
        let converged = nodes.iter().all(|node| {
            let view = node.membership();
            view.len() == n - 1 && view.iter().all(|p| p.status == PeerStatus::Alive)
        });
        if converged {
            break;
        }
        assert!(
            rounds < bound,
            "gossip failed to converge in {bound} rounds"
        );
    }
    for node in nodes {
        node.stop();
    }
    (rounds, bound)
}

fn backend_json(burst: &BurstResult) -> String {
    format!(
        concat!(
            "{{\n",
            "    \"backend\": \"{backend}\",\n",
            "    \"peak_concurrent_sessions\": {peak},\n",
            "    \"completed\": {completed},\n",
            "    \"failed\": {failed},\n",
            "    \"backpressure_stalls\": {stalls},\n",
            "    \"syscalls\": {syscalls},\n",
            "    \"wakeups\": {wakeups},\n",
            "    \"syscalls_per_session\": {sps:.1},\n",
            "    \"elapsed_seconds\": {elapsed:.3},\n",
            "    \"sessions_per_sec\": {rate:.1},\n",
            "    \"p50_micros\": {p50},\n",
            "    \"p99_micros\": {p99},\n",
            "    \"max_micros\": {max}\n",
            "  }}"
        ),
        backend = burst.backend,
        peak = burst.peak,
        completed = burst.completed,
        failed = burst.failed,
        stalls = burst.backpressure_stalls,
        syscalls = burst.syscalls,
        wakeups = burst.wakeups,
        sps = burst.syscalls_per_session,
        elapsed = burst.elapsed_s,
        rate = burst.sessions_per_sec,
        p50 = burst.p50_micros,
        p99 = burst.p99_micros,
        max = burst.max_micros,
    )
}

fn print_burst(burst: &BurstResult) {
    println!(
        "  burst[{}]: peak {} concurrent sessions, {:.0} sessions/s, \
         p50 {}us p99 {}us max {}us, {:.1} syscalls/session, \
         {} wakeups, {} backpressure stalls, {:.2}s",
        burst.backend,
        burst.peak,
        burst.sessions_per_sec,
        burst.p50_micros,
        burst.p99_micros,
        burst.max_micros,
        burst.syscalls_per_session,
        burst.wakeups,
        burst.backpressure_stalls,
        burst.elapsed_s
    );
}

fn main() {
    let sessions = env_usize("REPLIDTN_NET_SESSIONS", 1200);
    let gossip_nodes = env_usize("REPLIDTN_NET_GOSSIP_NODES", 12).max(2);

    println!("macro_net: {sessions}-session burst per backend, {gossip_nodes}-node gossip chain");
    let sweep = session_burst(PollBackend::Sweep, sessions);
    print_burst(&sweep);
    let epoll = session_burst(PollBackend::Epoll, sessions);
    print_burst(&epoll);
    let speedup = epoll.sessions_per_sec / sweep.sessions_per_sec.max(1e-9);
    println!("  speedup : epoll {speedup:.2}x sweep sessions/s");

    let (rounds, bound) = gossip_convergence(gossip_nodes);
    println!("  gossip  : {gossip_nodes} nodes converged in {rounds} rounds (bound {bound})");

    let json = format!(
        concat!(
            "{{\n",
            "  \"bench\": \"macro_net\",\n",
            "  \"sessions\": {sessions},\n",
            "  \"messages\": {messages},\n",
            "  \"backends\": {{\n",
            "  \"sweep\": {sweep_section},\n",
            "  \"epoll\": {epoll_section}\n",
            "  }},\n",
            "  \"epoll_speedup\": {speedup:.2},\n",
            "  \"gossip\": {{\"nodes\": {gnodes}, \"rounds_to_converge\": {rounds}, ",
            "\"bound\": {bound}, \"converged\": true}}\n",
            "}}\n",
        ),
        sessions = sessions,
        messages = sweep.messages,
        sweep_section = backend_json(&sweep),
        epoll_section = backend_json(&epoll),
        speedup = speedup,
        gnodes = gossip_nodes,
        rounds = rounds,
        bound = bound,
    );
    std::fs::write("BENCH_net.json", &json).expect("write BENCH_net.json");
    println!("  wrote BENCH_net.json");
}
