//! Load generator for the async reactor (`crates/net`): one server
//! [`NetNode`] absorbs a burst of detached sync sessions from a client
//! node over real loopback TCP, and the bench reports structural
//! concurrency (peak sessions open at once on the server), session
//! throughput, and per-session latency quantiles from the server's
//! `net.session_micros` histogram. A second section measures gossip
//! membership convergence: a seed-chained cluster must heal to a full
//! alive view within a bounded number of rounds.
//!
//! The client runs with a zero-lifetime connection pool so every dial is
//! a distinct TCP connection: the server parks each inbound responder
//! until the far end closes, so its peak session count measures true
//! concurrent sessions, not a registration/completion race.
//!
//! Results land in `BENCH_net.json`; the perf guard gates structurally
//! (nonzero throughput, p99 >= p50 > 0, zero failures, bounded gossip
//! convergence) and requires >= 1,000 peak concurrent sessions whenever
//! the artifact claims a >= 1,000-session run — the committed artifact
//! does; CI's smoke run shrinks the burst via `REPLIDTN_NET_SESSIONS`.
//!
//! `REPLIDTN_NET_SESSIONS` overrides the burst size (default 1200);
//! `REPLIDTN_NET_GOSSIP_NODES` the gossip cluster size (default 12).

use std::sync::Arc;
use std::time::{Duration, Instant};

use dtn::{DtnNode, PolicyKind};
use net::{MembershipConfig, NetConfig, NetNode, PeerStatus};
use obs::{Obs, Registry};
use pfr::{ReplicaId, SimTime};

fn env_usize(name: &str, default: usize) -> usize {
    std::env::var(name)
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
        .max(1)
}

/// The session burst: `sessions` detached syncs against one server, all
/// registered before any is awaited. Returns the metrics JSON fragment
/// values the caller stitches together.
struct BurstResult {
    sessions: usize,
    messages: usize,
    delivered_to_server: usize,
    delivered_to_client: usize,
    peak: usize,
    completed: u64,
    failed: u64,
    backpressure_stalls: u64,
    elapsed_s: f64,
    sessions_per_sec: f64,
    p50_micros: u64,
    p99_micros: u64,
    max_micros: u64,
}

fn session_burst(sessions: usize) -> BurstResult {
    let messages = sessions.min(256);
    let registry = Arc::new(Registry::new());

    let mut server_node = DtnNode::new(ReplicaId::new(2), "server", PolicyKind::Epidemic);
    server_node
        .replica_mut()
        .set_observer(Obs::new(registry.clone()));
    let mut client_node = DtnNode::new(ReplicaId::new(1), "client", PolicyKind::Epidemic);
    // Traffic both ways: sessions pull payloads, not just knowledge.
    for i in 0..messages {
        let payload = vec![0x5A; 256];
        client_node
            .send("server", payload.clone(), SimTime::from_secs(i as u64))
            .expect("inject");
        server_node
            .send("client", payload, SimTime::from_secs(i as u64))
            .expect("inject");
    }

    let server = NetNode::start(
        server_node,
        "127.0.0.1:0",
        NetConfig {
            max_sessions: sessions + 64,
            gossip_interval: Duration::ZERO,
            ..NetConfig::default()
        },
    )
    .expect("bind server");
    let client = NetNode::start(
        client_node,
        "127.0.0.1:0",
        NetConfig {
            max_sessions: sessions + 64,
            gossip_interval: Duration::ZERO,
            // A zero-lifetime pool: every dial is a fresh connection, so
            // the server's peak measures true concurrent sessions.
            idle_timeout: Duration::ZERO,
            ..NetConfig::default()
        },
    )
    .expect("bind client");
    let addr = server.local_addr().to_string();

    let started = Instant::now();
    let tickets: Vec<_> = (0..sessions)
        .map(|i| {
            client
                .sync_detached(&addr, SimTime::from_secs(3600 + i as u64))
                .expect("register session")
        })
        .collect();
    for (i, ticket) in tickets.into_iter().enumerate() {
        let result = ticket.wait();
        assert!(result.is_ok(), "session {i} failed: {:?}", result.error);
    }
    let elapsed_s = started.elapsed().as_secs_f64();

    let server_stats = server.stats();
    let client_stats = client.stats();
    assert_eq!(client_stats.failed, 0, "client sessions failed");
    assert_eq!(client_stats.completed, sessions as u64, "sessions lost");
    assert!(
        server_stats.peak_sessions * 2 >= sessions,
        "server peak {} never reached half the burst of {sessions}",
        server_stats.peak_sessions
    );

    let server_node = server.stop();
    let client_node = client.stop();
    assert_eq!(
        server_node.inbox().len(),
        messages,
        "at-most-once delivery broke under the burst"
    );
    assert_eq!(
        client_node.inbox().len(),
        messages,
        "pull path lost messages"
    );

    let snapshot = registry.snapshot();
    let hist = snapshot
        .histogram("net.session_micros")
        .expect("server sessions observed");
    assert!(hist.count() >= sessions as u64, "histogram missed sessions");

    BurstResult {
        sessions,
        messages,
        delivered_to_server: messages,
        delivered_to_client: messages,
        peak: server_stats.peak_sessions,
        completed: client_stats.completed,
        failed: client_stats.failed,
        backpressure_stalls: client_stats.backpressure_stalls + server_stats.backpressure_stalls,
        elapsed_s,
        sessions_per_sec: sessions as f64 / elapsed_s.max(1e-9),
        p50_micros: hist.quantile(0.5),
        p99_micros: hist.quantile(0.99),
        max_micros: hist.max(),
    }
}

/// Gossip convergence: `n` nodes chained by seeds (each knows only its
/// predecessor) gossip until every view holds all `n - 1` peers alive.
/// Returns (rounds, bound).
fn gossip_convergence(n: usize) -> (usize, usize) {
    let nodes: Vec<NetNode> = (1..=n as u64)
        .map(|i| {
            NetNode::start(
                DtnNode::new(ReplicaId::new(i), &format!("g{i}"), PolicyKind::Epidemic),
                "127.0.0.1:0",
                NetConfig {
                    gossip_interval: Duration::ZERO,
                    gossip: MembershipConfig {
                        seed: i,
                        ..MembershipConfig::default()
                    },
                    ..NetConfig::default()
                },
            )
            .expect("bind gossip node")
        })
        .collect();
    for pair in nodes.windows(2) {
        pair[1].add_seed(pair[0].local_addr().to_string());
    }

    let bound = 2 * n;
    let mut rounds = 0;
    loop {
        rounds += 1;
        for node in &nodes {
            node.gossip_now();
        }
        let converged = nodes.iter().all(|node| {
            let view = node.membership();
            view.len() == n - 1 && view.iter().all(|p| p.status == PeerStatus::Alive)
        });
        if converged {
            break;
        }
        assert!(
            rounds < bound,
            "gossip failed to converge in {bound} rounds"
        );
    }
    for node in nodes {
        node.stop();
    }
    (rounds, bound)
}

fn main() {
    let sessions = env_usize("REPLIDTN_NET_SESSIONS", 1200);
    let gossip_nodes = env_usize("REPLIDTN_NET_GOSSIP_NODES", 12).max(2);

    println!("macro_net: {sessions}-session burst, {gossip_nodes}-node gossip chain");
    let burst = session_burst(sessions);
    println!(
        "  burst   : peak {} concurrent sessions, {:.0} sessions/s, \
         p50 {}us p99 {}us max {}us, {} backpressure stalls, {:.2}s",
        burst.peak,
        burst.sessions_per_sec,
        burst.p50_micros,
        burst.p99_micros,
        burst.max_micros,
        burst.backpressure_stalls,
        burst.elapsed_s
    );

    let (rounds, bound) = gossip_convergence(gossip_nodes);
    println!("  gossip  : {gossip_nodes} nodes converged in {rounds} rounds (bound {bound})");

    let json = format!(
        concat!(
            "{{\n",
            "  \"bench\": \"macro_net\",\n",
            "  \"sessions\": {sessions},\n",
            "  \"messages\": {messages},\n",
            "  \"delivered_to_server\": {to_server},\n",
            "  \"delivered_to_client\": {to_client},\n",
            "  \"peak_concurrent_sessions\": {peak},\n",
            "  \"completed\": {completed},\n",
            "  \"failed\": {failed},\n",
            "  \"backpressure_stalls\": {stalls},\n",
            "  \"elapsed_seconds\": {elapsed:.3},\n",
            "  \"sessions_per_sec\": {rate:.1},\n",
            "  \"p50_micros\": {p50},\n",
            "  \"p99_micros\": {p99},\n",
            "  \"max_micros\": {max},\n",
            "  \"gossip\": {{\"nodes\": {gnodes}, \"rounds_to_converge\": {rounds}, ",
            "\"bound\": {bound}, \"converged\": true}}\n",
            "}}\n",
        ),
        sessions = burst.sessions,
        messages = burst.messages,
        to_server = burst.delivered_to_server,
        to_client = burst.delivered_to_client,
        peak = burst.peak,
        completed = burst.completed,
        failed = burst.failed,
        stalls = burst.backpressure_stalls,
        elapsed = burst.elapsed_s,
        rate = burst.sessions_per_sec,
        p50 = burst.p50_micros,
        p99 = burst.p99_micros,
        max = burst.max_micros,
        gnodes = gossip_nodes,
        rounds = rounds,
        bound = bound,
    );
    std::fs::write("BENCH_net.json", &json).expect("write BENCH_net.json");
    println!("  wrote BENCH_net.json");
}
