//! Regenerates Figure 8: message copies stored in the network at delivery
//! time and at the end of the experiment, per policy (§VI-C).

fn main() {
    let scenario = benchkit::scenario();
    let runs = benchkit::unconstrained_runs(&scenario);
    benchkit::print_fig8(&runs);
}
