//! Criterion micro-benchmarks for the wire codec: the paper's "compact
//! metadata" claim in numbers — encoded sizes and encode/decode speed for
//! knowledge and sync batches.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use pfr::wire::{from_bytes, to_bytes};
use pfr::{AttributeMap, Filter, Item, ItemId, Knowledge, ReplicaId, Version};

fn sample_knowledge() -> Knowledge {
    let mut k = Knowledge::new();
    for r in 1..=34 {
        k.insert_prefix(ReplicaId::new(r), 500);
    }
    for c in [600u64, 612, 700] {
        k.insert(Version::new(ReplicaId::new(1), c));
    }
    k
}

fn sample_item() -> Item {
    let mut attrs = AttributeMap::new();
    attrs.set("dest", "bus-17");
    attrs.set("src", "bus-3");
    attrs.set("sent_at", 28_800i64);
    Item::builder(
        ItemId::new(ReplicaId::new(3), 42),
        Version::new(ReplicaId::new(3), 42),
    )
    .attrs(attrs)
    .transient_attr("dtn.ttl", 10i64)
    .payload(vec![0xab; 120])
    .build()
}

fn bench_knowledge_codec(c: &mut Criterion) {
    let k = sample_knowledge();
    let bytes = to_bytes(&k);
    println!(
        "encoded knowledge (34 replicas x 500 versions): {} bytes",
        bytes.len()
    );
    c.bench_function("codec/knowledge_encode", |b| {
        b.iter(|| black_box(to_bytes(&k)))
    });
    c.bench_function("codec/knowledge_decode", |b| {
        b.iter(|| black_box(from_bytes::<Knowledge>(&bytes).expect("decode")))
    });
}

fn bench_item_codec(c: &mut Criterion) {
    let item = sample_item();
    let bytes = to_bytes(&item);
    println!(
        "encoded message item (120-byte payload): {} bytes",
        bytes.len()
    );
    c.bench_function("codec/item_encode", |b| {
        b.iter(|| black_box(to_bytes(&item)))
    });
    c.bench_function("codec/item_decode", |b| {
        b.iter(|| black_box(from_bytes::<Item>(&bytes).expect("decode")))
    });
}

fn bench_filter_codec(c: &mut Criterion) {
    let filter = Filter::any_address(
        "dest",
        (0..16)
            .map(|i| format!("bus-{i}"))
            .collect::<Vec<_>>()
            .iter()
            .map(String::as_str),
    );
    let bytes = to_bytes(&filter);
    println!("encoded 16-address filter: {} bytes", bytes.len());
    c.bench_function("codec/filter_encode", |b| {
        b.iter(|| black_box(to_bytes(&filter)))
    });
    c.bench_function("codec/filter_decode", |b| {
        b.iter(|| black_box(from_bytes::<Filter>(&bytes).expect("decode")))
    });
}

/// Short sampling profile: micro-benchmarks here are stable enough that
/// 2-second measurement windows give tight intervals.
fn quick() -> Criterion {
    Criterion::default()
        .sample_size(20)
        .nresamples(10_000)
        .warm_up_time(std::time::Duration::from_millis(400))
        .measurement_time(std::time::Duration::from_secs(2))
}

criterion_group! {
    name = benches;
    config = quick();
    targets = bench_knowledge_codec, bench_item_codec, bench_filter_codec
}
criterion_main!(benches);
