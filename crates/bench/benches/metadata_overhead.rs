//! Quantifies the paper's §III cross-fertilization claim: the replication
//! substrate's knowledge provides duplicate suppression with metadata
//! proportional to the number of *replicas*, while the classic DTN
//! summary-vector mechanism ships metadata proportional to the number of
//! *messages* ever seen.
//!
//! Both systems run the same epidemic workload: N messages flooded through
//! a ring of R relays until everyone has everything. We then measure the
//! per-encounter metadata each design must transmit.

use dtn::adhoc::AdhocNode;
use dtn::{DtnNode, EncounterBudget, PolicyKind};
use emu::report::Table;
use pfr::wire::to_bytes;
use pfr::{ReplicaId, SimTime};

const RELAYS: usize = 12;

/// Floods `messages` through `RELAYS` substrate nodes; returns the encoded
/// knowledge size of a fully-caught-up node.
fn knowledge_bytes(messages: usize) -> (usize, usize) {
    let mut nodes: Vec<DtnNode> = (0..RELAYS)
        .map(|i| {
            DtnNode::new(
                ReplicaId::new(i as u64 + 1),
                &format!("h{i}"),
                PolicyKind::Epidemic,
            )
        })
        .collect();
    for m in 0..messages {
        let sender = m % RELAYS;
        let dest = format!("h{}", (m + 1) % RELAYS);
        nodes[sender]
            .send(&dest, vec![0u8; 16], SimTime::ZERO)
            .expect("send");
    }
    // Ring rounds until converged.
    for round in 0..RELAYS {
        for i in 0..RELAYS {
            let j = (i + 1) % RELAYS;
            let (lo, hi) = if i < j { (i, j) } else { (j, i) };
            let (a, b) = two(&mut nodes, lo, hi);
            a.encounter(
                b,
                SimTime::from_secs((round * RELAYS + i) as u64 * 60 + 1),
                EncounterBudget::unlimited(),
            );
        }
    }
    let node = &nodes[0];
    let bytes = to_bytes(node.replica().knowledge()).len();
    let exceptions = node.replica().knowledge().exception_count();
    (bytes, exceptions)
}

/// The same flood through classic summary-vector nodes; returns the
/// summary-vector size of a fully-caught-up node.
fn summary_vector_bytes(messages: usize) -> usize {
    let mut nodes: Vec<AdhocNode> = (0..RELAYS)
        .map(|i| AdhocNode::new(ReplicaId::new(i as u64 + 1), &format!("h{i}")))
        .collect();
    for m in 0..messages {
        let sender = m % RELAYS;
        let dest = format!("h{}", (m + 1) % RELAYS);
        nodes[sender].send(&dest, vec![0u8; 16]);
    }
    for round in 0..RELAYS {
        for i in 0..RELAYS {
            let j = (i + 1) % RELAYS;
            let (lo, hi) = if i < j { (i, j) } else { (j, i) };
            let (a, b) = two(&mut nodes, lo, hi);
            a.encounter(b, SimTime::from_secs((round * RELAYS + i) as u64 * 60 + 1));
        }
    }
    nodes[0].summary_vector_bytes()
}

fn two<T>(v: &mut [T], i: usize, j: usize) -> (&mut T, &mut T) {
    assert!(i < j);
    let (l, r) = v.split_at_mut(j);
    (&mut l[i], &mut r[0])
}

fn main() {
    let mut table = Table::new(
        format!("Per-encounter duplicate-suppression metadata, {RELAYS} nodes (paper §III)"),
        vec![
            "messages",
            "knowledge (bytes)",
            "knowledge exceptions",
            "summary vector (bytes)",
            "ratio",
        ],
    );
    for messages in [50usize, 200, 800, 3200] {
        let (k_bytes, k_exc) = knowledge_bytes(messages);
        let sv_bytes = summary_vector_bytes(messages);
        table.row(vec![
            messages.to_string(),
            k_bytes.to_string(),
            k_exc.to_string(),
            sv_bytes.to_string(),
            format!("{:.1}x", sv_bytes as f64 / k_bytes as f64),
        ]);
    }
    println!("{table}");
    println!(
        "knowledge compacts to one (replica, counter) pair per origin once gossip\n\
         converges; the summary vector must list every message id forever."
    );
}
