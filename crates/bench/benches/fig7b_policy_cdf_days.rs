//! Regenerates Figure 7b: the cumulative distribution of message delays
//! beyond 12 hours (days 1-10) for the DTN routing policies, including the
//! worst-case delays the paper highlights (§VI-C).

fn main() {
    let scenario = benchkit::scenario();
    let runs = benchkit::unconstrained_runs(&scenario);
    benchkit::print_fig7b(&runs);
}
