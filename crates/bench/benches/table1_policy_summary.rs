//! Regenerates Table I: the summary of how each DTN routing protocol maps
//! onto the replication policy interface — routing state kept, data added
//! to sync requests, and the source forwarding rule (paper §V-C).

use dtn::PolicyKind;
use emu::experiments::Scenario;
use emu::report::Table;
use emu::{Emulation, EmulationConfig};

fn main() {
    let mut table = Table::new(
        "Table I: summary of policies for DTN routing protocols",
        vec![
            "Protocol",
            "Routing state",
            "Added to sync request",
            "Source forwarding policy",
        ],
    );
    for kind in PolicyKind::ALL {
        if kind == PolicyKind::Direct {
            continue; // Table I lists only the four DTN protocols.
        }
        let summary = kind.build().summary();
        table.row(vec![
            summary.protocol.to_string(),
            summary.routing_state.to_string(),
            summary.added_to_sync_request.to_string(),
            summary.source_forwarding_policy.to_string(),
        ]);
    }
    println!("{table}");

    // Quantitative addendum: the actual size of each policy's persistent
    // routing state after the paper-scale run (what `save_state` would
    // write to disk, and roughly what generateReq ships per sync).
    let scenario = Scenario::paper();
    let mut sizes = Table::new(
        "Routing-state size after the 17-day run (bytes, mean/max per node)",
        vec!["policy", "mean", "max"],
    );
    for kind in PolicyKind::EXTENDED {
        let (_, nodes) = Emulation::new(
            &scenario.trace,
            &scenario.workload,
            EmulationConfig::for_policy(kind),
        )
        .run_into_parts();
        let lens: Vec<usize> = nodes
            .values()
            .map(|n| n.policy().save_state().len())
            .collect();
        let mean = lens.iter().sum::<usize>() as f64 / lens.len().max(1) as f64;
        let max = lens.iter().max().copied().unwrap_or(0);
        sizes.row(vec![
            kind.label().to_string(),
            format!("{mean:.0}"),
            max.to_string(),
        ]);
    }
    println!("{sizes}");
}
