//! Criterion micro-benchmarks for pairwise synchronization: cost of a sync
//! as a function of backlog size, and of an already-converged (no-op) sync
//! — the case that dominates real deployments, which the compact knowledge
//! exchange makes cheap.

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};
use pfr::{sync, AttributeMap, Filter, Replica, ReplicaId, SimTime};

fn loaded_replica(items: usize) -> Replica {
    let mut r = Replica::new(ReplicaId::new(1), Filter::address("dest", "a"));
    for i in 0..items {
        let mut attrs = AttributeMap::new();
        attrs.set("dest", if i % 2 == 0 { "b" } else { "c" });
        r.insert(attrs, vec![0u8; 64]).expect("insert");
    }
    r
}

fn bench_first_sync(c: &mut Criterion) {
    let mut group = c.benchmark_group("sync/first_sync");
    for items in [10usize, 100, 1000] {
        group.bench_with_input(BenchmarkId::from_parameter(items), &items, |b, &n| {
            let source = loaded_replica(n);
            b.iter(|| {
                let mut src = source.clone();
                let mut tgt = Replica::new(ReplicaId::new(2), Filter::address("dest", "b"));
                black_box(sync::sync_once(&mut src, &mut tgt, SimTime::ZERO))
            })
        });
    }
    group.finish();
}

fn bench_converged_sync(c: &mut Criterion) {
    let mut group = c.benchmark_group("sync/converged_noop");
    for items in [10usize, 100, 1000] {
        group.bench_with_input(BenchmarkId::from_parameter(items), &items, |b, &n| {
            let mut src = loaded_replica(n);
            let mut tgt = Replica::new(ReplicaId::new(2), Filter::address("dest", "b"));
            sync::sync_once(&mut src, &mut tgt, SimTime::ZERO);
            b.iter(|| black_box(sync::sync_once(&mut src, &mut tgt, SimTime::ZERO)))
        });
    }
    group.finish();
}

/// Short sampling profile: micro-benchmarks here are stable enough that
/// 2-second measurement windows give tight intervals.
fn quick() -> Criterion {
    Criterion::default()
        .sample_size(20)
        .nresamples(10_000)
        .warm_up_time(std::time::Duration::from_millis(400))
        .measurement_time(std::time::Duration::from_secs(2))
}

criterion_group! {
    name = benches;
    config = quick();
    targets = bench_first_sync, bench_converged_sync
}
criterion_main!(benches);
