//! Macro benchmark for digest-mode set reconciliation: replays the same
//! multi-day DieselNet × email workload twice — once with full knowledge
//! exchange ([`SyncMode::Full`]) and once with compact Bloom/IBLT digests
//! ([`SyncMode::Digest`]) — and reports the metadata bytes each mode put
//! on the wire.
//!
//! The two runs must produce *identical* [`ExperimentMetrics`]: digests
//! change how knowledge travels, never which items replicate or when they
//! deliver. The bench asserts that before reporting any numbers, and also
//! cross-checks the per-node [`ReconStats`] sums against the observer's
//! `recon.*` registry counters (the digest run carries a [`Registry`], so
//! the observation path is exercised end to end).
//!
//! A second section sweeps the Bloom filter density (bits per version)
//! over a fixed two-node overlap scenario with
//! [`DigestPolicy::ForceBloom`], charting the digest-size /
//! false-positive trade the filter sizing buys (fp rate ≈ 0.6185^bits).
//!
//! Results land in `BENCH_recon.json` in the working directory; the perf
//! guard gates on `metadata_ratio` ≥ 3 and nonzero digest traffic.
//!
//! `REPLIDTN_EMU_DAYS` overrides the replay length (default 30); CI's
//! perf-smoke job sets it to 1 for a fast structural check.

use std::collections::BTreeMap;
use std::sync::Arc;
use std::time::Instant;

use dtn::{DtnNode, EncounterBudget, PolicyKind};
use emu::{Emulation, EmulationConfig, ExperimentMetrics};
use obs::Registry;
use pfr::digest::{DigestPolicy, ReconStats};
use pfr::{ReplicaId, SimTime, SyncMode};
use traces::{DieselNetConfig, EmailConfig, EmailWorkload, EncounterTrace};

/// One emulation replay in the given sync mode, returning the metrics,
/// the summed per-node recon stats, and the wall time.
fn run_mode(
    trace: &EncounterTrace,
    workload: &EmailWorkload,
    sync_mode: SyncMode,
    registry: Option<Arc<Registry>>,
) -> (ExperimentMetrics, ReconStats, f64) {
    let config = EmulationConfig {
        policy: PolicyKind::Epidemic.into(),
        sync_mode,
        observer: registry.map(|r| r as Arc<dyn obs::Observer>),
        ..EmulationConfig::default()
    };
    let started = Instant::now();
    let (metrics, nodes) = Emulation::new(trace, workload, config).run_into_parts();
    let seconds = started.elapsed().as_secs_f64();
    let mut stats = ReconStats::default();
    for node in nodes.values() {
        let s = node.recon_stats();
        stats.exchanges += s.exchanges;
        stats.digest_bytes += s.digest_bytes;
        stats.full_bytes += s.full_bytes;
        stats.fallback_rounds += s.fallback_rounds;
        stats.false_positives += s.false_positives;
    }
    (metrics, stats, seconds)
}

/// One row of the Bloom density sweep: a fixed two-node scenario where a
/// shared base (first encounter) is followed by one-sided fresh traffic,
/// so the second encounter's Bloom screening faces real overlap and a
/// known population of absent versions that can false-positive.
fn bloom_sweep_row(bits: u32) -> (ReconStats, usize) {
    let mut a = DtnNode::new(ReplicaId::new(1), "a", PolicyKind::Epidemic);
    let mut b = DtnNode::new(ReplicaId::new(2), "b", PolicyKind::Epidemic);
    for node in [&mut a, &mut b] {
        node.set_sync_mode(SyncMode::Digest);
        node.set_digest_policy(DigestPolicy::ForceBloom);
        node.set_bloom_bits_per_item(bits);
    }
    for i in 0..150u32 {
        let t = SimTime::from_secs(u64::from(i));
        a.send("b", format!("base a->b {i}").into_bytes(), t)
            .expect("inject");
        b.send("a", format!("base b->a {i}").into_bytes(), t)
            .expect("inject");
    }
    a.encounter(
        &mut b,
        SimTime::from_secs(200),
        EncounterBudget::unlimited(),
    );
    // Fresh one-sided versions: absent from b's knowledge, each hits b's
    // Bloom with probability ≈ 0.6185^bits on the second exchange.
    for i in 0..200u32 {
        a.send(
            "b",
            format!("fresh a->b {i}").into_bytes(),
            SimTime::from_secs(300 + u64::from(i)),
        )
        .expect("inject");
    }
    a.encounter(
        &mut b,
        SimTime::from_secs(600),
        EncounterBudget::unlimited(),
    );

    let mut stats = ReconStats::default();
    for node in [&a, &b] {
        let s = node.recon_stats();
        stats.exchanges += s.exchanges;
        stats.digest_bytes += s.digest_bytes;
        stats.full_bytes += s.full_bytes;
        stats.fallback_rounds += s.fallback_rounds;
        stats.false_positives += s.false_positives;
    }
    (stats, b.inbox().len())
}

fn main() {
    let days: u64 = std::env::var("REPLIDTN_EMU_DAYS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(30)
        .max(1);
    let trace = DieselNetConfig {
        days,
        ..DieselNetConfig::default()
    }
    .generate();
    let workload = EmailConfig {
        injection_days: days.min(8),
        total_messages: ((490 * days) / 17).max(30) as usize,
        ..EmailConfig::default()
    }
    .generate();

    println!(
        "macro_recon: Epidemic, {days} day(s), {} encounters, {} messages",
        trace.len(),
        workload.len()
    );

    let (full_metrics, full_stats, full_s) = run_mode(&trace, &workload, SyncMode::Full, None);
    println!("  full    : {full_s:7.2}s");
    assert_eq!(
        full_stats.exchanges, 0,
        "full mode must never touch the digest path"
    );

    let registry = Arc::new(Registry::new());
    let (digest_metrics, digest_stats, digest_s) =
        run_mode(&trace, &workload, SyncMode::Digest, Some(registry.clone()));
    println!("  digest  : {digest_s:7.2}s");

    // The tentpole invariant: digests change what travels, never what
    // replicates. Byte-identical metrics or the bench refuses to report.
    assert_eq!(
        full_metrics, digest_metrics,
        "digest mode changed experiment results"
    );

    // The observation path must agree with the per-node counters.
    let snapshot = registry.snapshot();
    assert_eq!(
        snapshot.counter("recon.digest_bytes"),
        digest_stats.digest_bytes,
        "registry and node stats disagree on digest bytes"
    );
    assert_eq!(
        snapshot.counter("recon.full_bytes"),
        digest_stats.full_bytes,
        "registry and node stats disagree on full-equivalent bytes"
    );

    let ratio = digest_stats.full_bytes as f64 / (digest_stats.digest_bytes as f64).max(1e-9);
    println!(
        "  metadata: {} digest bytes vs {} full-equivalent ({ratio:.2}x reduction), \
         {} exchanges, {} fallback rounds, {} false positives",
        digest_stats.digest_bytes,
        digest_stats.full_bytes,
        digest_stats.exchanges,
        digest_stats.fallback_rounds,
        digest_stats.false_positives
    );

    let sweep_bits = [2u32, 4, 6, 8, 10, 12, 16];
    let mut sweep_rows: BTreeMap<u32, (ReconStats, usize)> = BTreeMap::new();
    for bits in sweep_bits {
        let (stats, delivered) = bloom_sweep_row(bits);
        assert_eq!(delivered, 350, "bloom sweep (bits={bits}) lost deliveries");
        println!(
            "  bloom {bits:>2}b: {:6} digest bytes, {:3} false positives, {} fallback rounds",
            stats.digest_bytes, stats.false_positives, stats.fallback_rounds
        );
        sweep_rows.insert(bits, (stats, delivered));
    }

    let sweep_json: Vec<String> = sweep_rows
        .iter()
        .map(|(bits, (s, _))| {
            format!(
                "{{\"bits\": {bits}, \"digest_bytes\": {}, \"false_positives\": {}, \
                 \"fallback_rounds\": {}}}",
                s.digest_bytes, s.false_positives, s.fallback_rounds
            )
        })
        .collect();

    let json = format!(
        concat!(
            "{{\n",
            "  \"bench\": \"macro_recon\",\n",
            "  \"policy\": \"epidemic\",\n",
            "  \"days\": {days},\n",
            "  \"encounters\": {encounters},\n",
            "  \"messages\": {messages},\n",
            "  \"metrics_identical\": true,\n",
            "  \"delivered\": {delivered},\n",
            "  \"full\": {{\"seconds\": {full_s:.3}}},\n",
            "  \"digest\": {{\"seconds\": {digest_s:.3}, \"exchanges\": {exchanges}, ",
            "\"digest_bytes\": {digest_bytes}, \"full_bytes\": {full_bytes}, ",
            "\"bytes_saved\": {bytes_saved}, \"fallback_rounds\": {fallback_rounds}, ",
            "\"false_positives\": {false_positives}}},\n",
            "  \"metadata_ratio\": {ratio:.2},\n",
            "  \"bloom_sweep\": [{sweep}]\n",
            "}}\n",
        ),
        days = days,
        encounters = trace.len(),
        messages = workload.len(),
        delivered = digest_metrics.delivered(),
        full_s = full_s,
        digest_s = digest_s,
        exchanges = digest_stats.exchanges,
        digest_bytes = digest_stats.digest_bytes,
        full_bytes = digest_stats.full_bytes,
        bytes_saved = digest_stats
            .full_bytes
            .saturating_sub(digest_stats.digest_bytes),
        fallback_rounds = digest_stats.fallback_rounds,
        false_positives = digest_stats.false_positives,
        ratio = ratio,
        sweep = sweep_json.join(", "),
    );
    std::fs::write("BENCH_recon.json", &json).expect("write BENCH_recon.json");
    println!("  wrote BENCH_recon.json");
}
