//! Macro benchmark for the sync hot path: replays a fixed multi-day
//! Epidemic emulation twice — once forcing the legacy full-store candidate
//! scan, once with the per-origin version index and filter-match memo —
//! and reports end-to-end encounter throughput for both, plus the
//! batch-build latency histogram (`sync.candidate_scan_us`).
//!
//! The two runs must produce structurally identical [`ExperimentMetrics`]
//! (the index changes *how* candidates are found, never *which*); the
//! bench asserts that before reporting any numbers. Results land in
//! `BENCH_emu.json` in the working directory.
//!
//! `REPLIDTN_EMU_DAYS` overrides the replay length (default 30); CI's
//! perf-smoke job sets it to 1 for a fast structural check.

use std::sync::Arc;
use std::time::Instant;

use dtn::PolicyKind;
use emu::{Emulation, EmulationConfig, ExperimentMetrics};
use obs::{Histogram, Registry};
use traces::{DieselNetConfig, EmailConfig, EmailWorkload, EncounterTrace};

struct ModeResult {
    metrics: ExperimentMetrics,
    seconds: f64,
    encounters_per_sec: f64,
    batch_build_us: Option<Histogram>,
    memo_hits: u64,
}

fn run_mode(trace: &EncounterTrace, workload: &EmailWorkload, candidate_scan: bool) -> ModeResult {
    // Timing run: no observer attached, so the measured throughput is the
    // protocol hot path itself, not metrics bookkeeping.
    let config = EmulationConfig {
        policy: PolicyKind::Epidemic.into(),
        candidate_scan,
        ..EmulationConfig::default()
    };
    let started = Instant::now();
    let metrics = Emulation::new(trace, workload, config).run();
    let seconds = started.elapsed().as_secs_f64();

    // Instrumented re-run (same inputs, same mode) for the batch-build
    // histogram and memo-hit counter; its wall time is not reported.
    let registry = Arc::new(Registry::new());
    let instrumented = EmulationConfig {
        policy: PolicyKind::Epidemic.into(),
        observer: Some(registry.clone()),
        candidate_scan,
        ..EmulationConfig::default()
    };
    let observed = Emulation::new(trace, workload, instrumented).run();
    assert_eq!(
        metrics, observed,
        "attaching an observer must not change run results"
    );
    let snapshot = registry.snapshot();
    ModeResult {
        encounters_per_sec: metrics.encounters as f64 / seconds.max(1e-9),
        seconds,
        batch_build_us: snapshot.histogram("sync.candidate_scan_us").cloned(),
        memo_hits: snapshot.counter("sync.index_hits"),
        metrics,
    }
}

fn hist_json(hist: &Option<Histogram>) -> String {
    match hist {
        None => "null".to_string(),
        Some(h) => format!(
            "{{\"count\":{},\"mean\":{:.1},\"p50\":{},\"p90\":{},\"p99\":{},\"max\":{}}}",
            h.count(),
            h.mean(),
            h.quantile(0.5),
            h.quantile(0.9),
            h.quantile(0.99),
            h.max()
        ),
    }
}

fn main() {
    let days: u64 = std::env::var("REPLIDTN_EMU_DAYS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(30)
        .max(1);
    let trace = DieselNetConfig {
        days,
        ..DieselNetConfig::default()
    }
    .generate();
    // Scale the workload with the horizon so stores stay populated for the
    // whole replay (the paper's 490 messages over 17 days, pro-rated).
    let workload = EmailConfig {
        injection_days: days.min(8),
        total_messages: ((490 * days) / 17).max(30) as usize,
        ..EmailConfig::default()
    }
    .generate();

    println!(
        "macro_emu: Epidemic, {days} day(s), {} encounters, {} messages",
        trace.len(),
        workload.len()
    );

    let scan = run_mode(&trace, &workload, true);
    println!(
        "  scan    : {:7.2}s, {:8.0} encounters/sec",
        scan.seconds, scan.encounters_per_sec
    );
    let indexed = run_mode(&trace, &workload, false);
    println!(
        "  indexed : {:7.2}s, {:8.0} encounters/sec, {} memo hits",
        indexed.seconds, indexed.encounters_per_sec, indexed.memo_hits
    );

    // The index is an acceleration structure, not a behavior change.
    assert_eq!(
        scan.metrics, indexed.metrics,
        "scan and indexed candidate selection must produce identical runs"
    );

    let speedup = indexed.encounters_per_sec / scan.encounters_per_sec.max(1e-9);
    println!("  speedup : {speedup:.2}x (indexed vs scan)");

    let json = format!(
        "{{\n  \"bench\": \"macro_emu\",\n  \"policy\": \"epidemic\",\n  \"days\": {days},\n  \"encounters\": {encounters},\n  \"messages\": {messages},\n  \"metrics_identical\": true,\n  \"scan\": {{\"seconds\": {scan_s:.3}, \"encounters_per_sec\": {scan_eps:.1}, \"batch_build_us\": {scan_hist}}},\n  \"indexed\": {{\"seconds\": {idx_s:.3}, \"encounters_per_sec\": {idx_eps:.1}, \"memo_hits\": {memo_hits}, \"batch_build_us\": {idx_hist}}},\n  \"speedup\": {speedup:.2}\n}}\n",
        encounters = trace.len(),
        messages = workload.len(),
        scan_s = scan.seconds,
        scan_eps = scan.encounters_per_sec,
        scan_hist = hist_json(&scan.batch_build_us),
        idx_s = indexed.seconds,
        idx_eps = indexed.encounters_per_sec,
        memo_hits = indexed.memo_hits,
        idx_hist = hist_json(&indexed.batch_build_us),
    );
    std::fs::write("BENCH_emu.json", &json).expect("write BENCH_emu.json");
    println!("  wrote BENCH_emu.json");
}
