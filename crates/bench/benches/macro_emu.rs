//! Macro benchmark for the sync hot path: replays a fixed multi-day
//! Epidemic emulation three times — forcing the legacy full-store
//! candidate scan, with the per-origin version index (the default,
//! copy-on-write data plane), and with the index but the legacy *owned*
//! data plane (every synced copy deep-copies its payload and un-interns
//! its attribute strings) — and reports end-to-end encounter throughput,
//! the batch-build latency histogram (`sync.candidate_scan_us`), and the
//! per-mode allocation count and peak RSS.
//!
//! All runs must produce structurally identical [`ExperimentMetrics`]
//! (the index changes *how* candidates are found, the data plane *how*
//! copies are held — never *which* or *what*); the bench asserts both
//! before reporting any numbers. A loopback TCP session between two
//! peers additionally captures the data-plane reuse counters
//! (`transport.pool_hits`, `wire.scratch_reuses`, `wire.bytes_encoded`,
//! `item.payload_shares`), which the in-process emulation never touches.
//! Results land in `BENCH_emu.json` in the working directory.
//!
//! Build with `--features alloc-count` to populate the allocation
//! figures (a counting global allocator; off by default so other benches
//! stay unperturbed). Peak RSS comes from `/proc/self/status` `VmHWM`,
//! reset per mode via `/proc/self/clear_refs` where the kernel allows.
//!
//! `REPLIDTN_EMU_DAYS` overrides the replay length (default 30); CI's
//! perf-smoke job sets it to 1 for a fast structural check.

use std::sync::Arc;
use std::time::Instant;

use dtn::{DtnNode, PolicyKind};
use emu::{Emulation, EmulationConfig, ExperimentMetrics};
use obs::{Histogram, Obs, Registry};
use pfr::{ReplicaId, SimTime};
use traces::{DieselNetConfig, EmailConfig, EmailWorkload, EncounterTrace};
use transport::Peer;

#[cfg(feature = "alloc-count")]
mod alloc_count {
    use std::alloc::{GlobalAlloc, Layout, System};
    use std::sync::atomic::{AtomicU64, Ordering};

    pub static ALLOCATIONS: AtomicU64 = AtomicU64::new(0);

    struct Counting;

    // SAFETY: defers entirely to `System`; the counter has no effect on
    // the returned memory.
    unsafe impl GlobalAlloc for Counting {
        unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
            ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
            System.alloc(layout)
        }

        unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
            System.dealloc(ptr, layout)
        }

        unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
            ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
            System.realloc(ptr, layout, new_size)
        }
    }

    #[global_allocator]
    static GLOBAL: Counting = Counting;
}

/// Heap allocations so far, when the `alloc-count` feature is on.
fn allocations_now() -> Option<u64> {
    #[cfg(feature = "alloc-count")]
    {
        Some(alloc_count::ALLOCATIONS.load(std::sync::atomic::Ordering::Relaxed))
    }
    #[cfg(not(feature = "alloc-count"))]
    {
        None
    }
}

/// Best-effort reset of the peak-RSS high-water mark, so each mode's
/// `VmHWM` reading is its own peak rather than the process maximum.
fn reset_peak_rss() {
    let _ = std::fs::write("/proc/self/clear_refs", "5");
}

/// Peak resident set size in KiB (`VmHWM`), or 0 off Linux.
fn peak_rss_kb() -> u64 {
    std::fs::read_to_string("/proc/self/status")
        .ok()
        .and_then(|status| {
            status
                .lines()
                .find(|l| l.starts_with("VmHWM:"))
                .and_then(|l| l.split_whitespace().nth(1))
                .and_then(|v| v.parse().ok())
        })
        .unwrap_or(0)
}

struct ModeResult {
    metrics: ExperimentMetrics,
    seconds: f64,
    encounters_per_sec: f64,
    batch_build_us: Option<Histogram>,
    memo_hits: u64,
    allocations: Option<u64>,
    peak_rss_kb: u64,
}

fn run_mode(
    trace: &EncounterTrace,
    workload: &EmailWorkload,
    candidate_scan: bool,
    owned_copies: bool,
    instrument: bool,
) -> ModeResult {
    // Timing run: no observer attached, so the measured throughput is the
    // protocol hot path itself, not metrics bookkeeping.
    let config = EmulationConfig {
        policy: PolicyKind::Epidemic.into(),
        candidate_scan,
        owned_copies,
        ..EmulationConfig::default()
    };
    reset_peak_rss();
    let allocs_before = allocations_now();
    let started = Instant::now();
    let metrics = Emulation::new(trace, workload, config).run();
    let seconds = started.elapsed().as_secs_f64();
    let allocations = allocations_now()
        .zip(allocs_before)
        .map(|(after, before)| after - before);
    let peak_rss = peak_rss_kb();

    // Instrumented re-run (same inputs, same mode) for the batch-build
    // histogram and memo-hit counter; its wall time is not reported.
    let (batch_build_us, memo_hits) = if instrument {
        let registry = Arc::new(Registry::new());
        let instrumented = EmulationConfig {
            policy: PolicyKind::Epidemic.into(),
            observer: Some(registry.clone()),
            candidate_scan,
            owned_copies,
            ..EmulationConfig::default()
        };
        let observed = Emulation::new(trace, workload, instrumented).run();
        assert_eq!(
            metrics, observed,
            "attaching an observer must not change run results"
        );
        let snapshot = registry.snapshot();
        (
            snapshot.histogram("sync.candidate_scan_us").cloned(),
            snapshot.counter("sync.index_hits"),
        )
    } else {
        (None, 0)
    };
    ModeResult {
        encounters_per_sec: metrics.encounters as f64 / seconds.max(1e-9),
        seconds,
        batch_build_us,
        memo_hits,
        allocations,
        peak_rss_kb: peak_rss,
        metrics,
    }
}

/// Drives one real TCP loopback encounter between two peers, capturing
/// the data-plane reuse counters the in-process emulation never exercises
/// (frames, pooled read buffers, encode scratch, shared decode buffers).
fn loopback_data_plane() -> (u64, u64, u64, u64) {
    let registry = Arc::new(Registry::new());
    let obs = Obs::new(registry.clone());

    let mut a = DtnNode::new(ReplicaId::new(1), "host-a", PolicyKind::Epidemic);
    a.replica_mut().set_observer(obs.clone());
    let mut b = DtnNode::new(ReplicaId::new(2), "host-b", PolicyKind::Epidemic);
    b.replica_mut().set_observer(obs);
    for i in 0..16u32 {
        let payload = format!("loopback message {i}").into_bytes();
        a.send_from(
            "host-a",
            "host-b",
            payload,
            SimTime::from_secs(u64::from(i)),
        )
        .expect("inject");
    }

    let responder = Peer::start(b, "127.0.0.1:0").expect("bind responder");
    let initiator = Peer::start(a, "127.0.0.1:0").expect("bind initiator");
    initiator
        .sync_with(responder.local_addr(), SimTime::from_secs(60))
        .expect("loopback sync");
    initiator.stop();
    responder.stop();

    let snapshot = registry.snapshot();
    (
        snapshot.counter("transport.pool_hits"),
        snapshot.counter("wire.scratch_reuses"),
        snapshot.counter("wire.bytes_encoded"),
        snapshot.counter("item.payload_shares"),
    )
}

fn hist_json(hist: &Option<Histogram>) -> String {
    match hist {
        None => "null".to_string(),
        Some(h) => format!(
            "{{\"count\":{},\"mean\":{:.1},\"p50\":{},\"p90\":{},\"p99\":{},\"max\":{}}}",
            h.count(),
            h.mean(),
            h.quantile(0.5),
            h.quantile(0.9),
            h.quantile(0.99),
            h.max()
        ),
    }
}

fn opt_json(v: Option<u64>) -> String {
    v.map_or("null".to_string(), |n| n.to_string())
}

fn main() {
    let days: u64 = std::env::var("REPLIDTN_EMU_DAYS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(30)
        .max(1);
    let trace = DieselNetConfig {
        days,
        ..DieselNetConfig::default()
    }
    .generate();
    // Scale the workload with the horizon so stores stay populated for the
    // whole replay (the paper's 490 messages over 17 days, pro-rated).
    let workload = EmailConfig {
        injection_days: days.min(8),
        total_messages: ((490 * days) / 17).max(30) as usize,
        ..EmailConfig::default()
    }
    .generate();

    println!(
        "macro_emu: Epidemic, {days} day(s), {} encounters, {} messages",
        trace.len(),
        workload.len()
    );

    let scan = run_mode(&trace, &workload, true, false, true);
    println!(
        "  scan    : {:7.2}s, {:8.0} encounters/sec",
        scan.seconds, scan.encounters_per_sec
    );
    let indexed = run_mode(&trace, &workload, false, false, true);
    println!(
        "  indexed : {:7.2}s, {:8.0} encounters/sec, {} memo hits",
        indexed.seconds, indexed.encounters_per_sec, indexed.memo_hits
    );
    // Owned runs last: VmHWM only ratchets upward on kernels that refuse
    // the clear_refs reset, and this ordering keeps even those readings
    // honest (the shared peak is measured before owned inflates it).
    let owned = run_mode(&trace, &workload, false, true, false);
    println!(
        "  owned   : {:7.2}s, {:8.0} encounters/sec",
        owned.seconds, owned.encounters_per_sec
    );

    // The index is an acceleration structure, not a behavior change.
    assert_eq!(
        scan.metrics, indexed.metrics,
        "scan and indexed candidate selection must produce identical runs"
    );
    // The copy-on-write data plane is a representation change, not a
    // behavior change.
    assert_eq!(
        indexed.metrics, owned.metrics,
        "shared and owned data planes must produce identical runs"
    );

    let speedup = indexed.encounters_per_sec / scan.encounters_per_sec.max(1e-9);
    println!("  speedup : {speedup:.2}x (indexed vs scan)");
    let alloc_ratio = match (owned.allocations, indexed.allocations) {
        (Some(o), Some(s)) if s > 0 => Some(o as f64 / s as f64),
        _ => None,
    };
    if let (Some(o), Some(s), Some(r)) = (owned.allocations, indexed.allocations, alloc_ratio) {
        println!("  allocs  : {s} shared vs {o} owned ({r:.2}x fewer shared)");
    }
    println!(
        "  peakRSS : {} KiB shared vs {} KiB owned",
        indexed.peak_rss_kb, owned.peak_rss_kb
    );

    let (pool_hits, scratch_reuses, bytes_encoded, payload_shares) = loopback_data_plane();
    println!(
        "  loopback: {pool_hits} pool hits, {scratch_reuses} scratch reuses, \
         {bytes_encoded} bytes encoded, {payload_shares} payload shares"
    );

    let encounters = trace.len() as f64;
    let json = format!(
        concat!(
            "{{\n",
            "  \"bench\": \"macro_emu\",\n",
            "  \"policy\": \"epidemic\",\n",
            "  \"days\": {days},\n",
            "  \"encounters\": {encounters},\n",
            "  \"messages\": {messages},\n",
            "  \"metrics_identical\": true,\n",
            "  \"owned_metrics_identical\": true,\n",
            "  \"scan\": {{\"seconds\": {scan_s:.3}, \"encounters_per_sec\": {scan_eps:.1}, ",
            "\"batch_build_us\": {scan_hist}}},\n",
            "  \"indexed\": {{\"seconds\": {idx_s:.3}, \"encounters_per_sec\": {idx_eps:.1}, ",
            "\"memo_hits\": {memo_hits}, \"allocations\": {idx_allocs}, ",
            "\"allocations_per_encounter\": {idx_ape:.1}, \"peak_rss_kb\": {idx_rss}, ",
            "\"batch_build_us\": {idx_hist}}},\n",
            "  \"owned\": {{\"seconds\": {own_s:.3}, \"encounters_per_sec\": {own_eps:.1}, ",
            "\"allocations\": {own_allocs}, \"allocations_per_encounter\": {own_ape:.1}, ",
            "\"peak_rss_kb\": {own_rss}}},\n",
            "  \"alloc_ratio_owned_vs_shared\": {alloc_ratio},\n",
            "  \"data_plane\": {{\"pool_hits\": {pool_hits}, \"scratch_reuses\": {scratch_reuses}, ",
            "\"bytes_encoded\": {bytes_encoded}, \"payload_shares\": {payload_shares}}},\n",
            "  \"speedup\": {speedup:.2}\n",
            "}}\n",
        ),
        days = days,
        encounters = trace.len(),
        messages = workload.len(),
        scan_s = scan.seconds,
        scan_eps = scan.encounters_per_sec,
        scan_hist = hist_json(&scan.batch_build_us),
        idx_s = indexed.seconds,
        idx_eps = indexed.encounters_per_sec,
        memo_hits = indexed.memo_hits,
        idx_allocs = opt_json(indexed.allocations),
        idx_ape = indexed.allocations.unwrap_or(0) as f64 / encounters.max(1.0),
        idx_rss = indexed.peak_rss_kb,
        idx_hist = hist_json(&indexed.batch_build_us),
        own_s = owned.seconds,
        own_eps = owned.encounters_per_sec,
        own_allocs = opt_json(owned.allocations),
        own_ape = owned.allocations.unwrap_or(0) as f64 / encounters.max(1.0),
        own_rss = owned.peak_rss_kb,
        alloc_ratio = alloc_ratio.map_or("null".to_string(), |r| format!("{r:.2}")),
        pool_hits = pool_hits,
        scratch_reuses = scratch_reuses,
        bytes_encoded = bytes_encoded,
        payload_shares = payload_shares,
        speedup = speedup,
    );
    std::fs::write("BENCH_emu.json", &json).expect("write BENCH_emu.json");
    println!("  wrote BENCH_emu.json");
}
