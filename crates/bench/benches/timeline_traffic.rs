//! Supplementary time-series view of the paper's main experiment: per-day
//! injections, deliveries, and network traffic for each policy. Makes the
//! delay/traffic trade-off of §VI-C visible over the 17-day run — traffic
//! for flooding policies persists long after injection stops on day 8,
//! because messages are never deleted and keep being forwarded (the
//! "worst case" Figure 8 measures).

use dtn::{EncounterBudget, PolicyKind};
use emu::report::Table;
use emu::{Emulation, EmulationConfig};

fn main() {
    let scenario = benchkit::scenario();
    for policy in [
        PolicyKind::Direct,
        PolicyKind::SprayAndWait,
        PolicyKind::MaxProp,
    ] {
        let config = EmulationConfig {
            policy: policy.into(),
            budget: EncounterBudget::unlimited(),
            ..EmulationConfig::default()
        };
        let metrics = Emulation::new(&scenario.trace, &scenario.workload, config).run();

        let mut table = Table::new(
            format!("Per-day activity: {}", policy.label()),
            vec!["day", "encounters", "injections", "deliveries", "transfers"],
        );
        for (day, stats) in metrics.daily_stats() {
            table.row(vec![
                day.to_string(),
                stats.encounters.to_string(),
                stats.injections.to_string(),
                stats.deliveries.to_string(),
                stats.transmissions.to_string(),
            ]);
        }
        println!("{table}");
    }
}
