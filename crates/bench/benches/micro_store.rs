//! Criterion micro-benchmarks for the durable storage engine: WAL append
//! throughput (with and without fsync), checkpoint cost, and recovery
//! time as a function of WAL length — the numbers behind the engine's
//! "cheap appends, bounded recovery" claim. Finishes by printing the obs
//! registry CSV for one instrumented run, so the counter/histogram
//! schema is exercised end to end.

use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use obs::{Obs, Registry};
use store::{Store, StoreConfig};

fn tmp_dir(tag: &str) -> PathBuf {
    static N: AtomicU64 = AtomicU64::new(0);
    let dir = std::env::temp_dir().join(format!(
        "bench-store-{tag}-{}-{}",
        std::process::id(),
        N.fetch_add(1, Ordering::Relaxed)
    ));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

/// A config that never auto-compacts, so append benches measure appends.
fn no_compact(fsync: bool) -> StoreConfig {
    StoreConfig {
        fsync,
        compact_min_bytes: u64::MAX,
        ..StoreConfig::default()
    }
}

fn bench_append(c: &mut Criterion) {
    for (label, fsync) in [("buffered", false), ("fsync", true)] {
        let dir = tmp_dir(label);
        let mut store = Store::open_with(&dir, no_compact(fsync), Obs::none()).expect("open");
        let value = vec![0xab; 120];
        let mut i = 0u64;
        c.bench_function(&format!("store/append_120b_{label}"), |b| {
            b.iter(|| {
                i += 1;
                store
                    .put(black_box(&i.to_le_bytes()), black_box(&value))
                    .expect("put");
            })
        });
        drop(store);
        let _ = std::fs::remove_dir_all(&dir);
    }
}

fn bench_checkpoint(c: &mut Criterion) {
    let dir = tmp_dir("checkpoint");
    let mut store = Store::open_with(&dir, no_compact(false), Obs::none()).expect("open");
    for i in 0..1_000u64 {
        store.put(&i.to_le_bytes(), &[0xcd; 120]).expect("put");
    }
    c.bench_function("store/checkpoint_1k_entries", |b| {
        b.iter(|| black_box(store.checkpoint().expect("checkpoint")))
    });
    drop(store);
    let _ = std::fs::remove_dir_all(&dir);
}

fn bench_recovery(c: &mut Criterion) {
    // Recovery replays the WAL over the newest checkpoint; its cost is
    // linear in live WAL length, which compaction bounds. Measure the
    // slope directly.
    for records in [100u64, 1_000, 10_000] {
        let dir = tmp_dir("recovery");
        {
            let mut store = Store::open_with(&dir, no_compact(false), Obs::none()).expect("open");
            for i in 0..records {
                store.put(&i.to_le_bytes(), &[0xef; 120]).expect("put");
            }
            store.sync().expect("sync");
        }
        c.bench_function(&format!("store/recover_{records}_records"), |b| {
            b.iter(|| {
                let store = Store::open(black_box(&dir)).expect("open");
                black_box(store.recovery().wal_records)
            })
        });
        let _ = std::fs::remove_dir_all(&dir);
    }
}

/// One instrumented run: every WAL append, checkpoint, and recovery goes
/// through a [`Registry`], and the aggregated counters/histograms print
/// as CSV — the same surface `replidtn --stats` exposes.
fn print_registry_csv() {
    let registry = Arc::new(Registry::new());
    let dir = tmp_dir("registry");
    {
        let mut store =
            Store::open_with(&dir, no_compact(true), Obs::new(registry.clone())).expect("open");
        for i in 0..500u64 {
            store.put(&i.to_le_bytes(), &[0x11; 120]).expect("put");
        }
        store.checkpoint().expect("checkpoint");
    }
    let reopened =
        Store::open_with(&dir, no_compact(true), Obs::new(registry.clone())).expect("reopen");
    drop(reopened);
    println!("\nobs registry for 500 fsynced appends + checkpoint + recovery:");
    print!("{}", registry.snapshot().to_csv());
    let _ = std::fs::remove_dir_all(&dir);
}

/// Short sampling profile; recovery at 10k records still completes well
/// inside the window.
fn quick() -> Criterion {
    Criterion::default()
        .sample_size(20)
        .nresamples(10_000)
        .warm_up_time(std::time::Duration::from_millis(400))
        .measurement_time(std::time::Duration::from_secs(2))
}

fn bench_all(c: &mut Criterion) {
    bench_append(c);
    bench_checkpoint(c);
    bench_recovery(c);
    print_registry_csv();
}

criterion_group! {
    name = benches;
    config = quick();
    targets = bench_all
}
criterion_main!(benches);
