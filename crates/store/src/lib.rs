//! # store — an embedded, crash-safe keyed-blob storage engine
//!
//! The paper's §V-A requires DTN state to live in "persistent data
//! structures ... serialized to disk": a device powers off between
//! contacts, and everything the protocols rely on — replica items,
//! knowledge, routing tables — must survive. This crate is that
//! subsystem: a dependency-free log-structured store mapping byte keys to
//! byte values, built from three pieces:
//!
//! * **Write-ahead log** ([`record`]) — every mutation is appended to the
//!   active `wal-<seq>.log` segment as one length-prefixed, CRC-32-checked
//!   record (the same varint/TLV style as the sync wire codec) and
//!   optionally fsynced before the call returns.
//! * **Checkpoints** ([`checkpoint`]) — the full key-value state is
//!   periodically serialized to `ckpt-<seq>.dat`, written atomically via
//!   temp-file + rename + directory fsync, after which the WAL rotates to
//!   a fresh segment and superseded generations are deleted (compaction).
//! * **Recovery** ([`Store::open`]) — the newest checkpoint that passes
//!   its checksum is loaded (falling back to the previous generation, or
//!   to empty), then every live WAL segment is replayed over it in
//!   sequence order. A torn or corrupt record ends replay of that segment:
//!   the file is truncated at the last valid record and the store keeps
//!   running. Recovery never panics on bad bytes, and a half-written
//!   record is never applied.
//!
//! Duplicate replay is harmless by construction: records are whole-value
//! puts and deletes, so applying a prefix of the log twice converges to
//! the same map (last-writer-wins per key).
//!
//! Progress is observable through `obs`: [`obs::Event::WalAppend`],
//! [`obs::Event::CheckpointWritten`], and [`obs::Event::StoreRecovered`]
//! carry bytes appended, fsync counts, records replayed, and recovery
//! time.
//!
//! ```
//! use store::Store;
//! # let dir = std::env::temp_dir().join(format!("store-doc-{}", std::process::id()));
//! # let _ = std::fs::remove_dir_all(&dir);
//! let mut s = Store::open(&dir)?;
//! s.put(b"greeting", b"hello")?;
//! drop(s); // or SIGKILL: the WAL already has the record
//! let s = Store::open(&dir)?;
//! assert_eq!(s.get(b"greeting"), Some(&b"hello"[..]));
//! # std::fs::remove_dir_all(&dir).unwrap();
//! # Ok::<(), store::StoreError>(())
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod checkpoint;
pub mod crc;
pub mod layout;
pub mod record;
pub mod spill;

mod engine;

use std::fmt;
use std::path::PathBuf;

pub use engine::{RecoveryReport, Store, StoreConfig};
pub use record::Record;
pub use spill::{SpillFile, SpillSlot};

/// Errors from the storage engine. Corrupt *data* is not an error — it is
/// handled by recovery (truncate, fall back a generation) — so every
/// variant here is an environmental failure the caller may want to retry
/// or surface.
#[derive(Debug)]
#[non_exhaustive]
pub enum StoreError {
    /// A filesystem operation failed.
    Io {
        /// Which operation ("append", "fsync", "rename", ...).
        op: &'static str,
        /// The path involved.
        path: PathBuf,
        /// The underlying error.
        source: std::io::Error,
    },
}

impl StoreError {
    pub(crate) fn io(op: &'static str, path: impl Into<PathBuf>, source: std::io::Error) -> Self {
        StoreError::Io {
            op,
            path: path.into(),
            source,
        }
    }
}

impl fmt::Display for StoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StoreError::Io { op, path, source } => {
                write!(f, "store {op} failed on {}: {source}", path.display())
            }
        }
    }
}

impl std::error::Error for StoreError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            StoreError::Io { source, .. } => Some(source),
        }
    }
}
