//! Checkpoint files: the full key-value state, written atomically.
//!
//! A checkpoint is self-validating:
//!
//! ```text
//! +----------+---------+-------------+--------------+---------------+
//! | "RDTNCKPT" magic   | version u8  | varint seq   | varint count  |
//! +----------+---------+-------------+--------------+---------------+
//! | count × ( varint(klen) key varint(vlen) value )  | crc32 LE     |
//! +--------------------------------------------------+---------------+
//! ```
//!
//! with the checksum covering everything before it. Writes go to a
//! `.tmp` sibling first, are fsynced, then renamed over the final name
//! and the directory fsynced — so a crash at any point leaves either the
//! old generation or the new one, never a half-written file under the
//! checkpoint's name. Loads reject any file that fails the magic,
//! version, length, or checksum tests; the caller falls back to an older
//! generation.

use std::collections::BTreeMap;
use std::fs::{File, OpenOptions};
use std::io::{self, Read, Write};
use std::path::Path;

use pfr::wire::{Reader, Writer};

use crate::crc::crc32;

/// Leading magic of every checkpoint file.
pub const MAGIC: &[u8; 8] = b"RDTNCKPT";

/// Checkpoint format version, bumped on layout changes.
pub const VERSION: u8 = 1;

/// Why a checkpoint file was rejected at load time.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum CheckpointFault {
    /// The file could not be read at all.
    Unreadable(String),
    /// Too short, wrong magic, wrong version, bad checksum, or garbled
    /// entries.
    Invalid(&'static str),
    /// The sequence number inside the file disagrees with its filename.
    SeqMismatch {
        /// Sequence parsed from the filename.
        named: u64,
        /// Sequence stored inside the file.
        stored: u64,
    },
}

/// Serializes `entries` as checkpoint generation `seq` and writes it
/// atomically to `path` (temp file + rename + directory fsync). Returns
/// the file's size in bytes.
///
/// # Errors
///
/// Any I/O failure; on error the final `path` is untouched.
pub fn write(path: &Path, seq: u64, entries: &BTreeMap<Vec<u8>, Vec<u8>>) -> io::Result<u64> {
    let mut w = Writer::new();
    w.put_u8(VERSION);
    w.put_varint(seq);
    w.put_varint(entries.len() as u64);
    for (key, value) in entries {
        w.put_bytes(key);
        w.put_bytes(value);
    }
    let mut bytes = Vec::with_capacity(w.len() + 12);
    bytes.extend_from_slice(MAGIC);
    bytes.extend_from_slice(&w.into_bytes());
    let crc = crc32(&bytes);
    bytes.extend_from_slice(&crc.to_le_bytes());

    let tmp = path.with_extension("tmp");
    {
        let mut file = OpenOptions::new()
            .write(true)
            .create(true)
            .truncate(true)
            .open(&tmp)?;
        file.write_all(&bytes)?;
        file.sync_all()?;
    }
    std::fs::rename(&tmp, path)?;
    sync_dir(path)?;
    Ok(bytes.len() as u64)
}

/// Fsyncs the directory containing `path`, making a just-renamed file
/// durable. A no-op error on platforms where directories cannot be
/// opened is deliberately *not* swallowed — this crate targets POSIX.
pub(crate) fn sync_dir(path: &Path) -> io::Result<()> {
    let dir = path.parent().unwrap_or_else(|| Path::new("."));
    File::open(dir)?.sync_all()
}

/// Loads and validates the checkpoint at `path`. `named_seq` is the
/// sequence number parsed from the filename; the file must agree.
///
/// # Errors
///
/// A [`CheckpointFault`] explaining the rejection; the caller falls back
/// to an older generation (or an empty state).
pub fn load(path: &Path, named_seq: u64) -> Result<BTreeMap<Vec<u8>, Vec<u8>>, CheckpointFault> {
    let mut bytes = Vec::new();
    File::open(path)
        .and_then(|mut f| f.read_to_end(&mut bytes))
        .map_err(|e| CheckpointFault::Unreadable(e.to_string()))?;
    if bytes.len() < MAGIC.len() + 4 {
        return Err(CheckpointFault::Invalid("too short"));
    }
    let (body, crc_bytes) = bytes.split_at(bytes.len() - 4);
    let stored_crc = u32::from_le_bytes(crc_bytes.try_into().expect("4 bytes"));
    if crc32(body) != stored_crc {
        return Err(CheckpointFault::Invalid("bad checksum"));
    }
    if &body[..MAGIC.len()] != MAGIC {
        return Err(CheckpointFault::Invalid("bad magic"));
    }
    let mut r = Reader::new(&body[MAGIC.len()..]);
    let parse = |r: &mut Reader<'_>| -> Result<_, pfr::wire::WireError> {
        let version = r.get_u8()?;
        if version != VERSION {
            return Err(pfr::wire::WireError::InvalidTag {
                what: "checkpoint version",
                tag: version,
            });
        }
        let seq = r.get_varint()?;
        let count = r.get_len(2)?;
        let mut entries = BTreeMap::new();
        for _ in 0..count {
            let key = r.get_bytes()?.to_vec();
            let value = r.get_bytes()?.to_vec();
            entries.insert(key, value);
        }
        if r.remaining() != 0 {
            return Err(pfr::wire::WireError::TrailingBytes(r.remaining()));
        }
        Ok((seq, entries))
    };
    let (stored_seq, entries) =
        parse(&mut r).map_err(|_| CheckpointFault::Invalid("garbled entries"))?;
    if stored_seq != named_seq {
        return Err(CheckpointFault::SeqMismatch {
            named: named_seq,
            stored: stored_seq,
        });
    }
    Ok(entries)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmp_dir(tag: &str) -> std::path::PathBuf {
        let dir = std::env::temp_dir().join(format!("store-ckpt-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    fn sample() -> BTreeMap<Vec<u8>, Vec<u8>> {
        [
            (b"a".to_vec(), b"1".to_vec()),
            (b"bb".to_vec(), vec![0; 300]),
        ]
        .into_iter()
        .collect()
    }

    #[test]
    fn roundtrip() {
        let dir = tmp_dir("roundtrip");
        let path = dir.join("ckpt-7.dat");
        let entries = sample();
        let bytes = write(&path, 7, &entries).unwrap();
        assert_eq!(bytes, std::fs::metadata(&path).unwrap().len());
        assert_eq!(load(&path, 7).unwrap(), entries);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn corruption_and_mismatch_are_rejected() {
        let dir = tmp_dir("reject");
        let path = dir.join("ckpt-3.dat");
        write(&path, 3, &sample()).unwrap();

        assert!(matches!(
            load(&path, 4),
            Err(CheckpointFault::SeqMismatch {
                named: 4,
                stored: 3
            })
        ));

        let good = std::fs::read(&path).unwrap();
        for (i, name) in [(0usize, "magic"), (good.len() / 2, "middle")] {
            let mut bad = good.clone();
            bad[i] ^= 0x01;
            std::fs::write(&path, &bad).unwrap();
            assert!(load(&path, 3).is_err(), "flip in {name} accepted");
        }
        std::fs::write(&path, &good[..good.len() - 1]).unwrap();
        assert!(load(&path, 3).is_err(), "truncated checkpoint accepted");
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn no_tmp_residue_after_write() {
        let dir = tmp_dir("residue");
        let path = dir.join("ckpt-1.dat");
        write(&path, 1, &sample()).unwrap();
        assert!(!path.with_extension("tmp").exists());
        std::fs::remove_dir_all(&dir).unwrap();
    }
}
