//! On-disk layout of a store directory: file naming and generation scans.
//!
//! A store directory holds numbered *generations*:
//!
//! ```text
//! data/
//! ├── ckpt-4.dat   checkpoint: full state through the end of segment 3
//! ├── wal-4.log    records appended since checkpoint 4
//! ├── ckpt-3.dat   previous generation, kept as a fallback
//! └── wal-3.log    its WAL (still replayed when ckpt-4 is unreadable)
//! ```
//!
//! `ckpt-N.dat` captures everything up to the moment WAL segment `N` was
//! created, so recovery from checkpoint `N` replays segments `≥ N` in
//! ascending order. These helpers are public so the test kit's disk-fault
//! layer can aim faults at real files without duplicating naming rules.

use std::io;
use std::path::{Path, PathBuf};

/// The WAL segment file for generation `seq`.
pub fn wal_path(dir: &Path, seq: u64) -> PathBuf {
    dir.join(format!("wal-{seq}.log"))
}

/// The checkpoint file for generation `seq`.
pub fn checkpoint_path(dir: &Path, seq: u64) -> PathBuf {
    dir.join(format!("ckpt-{seq}.dat"))
}

fn numbered(name: &str, prefix: &str, suffix: &str) -> Option<u64> {
    name.strip_prefix(prefix)?
        .strip_suffix(suffix)?
        .parse()
        .ok()
}

fn scan(dir: &Path, prefix: &str, suffix: &str) -> io::Result<Vec<(u64, PathBuf)>> {
    let mut out = Vec::new();
    for entry in std::fs::read_dir(dir)? {
        let entry = entry?;
        let name = entry.file_name();
        let Some(name) = name.to_str() else { continue };
        if let Some(seq) = numbered(name, prefix, suffix) {
            out.push((seq, entry.path()));
        }
    }
    out.sort();
    Ok(out)
}

/// All WAL segments in `dir`, ascending by sequence.
///
/// # Errors
///
/// Any error listing the directory.
pub fn wal_segments(dir: &Path) -> io::Result<Vec<(u64, PathBuf)>> {
    scan(dir, "wal-", ".log")
}

/// All checkpoint files in `dir`, ascending by sequence.
///
/// # Errors
///
/// Any error listing the directory.
pub fn checkpoints(dir: &Path) -> io::Result<Vec<(u64, PathBuf)>> {
    scan(dir, "ckpt-", ".dat")
}

/// Leftover `*.tmp` files from interrupted checkpoint writes. Recovery
/// deletes them: an unrenamed temp file was never part of any generation.
///
/// # Errors
///
/// Any error listing the directory.
pub fn temp_files(dir: &Path) -> io::Result<Vec<PathBuf>> {
    let mut out = Vec::new();
    for entry in std::fs::read_dir(dir)? {
        let entry = entry?;
        if entry.path().extension().is_some_and(|e| e == "tmp") {
            out.push(entry.path());
        }
    }
    out.sort();
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn naming_roundtrips_through_scan() {
        let dir = std::env::temp_dir().join(format!("store-layout-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        for seq in [3u64, 10, 2] {
            std::fs::write(wal_path(&dir, seq), b"").unwrap();
            std::fs::write(checkpoint_path(&dir, seq), b"").unwrap();
        }
        std::fs::write(dir.join("ckpt-9.tmp"), b"").unwrap();
        std::fs::write(dir.join("unrelated.txt"), b"").unwrap();

        let wals: Vec<u64> = wal_segments(&dir)
            .unwrap()
            .into_iter()
            .map(|(s, _)| s)
            .collect();
        assert_eq!(wals, vec![2, 3, 10], "ascending numeric order");
        let ckpts: Vec<u64> = checkpoints(&dir)
            .unwrap()
            .into_iter()
            .map(|(s, _)| s)
            .collect();
        assert_eq!(ckpts, vec![2, 3, 10]);
        assert_eq!(temp_files(&dir).unwrap().len(), 1);
        std::fs::remove_dir_all(&dir).unwrap();
    }
}
