//! The storage engine: an in-memory map made durable by WAL + checkpoints.

use std::collections::BTreeMap;
use std::fmt;
use std::fs::{File, OpenOptions};
use std::io::Write;
use std::path::{Path, PathBuf};
use std::time::Instant;

use obs::{Event, Obs};

use crate::checkpoint::{self, CheckpointFault};
use crate::layout;
use crate::record::{self, Record, RecordScratch};
use crate::StoreError;

/// Tuning knobs for a [`Store`].
#[derive(Clone, Copy, Debug)]
pub struct StoreConfig {
    /// Fsync the WAL after every append (durable up to the last call)
    /// versus letting the OS flush lazily (durable up to the last
    /// checkpoint or explicit [`Store::sync`]). Defaults to `true`.
    pub fsync: bool,
    /// Compact once the live WAL outgrows the last checkpoint by this
    /// factor. Defaults to 4.
    pub compact_factor: u64,
    /// Never compact below this many WAL bytes, so small stores are not
    /// constantly checkpointing. Defaults to 64 KiB.
    pub compact_min_bytes: u64,
    /// How many checkpoint generations to retain (the newest is the
    /// recovery base; older ones are fallbacks for a corrupt newest).
    /// Defaults to 2, the minimum that survives a torn checkpoint.
    pub keep_generations: usize,
}

impl Default for StoreConfig {
    fn default() -> Self {
        StoreConfig {
            fsync: true,
            compact_factor: 4,
            compact_min_bytes: 64 * 1024,
            keep_generations: 2,
        }
    }
}

/// What [`Store::open`] found and did while rebuilding state.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
#[non_exhaustive]
pub struct RecoveryReport {
    /// Sequence of the checkpoint used as the base (0 = started empty).
    pub checkpoint_seq: u64,
    /// Entries loaded from that checkpoint.
    pub checkpoint_entries: usize,
    /// Checkpoint files that failed validation and were skipped.
    pub corrupt_checkpoints: usize,
    /// WAL segments replayed.
    pub wal_segments: usize,
    /// Valid records replayed over the checkpoint.
    pub wal_records: u64,
    /// Torn/corrupt tail bytes truncated away.
    pub truncated_bytes: u64,
    /// Wall-clock recovery time, microseconds.
    pub wall_micros: u64,
}

impl RecoveryReport {
    /// Whether recovery found any pre-existing durable state.
    pub fn recovered_state(&self) -> bool {
        self.checkpoint_entries > 0 || self.wal_records > 0
    }
}

/// A durable map from byte keys to byte values. See the crate docs for
/// the log/checkpoint design; see [`StoreConfig`] for tuning.
pub struct Store {
    dir: PathBuf,
    config: StoreConfig,
    obs: Obs,
    map: BTreeMap<Vec<u8>, Vec<u8>>,
    active_seq: u64,
    wal: File,
    wal_bytes: u64,
    last_checkpoint_bytes: u64,
    recovery: RecoveryReport,
    scratch: RecordScratch,
}

impl Store {
    /// Opens (creating if necessary) the store in `dir` with default
    /// config and no observer, running recovery.
    ///
    /// # Errors
    ///
    /// [`StoreError::Io`] on filesystem failures. Corrupt data is *not*
    /// an error — see [`Store::recovery`] for what was tolerated.
    pub fn open(dir: impl AsRef<Path>) -> Result<Store, StoreError> {
        Store::open_with(dir, StoreConfig::default(), Obs::none())
    }

    /// Opens the store with explicit config and observer.
    ///
    /// # Errors
    ///
    /// [`StoreError::Io`] on filesystem failures.
    pub fn open_with(
        dir: impl AsRef<Path>,
        config: StoreConfig,
        obs: Obs,
    ) -> Result<Store, StoreError> {
        let started = Instant::now();
        let dir = dir.as_ref().to_path_buf();
        std::fs::create_dir_all(&dir).map_err(|e| StoreError::io("create_dir", &dir, e))?;
        for tmp in layout::temp_files(&dir).map_err(|e| StoreError::io("scan", &dir, e))? {
            std::fs::remove_file(&tmp).map_err(|e| StoreError::io("remove_tmp", &tmp, e))?;
        }

        let mut report = RecoveryReport::default();

        // Newest checkpoint that validates wins; older generations are the
        // fallback when the newest was torn or rotted.
        let mut map = BTreeMap::new();
        let checkpoints = layout::checkpoints(&dir).map_err(|e| StoreError::io("scan", &dir, e))?;
        for &(seq, ref path) in checkpoints.iter().rev() {
            match checkpoint::load(path, seq) {
                Ok(entries) => {
                    report.checkpoint_seq = seq;
                    report.checkpoint_entries = entries.len();
                    map = entries;
                    break;
                }
                Err(CheckpointFault::Unreadable(_))
                | Err(CheckpointFault::Invalid(_))
                | Err(CheckpointFault::SeqMismatch { .. }) => {
                    report.corrupt_checkpoints += 1;
                }
            }
        }

        // Replay every segment the base checkpoint does not cover,
        // truncating each at its first bad record.
        let mut wal_bytes = 0u64;
        let mut max_wal_seq = 0u64;
        let segments = layout::wal_segments(&dir).map_err(|e| StoreError::io("scan", &dir, e))?;
        for (seq, path) in segments {
            max_wal_seq = max_wal_seq.max(seq);
            if seq < report.checkpoint_seq {
                continue;
            }
            let bytes = std::fs::read(&path).map_err(|e| StoreError::io("read_wal", &path, e))?;
            let scan = record::scan(&bytes);
            report.wal_segments += 1;
            report.wal_records += scan.records.len() as u64;
            for (_, rec) in scan.records {
                apply(&mut map, rec);
            }
            if scan.valid_len < bytes.len() {
                report.truncated_bytes += (bytes.len() - scan.valid_len) as u64;
                let file = OpenOptions::new()
                    .write(true)
                    .open(&path)
                    .map_err(|e| StoreError::io("truncate_wal", &path, e))?;
                file.set_len(scan.valid_len as u64)
                    .map_err(|e| StoreError::io("truncate_wal", &path, e))?;
                file.sync_all()
                    .map_err(|e| StoreError::io("fsync", &path, e))?;
            }
            wal_bytes += scan.valid_len as u64;
        }

        let active_seq = report.checkpoint_seq.max(max_wal_seq).max(1);
        let wal_path = layout::wal_path(&dir, active_seq);
        let fresh = !wal_path.exists();
        let wal = OpenOptions::new()
            .append(true)
            .create(true)
            .open(&wal_path)
            .map_err(|e| StoreError::io("open_wal", &wal_path, e))?;
        if fresh {
            checkpoint::sync_dir(&wal_path).map_err(|e| StoreError::io("fsync_dir", &dir, e))?;
        }
        let last_checkpoint_bytes = if report.checkpoint_seq > 0 {
            std::fs::metadata(layout::checkpoint_path(&dir, report.checkpoint_seq))
                .map(|m| m.len())
                .unwrap_or(0)
        } else {
            0
        };

        report.wall_micros = started.elapsed().as_micros() as u64;
        let (seq, records, truncated, micros) = (
            report.checkpoint_seq,
            report.wal_records,
            report.truncated_bytes,
            report.wall_micros,
        );
        obs.emit(|| Event::StoreRecovered {
            checkpoint_seq: seq,
            wal_records: records,
            truncated_bytes: truncated,
            wall_micros: micros,
        });

        Ok(Store {
            dir,
            config,
            obs,
            map,
            active_seq,
            wal,
            wal_bytes,
            last_checkpoint_bytes,
            recovery: report,
            scratch: RecordScratch::default(),
        })
    }

    /// What recovery found when this store was opened.
    pub fn recovery(&self) -> &RecoveryReport {
        &self.recovery
    }

    /// The directory this store lives in.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// The current generation (active WAL segment) number.
    pub fn active_seq(&self) -> u64 {
        self.active_seq
    }

    /// Live WAL bytes not yet covered by a checkpoint.
    pub fn wal_bytes(&self) -> u64 {
        self.wal_bytes
    }

    /// The value bound to `key`, if any.
    pub fn get(&self, key: &[u8]) -> Option<&[u8]> {
        self.map.get(key).map(Vec::as_slice)
    }

    /// Whether `key` has a binding.
    pub fn contains(&self, key: &[u8]) -> bool {
        self.map.contains_key(key)
    }

    /// All keys, sorted.
    pub fn keys(&self) -> impl Iterator<Item = &[u8]> {
        self.map.keys().map(Vec::as_slice)
    }

    /// Number of live bindings.
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// Whether the store holds no bindings.
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }

    /// Durably binds `key` to `value`: the WAL record is on disk (and
    /// fsynced, under the default config) before the in-memory map
    /// changes. May trigger compaction.
    ///
    /// # Errors
    ///
    /// [`StoreError::Io`]; on error the in-memory map is unchanged.
    pub fn put(&mut self, key: &[u8], value: &[u8]) -> Result<(), StoreError> {
        self.append(Record::Put {
            key: key.to_vec(),
            value: value.to_vec(),
        })
    }

    /// Durably removes `key`'s binding. A no-op record is still written
    /// for an absent key (the caller usually cannot know).
    ///
    /// # Errors
    ///
    /// [`StoreError::Io`]; on error the in-memory map is unchanged.
    pub fn delete(&mut self, key: &[u8]) -> Result<(), StoreError> {
        self.append(Record::Delete { key: key.to_vec() })
    }

    fn append(&mut self, rec: Record) -> Result<(), StoreError> {
        let bytes = rec.encode_into(&mut self.scratch);
        let path = layout::wal_path(&self.dir, self.active_seq);
        self.wal
            .write_all(bytes)
            .map_err(|e| StoreError::io("append", &path, e))?;
        if self.config.fsync {
            self.wal
                .sync_data()
                .map_err(|e| StoreError::io("fsync", &path, e))?;
        }
        let len = bytes.len() as u64;
        self.wal_bytes += len;
        apply(&mut self.map, rec);
        let (fsync, total) = (self.config.fsync, self.wal_bytes);
        self.obs.emit(|| Event::WalAppend {
            bytes: len,
            fsync,
            wal_bytes: total,
        });
        if self.wal_bytes
            > self
                .config
                .compact_min_bytes
                .max(self.config.compact_factor * self.last_checkpoint_bytes)
        {
            self.checkpoint()?;
        }
        Ok(())
    }

    /// Fsyncs the active WAL segment (useful with `fsync: false` configs
    /// before handing control to something that might kill the process).
    ///
    /// # Errors
    ///
    /// [`StoreError::Io`].
    pub fn sync(&mut self) -> Result<(), StoreError> {
        let path = layout::wal_path(&self.dir, self.active_seq);
        self.wal
            .sync_data()
            .map_err(|e| StoreError::io("fsync", &path, e))
    }

    /// Writes a checkpoint of the current state, rotates to a fresh WAL
    /// segment, and prunes superseded generations. Returns the new
    /// generation number.
    ///
    /// # Errors
    ///
    /// [`StoreError::Io`]; on error the previous generation is intact.
    pub fn checkpoint(&mut self) -> Result<u64, StoreError> {
        let started = Instant::now();
        let new_seq = self.active_seq + 1;
        let ckpt_path = layout::checkpoint_path(&self.dir, new_seq);
        let ckpt_bytes = checkpoint::write(&ckpt_path, new_seq, &self.map)
            .map_err(|e| StoreError::io("checkpoint", &ckpt_path, e))?;

        let wal_path = layout::wal_path(&self.dir, new_seq);
        let wal = OpenOptions::new()
            .append(true)
            .create(true)
            .open(&wal_path)
            .map_err(|e| StoreError::io("open_wal", &wal_path, e))?;
        checkpoint::sync_dir(&wal_path).map_err(|e| StoreError::io("fsync_dir", &self.dir, e))?;

        self.wal = wal;
        self.active_seq = new_seq;
        self.wal_bytes = 0;
        self.last_checkpoint_bytes = ckpt_bytes;
        self.prune()?;

        let (entries, micros) = (self.map.len() as u64, started.elapsed().as_micros() as u64);
        self.obs.emit(|| Event::CheckpointWritten {
            seq: new_seq,
            entries,
            bytes: ckpt_bytes,
            wall_micros: micros,
        });
        Ok(new_seq)
    }

    /// Deletes generations superseded beyond [`StoreConfig::keep_generations`].
    fn prune(&self) -> Result<(), StoreError> {
        let checkpoints =
            layout::checkpoints(&self.dir).map_err(|e| StoreError::io("scan", &self.dir, e))?;
        let keep = self.config.keep_generations.max(1);
        if checkpoints.len() <= keep {
            return Ok(());
        }
        let min_keep = checkpoints[checkpoints.len() - keep].0;
        for (seq, path) in &checkpoints {
            if *seq < min_keep {
                std::fs::remove_file(path).map_err(|e| StoreError::io("prune", path, e))?;
            }
        }
        let segments =
            layout::wal_segments(&self.dir).map_err(|e| StoreError::io("scan", &self.dir, e))?;
        for (seq, path) in &segments {
            if *seq < min_keep {
                std::fs::remove_file(path).map_err(|e| StoreError::io("prune", path, e))?;
            }
        }
        Ok(())
    }
}

fn apply(map: &mut BTreeMap<Vec<u8>, Vec<u8>>, rec: Record) {
    match rec {
        Record::Put { key, value } => {
            map.insert(key, value);
        }
        Record::Delete { key } => {
            map.remove(&key);
        }
    }
}

impl fmt::Debug for Store {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Store")
            .field("dir", &self.dir)
            .field("entries", &self.map.len())
            .field("active_seq", &self.active_seq)
            .field("wal_bytes", &self.wal_bytes)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicU64, Ordering};

    fn tmp_dir(tag: &str) -> PathBuf {
        static N: AtomicU64 = AtomicU64::new(0);
        let dir = std::env::temp_dir().join(format!(
            "store-engine-{tag}-{}-{}",
            std::process::id(),
            N.fetch_add(1, Ordering::Relaxed)
        ));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    #[test]
    fn puts_survive_reopen_without_checkpoint() {
        let dir = tmp_dir("reopen");
        {
            let mut s = Store::open(&dir).unwrap();
            s.put(b"a", b"1").unwrap();
            s.put(b"b", b"2").unwrap();
            s.put(b"a", b"3").unwrap();
            s.delete(b"b").unwrap();
            // Dropped without checkpoint: only the WAL holds the state.
        }
        let s = Store::open(&dir).unwrap();
        assert_eq!(s.get(b"a"), Some(&b"3"[..]), "last write wins");
        assert_eq!(s.get(b"b"), None, "delete replayed");
        assert_eq!(s.recovery().wal_records, 4);
        assert_eq!(s.recovery().checkpoint_seq, 0);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn torn_tail_is_truncated_not_fatal() {
        let dir = tmp_dir("torn");
        {
            let mut s = Store::open(&dir).unwrap();
            s.put(b"kept", b"yes").unwrap();
            s.put(b"torn", b"half").unwrap();
        }
        // Tear the last record: chop 2 bytes off the active segment.
        let wal = layout::wal_path(&dir, 1);
        let bytes = std::fs::read(&wal).unwrap();
        std::fs::write(&wal, &bytes[..bytes.len() - 2]).unwrap();

        let s = Store::open(&dir).unwrap();
        assert_eq!(s.get(b"kept"), Some(&b"yes"[..]));
        assert_eq!(s.get(b"torn"), None, "half-written record not applied");
        assert!(s.recovery().truncated_bytes > 0);
        // The file was physically truncated, so appends continue cleanly.
        let len_after = std::fs::metadata(&wal).unwrap().len();
        assert!(len_after < bytes.len() as u64);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn appends_after_torn_tail_recovery_are_readable() {
        let dir = tmp_dir("torn-append");
        {
            let mut s = Store::open(&dir).unwrap();
            s.put(b"a", b"1").unwrap();
            s.put(b"b", b"2").unwrap();
        }
        let wal = layout::wal_path(&dir, 1);
        let bytes = std::fs::read(&wal).unwrap();
        std::fs::write(&wal, &bytes[..bytes.len() - 1]).unwrap();
        {
            let mut s = Store::open(&dir).unwrap();
            assert_eq!(s.get(b"b"), None);
            s.put(b"c", b"3").unwrap();
        }
        let s = Store::open(&dir).unwrap();
        assert_eq!(s.get(b"a"), Some(&b"1"[..]));
        assert_eq!(s.get(b"c"), Some(&b"3"[..]));
        assert_eq!(s.recovery().truncated_bytes, 0, "tail already clean");
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn checkpoint_rotates_and_prunes() {
        let dir = tmp_dir("rotate");
        let mut s = Store::open(&dir).unwrap();
        for gen in 0..4u8 {
            s.put(b"k", &[gen]).unwrap();
            s.checkpoint().unwrap();
        }
        assert_eq!(s.active_seq(), 5);
        let ckpts: Vec<u64> = layout::checkpoints(&dir)
            .unwrap()
            .into_iter()
            .map(|(seq, _)| seq)
            .collect();
        assert_eq!(ckpts, vec![4, 5], "two newest generations retained");
        let wals: Vec<u64> = layout::wal_segments(&dir)
            .unwrap()
            .into_iter()
            .map(|(seq, _)| seq)
            .collect();
        assert_eq!(wals, vec![4, 5]);
        drop(s);
        let s = Store::open(&dir).unwrap();
        assert_eq!(s.get(b"k"), Some(&[3u8][..]));
        assert_eq!(s.recovery().checkpoint_seq, 5);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn corrupt_newest_checkpoint_falls_back_a_generation() {
        let dir = tmp_dir("fallback");
        let mut s = Store::open(&dir).unwrap();
        s.put(b"old", b"1").unwrap();
        s.checkpoint().unwrap(); // ckpt-2
        s.put(b"new", b"2").unwrap();
        s.checkpoint().unwrap(); // ckpt-3
        s.put(b"tail", b"3").unwrap(); // lives in wal-3
        drop(s);

        // Rot the newest checkpoint. Recovery must fall back to ckpt-2 and
        // rebuild the rest from wal-2 + wal-3.
        let newest = layout::checkpoint_path(&dir, 3);
        let mut bytes = std::fs::read(&newest).unwrap();
        let mid = bytes.len() / 2;
        bytes[mid] ^= 0xFF;
        std::fs::write(&newest, &bytes).unwrap();

        let s = Store::open(&dir).unwrap();
        assert_eq!(s.recovery().checkpoint_seq, 2);
        assert_eq!(s.recovery().corrupt_checkpoints, 1);
        assert_eq!(s.get(b"old"), Some(&b"1"[..]));
        assert_eq!(s.get(b"new"), Some(&b"2"[..]));
        assert_eq!(s.get(b"tail"), Some(&b"3"[..]));
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn missing_checkpoint_recovers_from_wal_alone() {
        let dir = tmp_dir("nockpt");
        let mut s = Store::open(&dir).unwrap();
        s.put(b"a", b"1").unwrap();
        s.checkpoint().unwrap();
        s.put(b"b", b"2").unwrap();
        drop(s);
        std::fs::remove_file(layout::checkpoint_path(&dir, 2)).unwrap();

        let s = Store::open(&dir).unwrap();
        assert_eq!(s.get(b"a"), Some(&b"1"[..]), "wal-1 still replayable");
        assert_eq!(s.get(b"b"), Some(&b"2"[..]));
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn auto_compaction_triggers_on_wal_growth() {
        let dir = tmp_dir("auto");
        let config = StoreConfig {
            compact_min_bytes: 256,
            ..StoreConfig::default()
        };
        let mut s = Store::open_with(&dir, config, Obs::none()).unwrap();
        for i in 0..64u32 {
            s.put(b"key", &i.to_le_bytes()).unwrap();
        }
        assert!(s.active_seq() > 1, "WAL growth forced a checkpoint");
        assert!(s.wal_bytes() < 256 + 64, "WAL reset by rotation");
        drop(s);
        let s = Store::open(&dir).unwrap();
        assert_eq!(s.get(b"key"), Some(&63u32.to_le_bytes()[..]));
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn leftover_tmp_files_are_cleared() {
        let dir = tmp_dir("tmp");
        std::fs::create_dir_all(&dir).unwrap();
        std::fs::write(dir.join("ckpt-9.tmp"), b"half a checkpoint").unwrap();
        let s = Store::open(&dir).unwrap();
        assert!(s.is_empty());
        assert!(layout::temp_files(&dir).unwrap().is_empty());
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn observer_sees_appends_checkpoints_and_recovery() {
        let dir = tmp_dir("obs");
        let sink = std::sync::Arc::new(obs::MemorySink::unbounded());
        let handle = Obs::new(sink.clone());
        {
            let mut s = Store::open_with(&dir, StoreConfig::default(), handle.clone()).unwrap();
            s.put(b"a", b"1").unwrap();
            s.checkpoint().unwrap();
        }
        let _ = Store::open_with(&dir, StoreConfig::default(), handle).unwrap();
        let kinds: Vec<&'static str> = sink.take().iter().map(|e| e.kind()).collect();
        assert!(kinds.contains(&"wal_append"));
        assert!(kinds.contains(&"checkpoint_written"));
        assert_eq!(kinds.iter().filter(|k| **k == "store_recovered").count(), 2);
        std::fs::remove_dir_all(&dir).unwrap();
    }
}
