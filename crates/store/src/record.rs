//! WAL record framing: length-prefixed, CRC-checked mutation records.
//!
//! One record on disk is
//!
//! ```text
//! +----------------+-----------------------+----------------+
//! | varint len(n)  |  body (n bytes)       | crc32(body) LE |
//! +----------------+-----------------------+----------------+
//! body := 0x01 · varint(klen) · key · varint(vlen) · value   (Put)
//!       | 0x02 · varint(klen) · key                          (Delete)
//! ```
//!
//! reusing the wire codec's varint framing ([`pfr::wire`]). The checksum
//! covers the body; a corrupted length prefix makes the body read overrun
//! or misalign, which the checksum then catches — either way the record
//! is rejected as a unit, never half-applied.

use std::ops::Range;

use pfr::wire::{Reader, Writer};

use crate::crc::crc32;

const TAG_PUT: u8 = 1;
const TAG_DELETE: u8 = 2;

/// One durable mutation.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Record {
    /// Bind `key` to `value` (replacing any previous binding).
    Put {
        /// The key.
        key: Vec<u8>,
        /// The full new value.
        value: Vec<u8>,
    },
    /// Remove `key`'s binding, if any.
    Delete {
        /// The key.
        key: Vec<u8>,
    },
}

impl Record {
    /// The key this record mutates.
    pub fn key(&self) -> &[u8] {
        match self {
            Record::Put { key, .. } | Record::Delete { key } => key,
        }
    }

    /// Encodes the record as one framed WAL entry.
    pub fn encode(&self) -> Vec<u8> {
        let mut scratch = RecordScratch::default();
        self.encode_into(&mut scratch).to_vec()
    }

    /// Encodes the record into caller-held scratch buffers and returns the
    /// framed bytes, byte-identical to [`Record::encode`]. Steady-state
    /// appends that reuse one scratch allocate nothing per record.
    pub fn encode_into<'a>(&self, scratch: &'a mut RecordScratch) -> &'a [u8] {
        scratch.body.clear();
        match self {
            Record::Put { key, value } => {
                scratch.body.put_u8(TAG_PUT);
                scratch.body.put_bytes(key);
                scratch.body.put_bytes(value);
            }
            Record::Delete { key } => {
                scratch.body.put_u8(TAG_DELETE);
                scratch.body.put_bytes(key);
            }
        }
        let body = scratch.body.as_slice();
        scratch.frame.clear();
        scratch.frame.put_bytes(body);
        for b in crc32(body).to_le_bytes() {
            scratch.frame.put_u8(b);
        }
        scratch.frame.as_slice()
    }
}

/// Reusable encode buffers for WAL appends (see [`Record::encode_into`]).
#[derive(Debug, Default)]
pub struct RecordScratch {
    body: Writer,
    frame: Writer,
}

/// Why a record failed to decode. The distinction only matters for
/// diagnostics — recovery treats every failure the same way (truncate at
/// the failed record's offset).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum RecordFault {
    /// The input ended inside the record (a torn write).
    Torn,
    /// The body checksum did not match (bit rot or a misaligned length).
    BadChecksum,
    /// The body decoded to garbage (bad tag, trailing bytes).
    BadBody,
}

/// The result of scanning a WAL segment's bytes.
#[derive(Clone, Debug, Default)]
pub struct Scan {
    /// Every valid record, in log order, with its byte range in the input.
    pub records: Vec<(Range<usize>, Record)>,
    /// Length of the valid prefix: the offset at which the first bad
    /// record (if any) starts. Recovery truncates the file here.
    pub valid_len: usize,
    /// What stopped the scan, when `valid_len < input.len()`.
    pub fault: Option<RecordFault>,
}

/// Decodes one record starting at the reader's position.
///
/// # Errors
///
/// A [`RecordFault`] describing why the bytes are not one whole, valid
/// record.
pub fn decode_one(r: &mut Reader<'_>) -> Result<Record, RecordFault> {
    let body = r.get_bytes().map_err(|_| RecordFault::Torn)?;
    if r.remaining() < 4 {
        return Err(RecordFault::Torn);
    }
    let mut crc_bytes = [0u8; 4];
    for b in crc_bytes.iter_mut() {
        *b = r.get_u8().map_err(|_| RecordFault::Torn)?;
    }
    if crc32(body) != u32::from_le_bytes(crc_bytes) {
        return Err(RecordFault::BadChecksum);
    }
    let mut br = Reader::new(body);
    let record = match br.get_u8().map_err(|_| RecordFault::BadBody)? {
        TAG_PUT => Record::Put {
            key: br.get_bytes().map_err(|_| RecordFault::BadBody)?.to_vec(),
            value: br.get_bytes().map_err(|_| RecordFault::BadBody)?.to_vec(),
        },
        TAG_DELETE => Record::Delete {
            key: br.get_bytes().map_err(|_| RecordFault::BadBody)?.to_vec(),
        },
        _ => return Err(RecordFault::BadBody),
    };
    if br.remaining() != 0 {
        return Err(RecordFault::BadBody);
    }
    Ok(record)
}

/// Scans a whole WAL segment, collecting the valid record prefix and
/// stopping — without panicking — at the first torn or corrupt record.
pub fn scan(bytes: &[u8]) -> Scan {
    let mut r = Reader::new(bytes);
    let mut out = Scan::default();
    while r.remaining() > 0 {
        let start = bytes.len() - r.remaining();
        match decode_one(&mut r) {
            Ok(record) => {
                let end = bytes.len() - r.remaining();
                out.records.push((start..end, record));
                out.valid_len = end;
            }
            Err(fault) => {
                out.fault = Some(fault);
                return out;
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn put(k: &[u8], v: &[u8]) -> Record {
        Record::Put {
            key: k.to_vec(),
            value: v.to_vec(),
        }
    }

    #[test]
    fn roundtrip_put_and_delete() {
        for record in [
            put(b"k", b"v"),
            put(b"", b""),
            put(b"key", &[0u8; 1000]),
            Record::Delete { key: b"k".to_vec() },
        ] {
            let bytes = record.encode();
            let mut r = Reader::new(&bytes);
            assert_eq!(decode_one(&mut r).unwrap(), record);
            assert_eq!(r.remaining(), 0);
        }
    }

    #[test]
    fn encode_into_is_byte_identical_across_reuse() {
        let records = [
            put(b"k", b"v"),
            put(b"", b""),
            put(b"key", &[0u8; 1000]),
            Record::Delete { key: b"k".to_vec() },
        ];
        let mut scratch = RecordScratch::default();
        for record in &records {
            assert_eq!(record.encode_into(&mut scratch), record.encode());
        }
    }

    #[test]
    fn scan_stops_at_torn_tail() {
        let mut log = put(b"a", b"1").encode();
        let keep = log.len();
        let mut torn = put(b"b", b"2").encode();
        torn.truncate(torn.len() - 3);
        log.extend_from_slice(&torn);
        let scan = scan(&log);
        assert_eq!(scan.records.len(), 1);
        assert_eq!(scan.valid_len, keep);
        assert_eq!(scan.fault, Some(RecordFault::Torn));
    }

    #[test]
    fn scan_stops_at_flipped_bit() {
        let mut log = put(b"a", b"1").encode();
        let keep = log.len();
        let mut bad = put(b"b", b"2").encode();
        let mid = bad.len() / 2;
        bad[mid] ^= 0x40;
        log.extend_from_slice(&bad);
        let scan = scan(&log);
        assert_eq!(scan.records.len(), 1);
        assert_eq!(scan.valid_len, keep);
        assert!(scan.fault.is_some());
    }

    #[test]
    fn empty_log_scans_clean() {
        let scan = scan(&[]);
        assert!(scan.records.is_empty());
        assert_eq!(scan.valid_len, 0);
        assert_eq!(scan.fault, None);
    }
}
