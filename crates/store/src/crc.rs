//! CRC-32 (IEEE 802.3, reflected) over byte slices.
//!
//! The same polynomial the transport's frame layer uses, implemented here
//! so the on-disk formats stay self-contained. The table is built at
//! compile time; `crc32` is the only entry point.

const fn build_table() -> [u32; 256] {
    let mut table = [0u32; 256];
    let mut i = 0;
    while i < 256 {
        let mut crc = i as u32;
        let mut bit = 0;
        while bit < 8 {
            crc = if crc & 1 != 0 {
                (crc >> 1) ^ 0xEDB8_8320
            } else {
                crc >> 1
            };
            bit += 1;
        }
        table[i] = crc;
        i += 1;
    }
    table
}

static TABLE: [u32; 256] = build_table();

/// The CRC-32 checksum of `bytes`.
pub fn crc32(bytes: &[u8]) -> u32 {
    let mut crc = !0u32;
    for &b in bytes {
        crc = (crc >> 8) ^ TABLE[((crc ^ b as u32) & 0xFF) as usize];
    }
    !crc
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn known_vectors() {
        // The canonical check value for CRC-32/ISO-HDLC.
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
    }

    #[test]
    fn one_bit_flips_change_the_checksum() {
        let base = crc32(b"record payload");
        let mut bytes = b"record payload".to_vec();
        for i in 0..bytes.len() {
            for bit in 0..8 {
                bytes[i] ^= 1 << bit;
                assert_ne!(crc32(&bytes), base, "flip at byte {i} bit {bit}");
                bytes[i] ^= 1 << bit;
            }
        }
    }
}
