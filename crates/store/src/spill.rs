//! Spill files: cheap cold-state parking for the emulator.
//!
//! The sharded emulation engine keeps only the hottest replicas resident;
//! the rest are serialized ([`pfr` snapshots]) and parked on disk until
//! their next encounter. That access pattern — write, read back once per
//! park, no durability requirement beyond the process — does not want the
//! full WAL/checkpoint machinery of [`Store`]; it wants a flat file and an
//! offset. [`SpillFile`] is exactly that: write a blob, get back a
//! [`SpillSlot`] ticket, redeem the ticket for the bytes (CRC-checked, so
//! a bug that hands a stale or torn slot back is caught at read time
//! instead of corrupting a replica).
//!
//! Space is reclaimed through a size-class free list: [`SpillFile::free`]
//! returns a redeemed slot's capacity, and later writes of a similar size
//! reuse it, so a long run's file size plateaus at the peak *live* spill
//! set instead of growing with every park (at a million replicas the
//! difference is an unbounded multi-GB leak vs. a flat file). Batch
//! variants amortize the syscalls: [`SpillFile::append_batch`] coalesces
//! all fresh tail allocations into one write, and
//! [`SpillFile::read_batch`] visits slots in offset order so sequential
//! readahead works. The file itself is deleted when the `SpillFile` is
//! dropped — scratch state never outlives the run, even on panic.
//!
//! [`pfr` snapshots]: https://docs.rs/pfr
//! [`Store`]: crate::Store

use std::collections::BTreeMap;
use std::fs::File;
use std::io::{self, Read, Seek, SeekFrom, Write};
use std::path::{Path, PathBuf};

use crate::crc::crc32;

/// Slot capacities are rounded up to this granularity, so blobs of
/// similar size (replica snapshots cluster tightly) land in the same
/// free-list class and reuse each other's space. Bounded waste: at most
/// `GRANULE - 1` bytes per slot.
const GRANULE: u32 = 256;

fn class_of(len: u32) -> u32 {
    len.checked_add(GRANULE - 1)
        .map(|n| n & !(GRANULE - 1))
        .unwrap_or(u32::MAX)
        .max(GRANULE)
}

/// A redeemable ticket for one blob parked in a [`SpillFile`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct SpillSlot {
    /// Byte offset of the blob within the file.
    offset: u64,
    /// Blob length in bytes.
    len: u32,
    /// Allocated slot capacity (`len` rounded up to the size class).
    cap: u32,
    /// CRC-32 of the blob, verified on read.
    crc: u32,
}

impl SpillSlot {
    /// The parked blob's length in bytes.
    pub fn len(&self) -> u32 {
        self.len
    }

    /// Whether the parked blob is empty.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// The slot's allocated capacity (at least `len`).
    pub fn capacity(&self) -> u32 {
        self.cap
    }
}

/// A file of CRC-checked blobs addressed by [`SpillSlot`], with freed
/// slots recycled through a size-class free list. Deleted on drop.
#[derive(Debug)]
pub struct SpillFile {
    file: File,
    path: PathBuf,
    /// File high-water mark: tail allocations start here. Never shrinks.
    end: u64,
    /// Free slots by capacity class: `cap -> offsets`, reused LIFO.
    free: BTreeMap<u32, Vec<u64>>,
    /// Cumulative payload bytes across all writes (reused or not).
    written: u64,
    /// Writes served from the free list instead of growing the file.
    reused: u64,
    /// Scratch for coalescing tail writes, retained across batches.
    scratch: Vec<u8>,
}

impl SpillFile {
    /// Creates (truncating) a spill file at `path`.
    pub fn create(path: impl AsRef<Path>) -> io::Result<SpillFile> {
        let path = path.as_ref().to_path_buf();
        let file = File::options()
            .read(true)
            .write(true)
            .create(true)
            .truncate(true)
            .open(&path)?;
        Ok(SpillFile {
            file,
            path,
            end: 0,
            free: BTreeMap::new(),
            written: 0,
            reused: 0,
            scratch: Vec::new(),
        })
    }

    /// The spill file's location.
    pub fn path(&self) -> &Path {
        &self.path
    }

    /// Cumulative payload bytes written (counting slot reuse).
    pub fn bytes_written(&self) -> u64 {
        self.written
    }

    /// The file's high-water size in bytes. With slot reuse this
    /// plateaus at the peak live spill set, not the write volume.
    pub fn file_bytes(&self) -> u64 {
        self.end
    }

    /// Writes served from the free list instead of growing the file.
    pub fn reused_slots(&self) -> u64 {
        self.reused
    }

    /// Picks a free slot of at least `class` capacity, or allocates at
    /// the tail. The smallest sufficient class is reused first, keeping
    /// large slots available for large blobs.
    fn allocate(&mut self, len: u32) -> (u64, u32, bool) {
        let class = class_of(len);
        let found = self
            .free
            .range_mut(class..)
            .next()
            .map(|(&cap, offs)| (cap, offs.pop().expect("free classes are nonempty")));
        if let Some((cap, offset)) = found {
            if self.free.get(&cap).is_some_and(Vec::is_empty) {
                self.free.remove(&cap);
            }
            self.reused += 1;
            (offset, cap, true)
        } else {
            let offset = self.end;
            self.end += u64::from(class);
            (offset, class, false)
        }
    }

    /// Writes one blob and returns its redeemable slot, reusing a freed
    /// slot of sufficient capacity when one exists.
    pub fn append(&mut self, bytes: &[u8]) -> io::Result<SpillSlot> {
        let len = Self::blob_len(bytes)?;
        let (offset, cap, _) = self.allocate(len);
        self.file.seek(SeekFrom::Start(offset))?;
        self.file.write_all(bytes)?;
        self.written += u64::from(len);
        Ok(SpillSlot {
            offset,
            len,
            cap,
            crc: crc32(bytes),
        })
    }

    /// Writes a batch of blobs, coalescing every fresh tail allocation
    /// into a single contiguous write (freed-slot reuses are written
    /// individually, in offset order). Returns slots in input order.
    pub fn append_batch(&mut self, blobs: &[&[u8]]) -> io::Result<Vec<SpillSlot>> {
        let mut slots = Vec::with_capacity(blobs.len());
        // (input index, offset) of reused slots, to visit in offset order.
        let mut reused: Vec<(usize, u64)> = Vec::new();
        let mut tail_start: Option<u64> = None;
        self.scratch.clear();
        for (i, bytes) in blobs.iter().enumerate() {
            let len = Self::blob_len(bytes)?;
            let (offset, cap, from_free) = self.allocate(len);
            if from_free {
                reused.push((i, offset));
            } else {
                tail_start.get_or_insert(offset);
                self.scratch.extend_from_slice(bytes);
                // Pad to capacity so the next coalesced blob starts at
                // its own slot offset.
                self.scratch
                    .resize(self.scratch.len() + (cap - len) as usize, 0);
            }
            self.written += u64::from(len);
            slots.push(SpillSlot {
                offset,
                len,
                cap,
                crc: crc32(bytes),
            });
        }
        reused.sort_by_key(|&(_, offset)| offset);
        for (i, offset) in reused {
            self.file.seek(SeekFrom::Start(offset))?;
            self.file.write_all(blobs[i])?;
        }
        if let Some(start) = tail_start {
            self.file.seek(SeekFrom::Start(start))?;
            self.file.write_all(&self.scratch)?;
        }
        Ok(slots)
    }

    /// Reads back the blob behind `slot`.
    ///
    /// # Errors
    ///
    /// [`io::ErrorKind::InvalidData`] when the stored bytes do not match
    /// the slot's checksum (a stale ticket or torn write), plus any
    /// underlying read error.
    pub fn read(&mut self, slot: &SpillSlot) -> io::Result<Vec<u8>> {
        let mut buf = vec![0u8; slot.len as usize];
        self.file.seek(SeekFrom::Start(slot.offset))?;
        self.file.read_exact(&mut buf)?;
        if crc32(&buf) != slot.crc {
            return Err(io::Error::new(
                io::ErrorKind::InvalidData,
                format!("spill slot at offset {} failed its checksum", slot.offset),
            ));
        }
        Ok(buf)
    }

    /// Reads a batch of slots, visiting the file in offset order (so
    /// sequential readahead works) while returning blobs in input order.
    pub fn read_batch(&mut self, slots: &[SpillSlot]) -> io::Result<Vec<Vec<u8>>> {
        let mut order: Vec<usize> = (0..slots.len()).collect();
        order.sort_by_key(|&i| slots[i].offset);
        let mut out: Vec<Vec<u8>> = vec![Vec::new(); slots.len()];
        for i in order {
            out[i] = self.read(&slots[i])?;
        }
        Ok(out)
    }

    /// Returns a redeemed slot's space to the free list for reuse.
    pub fn free(&mut self, slot: SpillSlot) {
        self.free.entry(slot.cap).or_default().push(slot.offset);
    }

    fn blob_len(bytes: &[u8]) -> io::Result<u32> {
        u32::try_from(bytes.len()).map_err(|_| {
            io::Error::new(
                io::ErrorKind::InvalidInput,
                "spill blob exceeds u32::MAX bytes",
            )
        })
    }
}

impl Drop for SpillFile {
    /// Spill files are run-scoped scratch: deleting here (not at a
    /// clean-exit call site) means a panicking or early-returning run
    /// cannot leak multi-GB files into the spill directory.
    fn drop(&mut self) {
        let _ = std::fs::remove_file(&self.path);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmp(name: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("replidtn-spill-{}", std::process::id()));
        std::fs::create_dir_all(&dir).expect("tmp dir");
        dir.join(name)
    }

    #[test]
    fn blobs_roundtrip_in_any_order() {
        let mut f = SpillFile::create(tmp("roundtrip.spill")).expect("create");
        let blobs: Vec<Vec<u8>> = (0u8..20).map(|i| vec![i; 10 + i as usize * 13]).collect();
        let slots: Vec<SpillSlot> = blobs.iter().map(|b| f.append(b).expect("append")).collect();
        assert_eq!(
            f.bytes_written(),
            blobs.iter().map(|b| b.len() as u64).sum::<u64>()
        );
        for (blob, slot) in blobs.iter().zip(&slots).rev() {
            assert_eq!(&f.read(slot).expect("read"), blob);
            assert_eq!(slot.len() as usize, blob.len());
            assert!(slot.capacity() >= slot.len());
        }
    }

    #[test]
    fn corruption_is_detected() {
        let path = tmp("corrupt.spill");
        let mut f = SpillFile::create(&path).expect("create");
        let slot = f.append(b"precious replica state").expect("append");
        // Flip one byte behind the spill file's back.
        f.file.seek(SeekFrom::Start(3)).expect("seek");
        f.file.write_all(&[0xFF]).expect("scribble");
        let err = f.read(&slot).expect_err("checksum must fail");
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
    }

    #[test]
    fn empty_blob_is_fine() {
        let mut f = SpillFile::create(tmp("empty.spill")).expect("create");
        let slot = f.append(b"").expect("append");
        assert!(slot.is_empty());
        assert_eq!(f.read(&slot).expect("read"), Vec::<u8>::new());
    }

    #[test]
    fn freed_slots_are_reused_and_the_file_plateaus() {
        let mut f = SpillFile::create(tmp("freelist.spill")).expect("create");
        // Park/free cycles of same-class blobs must not grow the file.
        let first = f.append(&vec![1u8; 300]).expect("append");
        let plateau = f.file_bytes();
        f.free(first);
        for round in 0u8..50 {
            let blob = [round, 2, 3].repeat(100); // same 300-byte class
            let s = f.append(&blob).expect("append");
            assert_eq!(
                f.file_bytes(),
                plateau,
                "round {round} grew the file past its plateau"
            );
            // The reused slot's contents and CRC must round-trip.
            assert_eq!(f.read(&s).expect("read"), blob);
            f.free(s);
        }
        assert_eq!(f.reused_slots(), 50);
        // A blob too big for any free slot grows the file.
        let big = f.append(&vec![9u8; 2000]).expect("append");
        assert!(f.file_bytes() > plateau);
        assert_eq!(f.read(&big).expect("read"), vec![9u8; 2000]);
        // ... and a smaller blob reuses the *smallest* sufficient freed
        // slot (the 300-byte-class one, not the 2000-byte-class one).
        f.free(big);
        let small = f.append(&[7u8; 100]).expect("append");
        assert_eq!(small.capacity(), class_of(300));
        assert_eq!(f.read(&small).expect("read"), vec![7u8; 100]);
    }

    #[test]
    fn batch_writes_and_reads_roundtrip() {
        let mut f = SpillFile::create(tmp("batch.spill")).expect("create");
        // Seed a free slot so the batch mixes reuse with tail appends.
        let seeded = f.append(&[0u8; 200]).expect("append");
        f.free(seeded);
        let blobs: Vec<Vec<u8>> = (0u8..10).map(|i| vec![i; 50 + i as usize * 97]).collect();
        let refs: Vec<&[u8]> = blobs.iter().map(Vec::as_slice).collect();
        let slots = f.append_batch(&refs).expect("batch write");
        assert!(f.reused_slots() >= 1, "the freed slot should be reused");
        let back = f.read_batch(&slots).expect("batch read");
        assert_eq!(back, blobs);
        // Slots stay individually redeemable too.
        for (slot, blob) in slots.iter().zip(&blobs).rev() {
            assert_eq!(&f.read(slot).expect("read"), blob);
        }
    }

    #[test]
    fn dropping_deletes_the_file() {
        let path = tmp("dropped.spill");
        {
            let mut f = SpillFile::create(&path).expect("create");
            f.append(b"scratch").expect("append");
            assert!(path.exists());
        }
        assert!(!path.exists(), "drop must remove the scratch file");
    }
}
