//! Append-only spill files: cheap cold-state parking for the emulator.
//!
//! The sharded emulation engine keeps only the hottest replicas resident;
//! the rest are serialized ([`pfr` snapshots]) and parked on disk until
//! their next encounter. That access pattern — write once, read back at
//! most once per park, no durability requirement beyond the process —
//! does not want the full WAL/checkpoint machinery of [`Store`]; it wants
//! a flat file and an offset. [`SpillFile`] is exactly that: append a
//! blob, get back a [`SpillSlot`] ticket, redeem the ticket for the bytes
//! (CRC-checked, so a bug that hands a stale or torn slot back is caught
//! at read time instead of corrupting a replica).
//!
//! Space from re-spilled replicas is never reclaimed — the file only
//! grows — which is the right trade for an emulation run: reclaiming
//! would need compaction machinery, and the file dies with the run.
//!
//! [`pfr` snapshots]: https://docs.rs/pfr
//! [`Store`]: crate::Store

use std::fs::File;
use std::io::{self, Read, Seek, SeekFrom, Write};
use std::path::{Path, PathBuf};

use crate::crc::crc32;

/// A redeemable ticket for one blob parked in a [`SpillFile`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct SpillSlot {
    /// Byte offset of the blob within the file.
    offset: u64,
    /// Blob length in bytes.
    len: u32,
    /// CRC-32 of the blob, verified on read.
    crc: u32,
}

impl SpillSlot {
    /// The parked blob's length in bytes.
    pub fn len(&self) -> u32 {
        self.len
    }

    /// Whether the parked blob is empty.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }
}

/// An append-only file of CRC-checked blobs addressed by [`SpillSlot`].
#[derive(Debug)]
pub struct SpillFile {
    file: File,
    path: PathBuf,
    end: u64,
}

impl SpillFile {
    /// Creates (truncating) a spill file at `path`.
    pub fn create(path: impl AsRef<Path>) -> io::Result<SpillFile> {
        let path = path.as_ref().to_path_buf();
        let file = File::options()
            .read(true)
            .write(true)
            .create(true)
            .truncate(true)
            .open(&path)?;
        Ok(SpillFile { file, path, end: 0 })
    }

    /// The spill file's location.
    pub fn path(&self) -> &Path {
        &self.path
    }

    /// Total bytes appended so far (file size).
    pub fn bytes_written(&self) -> u64 {
        self.end
    }

    /// Appends one blob and returns its redeemable slot.
    pub fn append(&mut self, bytes: &[u8]) -> io::Result<SpillSlot> {
        let len = u32::try_from(bytes.len()).map_err(|_| {
            io::Error::new(
                io::ErrorKind::InvalidInput,
                "spill blob exceeds u32::MAX bytes",
            )
        })?;
        let offset = self.end;
        self.file.seek(SeekFrom::Start(offset))?;
        self.file.write_all(bytes)?;
        self.end += u64::from(len);
        Ok(SpillSlot {
            offset,
            len,
            crc: crc32(bytes),
        })
    }

    /// Reads back the blob behind `slot`.
    ///
    /// # Errors
    ///
    /// [`io::ErrorKind::InvalidData`] when the stored bytes do not match
    /// the slot's checksum (a stale ticket or torn write), plus any
    /// underlying read error.
    pub fn read(&mut self, slot: &SpillSlot) -> io::Result<Vec<u8>> {
        let mut buf = vec![0u8; slot.len as usize];
        self.file.seek(SeekFrom::Start(slot.offset))?;
        self.file.read_exact(&mut buf)?;
        if crc32(&buf) != slot.crc {
            return Err(io::Error::new(
                io::ErrorKind::InvalidData,
                format!("spill slot at offset {} failed its checksum", slot.offset),
            ));
        }
        Ok(buf)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmp(name: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("replidtn-spill-{}", std::process::id()));
        std::fs::create_dir_all(&dir).expect("tmp dir");
        dir.join(name)
    }

    #[test]
    fn blobs_roundtrip_in_any_order() {
        let mut f = SpillFile::create(tmp("roundtrip.spill")).expect("create");
        let blobs: Vec<Vec<u8>> = (0u8..20).map(|i| vec![i; 10 + i as usize * 13]).collect();
        let slots: Vec<SpillSlot> = blobs.iter().map(|b| f.append(b).expect("append")).collect();
        assert_eq!(
            f.bytes_written(),
            blobs.iter().map(|b| b.len() as u64).sum::<u64>()
        );
        for (blob, slot) in blobs.iter().zip(&slots).rev() {
            assert_eq!(&f.read(slot).expect("read"), blob);
            assert_eq!(slot.len() as usize, blob.len());
        }
    }

    #[test]
    fn corruption_is_detected() {
        let path = tmp("corrupt.spill");
        let mut f = SpillFile::create(&path).expect("create");
        let slot = f.append(b"precious replica state").expect("append");
        // Flip one byte behind the spill file's back.
        f.file.seek(SeekFrom::Start(3)).expect("seek");
        f.file.write_all(&[0xFF]).expect("scribble");
        let err = f.read(&slot).expect_err("checksum must fail");
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
    }

    #[test]
    fn empty_blob_is_fine() {
        let mut f = SpillFile::create(tmp("empty.spill")).expect("create");
        let slot = f.append(b"").expect("append");
        assert!(slot.is_empty());
        assert_eq!(f.read(&slot).expect("read"), Vec::<u8>::new());
    }
}
