//! Property-based tests for the storage engine's two core promises:
//! WAL records round-trip exactly, and recovery under arbitrary tail
//! damage never panics and never resurrects a half-written record —
//! the recovered state is always the fold of a *prefix* of the
//! operations that were applied.

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};

use proptest::prelude::*;

use store::record::{self, Record};
use store::{Store, StoreConfig};

fn tmp_dir(tag: &str) -> std::path::PathBuf {
    static N: AtomicU64 = AtomicU64::new(0);
    std::env::temp_dir().join(format!(
        "store-prop-{tag}-{}-{}",
        std::process::id(),
        N.fetch_add(1, Ordering::Relaxed)
    ))
}

// ---------------------------------------------------------------------------
// Generators
// ---------------------------------------------------------------------------

fn arb_record() -> impl Strategy<Value = Record> {
    prop_oneof![
        (
            proptest::collection::vec(any::<u8>(), 0..32),
            proptest::collection::vec(any::<u8>(), 0..128),
        )
            .prop_map(|(key, value)| Record::Put { key, value }),
        proptest::collection::vec(any::<u8>(), 0..32).prop_map(|key| Record::Delete { key }),
    ]
}

fn arb_log() -> impl Strategy<Value = Vec<Record>> {
    proptest::collection::vec(arb_record(), 0..20)
}

/// Ops phrased the way `Store` applies them, over a tiny key space so
/// puts and deletes collide often.
fn arb_ops() -> impl Strategy<Value = Vec<(bool, u8, u8)>> {
    proptest::collection::vec((any::<bool>(), 0u8..4, any::<u8>()), 1..20)
}

fn fold_ops(ops: &[(bool, u8, u8)]) -> BTreeMap<Vec<u8>, Vec<u8>> {
    let mut map = BTreeMap::new();
    for &(is_put, key, value) in ops {
        if is_put {
            map.insert(vec![key], vec![value]);
        } else {
            map.remove(&vec![key]);
        }
    }
    map
}

fn store_state(s: &Store) -> BTreeMap<Vec<u8>, Vec<u8>> {
    s.keys()
        .map(|k| (k.to_vec(), s.get(k).expect("listed key").to_vec()))
        .collect()
}

// ---------------------------------------------------------------------------
// Record framing round trips
// ---------------------------------------------------------------------------

proptest! {
    #[test]
    fn record_encode_scan_roundtrip(records in arb_log()) {
        let mut log = Vec::new();
        for r in &records {
            log.extend_from_slice(&r.encode());
        }
        let scan = record::scan(&log);
        prop_assert_eq!(scan.fault, None);
        prop_assert_eq!(scan.valid_len, log.len());
        let decoded: Vec<Record> = scan.records.into_iter().map(|(_, r)| r).collect();
        prop_assert_eq!(decoded, records);
    }

    /// Cutting the log at any byte yields a strict prefix of the original
    /// records — never a phantom record, never a reordered one.
    #[test]
    fn truncated_log_scans_to_a_prefix(records in arb_log(), cut in 0usize..2048) {
        let mut log = Vec::new();
        for r in &records {
            log.extend_from_slice(&r.encode());
        }
        let cut = cut % (log.len() + 1);
        let scan = record::scan(&log[..cut]);
        prop_assert!(scan.records.len() <= records.len());
        for (i, (_, r)) in scan.records.iter().enumerate() {
            prop_assert_eq!(r, &records[i], "record {} differs after cut at {}", i, cut);
        }
        prop_assert!(scan.valid_len <= cut);
    }

    /// Flipping bits anywhere in the log still yields a prefix: the scan
    /// stops at (or before) the damaged record and everything it does
    /// return is byte-for-byte one of the originals.
    #[test]
    fn corrupted_log_scans_to_a_prefix(
        records in arb_log(),
        flip in 0usize..2048,
        mask in 1u8..=255,
    ) {
        let mut log = Vec::new();
        for r in &records {
            log.extend_from_slice(&r.encode());
        }
        if !log.is_empty() {
            let flip = flip % log.len();
            log[flip] ^= mask;
            let scan = record::scan(&log);
            for (i, (range, r)) in scan.records.iter().enumerate() {
                if range.contains(&flip) {
                    continue; // the damaged record itself may survive a lucky flip
                }
                prop_assert_eq!(r, &records[i], "undamaged record {} differs", i);
            }
        }
    }

    /// Arbitrary garbage appended after valid records never extends the
    /// decoded log past the valid prefix... unless it happens to *be* a
    /// valid record, which the checksum makes vanishingly unlikely for
    /// random bytes — asserted exactly here.
    #[test]
    fn appended_garbage_never_decodes(
        records in arb_log(),
        garbage in proptest::collection::vec(any::<u8>(), 1..64),
    ) {
        let mut log = Vec::new();
        for r in &records {
            log.extend_from_slice(&r.encode());
        }
        let valid = log.len();
        log.extend_from_slice(&garbage);
        let scan = record::scan(&log);
        prop_assert_eq!(scan.records.len(), records.len());
        prop_assert_eq!(scan.valid_len, valid);
    }
}

// ---------------------------------------------------------------------------
// Whole-store recovery under tail damage
// ---------------------------------------------------------------------------

proptest! {
    /// The flagship property: kill the store, damage its WAL tail
    /// arbitrarily (truncate and/or flip a byte), reopen. Recovery must
    /// not panic and the state must equal the fold of some prefix of the
    /// ops — no lost middles, no resurrections, no invented values.
    #[test]
    fn recovery_after_tail_damage_is_a_prefix_fold(
        ops in arb_ops(),
        chop in 0usize..64,
        flip in 0usize..512,
        mask in 0u8..=255,
    ) {
        let dir = tmp_dir("damage");
        {
            let mut s = Store::open_with(
                &dir,
                StoreConfig { fsync: false, ..StoreConfig::default() },
                obs::Obs::none(),
            ).expect("open");
            for &(is_put, key, value) in &ops {
                if is_put {
                    s.put(&[key], &[value]).expect("put");
                } else {
                    s.delete(&[key]).expect("delete");
                }
            }
            s.sync().expect("sync");
        }

        // Damage the single live segment's tail.
        let wal = store::layout::wal_path(&dir, 1);
        let mut bytes = std::fs::read(&wal).expect("read wal");
        if !bytes.is_empty() {
            let keep = bytes.len().saturating_sub(chop % bytes.len());
            bytes.truncate(keep);
        }
        if !bytes.is_empty() && mask != 0 {
            let at = flip % bytes.len();
            bytes[at] ^= mask;
        }
        std::fs::write(&wal, &bytes).expect("write damaged wal");

        let recovered = Store::open(&dir).expect("recovery must not fail");
        let state = store_state(&recovered);
        let matches_some_prefix = (0..=ops.len())
            .any(|n| fold_ops(&ops[..n]) == state);
        prop_assert!(
            matches_some_prefix,
            "recovered state {:?} is not the fold of any prefix of {:?}",
            state, ops
        );

        // Recovery is idempotent: a second open replays the (already
        // truncated) log to the same state with nothing left to repair.
        let report = recovered.recovery().clone();
        drop(recovered);
        let again = Store::open(&dir).expect("second open");
        prop_assert_eq!(store_state(&again), state);
        prop_assert_eq!(again.recovery().truncated_bytes, 0, "first open left damage: {:?}", report);

        std::fs::remove_dir_all(&dir).expect("cleanup");
    }

    /// Checkpointed state survives loss of the *entire* live WAL segment:
    /// nothing older than the checkpoint is lost, nothing newer than the
    /// surviving log is invented.
    #[test]
    fn checkpoint_plus_damaged_wal_recovers_checkpoint_state(
        before in arb_ops(),
        after in arb_ops(),
    ) {
        let dir = tmp_dir("ckpt");
        {
            let mut s = Store::open_with(
                &dir,
                StoreConfig { fsync: false, ..StoreConfig::default() },
                obs::Obs::none(),
            ).expect("open");
            for &(is_put, key, value) in &before {
                if is_put { s.put(&[key], &[value]).expect("put"); }
                else { s.delete(&[key]).expect("delete"); }
            }
            s.checkpoint().expect("checkpoint");
            for &(is_put, key, value) in &after {
                if is_put { s.put(&[key], &[value]).expect("put"); }
                else { s.delete(&[key]).expect("delete"); }
            }
            s.sync().expect("sync");
        }
        // Obliterate the post-checkpoint WAL segment entirely.
        std::fs::write(store::layout::wal_path(&dir, 2), b"").expect("clear wal");

        let s = Store::open(&dir).expect("recovery");
        prop_assert_eq!(store_state(&s), fold_ops(&before));
        std::fs::remove_dir_all(&dir).expect("cleanup");
    }
}
