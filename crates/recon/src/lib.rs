//! Compact set reconciliation primitives for the digest sync mode.
//!
//! The paper's protocol ships full version-vector knowledge on every
//! encounter. This crate provides the machinery to replace that with
//! summaries whose size scales with the *difference* between peers, not
//! with the size of their stores:
//!
//! - [`Bloom`]: seeded double-hashing Bloom filter over 128-bit keys.
//!   Used as the first-contact summary (no shared history to diff
//!   against). False positives are resolved by an exact follow-up
//!   round in `pfr::sync`, so they cost a round trip, never
//!   correctness.
//! - [`Iblt`]: invertible sketch with `subtract` + peel [`Iblt::decode`].
//!   Used when peers have met before: the sketch is sized from the
//!   drift since the last exchange and the peeled output is the exact
//!   symmetric difference of the knowledge entry sets.
//! - [`StrataEstimator`]: difference-size estimator for when no cached
//!   snapshot exists to size the IBLT from.
//!
//! Everything is deterministic under an explicit seed, has bounded
//! fuzz-safe serialization (decoders never panic and never allocate
//! more than the input length justifies), and is policy-free: this
//! crate knows nothing about replicas, items, or transports.

mod bloom;
mod codec;
mod estimator;
pub mod hash;
mod iblt;

pub use bloom::{Bloom, MAX_BLOOM_BITS, MAX_BLOOM_HASHES};
pub use estimator::{StrataEstimator, STRATA};
pub use iblt::{DecodedDiff, Iblt, IBLT_HASHES, MAX_IBLT_CELLS};

/// Errors surfaced by sketch operations and decoders.
///
/// `DecodeFailed` is an *expected* outcome (an undersized IBLT), which
/// callers handle by falling back to a full exchange; the others
/// indicate malformed or hostile input.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[non_exhaustive]
pub enum ReconError {
    /// Input ended before the structure was complete.
    Truncated,
    /// Structurally invalid input (bad tag, overlong varint, trailing
    /// bytes, impossible geometry).
    Malformed,
    /// A claimed size exceeds the hard decode caps.
    TooLarge,
    /// Two sketches with different seeds or geometries were combined.
    Mismatch,
    /// An IBLT peel got stuck: the sketch was undersized for the
    /// actual difference. Not corruption — fall back to full exchange.
    DecodeFailed,
}

impl std::fmt::Display for ReconError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ReconError::Truncated => write!(f, "input truncated"),
            ReconError::Malformed => write!(f, "malformed sketch encoding"),
            ReconError::TooLarge => write!(f, "sketch size exceeds decode cap"),
            ReconError::Mismatch => write!(f, "sketch seed or geometry mismatch"),
            ReconError::DecodeFailed => write!(f, "sketch undersized for difference"),
        }
    }
}

impl std::error::Error for ReconError {}

#[cfg(test)]
mod adversarial {
    use super::*;
    use proptest::prelude::*;

    /// Every decode entry point on one byte string: `Ok` or a typed
    /// `ReconError`, never a panic.
    fn decode_all(bytes: &[u8]) {
        let _ = Bloom::from_bytes(bytes);
        let _ = Iblt::from_bytes(bytes);
        let _ = StrataEstimator::from_bytes(bytes);
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(512))]

        #[test]
        fn random_bytes_never_panic(bytes in proptest::collection::vec(any::<u8>(), 0..2048)) {
            decode_all(&bytes);
        }

        #[test]
        fn mutated_bloom_encodings_never_panic(
            keys in proptest::collection::vec(any::<u64>(), 0..64),
            flips in proptest::collection::vec((0usize..4096, 1u8..255), 1..8),
            cut in 0usize..4096,
        ) {
            let mut b = Bloom::for_items(keys.len(), 8, 7);
            for k in &keys {
                b.insert(*k as u128);
            }
            let mut bytes = b.to_bytes();
            for (pos, xor) in flips {
                let pos = pos % bytes.len();
                bytes[pos] ^= xor;
            }
            decode_all(&bytes);
            bytes.truncate(cut % (bytes.len() + 1));
            decode_all(&bytes);
        }

        #[test]
        fn mutated_iblt_encodings_never_panic(
            keys in proptest::collection::vec(any::<u64>(), 0..64),
            flips in proptest::collection::vec((0usize..4096, 1u8..255), 1..8),
            cut in 0usize..4096,
        ) {
            let mut t = Iblt::for_expected_diff(keys.len(), 7);
            for k in &keys {
                t.insert(*k as u128);
            }
            let mut bytes = t.to_bytes();
            for (pos, xor) in flips {
                let pos = pos % bytes.len();
                bytes[pos] ^= xor;
            }
            decode_all(&bytes);
            bytes.truncate(cut % (bytes.len() + 1));
            decode_all(&bytes);
        }

        // Decoded-but-corrupt IBLTs must fail the peel cleanly, not
        // hang or panic: the checksum makes garbage cells impure.
        #[test]
        fn corrupt_iblt_peel_terminates(
            keys in proptest::collection::vec(any::<u64>(), 1..64),
            flips in proptest::collection::vec((0usize..4096, 1u8..255), 1..4),
        ) {
            let mut t = Iblt::for_expected_diff(keys.len(), 3);
            for k in &keys {
                t.insert(*k as u128);
            }
            let mut bytes = t.to_bytes();
            for (pos, xor) in flips {
                let pos = pos % bytes.len();
                bytes[pos] ^= xor;
            }
            if let Ok(t) = Iblt::from_bytes(&bytes) {
                let empty = Iblt::with_cells(t.cells(), t.seed());
                if let Ok(sub) = t.subtract(&empty) {
                    let _ = sub.decode();
                }
            }
        }
    }

    proptest! {
        // End-to-end property: for random disjoint tails on a shared
        // base, subtract+peel recovers the exact symmetric difference
        // when sized from the true difference.
        #[test]
        fn iblt_recovers_exact_difference(
            base in proptest::collection::vec(1u64..50_000, 0..300),
            only_a in proptest::collection::vec(50_000u64..60_000, 0..20),
            only_b in proptest::collection::vec(60_000u64..70_000, 0..20),
            seed in any::<u64>(),
        ) {
            use std::collections::BTreeSet;
            let base: BTreeSet<u64> = base.into_iter().collect();
            let only_a: BTreeSet<u64> = only_a.into_iter().collect();
            let only_b: BTreeSet<u64> = only_b.into_iter().collect();
            let mut a = Iblt::for_expected_diff(only_a.len() + only_b.len(), seed);
            let mut b = Iblt::for_expected_diff(only_a.len() + only_b.len(), seed);
            for k in base.iter().chain(&only_a) {
                a.insert(*k as u128);
            }
            for k in base.iter().chain(&only_b) {
                b.insert(*k as u128);
            }
            let diff = a.subtract(&b).unwrap().decode().unwrap();
            let want_a: Vec<u128> = only_a.iter().map(|&k| k as u128).collect();
            let want_b: Vec<u128> = only_b.iter().map(|&k| k as u128).collect();
            prop_assert_eq!(diff.only_local, want_a);
            prop_assert_eq!(diff.only_remote, want_b);
        }

        #[test]
        fn bloom_roundtrips(
            keys in proptest::collection::vec(any::<u64>(), 0..128),
            bpi in 1u32..16,
            seed in any::<u64>(),
        ) {
            let mut b = Bloom::for_items(keys.len(), bpi, seed);
            for k in &keys {
                b.insert(*k as u128);
            }
            let bytes = b.to_bytes();
            prop_assert_eq!(bytes.len(), b.encoded_len());
            prop_assert_eq!(Bloom::from_bytes(&bytes).unwrap(), b);
        }

        #[test]
        fn iblt_roundtrips(
            keys in proptest::collection::vec(any::<u64>(), 0..128),
            seed in any::<u64>(),
        ) {
            let mut t = Iblt::for_expected_diff(keys.len() / 4, seed);
            for k in &keys {
                t.insert(*k as u128);
            }
            let bytes = t.to_bytes();
            prop_assert_eq!(Iblt::from_bytes(&bytes).unwrap(), t);
        }
    }
}
