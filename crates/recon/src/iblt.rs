//! Invertible Bloom Lookup Table over 128-bit keys.
//!
//! The digest sync path uses IBLTs *by subtraction*: the target sends a
//! sketch of its knowledge entry set; the source inserts its cached
//! copy of that set into an identically-seeded sketch, subtracts, and
//! peels the remainder. The peeled keys are exactly the symmetric
//! difference, so the sketch size scales with how much changed since
//! the peers last met — not with the size of either set.
//!
//! Each cell holds `(count, key_sum, check_sum)` where `key_sum` and
//! `check_sum` are XOR accumulators. A cell is *pure* when
//! `count == ±1` and the checksum of `key_sum` matches `check_sum`;
//! peeling extracts pure cells and removes their key from its other
//! cells until the sketch drains (success) or no pure cell remains
//! (failure — caller falls back to a full exchange). Cells are split
//! into `k` equal partitions with one independently-hashed probe per
//! partition, so a key's probes never collide with each other, which
//! measurably improves the peel success rate at small sizes.

use crate::codec::{put_signed, put_varint, Cursor};
use crate::hash::{key_check, key_hash};
use crate::ReconError;

/// Hard cap on cells accepted from the wire (~29 MiB worst case, far
/// above anything the sizing policy produces).
pub const MAX_IBLT_CELLS: usize = 1 << 20;
/// Probes per key. Three is the sweet spot for peel success vs. size.
pub const IBLT_HASHES: u32 = 3;

const IBLT_TAG: u8 = 0x1B;
/// Minimum serialized bytes per cell: 4 one-byte varints.
const MIN_CELL_BYTES: usize = 4;

#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
struct Cell {
    count: i64,
    key_sum: u128,
    check_sum: u64,
}

impl Cell {
    fn is_zero(&self) -> bool {
        self.count == 0 && self.key_sum == 0 && self.check_sum == 0
    }
}

/// The two sides of a decoded symmetric difference: keys present only
/// in the sketch `subtract` was called on (`only_local`) and keys
/// present only in the subtracted sketch (`only_remote`). Both are
/// sorted for determinism.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct DecodedDiff {
    pub only_local: Vec<u128>,
    pub only_remote: Vec<u128>,
}

impl DecodedDiff {
    pub fn len(&self) -> usize {
        self.only_local.len() + self.only_remote.len()
    }

    pub fn is_empty(&self) -> bool {
        self.only_local.is_empty() && self.only_remote.is_empty()
    }
}

#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Iblt {
    seed: u64,
    cells: Vec<Cell>,
}

impl Iblt {
    /// Build an empty sketch with exactly `cells` cells (rounded up to
    /// a multiple of the probe count so partitions divide evenly).
    pub fn with_cells(cells: usize, seed: u64) -> Self {
        let k = IBLT_HASHES as usize;
        let cells = cells.clamp(k, MAX_IBLT_CELLS);
        let cells = cells.div_ceil(k) * k;
        Iblt {
            seed,
            cells: vec![Cell::default(); cells],
        }
    }

    /// Size a sketch to decode an expected symmetric difference of `d`
    /// keys with high probability. The asymptotic peel threshold for
    /// k = 3 is ~1.22 cells per key, but small sketches need far more
    /// headroom (variance dominates), so the multiplier decays with
    /// `d`. Oversizing is cheap — an empty cell serializes to four
    /// bytes — while undersizing costs a whole fallback round.
    pub fn for_expected_diff(d: usize, seed: u64) -> Self {
        let mult = match d {
            0..=20 => 3.0,
            21..=50 => 2.4,
            51..=200 => 1.9,
            _ => 1.5,
        };
        let cells = ((d as f64 * mult).ceil() as usize + 12).max(24);
        Self::with_cells(cells, seed)
    }

    pub fn seed(&self) -> u64 {
        self.seed
    }

    pub fn cells(&self) -> usize {
        self.cells.len()
    }

    /// One *independently salted* hash per partition. Double hashing
    /// (as the Bloom filter uses) would be cheaper, but with small
    /// partitions it collapses the index triple to a function of
    /// `(h1 mod part, h2 mod part)` — a space of only `part²/2`
    /// distinct triples — so two keys collide on *all* probes at
    /// birthday rates and entangle permanently, wrecking the peel.
    /// Independent hashes keep full-triple collisions at `part^-k`.
    #[inline]
    fn indices(&self, key: u128) -> [usize; IBLT_HASHES as usize] {
        let part = self.cells.len() / IBLT_HASHES as usize;
        let mut idx = [0usize; IBLT_HASHES as usize];
        for (i, slot) in idx.iter_mut().enumerate() {
            let salt = (i as u64 + 1).wrapping_mul(0x9e37_79b9_7f4a_7c15);
            let h = key_hash(key, self.seed ^ salt);
            *slot = i * part + (h % part as u64) as usize;
        }
        idx
    }

    #[inline]
    fn apply(&mut self, key: u128, delta: i64) {
        let check = key_check(key, self.seed);
        for i in self.indices(key) {
            let cell = &mut self.cells[i];
            cell.count += delta;
            cell.key_sum ^= key;
            cell.check_sum ^= check;
        }
    }

    pub fn insert(&mut self, key: u128) {
        self.apply(key, 1);
    }

    pub fn remove(&mut self, key: u128) {
        self.apply(key, -1);
    }

    /// Cell-wise difference `self - other`. Requires identical seed and
    /// geometry (both derive from the same negotiated sizing).
    pub fn subtract(&self, other: &Iblt) -> Result<Iblt, ReconError> {
        if self.seed != other.seed || self.cells.len() != other.cells.len() {
            return Err(ReconError::Mismatch);
        }
        let mut out = self.clone();
        for (c, o) in out.cells.iter_mut().zip(&other.cells) {
            c.count -= o.count;
            c.key_sum ^= o.key_sum;
            c.check_sum ^= o.check_sum;
        }
        Ok(out)
    }

    /// Peel a (typically subtracted) sketch down to the key sets on
    /// each side. Consumes the sketch — peeling is destructive.
    ///
    /// Returns `Err(DecodeFailed)` when the sketch was undersized for
    /// the actual difference; callers treat that as "fall back to a
    /// full exchange", never as corruption.
    pub fn decode(mut self) -> Result<DecodedDiff, ReconError> {
        let mut out = DecodedDiff::default();
        let mut work: Vec<usize> = (0..self.cells.len()).collect();
        // Guard against pathological inputs: each successful peel
        // strictly reduces sketch mass, so iterations are bounded.
        let mut budget = self.cells.len() * 8 + 64;
        while let Some(i) = work.pop() {
            if budget == 0 {
                return Err(ReconError::DecodeFailed);
            }
            budget -= 1;
            let cell = self.cells[i];
            if cell.count != 1 && cell.count != -1 {
                continue;
            }
            let key = cell.key_sum;
            if cell.check_sum != key_check(key, self.seed) {
                continue;
            }
            if cell.count == 1 {
                out.only_local.push(key);
            } else {
                out.only_remote.push(key);
            }
            let delta = -cell.count;
            self.apply(key, delta);
            // Removing the key may have made its other cells pure.
            for j in self.indices(key) {
                if j != i {
                    work.push(j);
                }
            }
        }
        if self.cells.iter().any(|c| !c.is_zero()) {
            return Err(ReconError::DecodeFailed);
        }
        out.only_local.sort_unstable();
        out.only_remote.sort_unstable();
        Ok(out)
    }

    /// Serialized size in bytes (exact).
    pub fn encoded_len(&self) -> usize {
        self.to_bytes().len()
    }

    pub fn encode(&self, out: &mut Vec<u8>) {
        out.push(IBLT_TAG);
        put_varint(out, self.seed);
        put_varint(out, self.cells.len() as u64);
        for c in &self.cells {
            put_signed(out, c.count);
            put_varint(out, c.key_sum as u64);
            put_varint(out, (c.key_sum >> 64) as u64);
            put_varint(out, c.check_sum);
        }
    }

    pub fn to_bytes(&self) -> Vec<u8> {
        // Empty cells cost 4 bytes; budget a little above that.
        let mut out = Vec::with_capacity(16 + self.cells.len() * 8);
        self.encode(&mut out);
        out
    }

    pub(crate) fn decode_bytes(cur: &mut Cursor<'_>) -> Result<Iblt, ReconError> {
        if cur.get_u8()? != IBLT_TAG {
            return Err(ReconError::Malformed);
        }
        let seed = cur.get_varint()?;
        let n = cur.get_count(MAX_IBLT_CELLS, MIN_CELL_BYTES)?;
        if n == 0 || n % IBLT_HASHES as usize != 0 {
            return Err(ReconError::Malformed);
        }
        let mut cells = Vec::with_capacity(n);
        for _ in 0..n {
            let count = cur.get_signed()?;
            let lo = cur.get_varint()? as u128;
            let hi = cur.get_varint()? as u128;
            let check_sum = cur.get_varint()?;
            cells.push(Cell {
                count,
                key_sum: (hi << 64) | lo,
                check_sum,
            });
        }
        Ok(Iblt { seed, cells })
    }

    pub fn from_bytes(buf: &[u8]) -> Result<Iblt, ReconError> {
        let mut cur = Cursor::new(buf);
        let t = Self::decode_bytes(&mut cur)?;
        if !cur.is_empty() {
            return Err(ReconError::Malformed);
        }
        Ok(t)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn key(i: u64) -> u128 {
        ((i as u128) << 64) | (i.wrapping_mul(0x9e37_79b9)) as u128
    }

    #[test]
    fn subtract_and_peel_recovers_symmetric_difference() {
        let seed = 42;
        let mut a = Iblt::for_expected_diff(16, seed);
        let mut b = Iblt::for_expected_diff(16, seed);
        // 200 shared keys, 5 only in a, 7 only in b.
        for i in 0..200 {
            a.insert(key(i));
            b.insert(key(i));
        }
        for i in 1000..1005 {
            a.insert(key(i));
        }
        for i in 2000..2007 {
            b.insert(key(i));
        }
        let diff = a.subtract(&b).unwrap().decode().unwrap();
        assert_eq!(diff.only_local.len(), 5);
        assert_eq!(diff.only_remote.len(), 7);
        let want_a: Vec<u128> = {
            let mut v: Vec<u128> = (1000..1005).map(key).collect();
            v.sort_unstable();
            v
        };
        assert_eq!(diff.only_local, want_a);
    }

    #[test]
    fn empty_difference_decodes_empty() {
        let mut a = Iblt::with_cells(12, 9);
        let mut b = Iblt::with_cells(12, 9);
        for i in 0..50 {
            a.insert(key(i));
            b.insert(key(i));
        }
        let diff = a.subtract(&b).unwrap().decode().unwrap();
        assert!(diff.is_empty());
    }

    #[test]
    fn undersized_sketch_fails_cleanly() {
        let mut a = Iblt::with_cells(6, 1);
        let b = Iblt::with_cells(6, 1);
        for i in 0..500 {
            a.insert(key(i));
        }
        assert!(matches!(
            a.subtract(&b).unwrap().decode(),
            Err(ReconError::DecodeFailed)
        ));
    }

    #[test]
    fn mismatched_geometry_rejected() {
        let a = Iblt::with_cells(12, 1);
        let b = Iblt::with_cells(24, 1);
        assert!(a.subtract(&b).is_err());
        let c = Iblt::with_cells(12, 2);
        assert!(a.subtract(&c).is_err());
    }

    #[test]
    fn roundtrip() {
        let mut a = Iblt::for_expected_diff(8, 77);
        for i in 0..30 {
            a.insert(key(i));
        }
        let bytes = a.to_bytes();
        assert_eq!(Iblt::from_bytes(&bytes).unwrap(), a);
    }

    #[test]
    fn insert_remove_cancels() {
        let mut a = Iblt::with_cells(12, 5);
        a.insert(key(1));
        a.insert(key(2));
        a.remove(key(1));
        let b = Iblt::with_cells(12, 5);
        let diff = a.subtract(&b).unwrap().decode().unwrap();
        assert_eq!(diff.only_local, vec![key(2)]);
        assert!(diff.only_remote.is_empty());
    }

    #[test]
    fn hostile_cell_count_rejected_before_allocation() {
        let mut buf = vec![IBLT_TAG];
        crate::codec::put_varint(&mut buf, 1);
        crate::codec::put_varint(&mut buf, (MAX_IBLT_CELLS as u64) * 2);
        assert!(Iblt::from_bytes(&buf).is_err());
    }

    #[test]
    fn deterministic_under_seed() {
        let build = || {
            let mut a = Iblt::for_expected_diff(10, 31);
            for i in 0..40 {
                a.insert(key(i));
            }
            a.to_bytes()
        };
        assert_eq!(build(), build());
    }
}
