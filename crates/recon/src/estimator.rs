//! Strata estimator: cheap upper-bound estimate of the symmetric
//! difference between two key sets, used to size the main IBLT when no
//! better signal (a cached snapshot of the peer's set) is available.
//!
//! Classic Eppstein et al. construction: each key lands in stratum
//! `trailing_zeros(hash(key))`, so stratum `i` samples the sets at rate
//! `2^-i`. Decoding strata top-down and scaling the first failure by
//! its sampling rate estimates the total difference. Each stratum is a
//! small fixed IBLT, so the whole estimator is a few KiB regardless of
//! set size.

use crate::codec::Cursor;
use crate::hash::key_hash;
use crate::iblt::Iblt;
use crate::ReconError;

/// Strata count: 2^16 scaling covers differences far beyond anything
/// the sync layer will meet in one encounter.
pub const STRATA: usize = 16;
/// Cells per stratum IBLT; decodes up to ~20 sampled keys reliably.
const STRATUM_CELLS: usize = 36;

const ESTIMATOR_TAG: u8 = 0x5E;
const SALT: u64 = 0x1f0a_dead_beef_cafe;

#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StrataEstimator {
    seed: u64,
    strata: Vec<Iblt>,
}

impl StrataEstimator {
    pub fn new(seed: u64) -> Self {
        StrataEstimator {
            seed,
            strata: (0..STRATA)
                .map(|i| Iblt::with_cells(STRATUM_CELLS, seed ^ (i as u64)))
                .collect(),
        }
    }

    pub fn seed(&self) -> u64 {
        self.seed
    }

    fn stratum_of(&self, key: u128) -> usize {
        let h = key_hash(key, self.seed ^ SALT);
        (h.trailing_zeros() as usize).min(STRATA - 1)
    }

    pub fn insert(&mut self, key: u128) {
        let s = self.stratum_of(key);
        self.strata[s].insert(key);
    }

    /// Estimate |A △ B| from this estimator (A) and a peer's (B). The
    /// estimate deliberately rounds up — oversizing the main IBLT costs
    /// a few bytes, undersizing costs a fallback round.
    pub fn estimate(&self, other: &StrataEstimator) -> Result<usize, ReconError> {
        if self.seed != other.seed || self.strata.len() != other.strata.len() {
            return Err(ReconError::Mismatch);
        }
        let mut count = 0usize;
        for i in (0..self.strata.len()).rev() {
            let sub = self.strata[i].subtract(&other.strata[i])?;
            match sub.decode() {
                Ok(diff) => count += diff.len(),
                Err(_) => {
                    // Stratum i failed to decode: everything at or
                    // below its sampling rate is unseen. Scale what we
                    // counted so far from the strata above it.
                    return Ok(((count.max(1)) << (i + 1)).max(count));
                }
            }
        }
        Ok(count)
    }

    pub fn encode(&self, out: &mut Vec<u8>) {
        out.push(ESTIMATOR_TAG);
        crate::codec::put_varint(out, self.seed);
        out.push(self.strata.len() as u8);
        for s in &self.strata {
            s.encode(out);
        }
    }

    pub fn to_bytes(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(STRATA * STRATUM_CELLS * 8);
        self.encode(&mut out);
        out
    }

    pub(crate) fn decode(cur: &mut Cursor<'_>) -> Result<StrataEstimator, ReconError> {
        if cur.get_u8()? != ESTIMATOR_TAG {
            return Err(ReconError::Malformed);
        }
        let seed = cur.get_varint()?;
        let n = cur.get_u8()? as usize;
        if n == 0 || n > STRATA {
            return Err(ReconError::Malformed);
        }
        let mut strata = Vec::with_capacity(n);
        for _ in 0..n {
            strata.push(Iblt::decode_bytes(cur)?);
        }
        Ok(StrataEstimator { seed, strata })
    }

    pub fn from_bytes(buf: &[u8]) -> Result<StrataEstimator, ReconError> {
        let mut cur = Cursor::new(buf);
        let e = Self::decode(&mut cur)?;
        if !cur.is_empty() {
            return Err(ReconError::Malformed);
        }
        Ok(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn key(i: u64) -> u128 {
        ((i as u128) << 64) | i.wrapping_mul(0x2545_f491_4f6c_dd1d) as u128
    }

    #[test]
    fn estimates_cover_true_difference() {
        for &diff in &[0usize, 3, 10, 40, 150] {
            let mut a = StrataEstimator::new(11);
            let mut b = StrataEstimator::new(11);
            for i in 0..1000u64 {
                a.insert(key(i));
                b.insert(key(i));
            }
            for i in 0..diff as u64 {
                a.insert(key(100_000 + i));
            }
            let est = a.estimate(&b).unwrap();
            // Must not undershoot by more than 2x (we size the IBLT
            // with 1.5x headroom on top), and not overshoot absurdly.
            assert!(est * 2 >= diff, "diff={diff} est={est}");
            assert!(est <= diff.max(1) * 32 + 64, "diff={diff} est={est}");
        }
    }

    #[test]
    fn roundtrip() {
        let mut e = StrataEstimator::new(5);
        for i in 0..200 {
            e.insert(key(i));
        }
        let bytes = e.to_bytes();
        assert_eq!(StrataEstimator::from_bytes(&bytes).unwrap(), e);
    }

    #[test]
    fn mismatched_seeds_rejected() {
        let a = StrataEstimator::new(1);
        let b = StrataEstimator::new(2);
        assert!(a.estimate(&b).is_err());
    }
}
