//! Seeded double-hashing Bloom filter over 128-bit keys.
//!
//! Used by the digest sync path as the *first-contact* summary: when a
//! peer has no cached knowledge snapshot to diff against, an IBLT
//! cannot be sized, but a Bloom over the target's known versions lets
//! the source screen its store with one compact structure. False
//! positives are resolved by an exact follow-up round, so they cost
//! bandwidth, never correctness.
//!
//! Sizing math (see `crates/recon/README.md`): for `n` items and `b`
//! bits per item the optimal hash count is `k = b·ln 2` and the false
//! positive rate is `(1 - e^{-kn/m})^k ≈ 0.6185^b`. Eight bits per
//! item gives ~2% FP; twelve gives ~0.3%.

use crate::codec::{put_varint, Cursor};
use crate::hash::DoubleHasher;
use crate::ReconError;

/// Hard cap on filter size accepted from the wire: 2^26 bits = 8 MiB.
pub const MAX_BLOOM_BITS: u64 = 1 << 26;
/// Hash-count bounds: k = 0 would accept everything, k > 16 is never
/// optimal for any sane bits-per-item.
pub const MAX_BLOOM_HASHES: u32 = 16;

const BLOOM_TAG: u8 = 0xB1;

#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Bloom {
    seed: u64,
    hashes: u32,
    bits: u64,
    items: u64,
    words: Vec<u64>,
}

impl Bloom {
    /// Build an empty filter sized for `items` keys at `bits_per_item`
    /// bits each. `bits_per_item` is clamped to `[1, 30]`.
    pub fn for_items(items: usize, bits_per_item: u32, seed: u64) -> Self {
        let bpi = bits_per_item.clamp(1, 30);
        let bits = ((items.max(1) as u64).saturating_mul(bpi as u64)).clamp(64, MAX_BLOOM_BITS);
        // k = bits_per_item * ln 2, at least one hash.
        let hashes =
            (((bpi as f64) * core::f64::consts::LN_2).round() as u32).clamp(1, MAX_BLOOM_HASHES);
        Bloom {
            seed,
            hashes,
            bits,
            items: 0,
            words: vec![0u64; bits.div_ceil(64) as usize],
        }
    }

    pub fn seed(&self) -> u64 {
        self.seed
    }

    pub fn bits(&self) -> u64 {
        self.bits
    }

    pub fn hashes(&self) -> u32 {
        self.hashes
    }

    /// Number of keys inserted so far.
    pub fn items(&self) -> u64 {
        self.items
    }

    pub fn insert(&mut self, key: u128) {
        let h = DoubleHasher::new(key, self.seed);
        for i in 0..self.hashes {
            let bit = h.nth(i) % self.bits;
            self.words[(bit / 64) as usize] |= 1u64 << (bit % 64);
        }
        self.items += 1;
    }

    pub fn contains(&self, key: u128) -> bool {
        let h = DoubleHasher::new(key, self.seed);
        for i in 0..self.hashes {
            let bit = h.nth(i) % self.bits;
            if self.words[(bit / 64) as usize] & (1u64 << (bit % 64)) == 0 {
                return false;
            }
        }
        true
    }

    /// Union with a filter of identical geometry and seed.
    pub fn merge(&mut self, other: &Bloom) -> Result<(), ReconError> {
        if self.seed != other.seed || self.hashes != other.hashes || self.bits != other.bits {
            return Err(ReconError::Mismatch);
        }
        for (w, o) in self.words.iter_mut().zip(&other.words) {
            *w |= o;
        }
        self.items += other.items;
        Ok(())
    }

    /// Fraction of bits set; the expected false-positive probability is
    /// `fill_ratio ^ hashes`.
    pub fn fill_ratio(&self) -> f64 {
        let set: u64 = self.words.iter().map(|w| w.count_ones() as u64).sum();
        set as f64 / self.bits as f64
    }

    /// Expected false-positive rate at the current fill level.
    pub fn false_positive_rate(&self) -> f64 {
        self.fill_ratio().powi(self.hashes as i32)
    }

    /// Serialized size in bytes (exact).
    pub fn encoded_len(&self) -> usize {
        let mut probe = Vec::with_capacity(32);
        put_varint(&mut probe, self.seed);
        put_varint(&mut probe, self.bits);
        put_varint(&mut probe, self.items);
        // tag + hashes byte + header varints + raw words
        2 + probe.len() + self.words.len() * 8
    }

    pub fn encode(&self, out: &mut Vec<u8>) {
        out.push(BLOOM_TAG);
        put_varint(out, self.seed);
        out.push(self.hashes as u8);
        put_varint(out, self.bits);
        put_varint(out, self.items);
        for w in &self.words {
            out.extend_from_slice(&w.to_le_bytes());
        }
    }

    pub fn to_bytes(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(self.encoded_len());
        self.encode(&mut out);
        out
    }

    pub(crate) fn decode(cur: &mut Cursor<'_>) -> Result<Bloom, ReconError> {
        if cur.get_u8()? != BLOOM_TAG {
            return Err(ReconError::Malformed);
        }
        let seed = cur.get_varint()?;
        let hashes = cur.get_u8()? as u32;
        if hashes == 0 || hashes > MAX_BLOOM_HASHES {
            return Err(ReconError::Malformed);
        }
        let bits = cur.get_varint()?;
        if bits == 0 || bits > MAX_BLOOM_BITS {
            return Err(ReconError::TooLarge);
        }
        let items = cur.get_varint()?;
        let word_count = bits.div_ceil(64) as usize;
        let mut words = Vec::with_capacity(word_count);
        for _ in 0..word_count {
            let mut raw = [0u8; 8];
            for b in raw.iter_mut() {
                *b = cur.get_u8()?;
            }
            words.push(u64::from_le_bytes(raw));
        }
        Ok(Bloom {
            seed,
            hashes,
            bits,
            items,
            words,
        })
    }

    pub fn from_bytes(buf: &[u8]) -> Result<Bloom, ReconError> {
        let mut cur = Cursor::new(buf);
        let b = Self::decode(&mut cur)?;
        if !cur.is_empty() {
            return Err(ReconError::Malformed);
        }
        Ok(b)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn keys(n: u64) -> impl Iterator<Item = u128> {
        (0..n).map(|i| (i as u128) << 64 | (i * 31) as u128)
    }

    #[test]
    fn no_false_negatives() {
        let mut b = Bloom::for_items(500, 10, 7);
        for k in keys(500) {
            b.insert(k);
        }
        for k in keys(500) {
            assert!(b.contains(k));
        }
    }

    #[test]
    fn false_positive_rate_is_sane() {
        let mut b = Bloom::for_items(1000, 10, 99);
        for k in keys(1000) {
            b.insert(k);
        }
        let fp = (1000..11_000)
            .map(|i| ((i as u128) << 64) | (i * 31) as u128)
            .filter(|&k| b.contains(k))
            .count();
        // 10 bits/item targets ~1%; allow generous slack.
        assert!(fp < 500, "false positives: {fp}/10000");
        assert!(b.false_positive_rate() < 0.05);
    }

    #[test]
    fn roundtrip() {
        let mut b = Bloom::for_items(100, 8, 3);
        for k in keys(100) {
            b.insert(k);
        }
        let bytes = b.to_bytes();
        assert_eq!(bytes.len(), b.encoded_len());
        assert_eq!(Bloom::from_bytes(&bytes).unwrap(), b);
    }

    #[test]
    fn merge_requires_matching_geometry() {
        let mut a = Bloom::for_items(100, 8, 3);
        let b = Bloom::for_items(100, 8, 4);
        assert!(a.merge(&b).is_err());
        let mut c = Bloom::for_items(100, 8, 3);
        let mut d = Bloom::for_items(100, 8, 3);
        c.insert(1);
        d.insert(2);
        c.merge(&d).unwrap();
        assert!(c.contains(1) && c.contains(2));
    }

    #[test]
    fn deterministic_under_seed() {
        let build = || {
            let mut b = Bloom::for_items(64, 9, 1234);
            for k in keys(64) {
                b.insert(k);
            }
            b.to_bytes()
        };
        assert_eq!(build(), build());
    }

    #[test]
    fn hostile_headers_do_not_allocate() {
        // Claims 2^40 bits: rejected by the cap before any allocation.
        let mut buf = vec![0xB1];
        crate::codec::put_varint(&mut buf, 7);
        buf.push(4);
        crate::codec::put_varint(&mut buf, 1 << 40);
        assert!(matches!(Bloom::from_bytes(&buf), Err(ReconError::TooLarge)));
    }
}
