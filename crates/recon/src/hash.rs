//! Seeded, deterministic hash primitives shared by the Bloom and IBLT
//! sketches.
//!
//! Everything in this crate must be reproducible across runs and across
//! peers that agree on a seed, so no `RandomState` or per-process keys:
//! the only entropy is the explicit `seed` argument. The mixer is the
//! splitmix64 finalizer, which is cheap, has full avalanche, and is
//! already used elsewhere in the workspace for deterministic seeding.

/// splitmix64 finalizer: full-avalanche 64-bit mixer.
#[inline]
pub fn mix64(mut x: u64) -> u64 {
    x ^= x >> 30;
    x = x.wrapping_mul(0xbf58_476d_1ce4_e5b9);
    x ^= x >> 27;
    x = x.wrapping_mul(0x94d0_49bb_1331_11eb);
    x ^= x >> 31;
    x
}

/// Collapse a 128-bit key and a seed into one well-mixed 64-bit hash.
#[inline]
pub fn key_hash(key: u128, seed: u64) -> u64 {
    let lo = key as u64;
    let hi = (key >> 64) as u64;
    mix64(mix64(lo ^ seed) ^ hi.wrapping_mul(0x9e37_79b9_7f4a_7c15))
}

/// Kirsch–Mitzenmacher double hashing: derive the i-th probe from two
/// base hashes, `h1 + i*h2`, with `h2` forced odd so successive probes
/// walk the whole (power-of-two or not) table.
#[derive(Clone, Copy)]
pub struct DoubleHasher {
    h1: u64,
    h2: u64,
}

impl DoubleHasher {
    #[inline]
    pub fn new(key: u128, seed: u64) -> Self {
        let h1 = key_hash(key, seed);
        let h2 = key_hash(key, seed ^ 0xa076_1d64_78bd_642f) | 1;
        DoubleHasher { h1, h2 }
    }

    /// The i-th probe value (reduce modulo table size at the call site).
    #[inline]
    pub fn nth(&self, i: u32) -> u64 {
        self.h1.wrapping_add((i as u64).wrapping_mul(self.h2))
    }
}

/// Per-key checksum used by IBLT cells to recognise pure (decodable)
/// cells. Salted differently from the index hashes so a key's checksum
/// is independent of its cell positions.
#[inline]
pub fn key_check(key: u128, seed: u64) -> u64 {
    key_hash(key, seed ^ 0xc3a5_c85c_97cb_3127)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mix64_is_deterministic_and_spreads() {
        assert_eq!(mix64(0), mix64(0));
        assert_ne!(mix64(1), mix64(2));
        // Single-bit inputs should not collide on low output bits.
        let mut seen = std::collections::HashSet::new();
        for i in 0..64u32 {
            assert!(seen.insert(mix64(1u64 << i) & 0xffff_ffff));
        }
    }

    #[test]
    fn key_hash_depends_on_both_halves_and_seed() {
        let k = (7u128 << 64) | 9;
        assert_ne!(key_hash(k, 1), key_hash(k, 2));
        assert_ne!(key_hash(k, 1), key_hash(k ^ 1, 1));
        assert_ne!(key_hash(k, 1), key_hash(k ^ (1 << 100), 1));
    }

    #[test]
    fn double_hasher_step_is_odd() {
        for key in [0u128, 1, u128::MAX, 1 << 77] {
            let h = DoubleHasher::new(key, 42);
            // Consecutive probes differ by the (odd) step everywhere.
            let step = h.nth(1).wrapping_sub(h.nth(0));
            assert_eq!(step % 2, 1);
            assert_eq!(h.nth(5).wrapping_sub(h.nth(4)), step);
        }
    }
}
