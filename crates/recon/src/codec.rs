//! Minimal self-contained wire helpers for the recon sketches.
//!
//! `crates/recon` sits *below* `pfr` in the dependency graph (pfr embeds
//! sketches in its sync messages), so it cannot borrow pfr's codec.
//! This is a deliberately tiny LEB128 varint layer with the same safety
//! posture as the rest of the workspace: every read is bounds-checked,
//! every length is validated against a hard cap before allocation, and
//! no input — however adversarial — may cause a panic. Decode fuzz
//! tests in `lib.rs` hold that line.

use crate::ReconError;

pub(crate) const MAX_VARINT_BYTES: usize = 10;

#[inline]
pub(crate) fn put_varint(out: &mut Vec<u8>, mut v: u64) {
    loop {
        let byte = (v & 0x7f) as u8;
        v >>= 7;
        if v == 0 {
            out.push(byte);
            return;
        }
        out.push(byte | 0x80);
    }
}

#[inline]
pub(crate) fn put_signed(out: &mut Vec<u8>, v: i64) {
    // zigzag: small magnitudes (either sign) stay short on the wire.
    put_varint(out, ((v << 1) ^ (v >> 63)) as u64);
}

/// Bounds-checked cursor over an input slice.
pub(crate) struct Cursor<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Cursor<'a> {
    pub(crate) fn new(buf: &'a [u8]) -> Self {
        Cursor { buf, pos: 0 }
    }

    pub(crate) fn is_empty(&self) -> bool {
        self.pos >= self.buf.len()
    }

    pub(crate) fn get_u8(&mut self) -> Result<u8, ReconError> {
        let b = *self.buf.get(self.pos).ok_or(ReconError::Truncated)?;
        self.pos += 1;
        Ok(b)
    }

    pub(crate) fn get_varint(&mut self) -> Result<u64, ReconError> {
        let mut v: u64 = 0;
        for i in 0..MAX_VARINT_BYTES {
            let byte = self.get_u8()?;
            let bits = (byte & 0x7f) as u64;
            // The 10th byte may only carry the final single bit.
            if i == MAX_VARINT_BYTES - 1 && bits > 1 {
                return Err(ReconError::Malformed);
            }
            v |= bits << (7 * i as u32);
            if byte & 0x80 == 0 {
                return Ok(v);
            }
        }
        Err(ReconError::Malformed)
    }

    pub(crate) fn get_signed(&mut self) -> Result<i64, ReconError> {
        let z = self.get_varint()?;
        Ok(((z >> 1) as i64) ^ -((z & 1) as i64))
    }

    /// Read a count that the caller will use to size an allocation.
    /// `max` is a hard structural cap; `min_elem_bytes` additionally
    /// bounds the count by the bytes actually remaining, so a hostile
    /// header cannot force a huge reservation.
    pub(crate) fn get_count(
        &mut self,
        max: usize,
        min_elem_bytes: usize,
    ) -> Result<usize, ReconError> {
        let n = self.get_varint()?;
        let n = usize::try_from(n).map_err(|_| ReconError::TooLarge)?;
        if n > max {
            return Err(ReconError::TooLarge);
        }
        let remaining = self.buf.len() - self.pos;
        if min_elem_bytes > 0 && n > remaining / min_elem_bytes {
            return Err(ReconError::Truncated);
        }
        Ok(n)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn varint_roundtrip() {
        let mut buf = Vec::new();
        for v in [0u64, 1, 127, 128, 300, u64::MAX, u64::MAX - 1] {
            buf.clear();
            put_varint(&mut buf, v);
            let mut c = Cursor::new(&buf);
            assert_eq!(c.get_varint().unwrap(), v);
            assert!(c.is_empty());
        }
    }

    #[test]
    fn signed_roundtrip() {
        let mut buf = Vec::new();
        for v in [0i64, 1, -1, 63, -64, i64::MAX, i64::MIN] {
            buf.clear();
            put_signed(&mut buf, v);
            let mut c = Cursor::new(&buf);
            assert_eq!(c.get_signed().unwrap(), v);
        }
    }

    #[test]
    fn overlong_varint_rejected() {
        let mut c = Cursor::new(&[0xff; 11]);
        assert!(c.get_varint().is_err());
    }

    #[test]
    fn count_is_bounded_by_remaining_bytes() {
        let mut buf = Vec::new();
        put_varint(&mut buf, 1_000_000);
        let mut c = Cursor::new(&buf);
        assert!(matches!(
            c.get_count(1 << 30, 4),
            Err(ReconError::Truncated)
        ));
    }
}
