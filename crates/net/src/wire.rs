//! Wire types for gossip membership exchange.
//!
//! A gossip exchange is one [`FrameType::Gossip`](transport::frame::FrameType)
//! frame each way: the dialer sends its [`GossipMessage`] (its full view of
//! the mesh), the answerer merges it and replies with its own. Entries
//! carry an *age* rather than a timestamp so no clock synchronization is
//! assumed: each hop re-ages entries against its local clock.

use pfr::wire::{Decode, Encode, Reader, WireError, Writer};

/// Liveness verdict a node holds about a peer.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum PeerStatus {
    /// Recently heard from (directly or through gossip).
    Alive = 0,
    /// Not heard from within the suspicion window; still disseminated so
    /// the suspicion propagates (and the peer can refute it by bumping
    /// its incarnation).
    Suspect = 1,
}

impl PeerStatus {
    fn from_tag(tag: u8) -> Result<PeerStatus, WireError> {
        match tag {
            0 => Ok(PeerStatus::Alive),
            1 => Ok(PeerStatus::Suspect),
            tag => Err(WireError::InvalidTag {
                what: "PeerStatus",
                tag,
            }),
        }
    }
}

/// One membership entry as it travels in a gossip frame.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct PeerWire {
    /// The peer's replica id (raw `u64`, 0 never valid).
    pub replica: u64,
    /// The peer's listen address, as a string so decode never fails on
    /// an unparseable address — it is validated at dial time instead.
    pub addr: String,
    /// The peer's incarnation number: bumped by the peer itself when it
    /// rejoins or refutes a suspicion. Higher incarnation always wins.
    pub incarnation: u64,
    /// The sender's verdict on this peer.
    pub status: PeerStatus,
    /// How long ago (milliseconds) the *sender* last confirmed this
    /// entry, re-aged at every hop.
    pub age_ms: u64,
}

impl Encode for PeerWire {
    fn encode(&self, w: &mut Writer) {
        w.put_varint(self.replica);
        w.put_str(&self.addr);
        w.put_varint(self.incarnation);
        w.put_u8(self.status as u8);
        w.put_varint(self.age_ms);
    }
}

impl Decode for PeerWire {
    fn decode(r: &mut Reader<'_>) -> Result<Self, WireError> {
        Ok(PeerWire {
            replica: r.get_varint()?,
            addr: r.get_str()?,
            incarnation: r.get_varint()?,
            status: PeerStatus::from_tag(r.get_u8()?)?,
            age_ms: r.get_varint()?,
        })
    }
}

/// One node's view of the mesh, the payload of a gossip frame.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct GossipMessage {
    /// The sender's own entry (always alive, age 0 by construction).
    pub sender: PeerWire,
    /// Every other member the sender tracks, suspects included.
    pub entries: Vec<PeerWire>,
}

impl Encode for GossipMessage {
    fn encode(&self, w: &mut Writer) {
        self.sender.encode(w);
        w.put_varint(self.entries.len() as u64);
        for entry in &self.entries {
            entry.encode(w);
        }
    }
}

impl Decode for GossipMessage {
    fn decode(r: &mut Reader<'_>) -> Result<Self, WireError> {
        let sender = PeerWire::decode(r)?;
        // A serialized entry is at least 5 bytes (varint replica, empty
        // string, varint incarnation, status byte, varint age), bounding
        // the allocation a lying count can force.
        let count = r.get_len(5)?;
        let mut entries = Vec::with_capacity(count);
        for _ in 0..count {
            entries.push(PeerWire::decode(r)?);
        }
        Ok(GossipMessage { sender, entries })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pfr::wire::{from_bytes, to_bytes};

    fn peer(replica: u64, addr: &str, inc: u64, status: PeerStatus, age: u64) -> PeerWire {
        PeerWire {
            replica,
            addr: addr.to_string(),
            incarnation: inc,
            status,
            age_ms: age,
        }
    }

    #[test]
    fn gossip_message_round_trips() {
        let msg = GossipMessage {
            sender: peer(1, "10.0.0.1:7000", 3, PeerStatus::Alive, 0),
            entries: vec![
                peer(2, "10.0.0.2:7000", 1, PeerStatus::Alive, 250),
                peer(9, "[::1]:9999", 7, PeerStatus::Suspect, 60_000),
            ],
        };
        let bytes = to_bytes(&msg);
        let decoded: GossipMessage = from_bytes(&bytes).unwrap();
        assert_eq!(decoded, msg);
        assert_eq!(to_bytes(&decoded), bytes, "re-encode is byte-identical");
    }

    #[test]
    fn invalid_status_tag_is_a_typed_error() {
        let msg = GossipMessage {
            sender: peer(1, "a:1", 0, PeerStatus::Alive, 0),
            entries: vec![],
        };
        let mut bytes = to_bytes(&msg);
        // The status byte of the sender entry is right before its age.
        let pos = bytes.len() - 3; // ... status, age(1B), count(1B)
        assert_eq!(bytes[pos], 0);
        bytes[pos] = 9;
        let err = from_bytes::<GossipMessage>(&bytes).unwrap_err();
        assert!(matches!(
            err,
            WireError::InvalidTag {
                what: "PeerStatus",
                tag: 9
            }
        ));
    }

    #[test]
    fn truncated_message_is_an_error_not_a_panic() {
        let msg = GossipMessage {
            sender: peer(1, "host:1", 2, PeerStatus::Alive, 0),
            entries: vec![peer(2, "host:2", 1, PeerStatus::Alive, 10)],
        };
        let bytes = to_bytes(&msg);
        for cut in 0..bytes.len() {
            assert!(from_bytes::<GossipMessage>(&bytes[..cut]).is_err());
        }
    }
}
