//! [`NetNode`]: a DTN node served by the async reactor.
//!
//! The high-fanout sibling of [`transport::Peer`]. One accept thread
//! feeds inbound connections to the reactor's worker pool (each parked as
//! an idle responder that can carry many back-to-back sessions); outbound
//! syncs are detached — [`NetNode::sync_detached`] registers the session
//! and returns a [`SessionTicket`] immediately, so one caller can hold
//! hundreds of sessions in flight. A gossip thread runs periodic
//! peer-exchange rounds against the membership view: seeds are dialed
//! until resolved, suspicion spreads and heals through incarnations, and
//! (optionally) an anti-entropy round-robin syncs with discovered members
//! so data flows over routes gossip found.

use std::io;
use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use dtn::DtnNode;
use obs::{Event, Obs};
use parking_lot::Mutex;
use pfr::{SimTime, SyncLimits};

use crate::membership::{Membership, MembershipConfig, PeerView};
use crate::poll::PollBackend;
use crate::reactor::{NetSessionResult, Reactor, ReactorConfig, SessionTicket, Shared};
use crate::session::{SessionError, SessionMachine};

/// Tunables for a [`NetNode`].
#[derive(Clone, Debug)]
pub struct NetConfig {
    /// Reactor worker threads.
    pub workers: usize,
    /// How workers discover ready sockets: edge-triggered epoll or the
    /// exhaustive sweep. Defaults from `REPLIDTN_POLL_BACKEND` when set,
    /// else the platform default (epoll on Linux).
    pub backend: PollBackend,
    /// Concurrent-session cap: inbound connections beyond it are refused,
    /// outbound registrations fail fast with
    /// [`SessionError::AtCapacity`].
    pub max_sessions: usize,
    /// Listen backlog requested for the accept socket (the kernel clamps
    /// it to `net.core.somaxconn`). Deep enough by default that a
    /// high-fanout dial burst never overflows into SYN retransmits.
    pub accept_backlog: usize,
    /// Per-session write-queue bound; a session over it stops reading
    /// until the queue drains (backpressure).
    pub write_queue_limit: usize,
    /// Idle responder connections past this are closed.
    pub idle_timeout: Duration,
    /// Sessions making no forward progress past this are failed.
    pub stall_timeout: Duration,
    /// Blocking TCP connect budget for outbound dials.
    pub connect_timeout: Duration,
    /// Gossip round period; [`Duration::ZERO`] disables the thread (rounds
    /// can still be driven manually with [`NetNode::gossip_now`]).
    pub gossip_interval: Duration,
    /// Membership tunables (fanout, suspicion, eviction, seed).
    pub gossip: MembershipConfig,
    /// Anti-entropy period: every interval, sync with one discovered
    /// member round-robin. [`Duration::ZERO`] disables it.
    pub anti_entropy_interval: Duration,
    /// Sync limits applied when serving peers.
    pub limits: SyncLimits,
}

impl Default for NetConfig {
    fn default() -> Self {
        NetConfig {
            workers: 2,
            backend: PollBackend::from_env(),
            max_sessions: 4096,
            accept_backlog: 1024,
            write_queue_limit: 256 * 1024,
            idle_timeout: Duration::from_secs(30),
            stall_timeout: Duration::from_secs(10),
            connect_timeout: Duration::from_secs(5),
            gossip_interval: Duration::from_secs(1),
            gossip: MembershipConfig::default(),
            anti_entropy_interval: Duration::ZERO,
            limits: SyncLimits::unlimited(),
        }
    }
}

/// Point-in-time reactor counters.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct NetStats {
    /// Sessions currently registered (in-flight plus parked responders).
    pub open_sessions: usize,
    /// High-water mark of concurrently open sessions.
    pub peak_sessions: usize,
    /// Sessions completed cleanly.
    pub completed: u64,
    /// Sessions that failed.
    pub failed: u64,
    /// Outbound sessions carried over a pooled connection.
    pub conn_reuses: u64,
    /// Backpressure episodes (write queue over its bound).
    pub backpressure_stalls: u64,
    /// Socket/poll syscalls issued by the reactor workers.
    pub syscalls: u64,
    /// Times a parked worker was woken to pick up enqueued sessions.
    pub wakeups: u64,
    /// Label of the readiness backend actually running (`"epoll"` or
    /// `"sweep"` — the requested backend resolved against the platform).
    pub backend: &'static str,
}

/// What one gossip round accomplished.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct GossipRoundStats {
    /// Peers dialed this round.
    pub dialed: usize,
    /// Exchanges that completed (both views merged).
    pub merged: usize,
    /// Dials that failed (targets marked suspect when identifiable).
    pub failed: usize,
    /// Members believed alive after the round.
    pub alive: usize,
    /// Members under suspicion after the round.
    pub suspect: usize,
    /// Membership entries newly learned this round.
    pub learned: u64,
}

/// A DTN node listening and dialing through the async reactor.
pub struct NetNode {
    node: Arc<Mutex<DtnNode>>,
    membership: Arc<Mutex<Membership>>,
    reactor: Reactor,
    accept_thread: Option<std::thread::JoinHandle<()>>,
    gossip_thread: Option<std::thread::JoinHandle<()>>,
    shutdown: Arc<AtomicBool>,
    local_addr: SocketAddr,
    config: NetConfig,
    obs: Obs,
    replica: u64,
}

impl NetNode {
    /// Binds `bind` and starts the reactor, the accept loop, and (when
    /// `gossip_interval` is nonzero) the gossip thread.
    ///
    /// # Errors
    ///
    /// Any I/O error binding the listener.
    pub fn start(node: DtnNode, bind: &str, config: NetConfig) -> io::Result<NetNode> {
        let listener = crate::listen::bind_listener(bind, config.accept_backlog as i32)?;
        listener.set_nonblocking(true)?;
        let local_addr = listener.local_addr()?;
        let replica = node.id().as_u64();
        let obs = node.replica().observer().clone();
        let node = Arc::new(Mutex::new(node));
        let membership = Arc::new(Mutex::new(Membership::new(
            replica,
            local_addr.to_string(),
            config.gossip.clone(),
        )));
        let reactor = Reactor::start(
            ReactorConfig {
                workers: config.workers,
                backend: config.backend,
                write_queue_limit: config.write_queue_limit,
                idle_timeout: config.idle_timeout,
                stall_timeout: config.stall_timeout,
                pool_idle: config.idle_timeout,
            },
            obs.clone(),
            replica,
        );
        let shutdown = Arc::new(AtomicBool::new(false));

        let accept_thread = {
            let shared = Arc::clone(reactor.shared());
            let node = Arc::clone(&node);
            let membership = Arc::clone(&membership);
            let shutdown = Arc::clone(&shutdown);
            let obs = obs.clone();
            let limits = config.limits;
            let max_sessions = config.max_sessions;
            std::thread::Builder::new()
                .name("net-accept".into())
                .spawn(move || {
                    accept_loop(
                        &listener,
                        &shared,
                        &node,
                        &membership,
                        &shutdown,
                        &obs,
                        limits,
                        max_sessions,
                        replica,
                    )
                })
                .expect("spawn accept thread")
        };

        let gossip_thread = if config.gossip_interval > Duration::ZERO {
            let shared = Arc::clone(reactor.shared());
            let node = Arc::clone(&node);
            let membership = Arc::clone(&membership);
            let shutdown = Arc::clone(&shutdown);
            let obs = obs.clone();
            let config = config.clone();
            Some(
                std::thread::Builder::new()
                    .name("net-gossip".into())
                    .spawn(move || {
                        gossip_loop(
                            &shared,
                            &node,
                            &membership,
                            &shutdown,
                            &obs,
                            &config,
                            replica,
                        )
                    })
                    .expect("spawn gossip thread"),
            )
        } else {
            None
        };

        Ok(NetNode {
            node,
            membership,
            reactor,
            accept_thread: Some(accept_thread),
            gossip_thread,
            shutdown,
            local_addr,
            config,
            obs,
            replica,
        })
    }

    /// The bound listen address.
    pub fn local_addr(&self) -> SocketAddr {
        self.local_addr
    }

    /// Runs a closure against the node under its lock.
    pub fn with_node<T>(&self, f: impl FnOnce(&mut DtnNode) -> T) -> T {
        f(&mut self.node.lock())
    }

    /// Registers a bootstrap peer address for gossip discovery.
    pub fn add_seed(&self, addr: impl Into<String>) {
        self.membership.lock().add_seed(addr);
    }

    /// A snapshot of the gossip membership view.
    pub fn membership(&self) -> Vec<PeerView> {
        self.membership.lock().view()
    }

    /// Current reactor counters.
    pub fn stats(&self) -> NetStats {
        let shared = self.reactor.shared();
        NetStats {
            open_sessions: shared.open.load(Ordering::Relaxed),
            peak_sessions: shared.peak.load(Ordering::Relaxed),
            completed: shared.completed.load(Ordering::Relaxed),
            failed: shared.failed.load(Ordering::Relaxed),
            conn_reuses: shared.reuses.load(Ordering::Relaxed),
            backpressure_stalls: shared.stalls.load(Ordering::Relaxed),
            syscalls: shared.syscalls.load(Ordering::Relaxed),
            wakeups: shared.wakeups.load(Ordering::Relaxed),
            backend: shared.backend().name(),
        }
    }

    /// Starts a detached sync session with `addr` and returns its ticket
    /// without waiting: the caller can hold many sessions in flight.
    ///
    /// # Errors
    ///
    /// [`SessionError::AtCapacity`] at the session cap, or
    /// [`SessionError::Io`] when the dial fails.
    pub fn sync_detached(&self, addr: &str, now: SimTime) -> Result<SessionTicket, SessionError> {
        let shared = self.reactor.shared();
        if shared.open_sessions() >= self.config.max_sessions {
            return Err(SessionError::AtCapacity);
        }
        let (stream, reused) = self.dial(addr)?;
        let (machine, out) = SessionMachine::sync_initiator(
            Arc::clone(&self.node),
            Arc::clone(&self.membership),
            self.config.limits,
            now,
            reused,
        )?;
        let ticket = SessionTicket::new();
        shared.register(
            stream,
            addr.to_string(),
            machine,
            out,
            Some(ticket.clone()),
            false,
            reused,
            self.obs.clone(),
            self.replica,
        );
        Ok(ticket)
    }

    /// Runs one full sync session with `addr`, blocking until it
    /// completes or fails.
    pub fn sync_with(&self, addr: &str, now: SimTime) -> NetSessionResult {
        match self.sync_detached(addr, now) {
            Ok(ticket) => ticket.wait(),
            Err(error) => NetSessionResult {
                report: Default::default(),
                error: Some(error),
            },
        }
    }

    /// Runs one synchronous gossip round: membership sweep, fanout dials,
    /// merge replies. The background thread does exactly this once per
    /// interval; tests and CLIs can drive rounds deterministically.
    pub fn gossip_now(&self) -> GossipRoundStats {
        gossip_round(
            self.reactor.shared(),
            &self.node,
            &self.membership,
            &self.obs,
            &self.config,
            self.replica,
        )
    }

    /// Stops the accept loop, gossip thread, and reactor, returning the
    /// node with everything it replicated.
    pub fn stop(mut self) -> DtnNode {
        self.shutdown.store(true, Ordering::SeqCst);
        if let Some(handle) = self.accept_thread.take() {
            let _ = handle.join();
        }
        if let Some(handle) = self.gossip_thread.take() {
            let _ = handle.join();
        }
        self.reactor.stop();
        // The threads have exited, so sessions no longer hold clones —
        // but finalization may lag a beat; spin until unique.
        let mut node_arc = Arc::clone(&self.node);
        drop(self);
        loop {
            match Arc::try_unwrap(node_arc) {
                Ok(mutex) => return mutex.into_inner(),
                Err(shared) => {
                    node_arc = shared;
                    std::thread::sleep(Duration::from_millis(5));
                }
            }
        }
    }

    /// Dials `addr`, pool-first: a pooled connection skips the TCP
    /// handshake entirely. Fresh dials block for at most
    /// `connect_timeout`, then flip nonblocking for the reactor.
    fn dial(&self, addr: &str) -> Result<(TcpStream, bool), SessionError> {
        let shared = self.reactor.shared();
        if let Some(stream) = shared.take_pooled(addr) {
            return Ok((stream, true));
        }
        let stream = connect(addr, self.config.connect_timeout).map_err(SessionError::Io)?;
        Ok((stream, false))
    }
}

/// Resolves and connects with a timeout, returning a nonblocking stream.
fn connect(addr: &str, timeout: Duration) -> io::Result<TcpStream> {
    let resolved = addr.to_socket_addrs()?.next().ok_or_else(|| {
        io::Error::new(io::ErrorKind::InvalidInput, "address resolved to nothing")
    })?;
    let stream = TcpStream::connect_timeout(&resolved, timeout)?;
    stream.set_nodelay(true)?;
    stream.set_nonblocking(true)?;
    Ok(stream)
}

#[allow(clippy::too_many_arguments)]
fn accept_loop(
    listener: &TcpListener,
    shared: &Arc<Shared>,
    node: &Arc<Mutex<DtnNode>>,
    membership: &Arc<Mutex<Membership>>,
    shutdown: &AtomicBool,
    obs: &Obs,
    limits: SyncLimits,
    max_sessions: usize,
    replica: u64,
) {
    // Event-driven parking under the epoll backend: block on listener
    // readiness instead of a fixed 2 ms nap, so a dial burst is drained
    // the moment it arrives. The loop accepts to `WouldBlock` before
    // waiting again, honouring the edge-trigger contract.
    #[cfg(target_os = "linux")]
    let mut poller = if shared.backend() == crate::poll::PollBackend::Epoll {
        use std::os::unix::io::AsRawFd;
        crate::poll::EpollPoller::new()
            .and_then(|poller| {
                poller.register(listener.as_raw_fd(), 0)?;
                Ok(poller)
            })
            .ok()
    } else {
        None
    };
    #[cfg(target_os = "linux")]
    let mut ready: Vec<usize> = Vec::new();

    while !shutdown.load(Ordering::SeqCst) {
        match listener.accept() {
            Ok((stream, _)) => {
                // At the cap, refuse instead of queueing unbounded work;
                // the remote sees a closed connection and backs off.
                if shared.open_sessions() >= max_sessions {
                    drop(stream);
                    continue;
                }
                if stream.set_nodelay(true).is_err() || stream.set_nonblocking(true).is_err() {
                    continue;
                }
                let machine =
                    SessionMachine::responder(Arc::clone(node), Arc::clone(membership), limits);
                shared.register(
                    stream,
                    String::new(),
                    machine,
                    Vec::new(),
                    None,
                    true,
                    false,
                    obs.clone(),
                    replica,
                );
            }
            Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                #[cfg(target_os = "linux")]
                if let Some(poller) = poller.as_mut() {
                    ready.clear();
                    // Bounded so the shutdown flag stays responsive.
                    if poller.wait(50, &mut ready).is_ok() {
                        continue;
                    }
                }
                std::thread::sleep(Duration::from_millis(2));
            }
            Err(_) => std::thread::sleep(Duration::from_millis(10)),
        }
    }
}

/// One gossip round: suspicion sweep, fanout dials, merge replies (the
/// session machines merge into the shared membership as replies land),
/// then the round event.
fn gossip_round(
    shared: &Arc<Shared>,
    node: &Arc<Mutex<DtnNode>>,
    membership: &Arc<Mutex<Membership>>,
    obs: &Obs,
    config: &NetConfig,
    replica: u64,
) -> GossipRoundStats {
    let now_ms = shared.now_ms();
    let targets = {
        let mut membership = membership.lock();
        membership.tick(now_ms);
        membership.fanout_targets()
    };
    let mut stats = GossipRoundStats {
        dialed: targets.len(),
        ..GossipRoundStats::default()
    };
    let mut tickets = Vec::with_capacity(targets.len());
    for addr in &targets {
        match gossip_dial(shared, node, membership, obs, config, replica, addr) {
            Ok(ticket) => tickets.push((addr.clone(), ticket)),
            Err(_) => {
                stats.failed += 1;
                mark_addr_failed(membership, addr);
            }
        }
    }
    for (addr, ticket) in tickets {
        let result = ticket.wait();
        if result.is_ok() {
            stats.merged += 1;
        } else {
            stats.failed += 1;
            mark_addr_failed(membership, &addr);
        }
    }
    {
        let mut membership = membership.lock();
        stats.alive = membership.alive_count();
        stats.suspect = membership.suspect_count();
        stats.learned = membership.take_learned();
    }
    let (fanout, alive, suspect, learned) = (
        stats.dialed as u64,
        stats.alive as u64,
        stats.suspect as u64,
        stats.learned,
    );
    obs.emit(|| Event::GossipRound {
        replica,
        fanout,
        alive,
        suspect,
        learned,
    });
    stats
}

/// Registers one outbound gossip exchange (pool-first, like syncs).
fn gossip_dial(
    shared: &Arc<Shared>,
    node: &Arc<Mutex<DtnNode>>,
    membership: &Arc<Mutex<Membership>>,
    obs: &Obs,
    config: &NetConfig,
    replica: u64,
    addr: &str,
) -> Result<SessionTicket, SessionError> {
    let (stream, reused) = match shared.take_pooled(addr) {
        Some(stream) => (stream, true),
        None => (
            connect(addr, config.connect_timeout).map_err(SessionError::Io)?,
            false,
        ),
    };
    let (machine, out) = SessionMachine::gossip_initiator(
        Arc::clone(node),
        Arc::clone(membership),
        shared.now_ms(),
        reused,
    )?;
    let ticket = SessionTicket::new();
    shared.register(
        stream,
        addr.to_string(),
        machine,
        out,
        Some(ticket.clone()),
        false,
        reused,
        obs.clone(),
        replica,
    );
    Ok(ticket)
}

/// A failed dial is first-hand evidence: suspect the member at that
/// address (unresolved seeds have no member yet — they just stay seeds).
fn mark_addr_failed(membership: &Arc<Mutex<Membership>>, addr: &str) {
    let mut membership = membership.lock();
    let failed: Vec<u64> = membership
        .view()
        .into_iter()
        .filter(|p| p.addr == addr)
        .map(|p| p.replica)
        .collect();
    for replica in failed {
        membership.observe_failed(replica);
    }
}

/// The background gossip driver: one round per interval, plus the
/// optional anti-entropy sync round-robin over discovered members.
fn gossip_loop(
    shared: &Arc<Shared>,
    node: &Arc<Mutex<DtnNode>>,
    membership: &Arc<Mutex<Membership>>,
    shutdown: &AtomicBool,
    obs: &Obs,
    config: &NetConfig,
    replica: u64,
) {
    let mut last_round = Instant::now() - config.gossip_interval;
    let mut last_ae = Instant::now();
    let mut ae_cursor = 0usize;
    while !shutdown.load(Ordering::SeqCst) {
        if last_round.elapsed() >= config.gossip_interval {
            last_round = Instant::now();
            gossip_round(shared, node, membership, obs, config, replica);
        }
        if config.anti_entropy_interval > Duration::ZERO
            && last_ae.elapsed() >= config.anti_entropy_interval
        {
            last_ae = Instant::now();
            anti_entropy_step(
                shared,
                node,
                membership,
                obs,
                config,
                replica,
                &mut ae_cursor,
            );
        }
        std::thread::sleep(Duration::from_millis(20));
    }
}

/// Route healing in action: syncs with the next live member discovered by
/// gossip, so data flows over routes the application never configured.
fn anti_entropy_step(
    shared: &Arc<Shared>,
    node: &Arc<Mutex<DtnNode>>,
    membership: &Arc<Mutex<Membership>>,
    obs: &Obs,
    config: &NetConfig,
    replica: u64,
    cursor: &mut usize,
) {
    let addrs = membership.lock().live_addrs();
    if addrs.is_empty() {
        return;
    }
    let addr = &addrs[*cursor % addrs.len()];
    *cursor = cursor.wrapping_add(1);
    let now = SimTime::from_secs(shared.now_ms() / 1000);
    let (stream, reused) = match shared.take_pooled(addr) {
        Some(stream) => (stream, true),
        None => match connect(addr, config.connect_timeout) {
            Ok(stream) => (stream, false),
            Err(_) => {
                mark_addr_failed(membership, addr);
                return;
            }
        },
    };
    let Ok((machine, out)) = SessionMachine::sync_initiator(
        Arc::clone(node),
        Arc::clone(membership),
        config.limits,
        now,
        reused,
    ) else {
        return;
    };
    shared.register(
        stream,
        addr.to_string(),
        machine,
        out,
        None,
        false,
        reused,
        obs.clone(),
        replica,
    );
}
