//! Readiness backends for the reactor: epoll or exhaustive sweep.
//!
//! The sweep backend (the original reactor loop) discovers readiness by
//! issuing a nonblocking syscall per live session per pass — O(sessions)
//! syscall cost and a fixed park interval as the idle-latency floor. The
//! epoll backend registers every session socket (edge-triggered) with an
//! `epoll(7)` instance per worker, so a worker blocks in `epoll_wait`
//! until a socket is actually readable/writable or new work arrives over
//! a socketpair waker — O(ready) wakeup cost and no park floor.
//!
//! Consistent with the workspace's offline, in-tree-shim policy, the
//! epoll binding is a minimal raw `extern "C"` FFI (`epoll_create1` /
//! `epoll_ctl` / `epoll_wait`) rather than an external crate; the waker
//! is a nonblocking `UnixStream` socketpair so no further FFI is needed.
//! On non-Linux platforms [`PollBackend::Epoll`] resolves to the sweep.

use std::sync::Arc;
use std::time::{Duration, Instant};

#[cfg(target_os = "linux")]
use std::io::{self, Read, Write};
#[cfg(target_os = "linux")]
use std::os::unix::io::RawFd;
#[cfg(target_os = "linux")]
use std::os::unix::net::UnixStream;

/// How reactor workers discover ready session sockets.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum PollBackend {
    /// Block in `epoll_wait(2)` until a registered socket is readable or
    /// writable (edge-triggered) or a waker fires: syscall cost scales
    /// with *ready* sessions, and idle workers sleep with no latency
    /// floor. Linux only; resolves to [`PollBackend::Sweep`] elsewhere.
    Epoll,
    /// Readiness by exhaustive sweep: every pass issues a nonblocking
    /// read/write per live session. Simple and portable, but syscall
    /// cost scales with *live* sessions. Kept as the A/B fallback.
    Sweep,
}

impl PollBackend {
    /// The platform default: epoll on Linux, sweep elsewhere.
    pub fn platform_default() -> PollBackend {
        if cfg!(target_os = "linux") {
            PollBackend::Epoll
        } else {
            PollBackend::Sweep
        }
    }

    /// Parses a backend name as spelled on the CLI (`epoll` / `sweep`).
    pub fn parse(name: &str) -> Option<PollBackend> {
        match name {
            "epoll" => Some(PollBackend::Epoll),
            "sweep" => Some(PollBackend::Sweep),
            _ => None,
        }
    }

    /// The backend selected by the `REPLIDTN_POLL_BACKEND` environment
    /// variable when set (CI sweeps both), else the platform default.
    pub fn from_env() -> PollBackend {
        std::env::var("REPLIDTN_POLL_BACKEND")
            .ok()
            .and_then(|v| PollBackend::parse(&v))
            .unwrap_or_else(PollBackend::platform_default)
    }

    /// Stable label for stats, events, and benchmark artifacts.
    pub fn name(self) -> &'static str {
        match self {
            PollBackend::Epoll => "epoll",
            PollBackend::Sweep => "sweep",
        }
    }

    /// What this backend resolves to on this platform (epoll falls back
    /// to the sweep off Linux).
    pub(crate) fn resolved(self) -> PollBackend {
        #[cfg(not(target_os = "linux"))]
        {
            return PollBackend::Sweep;
        }
        #[cfg(target_os = "linux")]
        self
    }
}

/// Wakes a parked reactor worker from any thread: a condvar for sweep
/// workers, a socketpair write (registered with the worker's epoll set)
/// for epoll workers.
#[derive(Clone)]
pub(crate) enum Waker {
    Cond(Arc<CondWaker>),
    #[cfg(target_os = "linux")]
    Pipe(Arc<PipeWaker>),
}

impl Waker {
    pub(crate) fn wake(&self) {
        match self {
            Waker::Cond(w) => w.wake(),
            #[cfg(target_os = "linux")]
            Waker::Pipe(w) => w.wake(),
        }
    }
}

/// Condvar-based parking for sweep workers: `park` blocks until `wake`
/// (or the timeout) instead of the old fixed `IDLE_PARK` sleep, so a
/// session enqueued onto an idle worker is picked up immediately.
///
/// std primitives: the workspace `parking_lot` shim has no Condvar.
pub(crate) struct CondWaker {
    flag: std::sync::Mutex<bool>,
    cond: std::sync::Condvar,
}

impl CondWaker {
    pub(crate) fn new() -> Arc<CondWaker> {
        Arc::new(CondWaker {
            flag: std::sync::Mutex::new(false),
            cond: std::sync::Condvar::new(),
        })
    }

    pub(crate) fn wake(&self) {
        let mut flag = self.flag.lock().expect("waker lock");
        if !*flag {
            *flag = true;
            self.cond.notify_one();
        }
    }

    /// Parks until woken — or until `timeout`, when the worker still has
    /// live sessions to sweep. The wake flag is consumed, and a wake that
    /// lands before the park returns immediately (no lost wakeups).
    pub(crate) fn park(&self, timeout: Option<Duration>) {
        let mut flag = self.flag.lock().expect("waker lock");
        match timeout {
            None => {
                while !*flag {
                    flag = self.cond.wait(flag).expect("waker lock");
                }
            }
            Some(timeout) => {
                let deadline = Instant::now() + timeout;
                while !*flag {
                    let left = deadline.saturating_duration_since(Instant::now());
                    if left.is_zero() {
                        break;
                    }
                    let (guard, _) = self.cond.wait_timeout(flag, left).expect("waker lock");
                    flag = guard;
                }
            }
        }
        *flag = false;
    }
}

/// The socketpair waker for epoll workers: `wake` writes one byte to the
/// send half; the receive half is registered with the worker's epoll set
/// and drained on wakeup. A full pipe means a wakeup is already pending,
/// so a `WouldBlock` on write is success, not failure.
#[cfg(target_os = "linux")]
pub(crate) struct PipeWaker {
    tx: UnixStream,
    rx: UnixStream,
}

#[cfg(target_os = "linux")]
impl PipeWaker {
    fn pair() -> io::Result<Arc<PipeWaker>> {
        let (tx, rx) = UnixStream::pair()?;
        tx.set_nonblocking(true)?;
        rx.set_nonblocking(true)?;
        Ok(Arc::new(PipeWaker { tx, rx }))
    }

    pub(crate) fn wake(&self) {
        let _ = (&self.tx).write(&[1]);
    }

    fn drain(&self) {
        let mut buf = [0u8; 64];
        while matches!((&self.rx).read(&mut buf), Ok(n) if n > 0) {}
    }

    fn raw_fd(&self) -> RawFd {
        use std::os::unix::io::AsRawFd;
        self.rx.as_raw_fd()
    }
}

/// Raw epoll FFI: the only kernel interface the backend needs. The
/// `epoll_event` layout is packed on x86 per the kernel ABI.
#[cfg(target_os = "linux")]
mod sys {
    #[cfg_attr(any(target_arch = "x86", target_arch = "x86_64"), repr(C, packed))]
    #[cfg_attr(not(any(target_arch = "x86", target_arch = "x86_64")), repr(C))]
    #[derive(Clone, Copy)]
    pub struct EpollEvent {
        pub events: u32,
        pub data: u64,
    }

    pub const EPOLL_CLOEXEC: i32 = 0o2000000;
    pub const EPOLL_CTL_ADD: i32 = 1;
    pub const EPOLL_CTL_DEL: i32 = 2;
    pub const EPOLLIN: u32 = 0x001;
    pub const EPOLLOUT: u32 = 0x004;
    pub const EPOLLRDHUP: u32 = 0x2000;
    pub const EPOLLET: u32 = 1 << 31;

    extern "C" {
        pub fn epoll_create1(flags: i32) -> i32;
        pub fn epoll_ctl(epfd: i32, op: i32, fd: i32, event: *mut EpollEvent) -> i32;
        pub fn epoll_wait(epfd: i32, events: *mut EpollEvent, maxevents: i32, timeout: i32) -> i32;
        pub fn close(fd: i32) -> i32;
    }
}

/// The token `wait` never returns: it marks the waker pipe's events.
#[cfg(target_os = "linux")]
const WAKER_TOKEN: u64 = u64::MAX;

/// Events fetched per `epoll_wait` call.
#[cfg(target_os = "linux")]
const WAIT_BATCH: usize = 256;

/// One worker's epoll instance: session sockets registered edge-triggered
/// under their slab token, plus the waker pipe under [`WAKER_TOKEN`].
#[cfg(target_os = "linux")]
pub(crate) struct EpollPoller {
    epfd: i32,
    waker: Arc<PipeWaker>,
    events: Vec<sys::EpollEvent>,
}

#[cfg(target_os = "linux")]
impl EpollPoller {
    pub(crate) fn new() -> io::Result<EpollPoller> {
        let epfd = unsafe { sys::epoll_create1(sys::EPOLL_CLOEXEC) };
        if epfd < 0 {
            return Err(io::Error::last_os_error());
        }
        let waker = match PipeWaker::pair() {
            Ok(waker) => waker,
            Err(e) => {
                unsafe { sys::close(epfd) };
                return Err(e);
            }
        };
        let poller = EpollPoller {
            epfd,
            waker,
            events: vec![sys::EpollEvent { events: 0, data: 0 }; WAIT_BATCH],
        };
        // The waker only ever becomes readable; edge-triggered is fine
        // because `drain` empties the pipe on every wakeup.
        poller.ctl_add(
            poller.waker.raw_fd(),
            WAKER_TOKEN,
            sys::EPOLLIN | sys::EPOLLET,
        )?;
        Ok(poller)
    }

    pub(crate) fn waker(&self) -> Arc<PipeWaker> {
        Arc::clone(&self.waker)
    }

    fn ctl_add(&self, fd: RawFd, token: u64, events: u32) -> io::Result<()> {
        let mut event = sys::EpollEvent {
            events,
            data: token,
        };
        if unsafe { sys::epoll_ctl(self.epfd, sys::EPOLL_CTL_ADD, fd, &mut event) } < 0 {
            return Err(io::Error::last_os_error());
        }
        Ok(())
    }

    /// Registers a session socket edge-triggered for both directions.
    /// The caller must drive the socket to `WouldBlock` after every
    /// wakeup (the re-arm contract of edge triggering).
    pub(crate) fn register(&self, fd: RawFd, token: usize) -> io::Result<()> {
        self.ctl_add(
            fd,
            token as u64,
            sys::EPOLLIN | sys::EPOLLOUT | sys::EPOLLRDHUP | sys::EPOLLET,
        )
    }

    /// Removes a socket from the interest list. Must run before the fd is
    /// handed to the connection pool: a pooled duplicate shares the file
    /// description, so closing the session's fd alone would NOT remove
    /// the registration and stale tokens would keep firing.
    pub(crate) fn deregister(&self, fd: RawFd) {
        let mut event = sys::EpollEvent { events: 0, data: 0 };
        unsafe { sys::epoll_ctl(self.epfd, sys::EPOLL_CTL_DEL, fd, &mut event) };
    }

    /// Blocks up to `timeout_ms` for readiness; pushes each ready
    /// session's token into `ready` (the waker token is consumed
    /// internally by draining the pipe).
    pub(crate) fn wait(&mut self, timeout_ms: i32, ready: &mut Vec<usize>) -> io::Result<()> {
        let n = loop {
            let n = unsafe {
                sys::epoll_wait(
                    self.epfd,
                    self.events.as_mut_ptr(),
                    self.events.len() as i32,
                    timeout_ms,
                )
            };
            if n >= 0 {
                break n as usize;
            }
            let err = io::Error::last_os_error();
            if err.kind() != io::ErrorKind::Interrupted {
                return Err(err);
            }
        };
        for event in &self.events[..n] {
            let token = event.data;
            if token == WAKER_TOKEN {
                self.waker.drain();
            } else {
                ready.push(token as usize);
            }
        }
        Ok(())
    }
}

#[cfg(target_os = "linux")]
impl Drop for EpollPoller {
    fn drop(&mut self) {
        unsafe { sys::close(self.epfd) };
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn backend_parsing_and_labels() {
        assert_eq!(PollBackend::parse("epoll"), Some(PollBackend::Epoll));
        assert_eq!(PollBackend::parse("sweep"), Some(PollBackend::Sweep));
        assert_eq!(PollBackend::parse("kqueue"), None);
        assert_eq!(PollBackend::Epoll.name(), "epoll");
        assert_eq!(PollBackend::Sweep.name(), "sweep");
        // The resolved backend is always runnable on this platform.
        let resolved = PollBackend::Epoll.resolved();
        if cfg!(target_os = "linux") {
            assert_eq!(resolved, PollBackend::Epoll);
        } else {
            assert_eq!(resolved, PollBackend::Sweep);
        }
    }

    #[test]
    fn cond_waker_wakes_before_and_after_park() {
        let waker = CondWaker::new();
        // Wake before park: the flag persists, park returns immediately.
        waker.wake();
        let start = Instant::now();
        waker.park(Some(Duration::from_secs(5)));
        assert!(start.elapsed() < Duration::from_secs(1));
        // Wake from another thread while parked.
        let w2 = Arc::clone(&waker);
        let handle = std::thread::spawn(move || {
            std::thread::sleep(Duration::from_millis(20));
            w2.wake();
        });
        let start = Instant::now();
        waker.park(None);
        assert!(start.elapsed() < Duration::from_secs(5));
        handle.join().unwrap();
    }

    #[cfg(target_os = "linux")]
    #[test]
    fn epoll_poller_sees_readable_sockets_and_waker() {
        use std::os::unix::io::AsRawFd;
        let mut poller = EpollPoller::new().expect("epoll");
        let (a, b) = UnixStream::pair().expect("socketpair");
        a.set_nonblocking(true).unwrap();
        b.set_nonblocking(true).unwrap();
        poller.register(a.as_raw_fd(), 7).expect("register");

        let mut ready = Vec::new();
        // Nothing readable yet (the socket is writable, so the first wait
        // reports the EPOLLOUT edge; drain it).
        poller.wait(0, &mut ready).expect("wait");
        ready.clear();
        (&b).write_all(b"x").unwrap();
        poller.wait(1000, &mut ready).expect("wait");
        assert_eq!(ready, vec![7]);

        // The waker wakes a blocked wait without yielding a token.
        ready.clear();
        let waker = poller.waker();
        let handle = std::thread::spawn(move || {
            std::thread::sleep(Duration::from_millis(20));
            waker.wake();
        });
        poller.wait(5_000, &mut ready).expect("wait");
        assert!(ready.is_empty(), "waker must not surface as a session");
        handle.join().unwrap();

        poller.deregister(a.as_raw_fd());
        (&b).write_all(b"y").unwrap();
        ready.clear();
        poller.wait(0, &mut ready).expect("wait");
        assert!(ready.is_empty(), "deregistered socket still firing");
    }
}
