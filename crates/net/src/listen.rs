//! Listener construction with a configurable accept backlog.
//!
//! `std::net::TcpListener::bind` hardcodes a listen backlog of 128. A
//! high-fanout dial burst overflows that in the window between two
//! schedulings of the accept thread, and every dropped SYN costs the
//! dialer a full one-second retransmit timer — three orders of
//! magnitude above any session's actual service time. On Linux the
//! socket is therefore built through the same minimal in-tree FFI
//! pattern as the epoll backend, with the requested backlog (the kernel
//! clamps it to `net.core.somaxconn`); IPv6 binds and other platforms
//! fall back to the std path unchanged.

use std::io;
use std::net::{SocketAddr, TcpListener, ToSocketAddrs};

/// Binds `bind` with the requested accept `backlog` where the platform
/// allows, falling back to `TcpListener::bind` (backlog 128) otherwise.
pub(crate) fn bind_listener(bind: &str, backlog: i32) -> io::Result<TcpListener> {
    let addr = resolve(bind)?;
    #[cfg(target_os = "linux")]
    if let SocketAddr::V4(v4) = addr {
        if let Ok(listener) = linux::bind_v4(v4, backlog) {
            return Ok(listener);
        }
    }
    let _ = backlog;
    TcpListener::bind(addr)
}

fn resolve(bind: &str) -> io::Result<SocketAddr> {
    bind.to_socket_addrs()?.next().ok_or_else(|| {
        io::Error::new(
            io::ErrorKind::InvalidInput,
            "bind address resolved to nothing",
        )
    })
}

#[cfg(target_os = "linux")]
mod linux {
    use std::io;
    use std::net::{SocketAddrV4, TcpListener};
    use std::os::unix::io::FromRawFd;

    /// `struct sockaddr_in`: port and address in network byte order.
    #[repr(C)]
    struct SockAddrIn {
        sin_family: u16,
        sin_port: u16,
        sin_addr: u32,
        sin_zero: [u8; 8],
    }

    const AF_INET: i32 = 2;
    const SOCK_STREAM: i32 = 1;
    const SOCK_CLOEXEC: i32 = 0o2000000;
    const SOL_SOCKET: i32 = 1;
    const SO_REUSEADDR: i32 = 2;

    extern "C" {
        fn socket(domain: i32, ty: i32, protocol: i32) -> i32;
        fn setsockopt(fd: i32, level: i32, name: i32, value: *const i32, len: u32) -> i32;
        fn bind(fd: i32, addr: *const SockAddrIn, len: u32) -> i32;
        fn listen(fd: i32, backlog: i32) -> i32;
        fn close(fd: i32) -> i32;
    }

    /// Closes the fd unless ownership was handed to a `TcpListener`.
    struct FdGuard(i32);

    impl Drop for FdGuard {
        fn drop(&mut self) {
            unsafe { close(self.0) };
        }
    }

    pub(super) fn bind_v4(addr: SocketAddrV4, backlog: i32) -> io::Result<TcpListener> {
        let fd = unsafe { socket(AF_INET, SOCK_STREAM | SOCK_CLOEXEC, 0) };
        if fd < 0 {
            return Err(io::Error::last_os_error());
        }
        let guard = FdGuard(fd);
        let one: i32 = 1;
        if unsafe { setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, 4) } < 0 {
            return Err(io::Error::last_os_error());
        }
        let sockaddr = SockAddrIn {
            sin_family: AF_INET as u16,
            sin_port: addr.port().to_be(),
            sin_addr: u32::from(*addr.ip()).to_be(),
            sin_zero: [0; 8],
        };
        let len = std::mem::size_of::<SockAddrIn>() as u32;
        if unsafe { bind(fd, &sockaddr, len) } < 0 {
            return Err(io::Error::last_os_error());
        }
        if unsafe { listen(fd, backlog) } < 0 {
            return Err(io::Error::last_os_error());
        }
        std::mem::forget(guard);
        Ok(unsafe { TcpListener::from_raw_fd(fd) })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::{Read, Write};
    use std::net::TcpStream;

    #[test]
    fn deep_backlog_listener_accepts_connections() {
        let listener = bind_listener("127.0.0.1:0", 1024).expect("bind");
        let addr = listener.local_addr().expect("addr");
        let mut client = TcpStream::connect(addr).expect("connect");
        client.write_all(b"ping").expect("write");
        let (mut accepted, _) = listener.accept().expect("accept");
        let mut buf = [0u8; 4];
        accepted.read_exact(&mut buf).expect("read");
        assert_eq!(&buf, b"ping");
    }
}
