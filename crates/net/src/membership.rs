//! Gossip membership: who is in the mesh, who is suspected dead, and
//! which peers to talk to next.
//!
//! The core is deliberately pure — no sockets, no wall clock. Callers
//! inject time as milliseconds and the fanout selection runs off a seeded
//! generator, so every membership behavior (convergence, suspicion,
//! refutation, rejoin) is reproducible in tests with virtual time. The
//! rules are SWIM-flavored:
//!
//! * **Incarnations.** Each node stamps its own entry with an incarnation
//!   number. Any statement about a peer at a *higher* incarnation
//!   replaces one at a lower; at *equal* incarnation, `Suspect` overrides
//!   `Alive` (suspicion must spread faster than stale liveness), and
//!   fresher evidence refreshes the entry.
//! * **Refutation.** A node that sees itself reported `Suspect` (or sees
//!   any claim about itself at ≥ its incarnation) bumps its own
//!   incarnation, and the next gossip round carries the refutation.
//!   A crashed node that rejoins re-enters the same way.
//! * **Aging.** Entries carry ages, not timestamps: no cross-node clock
//!   agreement is assumed. An entry not refreshed within
//!   `suspect_after` turns `Suspect`; one not refreshed within
//!   `evict_after` is evicted.

use std::collections::BTreeMap;
use std::time::Duration;

use crate::wire::{GossipMessage, PeerStatus, PeerWire};

/// Tunables for suspicion, eviction, and fanout selection.
#[derive(Clone, Debug)]
pub struct MembershipConfig {
    /// Age after which an unrefreshed member turns [`PeerStatus::Suspect`].
    pub suspect_after: Duration,
    /// Age after which a suspect is evicted from the view entirely.
    pub evict_after: Duration,
    /// Peers dialed per gossip round.
    pub fanout: usize,
    /// Seed for deterministic fanout selection.
    pub seed: u64,
}

impl Default for MembershipConfig {
    fn default() -> Self {
        MembershipConfig {
            suspect_after: Duration::from_secs(5),
            evict_after: Duration::from_secs(15),
            fanout: 3,
            seed: 1,
        }
    }
}

#[derive(Clone, Debug)]
struct Entry {
    addr: String,
    incarnation: u64,
    status: PeerStatus,
    /// Local-clock instant (ms) this entry was last confirmed.
    fresh_ms: u64,
}

/// A read-only snapshot of one membership entry.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct PeerView {
    /// The peer's replica id.
    pub replica: u64,
    /// The peer's listen address.
    pub addr: String,
    /// The peer's latest known incarnation.
    pub incarnation: u64,
    /// Current liveness verdict.
    pub status: PeerStatus,
}

/// What one suspicion/eviction sweep changed.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct TickReport {
    /// Members newly demoted to suspect this sweep.
    pub newly_suspect: Vec<u64>,
    /// Members evicted this sweep.
    pub evicted: Vec<u64>,
}

/// One node's view of the mesh membership.
#[derive(Debug)]
pub struct Membership {
    me_replica: u64,
    me_addr: String,
    incarnation: u64,
    peers: BTreeMap<u64, Entry>,
    /// Configured bootstrap addresses whose replica ids are not known
    /// yet; resolved (and dropped from here) once gossip reaches them.
    seeds: Vec<String>,
    config: MembershipConfig,
    rng: u64,
    learned_acc: u64,
}

impl Membership {
    /// A fresh membership view containing only ourselves.
    pub fn new(me_replica: u64, me_addr: impl Into<String>, config: MembershipConfig) -> Self {
        let seed = config.seed ^ me_replica.wrapping_mul(0x9E37_79B9_7F4A_7C15);
        Membership {
            me_replica,
            me_addr: me_addr.into(),
            incarnation: 0,
            peers: BTreeMap::new(),
            seeds: Vec::new(),
            config,
            rng: seed | 1,
            learned_acc: 0,
        }
    }

    fn next_rand(&mut self) -> u64 {
        // xorshift64*: cheap, deterministic, good enough for peer picks.
        let mut x = self.rng;
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        self.rng = x;
        x.wrapping_mul(0x2545_F491_4F6C_DD1D)
    }

    /// Registers a bootstrap address to gossip at until its replica id is
    /// learned. Our own address and duplicates are ignored.
    pub fn add_seed(&mut self, addr: impl Into<String>) {
        let addr = addr.into();
        if addr != self.me_addr && !self.seeds.contains(&addr) {
            self.seeds.push(addr);
        }
    }

    /// Our own replica id.
    pub fn me(&self) -> u64 {
        self.me_replica
    }

    /// Our current incarnation number.
    pub fn incarnation(&self) -> u64 {
        self.incarnation
    }

    /// Bumps our incarnation: called on rejoin after a crash so the new
    /// life outranks any stale `Suspect` claims still circulating.
    pub fn bump_incarnation(&mut self) {
        self.incarnation += 1;
    }

    /// Records direct, first-hand contact with a peer (a completed
    /// session or gossip exchange): the strongest possible freshness.
    pub fn observe_alive(&mut self, replica: u64, addr: &str, now_ms: u64) {
        if replica == self.me_replica {
            return;
        }
        self.seeds.retain(|s| s != addr);
        let learned = &mut self.learned_acc;
        let entry = self.peers.entry(replica).or_insert_with(|| {
            *learned += 1;
            Entry {
                addr: addr.to_string(),
                incarnation: 0,
                status: PeerStatus::Alive,
                fresh_ms: now_ms,
            }
        });
        entry.addr = addr.to_string();
        entry.status = PeerStatus::Alive;
        entry.fresh_ms = now_ms;
    }

    /// Records a failed dial to a peer: immediate suspicion, without
    /// waiting out the age window (first-hand evidence of trouble).
    pub fn observe_failed(&mut self, replica: u64) {
        if let Some(entry) = self.peers.get_mut(&replica) {
            entry.status = PeerStatus::Suspect;
        }
    }

    /// Builds the gossip message carrying our current view.
    pub fn message(&self, now_ms: u64) -> GossipMessage {
        GossipMessage {
            sender: PeerWire {
                replica: self.me_replica,
                addr: self.me_addr.clone(),
                incarnation: self.incarnation,
                status: PeerStatus::Alive,
                age_ms: 0,
            },
            entries: self
                .peers
                .iter()
                .map(|(&replica, e)| PeerWire {
                    replica,
                    addr: e.addr.clone(),
                    incarnation: e.incarnation,
                    status: e.status,
                    age_ms: now_ms.saturating_sub(e.fresh_ms),
                })
                .collect(),
        }
    }

    /// Merges a received view into ours, returning how many entries were
    /// newly learned. The sender itself counts as directly confirmed.
    pub fn merge(&mut self, msg: &GossipMessage, now_ms: u64) -> u64 {
        let before = self.learned_acc;
        self.observe_alive(msg.sender.replica, &msg.sender.addr, now_ms);
        if let Some(entry) = self.peers.get_mut(&msg.sender.replica) {
            // First-hand word from the sender about itself: adopt its
            // incarnation outright.
            if msg.sender.incarnation >= entry.incarnation {
                entry.incarnation = msg.sender.incarnation;
                entry.status = PeerStatus::Alive;
            }
        }
        for remote in &msg.entries {
            self.merge_entry(remote, now_ms);
        }
        self.learned_acc - before
    }

    fn merge_entry(&mut self, remote: &PeerWire, now_ms: u64) {
        if remote.replica == self.me_replica {
            // Gossip about us. A suspicion (or any claim at ≥ our
            // incarnation) is refuted by outliving it: bump and let the
            // next round carry the correction.
            if remote.status == PeerStatus::Suspect && remote.incarnation >= self.incarnation {
                self.incarnation = remote.incarnation + 1;
            }
            return;
        }
        let remote_fresh = now_ms.saturating_sub(remote.age_ms);
        match self.peers.get_mut(&remote.replica) {
            None => {
                self.seeds.retain(|s| s != &remote.addr);
                self.learned_acc += 1;
                self.peers.insert(
                    remote.replica,
                    Entry {
                        addr: remote.addr.clone(),
                        incarnation: remote.incarnation,
                        status: remote.status,
                        fresh_ms: remote_fresh,
                    },
                );
            }
            Some(entry) => {
                if remote.incarnation > entry.incarnation {
                    // A higher incarnation outranks everything we hold.
                    entry.incarnation = remote.incarnation;
                    entry.status = remote.status;
                    entry.addr = remote.addr.clone();
                    entry.fresh_ms = remote_fresh;
                } else if remote.incarnation == entry.incarnation {
                    // Equal incarnation: suspicion spreads, freshness
                    // refreshes.
                    if remote.status == PeerStatus::Suspect {
                        entry.status = PeerStatus::Suspect;
                    }
                    if remote_fresh > entry.fresh_ms {
                        entry.fresh_ms = remote_fresh;
                    }
                }
            }
        }
    }

    /// Runs the suspicion/eviction sweep against the local clock.
    pub fn tick(&mut self, now_ms: u64) -> TickReport {
        let suspect_ms = self.config.suspect_after.as_millis() as u64;
        let evict_ms = self.config.evict_after.as_millis() as u64;
        let mut report = TickReport::default();
        self.peers.retain(|&replica, entry| {
            let age = now_ms.saturating_sub(entry.fresh_ms);
            if age >= evict_ms {
                report.evicted.push(replica);
                return false;
            }
            if entry.status == PeerStatus::Alive && age >= suspect_ms {
                entry.status = PeerStatus::Suspect;
                report.newly_suspect.push(replica);
            }
            true
        });
        report
    }

    /// Picks this round's gossip targets: every still-unresolved seed
    /// (bootstrap must succeed before randomness matters), then random
    /// live members up to the configured fanout.
    pub fn fanout_targets(&mut self) -> Vec<String> {
        let mut targets: Vec<String> = self.seeds.clone();
        let mut candidates: Vec<String> = self
            .peers
            .values()
            .filter(|e| e.status == PeerStatus::Alive && !targets.contains(&e.addr))
            .map(|e| e.addr.clone())
            .collect();
        let want = self.config.fanout.max(targets.len());
        while targets.len() < want && !candidates.is_empty() {
            let pick = (self.next_rand() as usize) % candidates.len();
            targets.push(candidates.swap_remove(pick));
        }
        targets
    }

    /// Addresses of all members currently believed alive (the discovered
    /// view anti-entropy dials through).
    pub fn live_addrs(&self) -> Vec<String> {
        self.peers
            .values()
            .filter(|e| e.status == PeerStatus::Alive)
            .map(|e| e.addr.clone())
            .collect()
    }

    /// The listen address of a specific member, if known.
    pub fn addr_of(&self, replica: u64) -> Option<String> {
        self.peers.get(&replica).map(|e| e.addr.clone())
    }

    /// Full view snapshot (self excluded), replica-id ordered.
    pub fn view(&self) -> Vec<PeerView> {
        self.peers
            .iter()
            .map(|(&replica, e)| PeerView {
                replica,
                addr: e.addr.clone(),
                incarnation: e.incarnation,
                status: e.status,
            })
            .collect()
    }

    /// Members currently believed alive.
    pub fn alive_count(&self) -> usize {
        self.peers
            .values()
            .filter(|e| e.status == PeerStatus::Alive)
            .count()
    }

    /// Members currently under suspicion.
    pub fn suspect_count(&self) -> usize {
        self.peers
            .values()
            .filter(|e| e.status == PeerStatus::Suspect)
            .count()
    }

    /// Seeds not yet resolved to a member.
    pub fn unresolved_seeds(&self) -> usize {
        self.seeds.len()
    }

    /// Drains the entries-learned accumulator (feeds the per-round
    /// `gossip_round` event).
    pub fn take_learned(&mut self) -> u64 {
        std::mem::take(&mut self.learned_acc)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn config() -> MembershipConfig {
        MembershipConfig {
            suspect_after: Duration::from_millis(5_000),
            evict_after: Duration::from_millis(15_000),
            fanout: 3,
            seed: 42,
        }
    }

    #[test]
    fn views_converge_through_pairwise_merges() {
        // Five nodes, a knows only b; everyone gossips pairwise in rounds
        // along a ring until all views hold all five members.
        let mut nodes: Vec<Membership> = (1..=5)
            .map(|i| Membership::new(i, format!("n{i}:1"), config()))
            .collect();
        for (i, node) in nodes.iter_mut().enumerate() {
            let next_addr = format!("n{}:1", (i + 1) % 5 + 1);
            node.add_seed(next_addr);
        }
        // Simulated exchange: i sends to i+1, the reply merges back.
        let mut rounds = 0;
        loop {
            rounds += 1;
            for i in 0..5 {
                let j = (i + 1) % 5;
                let now = rounds * 100;
                let msg_i = nodes[i].message(now);
                nodes[j].merge(&msg_i, now);
                let msg_j = nodes[j].message(now);
                nodes[i].merge(&msg_j, now);
            }
            if nodes.iter().all(|n| n.view().len() == 4) {
                break;
            }
            assert!(rounds < 10, "membership failed to converge");
        }
        assert!(rounds <= 5, "ring convergence took {rounds} rounds");
    }

    #[test]
    fn unrefreshed_members_turn_suspect_then_evict() {
        let mut m = Membership::new(1, "a:1", config());
        m.observe_alive(2, "b:1", 0);
        assert_eq!(m.alive_count(), 1);
        let report = m.tick(5_000);
        assert_eq!(report.newly_suspect, vec![2]);
        assert_eq!(m.suspect_count(), 1);
        let report = m.tick(15_000);
        assert_eq!(report.evicted, vec![2]);
        assert_eq!(m.view().len(), 0);
    }

    #[test]
    fn suspicion_is_refuted_by_incarnation_bump() {
        let mut b = Membership::new(2, "b:1", config());
        // Someone gossips that b is suspect at b's current incarnation.
        let slander = GossipMessage {
            sender: PeerWire {
                replica: 3,
                addr: "c:1".into(),
                incarnation: 0,
                status: PeerStatus::Alive,
                age_ms: 0,
            },
            entries: vec![PeerWire {
                replica: 2,
                addr: "b:1".into(),
                incarnation: 0,
                status: PeerStatus::Suspect,
                age_ms: 100,
            }],
        };
        assert_eq!(b.incarnation(), 0);
        b.merge(&slander, 1_000);
        assert_eq!(b.incarnation(), 1, "suspicion refuted by outliving it");

        // The refutation overrides the suspicion in other views: higher
        // incarnation, alive.
        let mut a = Membership::new(1, "a:1", config());
        a.merge(&slander, 1_000);
        assert_eq!(a.suspect_count(), 1);
        let refutation = b.message(2_000);
        a.merge(&refutation, 2_000);
        assert_eq!(a.suspect_count(), 0);
        assert_eq!(a.alive_count(), 2);
        assert_eq!(
            a.view()
                .iter()
                .find(|p| p.replica == 2)
                .unwrap()
                .incarnation,
            1
        );
    }

    #[test]
    fn equal_incarnation_suspicion_spreads() {
        let mut a = Membership::new(1, "a:1", config());
        a.observe_alive(2, "b:1", 0);
        let rumor = GossipMessage {
            sender: PeerWire {
                replica: 3,
                addr: "c:1".into(),
                incarnation: 0,
                status: PeerStatus::Alive,
                age_ms: 0,
            },
            entries: vec![PeerWire {
                replica: 2,
                addr: "b:1".into(),
                incarnation: 0,
                status: PeerStatus::Suspect,
                age_ms: 50,
            }],
        };
        a.merge(&rumor, 100);
        assert_eq!(
            a.suspect_count(),
            1,
            "suspicion at equal incarnation spreads"
        );
    }

    #[test]
    fn fanout_is_deterministic_for_a_seed_and_bounded() {
        let build = || {
            let mut m = Membership::new(1, "a:1", config());
            for i in 2..=20u64 {
                m.observe_alive(i, &format!("n{i}:1"), 0);
            }
            m
        };
        let mut m1 = build();
        let mut m2 = build();
        let t1 = m1.fanout_targets();
        let t2 = m2.fanout_targets();
        assert_eq!(t1, t2, "same seed, same picks");
        assert_eq!(t1.len(), 3);
        let set: std::collections::BTreeSet<_> = t1.iter().collect();
        assert_eq!(set.len(), 3, "targets are distinct");
        // Consecutive rounds advance the generator.
        assert_ne!(m1.fanout_targets(), t1);
    }

    #[test]
    fn seeds_are_dialed_until_resolved() {
        let mut m = Membership::new(1, "a:1", config());
        m.add_seed("b:1");
        m.add_seed("b:1"); // duplicate ignored
        m.add_seed("a:1"); // self ignored
        assert_eq!(m.unresolved_seeds(), 1);
        assert_eq!(m.fanout_targets(), vec!["b:1".to_string()]);
        // Learning the seed's replica id resolves it.
        m.observe_alive(2, "b:1", 0);
        assert_eq!(m.unresolved_seeds(), 0);
        assert_eq!(m.fanout_targets(), vec!["b:1".to_string()]); // now as a member
    }

    #[test]
    fn learned_accumulator_counts_new_entries_once() {
        let mut m = Membership::new(1, "a:1", config());
        let msg = GossipMessage {
            sender: PeerWire {
                replica: 2,
                addr: "b:1".into(),
                incarnation: 0,
                status: PeerStatus::Alive,
                age_ms: 0,
            },
            entries: vec![PeerWire {
                replica: 3,
                addr: "c:1".into(),
                incarnation: 0,
                status: PeerStatus::Alive,
                age_ms: 10,
            }],
        };
        assert_eq!(m.merge(&msg, 100), 2);
        assert_eq!(m.merge(&msg, 200), 0, "repeats learn nothing");
        assert_eq!(m.take_learned(), 2);
        assert_eq!(m.take_learned(), 0);
    }

    #[test]
    fn rejoin_after_eviction_is_clean() {
        let mut a = Membership::new(1, "a:1", config());
        a.observe_alive(2, "b:1", 0);
        a.tick(20_000); // b evicted
        assert_eq!(a.view().len(), 0);
        // b rejoins with a bumped incarnation and is re-learned.
        let mut b = Membership::new(2, "b:1", config());
        b.bump_incarnation();
        a.merge(&b.message(21_000), 21_000);
        let view = a.view();
        assert_eq!(view.len(), 1);
        assert_eq!(view[0].status, PeerStatus::Alive);
        assert_eq!(view[0].incarnation, 1);
    }
}
