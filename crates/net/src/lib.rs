//! Async high-fanout transport core.
//!
//! The blocking [`transport`] stack dedicates a thread per session; this
//! crate multiplexes thousands of concurrent sync sessions onto a small
//! worker pool. Three layers:
//!
//! * [`session`] — the sync protocol (full and digest modes, both roles)
//!   as an explicit non-blocking state machine, byte-compatible with
//!   `transport::protocol` so async and blocking nodes interoperate.
//! * [`reactor`] — a readiness-loop reactor over nonblocking std TCP
//!   streams (no external async runtime): per-session frame accumulators,
//!   vectored-write outboxes with backpressure, idle/stall timeouts, and
//!   a connection pool for session reuse.
//! * [`poll`] — the readiness backends behind the reactor
//!   ([`PollBackend`]): an in-tree edge-triggered `epoll(7)` binding
//!   (workers block until sockets are actually ready) with the original
//!   exhaustive sweep as the selectable A/B fallback.
//! * [`membership`] + [`wire`] — gossip peer discovery: periodic
//!   peer-exchange rounds with seeded deterministic fanout, incarnation-
//!   based failure suspicion with refutation and rejoin, and route
//!   healing (dials go through the discovered view).
//!
//! [`NetNode`] ties them together as the drop-in high-fanout sibling of
//! [`transport::Peer`].

#![warn(missing_docs)]

pub(crate) mod listen;
pub mod membership;
pub mod node;
pub mod poll;
pub mod reactor;
pub mod session;
pub mod wire;

pub use membership::{Membership, MembershipConfig, PeerView, TickReport};
pub use node::{GossipRoundStats, NetConfig, NetNode, NetStats};
pub use poll::PollBackend;
pub use reactor::{NetSessionResult, SessionTicket};

pub use session::{Progress, SessionError, SessionMachine};
pub use wire::{GossipMessage, PeerStatus, PeerWire};
