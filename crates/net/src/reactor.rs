//! The readiness-loop reactor: many sessions, few threads.
//!
//! No external async runtime — each worker thread owns a set of sessions
//! over nonblocking std [`TcpStream`]s and drives them: flush the
//! session's outbox until the socket would block, read whatever bytes are
//! ready, feed complete frames to the [`SessionMachine`], repeat. A
//! session costs a few hundred bytes of state rather than a thread, so
//! thousands run concurrently on a handful of workers.
//!
//! *How* a worker learns which sessions to drive is the
//! [`PollBackend`]: the epoll backend registers every socket
//! edge-triggered with a per-worker `epoll(7)` instance and blocks in
//! `epoll_wait` until something is actually ready (syscalls scale with
//! ready sessions), while the sweep backend probes every live session
//! each pass (syscalls scale with live sessions) and parks on a condvar
//! when idle. Both run the same [`step`] function over the same session
//! state, so wire traffic is byte-identical — pinned by the differential
//! suite in `tests/backend_equivalence.rs`.
//!
//! Writes are batched: a session's outbox is a queue of encoded-frame
//! segments flushed with vectored [`Write::write_vectored`] submissions
//! (`writev(2)`), so one syscall drains many queued frames.
//!
//! Flow control is per session: the outbox is a bounded write queue — a
//! session whose queue is over its bound stops *reading* until it drains
//! (backpressure propagates to the peer through TCP). A session making no
//! forward progress past the stall timeout is failed; an idle pooled
//! responder past the idle timeout is closed. Completed outbound
//! connections return to a pool keyed by dial address for reuse.

use std::collections::VecDeque;
use std::io::{IoSlice, Read, Write};
use std::net::TcpStream;
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use obs::{Event, Obs};
use parking_lot::Mutex;
use transport::frame::{FrameAccum, FrameError};
use transport::SessionReport;

use crate::poll::{CondWaker, PollBackend, Waker};
use crate::session::{Progress, SessionError, SessionMachine};

#[cfg(target_os = "linux")]
use crate::poll::EpollPoller;

/// How many bytes one `read` call pulls at most.
const READ_BUF: usize = 16 * 1024;
/// Read calls per session per loop pass (fairness bound).
const READS_PER_PASS: usize = 8;
/// Sweep-backend park time when sessions exist but none progressed (the
/// sweep still has to probe them; an *empty* sweep worker parks on its
/// condvar with no floor at all).
const IDLE_PARK: Duration = Duration::from_micros(500);
/// Frame segments per vectored write submission.
const WRITEV_BATCH: usize = 16;
/// Recycled outbox segments kept per session, and the capacity above
/// which a segment is dropped instead of pooled.
const SEG_POOL: usize = 4;
const SEG_POOL_CAP: usize = 64 * 1024;
/// Epoll-backend deadline sweep period: how often parked sessions are
/// checked against idle/stall timeouts when no I/O wakes them.
#[cfg(target_os = "linux")]
const DEADLINE_TICK: Duration = Duration::from_millis(20);

/// Reactor tunables (filled in from [`crate::NetConfig`]).
#[derive(Clone, Debug)]
pub(crate) struct ReactorConfig {
    pub workers: usize,
    pub backend: PollBackend,
    pub write_queue_limit: usize,
    pub idle_timeout: Duration,
    pub stall_timeout: Duration,
    pub pool_idle: Duration,
}

/// The outcome of one reactor-driven session.
#[derive(Debug)]
pub struct NetSessionResult {
    /// Progress made before the session ended (possibly partial).
    pub report: SessionReport,
    /// The error that ended the session, or `None` on clean completion.
    pub error: Option<SessionError>,
}

impl NetSessionResult {
    /// True when the session completed cleanly.
    pub fn is_ok(&self) -> bool {
        self.error.is_none()
    }
}

struct TicketInner {
    // std primitives: the workspace `parking_lot` shim has no Condvar.
    result: std::sync::Mutex<Option<NetSessionResult>>,
    cond: std::sync::Condvar,
}

/// A handle to a detached session: resolves when the reactor finishes it.
#[derive(Clone)]
pub struct SessionTicket(Arc<TicketInner>);

impl SessionTicket {
    pub(crate) fn new() -> SessionTicket {
        SessionTicket(Arc::new(TicketInner {
            result: std::sync::Mutex::new(None),
            cond: std::sync::Condvar::new(),
        }))
    }

    pub(crate) fn resolve(&self, result: NetSessionResult) {
        let mut slot = self.0.result.lock().expect("ticket lock");
        if slot.is_none() {
            *slot = Some(result);
            self.0.cond.notify_all();
        }
    }

    /// Blocks until the session completes or fails.
    pub fn wait(&self) -> NetSessionResult {
        let mut slot = self.0.result.lock().expect("ticket lock");
        while slot.is_none() {
            slot = self.0.cond.wait(slot).expect("ticket lock");
        }
        slot.take().expect("resolved")
    }

    /// Non-blocking poll; returns the result at most once.
    pub fn try_take(&self) -> Option<NetSessionResult> {
        self.0.result.lock().expect("ticket lock").take()
    }
}

impl std::fmt::Debug for SessionTicket {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SessionTicket").finish_non_exhaustive()
    }
}

/// Outbox: a queue of encoded-frame segments flushed with vectored
/// writes, so one `writev` syscall drains up to [`WRITEV_BATCH`] queued
/// frames. Drained segments are recycled through a small per-session
/// pool, so a long-lived responder stops allocating.
#[derive(Default)]
struct OutBuf {
    segs: VecDeque<Vec<u8>>,
    /// Consumed prefix of the front segment (partial writes do not
    /// memmove the remainder).
    pos: usize,
    pending: usize,
    pool: Vec<Vec<u8>>,
}

enum FlushStatus {
    /// Everything queued hit the socket.
    Drained,
    /// The socket would block; bytes remain queued.
    Blocked,
}

impl OutBuf {
    fn pending(&self) -> usize {
        self.pending
    }

    /// A recycled (or fresh) segment for the machine to encode into.
    fn take_seg(&mut self) -> Vec<u8> {
        self.pool.pop().unwrap_or_default()
    }

    /// Queues a filled segment; empty ones go straight back to the pool.
    fn push_seg(&mut self, seg: Vec<u8>) {
        if seg.is_empty() {
            self.recycle(seg);
        } else {
            self.pending += seg.len();
            self.segs.push_back(seg);
        }
    }

    fn recycle(&mut self, mut seg: Vec<u8>) {
        if self.pool.len() < SEG_POOL && seg.capacity() <= SEG_POOL_CAP {
            seg.clear();
            self.pool.push(seg);
        }
    }

    fn advance(&mut self, mut n: usize) {
        self.pending -= n;
        while n > 0 {
            let left = self.segs.front().expect("advance past queue").len() - self.pos;
            if n >= left {
                n -= left;
                self.pos = 0;
                let seg = self.segs.pop_front().expect("advance past queue");
                self.recycle(seg);
            } else {
                self.pos += n;
                n = 0;
            }
        }
    }

    /// Flushes queued segments with vectored writes until the queue is
    /// empty or the socket would block. `Ok(0)` from the socket surfaces
    /// as [`SessionError::Eof`].
    fn flush(
        &mut self,
        stream: &TcpStream,
        syscalls: &mut u64,
        moved: &mut bool,
    ) -> Result<FlushStatus, SessionError> {
        const EMPTY: &[u8] = &[];
        while self.pending > 0 {
            let mut slices = [IoSlice::new(EMPTY); WRITEV_BATCH];
            let mut count = 0;
            for (i, seg) in self.segs.iter().take(WRITEV_BATCH).enumerate() {
                slices[i] = if i == 0 {
                    IoSlice::new(&seg[self.pos..])
                } else {
                    IoSlice::new(seg)
                };
                count = i + 1;
            }
            *syscalls += 1;
            match (&*stream).write_vectored(&slices[..count]) {
                Ok(0) => return Err(SessionError::Eof),
                Ok(n) => {
                    self.advance(n);
                    *moved = true;
                }
                Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                    return Ok(FlushStatus::Blocked)
                }
                Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
                Err(e) => return Err(SessionError::Io(e)),
            }
        }
        Ok(FlushStatus::Drained)
    }
}

/// One registered connection and its protocol state.
pub(crate) struct Session {
    stream: TcpStream,
    /// Dial address, for returning the connection to the pool; empty for
    /// inbound connections.
    addr: String,
    machine: SessionMachine,
    accum: FrameAccum,
    out: OutBuf,
    ticket: Option<SessionTicket>,
    inbound: bool,
    last_progress: Instant,
    stalled: bool,
    /// Machine finished; flush the outbox, then finalize.
    finished: bool,
    /// When the session was handed to its worker queue (consumed by the
    /// wakeup-latency measurement on first pickup).
    enqueued_at: Instant,
    obs: Obs,
    replica: u64,
}

struct PooledConn {
    stream: TcpStream,
    addr: String,
    idle_since: Instant,
}

/// State shared between the reactor handle and its workers.
pub(crate) struct Shared {
    config: ReactorConfig,
    /// The backend actually running (the requested one resolved against
    /// the platform, with epoll falling back to sweep on setup failure).
    backend: PollBackend,
    shutdown: AtomicBool,
    queues: Vec<Mutex<Vec<Session>>>,
    /// One waker per worker: parked workers resume when a session lands
    /// on their queue (condvar for sweep, socketpair write for epoll).
    wakers: Vec<Waker>,
    next_queue: AtomicUsize,
    pool: Mutex<VecDeque<PooledConn>>,
    epoch: Instant,
    obs: Obs,
    replica: u64,
    pub(crate) open: AtomicUsize,
    pub(crate) peak: AtomicUsize,
    pub(crate) completed: AtomicU64,
    pub(crate) failed: AtomicU64,
    pub(crate) reuses: AtomicU64,
    pub(crate) stalls: AtomicU64,
    pub(crate) syscalls: AtomicU64,
    pub(crate) wakeups: AtomicU64,
}

impl Shared {
    /// Milliseconds since the reactor started: the monotonic clock the
    /// membership layer ages entries against.
    pub(crate) fn now_ms(&self) -> u64 {
        self.epoch.elapsed().as_millis() as u64
    }

    /// The readiness backend actually driving the workers.
    pub(crate) fn backend(&self) -> PollBackend {
        self.backend
    }

    /// Pops a pooled connection to `addr`, pruning stale entries.
    pub(crate) fn take_pooled(&self, addr: &str) -> Option<TcpStream> {
        let mut pool = self.pool.lock();
        let now = Instant::now();
        pool.retain(|c| now.duration_since(c.idle_since) < self.config.pool_idle);
        let idx = pool.iter().position(|c| c.addr == addr)?;
        pool.remove(idx).map(|c| c.stream)
    }

    fn give_pooled(&self, addr: String, stream: TcpStream) {
        if addr.is_empty() {
            return;
        }
        self.pool.lock().push_back(PooledConn {
            stream,
            addr,
            idle_since: Instant::now(),
        });
    }

    /// Registers a session with the next worker round-robin and wakes
    /// that worker. The stream must already be nonblocking.
    #[allow(clippy::too_many_arguments)]
    pub(crate) fn register(
        &self,
        stream: TcpStream,
        addr: String,
        machine: SessionMachine,
        initial_out: Vec<u8>,
        ticket: Option<SessionTicket>,
        inbound: bool,
        reused: bool,
        obs: Obs,
        replica: u64,
    ) {
        if reused {
            self.reuses.fetch_add(1, Ordering::Relaxed);
        }
        let mut out = OutBuf::default();
        out.push_seg(initial_out);
        let session = Session {
            stream,
            addr,
            machine,
            accum: FrameAccum::new(),
            out,
            ticket,
            inbound,
            last_progress: Instant::now(),
            stalled: false,
            finished: false,
            enqueued_at: Instant::now(),
            obs,
            replica,
        };
        let open = self.open.fetch_add(1, Ordering::Relaxed) + 1;
        self.peak.fetch_max(open, Ordering::Relaxed);
        let idx = self.next_queue.fetch_add(1, Ordering::Relaxed) % self.queues.len();
        self.queues[idx].lock().push(session);
        self.wakers[idx].wake();
    }

    pub(crate) fn open_sessions(&self) -> usize {
        self.open.load(Ordering::Relaxed)
    }
}

/// How one worker discovers readiness: its half of the A/B switch.
enum WorkerPoller {
    Sweep(Arc<CondWaker>),
    #[cfg(target_os = "linux")]
    Epoll(EpollPoller),
}

impl WorkerPoller {
    fn waker(&self) -> Waker {
        match self {
            WorkerPoller::Sweep(w) => Waker::Cond(Arc::clone(w)),
            #[cfg(target_os = "linux")]
            WorkerPoller::Epoll(p) => Waker::Pipe(p.waker()),
        }
    }
}

/// The worker pool driving every registered session.
pub(crate) struct Reactor {
    shared: Arc<Shared>,
    workers: Vec<std::thread::JoinHandle<()>>,
}

impl Reactor {
    pub(crate) fn start(config: ReactorConfig, obs: Obs, replica: u64) -> Reactor {
        let workers = config.workers.max(1);
        let (backend, pollers) = build_pollers(config.backend, workers);
        let wakers = pollers.iter().map(WorkerPoller::waker).collect();
        let shared = Arc::new(Shared {
            config,
            backend,
            shutdown: AtomicBool::new(false),
            queues: (0..workers).map(|_| Mutex::new(Vec::new())).collect(),
            wakers,
            next_queue: AtomicUsize::new(0),
            pool: Mutex::new(VecDeque::new()),
            epoch: Instant::now(),
            obs,
            replica,
            open: AtomicUsize::new(0),
            peak: AtomicUsize::new(0),
            completed: AtomicU64::new(0),
            failed: AtomicU64::new(0),
            reuses: AtomicU64::new(0),
            stalls: AtomicU64::new(0),
            syscalls: AtomicU64::new(0),
            wakeups: AtomicU64::new(0),
        });
        let handles = pollers
            .into_iter()
            .enumerate()
            .map(|(w, poller)| {
                let shared = Arc::clone(&shared);
                std::thread::Builder::new()
                    .name(format!("net-worker-{w}"))
                    .spawn(move || match poller {
                        WorkerPoller::Sweep(waker) => sweep_loop(&shared, w, &waker),
                        #[cfg(target_os = "linux")]
                        WorkerPoller::Epoll(poller) => epoll_loop(&shared, w, poller),
                    })
                    .expect("spawn net worker")
            })
            .collect();
        Reactor {
            shared,
            workers: handles,
        }
    }

    pub(crate) fn shared(&self) -> &Arc<Shared> {
        &self.shared
    }

    /// Stops the workers, failing every session still in flight.
    pub(crate) fn stop(&mut self) {
        self.shared.shutdown.store(true, Ordering::SeqCst);
        for waker in &self.shared.wakers {
            waker.wake();
        }
        for handle in self.workers.drain(..) {
            let _ = handle.join();
        }
    }
}

impl Drop for Reactor {
    fn drop(&mut self) {
        self.stop();
    }
}

/// Builds one poller per worker for the requested backend, falling back
/// to the sweep when epoll setup fails (fd exhaustion, odd platforms).
fn build_pollers(requested: PollBackend, workers: usize) -> (PollBackend, Vec<WorkerPoller>) {
    #[cfg(target_os = "linux")]
    if requested.resolved() == PollBackend::Epoll {
        let mut pollers = Vec::with_capacity(workers);
        for _ in 0..workers {
            match EpollPoller::new() {
                Ok(poller) => pollers.push(WorkerPoller::Epoll(poller)),
                Err(_) => {
                    pollers.clear();
                    break;
                }
            }
        }
        if pollers.len() == workers {
            return (PollBackend::Epoll, pollers);
        }
    }
    let _ = requested;
    let pollers = (0..workers)
        .map(|_| WorkerPoller::Sweep(CondWaker::new()))
        .collect();
    (PollBackend::Sweep, pollers)
}

/// What one step decided about a session's future.
enum Verdict {
    /// Still running; keep it registered.
    Keep,
    /// Finished cleanly; the connection may return to the pool.
    Finished,
    /// Closed without error (EOF on an idle responder, idle timeout).
    Closed,
    /// Failed with an error.
    Failed(SessionError),
}

/// What one step observed beyond the verdict.
struct StepOutcome {
    /// Bytes moved in either direction (the sweep's idle heuristic).
    moved: bool,
    /// The socket was driven to `WouldBlock`/EOF in the read direction.
    /// Under edge-triggered epoll a session that stopped early (fairness
    /// bound) must be re-stepped without waiting for an edge.
    drained: bool,
}

/// Per-worker telemetry: syscall/wakeup deltas accumulated locally and
/// flushed to the shared counters plus one `net_poll` event per wakeup
/// batch (and a final flush at shutdown).
struct PollTelemetry {
    backend: &'static str,
    syscalls: u64,
    wakeups: u64,
    woken: u64,
    max_latency_us: u64,
}

impl PollTelemetry {
    fn new(backend: PollBackend) -> PollTelemetry {
        PollTelemetry {
            backend: backend.name(),
            syscalls: 0,
            wakeups: 0,
            woken: 0,
            max_latency_us: 0,
        }
    }

    /// Records one wakeup that picked up `sessions` (measuring each
    /// session's enqueue→pickup latency), then emits the batch.
    fn on_wakeup(&mut self, shared: &Shared, sessions: &[Session]) {
        self.wakeups += 1;
        shared.wakeups.fetch_add(1, Ordering::Relaxed);
        for session in sessions {
            let us = session.enqueued_at.elapsed().as_micros() as u64;
            self.max_latency_us = self.max_latency_us.max(us);
            self.woken += 1;
        }
        self.emit(shared);
    }

    /// Adds a syscall delta to the shared counter and the pending event.
    fn add_syscalls(&mut self, shared: &Shared, n: u64) {
        if n > 0 {
            self.syscalls += n;
            shared.syscalls.fetch_add(n, Ordering::Relaxed);
        }
    }

    fn emit(&mut self, shared: &Shared) {
        if self.syscalls == 0 && self.wakeups == 0 {
            return;
        }
        let (backend, syscalls, wakeups, woken, latency) = (
            self.backend,
            self.syscalls,
            self.wakeups,
            self.woken,
            self.max_latency_us,
        );
        let replica = shared.replica;
        shared.obs.emit(|| Event::NetPoll {
            replica,
            backend,
            syscalls,
            wakeups,
            woken,
            wakeup_latency_us: latency,
        });
        self.syscalls = 0;
        self.wakeups = 0;
        self.woken = 0;
        self.max_latency_us = 0;
    }
}

/// The sweep backend: probe every live session each pass. Idle workers
/// park on their condvar until a session is enqueued (no latency floor);
/// workers with live-but-quiet sessions park for [`IDLE_PARK`] between
/// probe passes.
fn sweep_loop(shared: &Shared, index: usize, waker: &CondWaker) {
    let mut local: Vec<Session> = Vec::new();
    let mut read_buf = vec![0u8; READ_BUF];
    let mut telemetry = PollTelemetry::new(PollBackend::Sweep);
    loop {
        if shared.shutdown.load(Ordering::SeqCst) {
            local.append(&mut shared.queues[index].lock());
            for mut session in local.drain(..) {
                finalize(shared, &mut session, Verdict::Failed(SessionError::Eof));
            }
            telemetry.emit(shared);
            return;
        }
        {
            let mut queue = shared.queues[index].lock();
            if !queue.is_empty() {
                let first_new = local.len();
                local.append(&mut queue);
                drop(queue);
                telemetry.on_wakeup(shared, &local[first_new..]);
            }
        }
        let mut syscalls = 0u64;
        let mut progressed = false;
        let mut i = 0;
        while i < local.len() {
            let (verdict, outcome) = step(shared, &mut local[i], &mut read_buf, &mut syscalls);
            progressed |= outcome.moved;
            let verdict = match verdict {
                Verdict::Keep => match deadline_verdict(shared, &local[i]) {
                    None => {
                        i += 1;
                        continue;
                    }
                    Some(verdict) => verdict,
                },
                verdict => verdict,
            };
            let mut session = local.swap_remove(i);
            finalize(shared, &mut session, verdict);
            progressed = true;
        }
        telemetry.add_syscalls(shared, syscalls);
        if !progressed {
            if local.is_empty() {
                waker.park(None);
            } else {
                waker.park(Some(IDLE_PARK));
            }
        }
    }
}

/// The epoll backend: sessions live in a token-indexed slab, their
/// sockets registered edge-triggered with the worker's epoll instance;
/// the worker blocks in `epoll_wait` until a socket is ready or the
/// waker fires, then steps exactly the ready sessions. Sessions whose
/// read was cut short by the fairness bound stay "hot" and are
/// re-stepped with a zero-timeout wait in between (the edge-trigger
/// contract: an un-drained socket fires no further events). Deadlines
/// are enforced by a periodic sweep every [`DEADLINE_TICK`].
#[cfg(target_os = "linux")]
fn epoll_loop(shared: &Shared, index: usize, mut poller: EpollPoller) {
    use std::os::unix::io::AsRawFd;

    let mut slots: Vec<Option<Session>> = Vec::new();
    let mut free: Vec<usize> = Vec::new();
    let mut hot: Vec<usize> = Vec::new();
    let mut ready: Vec<usize> = Vec::new();
    let mut incoming: Vec<Session> = Vec::new();
    let mut read_buf = vec![0u8; READ_BUF];
    let mut telemetry = PollTelemetry::new(PollBackend::Epoll);
    let mut last_tick = Instant::now();
    let tick_ms = DEADLINE_TICK.as_millis() as i32;
    loop {
        if shared.shutdown.load(Ordering::SeqCst) {
            incoming.append(&mut shared.queues[index].lock());
            for mut session in incoming.drain(..) {
                finalize(shared, &mut session, Verdict::Failed(SessionError::Eof));
            }
            for slot in &mut slots {
                if let Some(mut session) = slot.take() {
                    poller.deregister(session.stream.as_raw_fd());
                    finalize(shared, &mut session, Verdict::Failed(SessionError::Eof));
                }
            }
            telemetry.emit(shared);
            return;
        }

        // Intake: adopt newly registered sessions into the slab. They are
        // stepped immediately (hot) — the initial outbox must hit the
        // wire, and a pooled/inbound socket may already hold bytes that
        // will never fire an edge.
        incoming.append(&mut shared.queues[index].lock());
        if !incoming.is_empty() {
            telemetry.on_wakeup(shared, &incoming);
            for session in incoming.drain(..) {
                let token = free.pop().unwrap_or_else(|| {
                    slots.push(None);
                    slots.len() - 1
                });
                match poller.register(session.stream.as_raw_fd(), token) {
                    Ok(()) => {
                        slots[token] = Some(session);
                        hot.push(token);
                    }
                    Err(e) => {
                        free.push(token);
                        let mut session = session;
                        finalize(shared, &mut session, Verdict::Failed(SessionError::Io(e)));
                    }
                }
            }
        }

        // Wait for readiness — not at all while hot sessions need
        // re-stepping, else until the next deadline tick.
        ready.clear();
        let timeout = if hot.is_empty() { tick_ms } else { 0 };
        let mut syscalls = 1u64;
        if poller.wait(timeout, &mut ready).is_err() {
            // epoll_wait failing is unrecoverable for this worker; fail
            // everything rather than spin.
            for slot in &mut slots {
                if let Some(mut session) = slot.take() {
                    poller.deregister(session.stream.as_raw_fd());
                    finalize(shared, &mut session, Verdict::Failed(SessionError::Eof));
                }
            }
            hot.clear();
            continue;
        }
        ready.append(&mut hot);
        ready.sort_unstable();
        ready.dedup();

        for &token in &ready {
            let Some(session) = slots.get_mut(token).and_then(Option::as_mut) else {
                continue;
            };
            let (verdict, outcome) = step(shared, session, &mut read_buf, &mut syscalls);
            match verdict {
                Verdict::Keep => {
                    if !outcome.drained {
                        hot.push(token);
                    }
                }
                verdict => {
                    let mut session = slots[token].take().expect("stepped session");
                    poller.deregister(session.stream.as_raw_fd());
                    free.push(token);
                    finalize(shared, &mut session, verdict);
                }
            }
        }

        // Deadline sweep: no event fires for a peer that simply went
        // quiet, so timeouts are enforced on a coarse periodic tick.
        if last_tick.elapsed() >= DEADLINE_TICK {
            last_tick = Instant::now();
            for (token, slot) in slots.iter_mut().enumerate() {
                let Some(session) = slot.as_ref() else {
                    continue;
                };
                if let Some(verdict) = deadline_verdict(shared, session) {
                    let mut session = slot.take().expect("checked session");
                    poller.deregister(session.stream.as_raw_fd());
                    free.push(token);
                    finalize(shared, &mut session, verdict);
                }
            }
        }
        telemetry.add_syscalls(shared, syscalls);
    }
}

/// Accounts a removed session and resolves its ticket.
fn finalize(shared: &Shared, session: &mut Session, verdict: Verdict) {
    shared.open.fetch_sub(1, Ordering::Relaxed);
    match verdict {
        Verdict::Keep => unreachable!(),
        Verdict::Finished => {
            shared.completed.fetch_add(1, Ordering::Relaxed);
            // Return the outbound connection *before* resolving the
            // ticket: a caller that re-dials the moment its wait returns
            // must find the connection already pooled.
            if !session.inbound {
                if let Ok(stream) = session.stream.try_clone() {
                    shared.give_pooled(std::mem::take(&mut session.addr), stream);
                }
            }
            if let Some(ticket) = session.ticket.take() {
                ticket.resolve(NetSessionResult {
                    report: session.machine.report().clone(),
                    error: None,
                });
            }
        }
        Verdict::Closed => {
            // A responder that served sessions before going quiet already
            // counted them at completion; nothing to account here.
        }
        Verdict::Failed(error) => {
            shared.failed.fetch_add(1, Ordering::Relaxed);
            session.machine.abort();
            if let Some(ticket) = session.ticket.take() {
                ticket.resolve(NetSessionResult {
                    report: session.machine.report().clone(),
                    error: Some(error),
                });
            }
        }
    }
}

/// Applies idle/stall/backpressure deadlines to a kept session. Shared
/// by both backends: the sweep checks after every step, the epoll loop
/// on its periodic tick (no event fires for a peer that went quiet).
fn deadline_verdict(shared: &Shared, session: &Session) -> Option<Verdict> {
    let quiet = session.last_progress.elapsed();
    if session.stalled {
        if quiet > shared.config.stall_timeout {
            return Some(Verdict::Failed(SessionError::Backpressure));
        }
        return None;
    }
    if session.finished {
        // Finished but the outbox will not drain: the peer stopped
        // reading. Treated as a stall like any other no-progress state.
        if quiet > shared.config.stall_timeout {
            return Some(Verdict::Failed(SessionError::Stalled));
        }
        return None;
    }
    if session.machine.is_idle() {
        if quiet > shared.config.idle_timeout {
            return Some(Verdict::Closed);
        }
    } else if quiet > shared.config.stall_timeout {
        return Some(Verdict::Failed(SessionError::Stalled));
    }
    None
}

/// One readiness pass over one session: flush, read, feed frames, flush
/// again. Identical for both backends — only *when* it runs differs.
/// Each socket syscall bumps `*syscalls`.
fn step(
    shared: &Shared,
    session: &mut Session,
    read_buf: &mut [u8],
    syscalls: &mut u64,
) -> (Verdict, StepOutcome) {
    let mut outcome = StepOutcome {
        moved: false,
        drained: true,
    };

    // Flush the outbox until empty or the socket would block.
    match session
        .out
        .flush(&session.stream, syscalls, &mut outcome.moved)
    {
        Ok(_) => {
            if outcome.moved {
                session.last_progress = Instant::now();
            }
        }
        Err(err) => return (Verdict::Failed(err), outcome),
    }

    if session.finished {
        if session.out.pending() == 0 {
            return (Verdict::Finished, outcome);
        }
        return (Verdict::Keep, outcome);
    }

    // Backpressure: a session over its write bound stops reading until
    // the queue drains — the peer feels it through TCP. The next flush
    // opportunity (writability edge, or the next sweep pass) re-enters
    // this step and resumes reading once under the bound.
    if session.out.pending() > shared.config.write_queue_limit {
        if !session.stalled {
            session.stalled = true;
            shared.stalls.fetch_add(1, Ordering::Relaxed);
            let replica = session.replica;
            let peer = session
                .machine
                .report()
                .peer
                .map(|p| p.as_u64())
                .unwrap_or(0);
            let queued = session.out.pending() as u64;
            session.obs.emit(|| Event::NetBackpressure {
                replica,
                peer,
                queued_bytes: queued,
            });
        }
        return (Verdict::Keep, outcome);
    }
    session.stalled = false;

    // Read whatever is ready, bounded per pass for fairness. A session
    // that used its whole budget without hitting WouldBlock is not
    // drained: the caller must re-step it (edge-triggered epoll will
    // never re-announce those bytes).
    let mut saw_eof = false;
    let mut reads = 0;
    loop {
        if reads == READS_PER_PASS {
            outcome.drained = false;
            break;
        }
        reads += 1;
        *syscalls += 1;
        match session.stream.read(read_buf) {
            Ok(0) => {
                saw_eof = true;
                break;
            }
            Ok(n) => {
                session.accum.extend(&read_buf[..n]);
                session.last_progress = Instant::now();
                outcome.moved = true;
            }
            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => break,
            Err(e) if e.kind() == std::io::ErrorKind::Interrupted => {
                reads -= 1;
                continue;
            }
            Err(e) => return (Verdict::Failed(SessionError::Io(e)), outcome),
        }
    }

    // Feed complete frames to the machine, encoding replies into a
    // recycled outbox segment.
    let mut seg = session.out.take_seg();
    let now_ms = shared.now_ms();
    let fed = feed_frames(shared, session, &mut seg, now_ms, &mut outcome.moved);
    session.out.push_seg(seg);
    if let Err(verdict) = fed {
        return (verdict, outcome);
    }

    // Flush again: frames the machine just queued would otherwise wait
    // for a writability edge that may never come (the socket is already
    // writable — edge-triggered epoll stays silent).
    if session.out.pending() > 0 {
        match session
            .out
            .flush(&session.stream, syscalls, &mut outcome.moved)
        {
            Ok(_) => {
                if outcome.moved {
                    session.last_progress = Instant::now();
                }
            }
            Err(err) => return (Verdict::Failed(err), outcome),
        }
    }

    if session.finished && session.out.pending() == 0 {
        return (Verdict::Finished, outcome);
    }

    if saw_eof {
        // EOF with the responder parked idle and nothing queued is a
        // clean close; mid-session it is an error.
        if session.machine.is_idle() && session.out.pending() == 0 && session.accum.buffered() == 0
        {
            return (Verdict::Closed, outcome);
        }
        return (Verdict::Failed(SessionError::Eof), outcome);
    }

    (Verdict::Keep, outcome)
}

/// Drains complete frames from the accumulator into the machine. Reply
/// bytes land in `seg`; errors come back as the failing verdict.
fn feed_frames(
    shared: &Shared,
    session: &mut Session,
    seg: &mut Vec<u8>,
    now_ms: u64,
    moved: &mut bool,
) -> Result<(), Verdict> {
    loop {
        let (frame_type, payload) = match session.accum.next_frame() {
            Ok(Some(frame)) => frame,
            Ok(None) => return Ok(()),
            Err(e @ FrameError::BadChecksum { .. }) => {
                // The damaged frame was consumed; the machine decides
                // whether this state can recover (serve side answers
                // with a resync demand).
                match session.machine.on_checksum_error(e, seg) {
                    Ok(Progress::Continue) => continue,
                    Ok(_) => unreachable!("checksum recovery never completes a session"),
                    Err(err) => return Err(Verdict::Failed(err)),
                }
            }
            Err(e) => return Err(Verdict::Failed(SessionError::Frame(e))),
        };
        *moved = true;
        match session.machine.on_frame(frame_type, &payload, now_ms, seg) {
            Ok(Progress::Continue) => {}
            Ok(Progress::SessionComplete) if session.inbound => {
                // The responder machine reset itself to idle; the
                // connection stays registered for the next session.
                shared.completed.fetch_add(1, Ordering::Relaxed);
            }
            Ok(Progress::SessionComplete) | Ok(Progress::GossipComplete) => {
                session.finished = true;
                return Ok(());
            }
            Err(err) => return Err(Verdict::Failed(err)),
        }
    }
}
