//! The readiness-loop reactor: many sessions, few threads.
//!
//! No external async runtime — each worker thread owns a set of sessions
//! over nonblocking std [`TcpStream`]s and loops over them: flush the
//! session's outbox until the socket would block, read whatever bytes are
//! ready, feed complete frames to the [`SessionMachine`], repeat. A
//! session costs a few hundred bytes of state rather than a thread, so
//! thousands run concurrently on a handful of workers.
//!
//! Flow control is per session: the outbox is a bounded write queue — a
//! session whose queue is over its bound stops *reading* until it drains
//! (backpressure propagates to the peer through TCP). A session making no
//! forward progress past the stall timeout is failed; an idle pooled
//! responder past the idle timeout is closed. Completed outbound
//! connections return to a pool keyed by dial address for reuse.

use std::collections::VecDeque;
use std::io::{Read, Write};
use std::net::TcpStream;
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use obs::{Event, Obs};
use parking_lot::Mutex;
use transport::frame::{FrameAccum, FrameError};
use transport::SessionReport;

use crate::session::{Progress, SessionError, SessionMachine};

/// How many bytes one `read` call pulls at most.
const READ_BUF: usize = 16 * 1024;
/// Read calls per session per loop pass (fairness bound).
const READS_PER_PASS: usize = 8;
/// Worker park time when a pass makes no progress.
const IDLE_PARK: Duration = Duration::from_micros(500);

/// Reactor tunables (filled in from [`crate::NetConfig`]).
#[derive(Clone, Debug)]
pub(crate) struct ReactorConfig {
    pub workers: usize,
    pub write_queue_limit: usize,
    pub idle_timeout: Duration,
    pub stall_timeout: Duration,
    pub pool_idle: Duration,
}

/// The outcome of one reactor-driven session.
#[derive(Debug)]
pub struct NetSessionResult {
    /// Progress made before the session ended (possibly partial).
    pub report: SessionReport,
    /// The error that ended the session, or `None` on clean completion.
    pub error: Option<SessionError>,
}

impl NetSessionResult {
    /// True when the session completed cleanly.
    pub fn is_ok(&self) -> bool {
        self.error.is_none()
    }
}

struct TicketInner {
    // std primitives: the workspace `parking_lot` shim has no Condvar.
    result: std::sync::Mutex<Option<NetSessionResult>>,
    cond: std::sync::Condvar,
}

/// A handle to a detached session: resolves when the reactor finishes it.
#[derive(Clone)]
pub struct SessionTicket(Arc<TicketInner>);

impl SessionTicket {
    pub(crate) fn new() -> SessionTicket {
        SessionTicket(Arc::new(TicketInner {
            result: std::sync::Mutex::new(None),
            cond: std::sync::Condvar::new(),
        }))
    }

    pub(crate) fn resolve(&self, result: NetSessionResult) {
        let mut slot = self.0.result.lock().expect("ticket lock");
        if slot.is_none() {
            *slot = Some(result);
            self.0.cond.notify_all();
        }
    }

    /// Blocks until the session completes or fails.
    pub fn wait(&self) -> NetSessionResult {
        let mut slot = self.0.result.lock().expect("ticket lock");
        while slot.is_none() {
            slot = self.0.cond.wait(slot).expect("ticket lock");
        }
        slot.take().expect("resolved")
    }

    /// Non-blocking poll; returns the result at most once.
    pub fn try_take(&self) -> Option<NetSessionResult> {
        self.0.result.lock().expect("ticket lock").take()
    }
}

impl std::fmt::Debug for SessionTicket {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SessionTicket").finish_non_exhaustive()
    }
}

/// Outbox: a write queue with a consumed-prefix offset so partial writes
/// do not memmove the remainder every pass.
#[derive(Default)]
struct OutBuf {
    buf: Vec<u8>,
    pos: usize,
}

impl OutBuf {
    fn pending(&self) -> usize {
        self.buf.len() - self.pos
    }

    fn advance(&mut self, n: usize) {
        self.pos += n;
        if self.pos == self.buf.len() {
            self.buf.clear();
            self.pos = 0;
        }
    }
}

/// One registered connection and its protocol state.
pub(crate) struct Session {
    stream: TcpStream,
    /// Dial address, for returning the connection to the pool; empty for
    /// inbound connections.
    addr: String,
    machine: SessionMachine,
    accum: FrameAccum,
    out: OutBuf,
    ticket: Option<SessionTicket>,
    inbound: bool,
    last_progress: Instant,
    stalled: bool,
    /// Machine finished; flush the outbox, then finalize.
    finished: bool,
    obs: Obs,
    replica: u64,
}

struct PooledConn {
    stream: TcpStream,
    addr: String,
    idle_since: Instant,
}

/// State shared between the reactor handle and its workers.
pub(crate) struct Shared {
    config: ReactorConfig,
    shutdown: AtomicBool,
    queues: Vec<Mutex<Vec<Session>>>,
    next_queue: AtomicUsize,
    pool: Mutex<VecDeque<PooledConn>>,
    epoch: Instant,
    pub(crate) open: AtomicUsize,
    pub(crate) peak: AtomicUsize,
    pub(crate) completed: AtomicU64,
    pub(crate) failed: AtomicU64,
    pub(crate) reuses: AtomicU64,
    pub(crate) stalls: AtomicU64,
}

impl Shared {
    /// Milliseconds since the reactor started: the monotonic clock the
    /// membership layer ages entries against.
    pub(crate) fn now_ms(&self) -> u64 {
        self.epoch.elapsed().as_millis() as u64
    }

    /// Pops a pooled connection to `addr`, pruning stale entries.
    pub(crate) fn take_pooled(&self, addr: &str) -> Option<TcpStream> {
        let mut pool = self.pool.lock();
        let now = Instant::now();
        pool.retain(|c| now.duration_since(c.idle_since) < self.config.pool_idle);
        let idx = pool.iter().position(|c| c.addr == addr)?;
        pool.remove(idx).map(|c| c.stream)
    }

    fn give_pooled(&self, addr: String, stream: TcpStream) {
        if addr.is_empty() {
            return;
        }
        self.pool.lock().push_back(PooledConn {
            stream,
            addr,
            idle_since: Instant::now(),
        });
    }

    /// Registers a session with the next worker round-robin. The stream
    /// must already be nonblocking.
    #[allow(clippy::too_many_arguments)]
    pub(crate) fn register(
        &self,
        stream: TcpStream,
        addr: String,
        machine: SessionMachine,
        initial_out: Vec<u8>,
        ticket: Option<SessionTicket>,
        inbound: bool,
        reused: bool,
        obs: Obs,
        replica: u64,
    ) {
        if reused {
            self.reuses.fetch_add(1, Ordering::Relaxed);
        }
        let session = Session {
            stream,
            addr,
            machine,
            accum: FrameAccum::new(),
            out: OutBuf {
                buf: initial_out,
                pos: 0,
            },
            ticket,
            inbound,
            last_progress: Instant::now(),
            stalled: false,
            finished: false,
            obs,
            replica,
        };
        let open = self.open.fetch_add(1, Ordering::Relaxed) + 1;
        self.peak.fetch_max(open, Ordering::Relaxed);
        let idx = self.next_queue.fetch_add(1, Ordering::Relaxed) % self.queues.len();
        self.queues[idx].lock().push(session);
    }

    pub(crate) fn open_sessions(&self) -> usize {
        self.open.load(Ordering::Relaxed)
    }
}

/// The worker pool driving every registered session.
pub(crate) struct Reactor {
    shared: Arc<Shared>,
    workers: Vec<std::thread::JoinHandle<()>>,
}

impl Reactor {
    pub(crate) fn start(config: ReactorConfig) -> Reactor {
        let workers = config.workers.max(1);
        let shared = Arc::new(Shared {
            config,
            shutdown: AtomicBool::new(false),
            queues: (0..workers).map(|_| Mutex::new(Vec::new())).collect(),
            next_queue: AtomicUsize::new(0),
            pool: Mutex::new(VecDeque::new()),
            epoch: Instant::now(),
            open: AtomicUsize::new(0),
            peak: AtomicUsize::new(0),
            completed: AtomicU64::new(0),
            failed: AtomicU64::new(0),
            reuses: AtomicU64::new(0),
            stalls: AtomicU64::new(0),
        });
        let handles = (0..workers)
            .map(|w| {
                let shared = Arc::clone(&shared);
                std::thread::Builder::new()
                    .name(format!("net-worker-{w}"))
                    .spawn(move || worker_loop(&shared, w))
                    .expect("spawn net worker")
            })
            .collect();
        Reactor {
            shared,
            workers: handles,
        }
    }

    pub(crate) fn shared(&self) -> &Arc<Shared> {
        &self.shared
    }

    /// Stops the workers, failing every session still in flight.
    pub(crate) fn stop(&mut self) {
        self.shared.shutdown.store(true, Ordering::SeqCst);
        for handle in self.workers.drain(..) {
            let _ = handle.join();
        }
    }
}

impl Drop for Reactor {
    fn drop(&mut self) {
        self.stop();
    }
}

/// What one step decided about a session's future.
enum Verdict {
    /// Still running; keep it registered.
    Keep,
    /// Finished cleanly; the connection may return to the pool.
    Finished,
    /// Closed without error (EOF on an idle responder, idle timeout).
    Closed,
    /// Failed with an error.
    Failed(SessionError),
}

fn worker_loop(shared: &Shared, index: usize) {
    let mut local: Vec<Session> = Vec::new();
    let mut read_buf = vec![0u8; READ_BUF];
    loop {
        if shared.shutdown.load(Ordering::SeqCst) {
            local.append(&mut shared.queues[index].lock());
            for mut session in local.drain(..) {
                finalize(shared, &mut session, Verdict::Failed(SessionError::Eof));
            }
            return;
        }
        {
            let mut queue = shared.queues[index].lock();
            local.append(&mut queue);
        }
        let mut progressed = false;
        let mut i = 0;
        while i < local.len() {
            let (verdict, moved) = step(shared, &mut local[i], &mut read_buf);
            progressed |= moved;
            match verdict {
                Verdict::Keep => i += 1,
                verdict => {
                    let mut session = local.swap_remove(i);
                    finalize(shared, &mut session, verdict);
                    progressed = true;
                }
            }
        }
        if !progressed {
            std::thread::sleep(IDLE_PARK);
        }
    }
}

/// Accounts a removed session and resolves its ticket.
fn finalize(shared: &Shared, session: &mut Session, verdict: Verdict) {
    shared.open.fetch_sub(1, Ordering::Relaxed);
    match verdict {
        Verdict::Keep => unreachable!(),
        Verdict::Finished => {
            shared.completed.fetch_add(1, Ordering::Relaxed);
            if let Some(ticket) = session.ticket.take() {
                ticket.resolve(NetSessionResult {
                    report: session.machine.report().clone(),
                    error: None,
                });
            }
            // Return the outbound connection for the next session.
            if !session.inbound {
                if let Ok(stream) = session.stream.try_clone() {
                    shared.give_pooled(std::mem::take(&mut session.addr), stream);
                }
            }
        }
        Verdict::Closed => {
            // A responder that served sessions before going quiet already
            // counted them at completion; nothing to account here.
        }
        Verdict::Failed(error) => {
            shared.failed.fetch_add(1, Ordering::Relaxed);
            session.machine.abort();
            if let Some(ticket) = session.ticket.take() {
                ticket.resolve(NetSessionResult {
                    report: session.machine.report().clone(),
                    error: Some(error),
                });
            }
        }
    }
}

/// One readiness pass over one session. Returns the verdict plus whether
/// any bytes moved (the worker's idle heuristic).
fn step(shared: &Shared, session: &mut Session, read_buf: &mut [u8]) -> (Verdict, bool) {
    let mut moved = false;

    // Flush the outbox until the socket would block.
    while session.out.pending() > 0 {
        match session.stream.write(&session.out.buf[session.out.pos..]) {
            Ok(0) => return (Verdict::Failed(SessionError::Eof), moved),
            Ok(n) => {
                session.out.advance(n);
                session.last_progress = Instant::now();
                moved = true;
            }
            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => break,
            Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
            Err(e) => return (Verdict::Failed(SessionError::Io(e)), moved),
        }
    }

    if session.finished {
        if session.out.pending() == 0 {
            return (Verdict::Finished, moved);
        }
        return (Verdict::Keep, moved);
    }

    // Backpressure: a session over its write bound stops reading until
    // the queue drains — the peer feels it through TCP.
    if session.out.pending() > shared.config.write_queue_limit {
        if !session.stalled {
            session.stalled = true;
            shared.stalls.fetch_add(1, Ordering::Relaxed);
            let replica = session.replica;
            let peer = session
                .machine
                .report()
                .peer
                .map(|p| p.as_u64())
                .unwrap_or(0);
            let queued = session.out.pending() as u64;
            session.obs.emit(|| Event::NetBackpressure {
                replica,
                peer,
                queued_bytes: queued,
            });
        }
        if session.last_progress.elapsed() > shared.config.stall_timeout {
            return (Verdict::Failed(SessionError::Backpressure), moved);
        }
        return (Verdict::Keep, moved);
    }
    session.stalled = false;

    // Read whatever is ready, bounded per pass for fairness.
    let mut saw_eof = false;
    for _ in 0..READS_PER_PASS {
        match session.stream.read(read_buf) {
            Ok(0) => {
                saw_eof = true;
                break;
            }
            Ok(n) => {
                session.accum.extend(&read_buf[..n]);
                session.last_progress = Instant::now();
                moved = true;
            }
            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => break,
            Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
            Err(e) => return (Verdict::Failed(SessionError::Io(e)), moved),
        }
    }

    // Feed complete frames to the machine.
    let now_ms = shared.now_ms();
    loop {
        let (frame_type, payload) = match session.accum.next_frame() {
            Ok(Some(frame)) => frame,
            Ok(None) => break,
            Err(e @ FrameError::BadChecksum { .. }) => {
                // The damaged frame was consumed; the machine decides
                // whether this state can recover (serve side answers
                // with a resync demand).
                match session.machine.on_checksum_error(e, &mut session.out.buf) {
                    Ok(Progress::Continue) => continue,
                    Ok(_) => unreachable!("checksum recovery never completes a session"),
                    Err(err) => return (Verdict::Failed(err), moved),
                }
            }
            Err(e) => return (Verdict::Failed(SessionError::Frame(e)), moved),
        };
        moved = true;
        match session
            .machine
            .on_frame(frame_type, &payload, now_ms, &mut session.out.buf)
        {
            Ok(Progress::Continue) => {}
            Ok(Progress::SessionComplete) if session.inbound => {
                // The responder machine reset itself to idle; the
                // connection stays registered for the next session.
                shared.completed.fetch_add(1, Ordering::Relaxed);
            }
            Ok(Progress::SessionComplete) | Ok(Progress::GossipComplete) => {
                session.finished = true;
                break;
            }
            Err(err) => return (Verdict::Failed(err), moved),
        }
    }

    if session.finished && session.out.pending() == 0 {
        return (Verdict::Finished, moved);
    }

    if saw_eof {
        // EOF with the responder parked idle and nothing queued is a
        // clean close; mid-session it is an error.
        if session.machine.is_idle() && session.out.pending() == 0 && session.accum.buffered() == 0
        {
            return (Verdict::Closed, moved);
        }
        return (Verdict::Failed(SessionError::Eof), moved);
    }

    // Timeouts: stalls kill active sessions, idleness reaps parked ones.
    let quiet = session.last_progress.elapsed();
    if session.machine.is_idle() {
        if quiet > shared.config.idle_timeout {
            return (Verdict::Closed, moved);
        }
    } else if quiet > shared.config.stall_timeout {
        return (Verdict::Failed(SessionError::Stalled), moved);
    }
    (Verdict::Keep, moved)
}
