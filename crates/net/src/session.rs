//! The sync session protocol as a non-blocking state machine.
//!
//! [`transport::protocol`] drives a session with blocking reads: the call
//! stack *is* the protocol state. The reactor cannot block, so this module
//! turns that call stack into an explicit [`SessionMachine`]: the reactor
//! feeds it decoded frames as they arrive and collects outbound bytes from
//! an outbox, and the machine walks exactly the same transitions — hello
//! exchange, pull direction (full or digest mode with every fallback arm),
//! serve direction, role swap — with byte-for-byte identical wire traffic
//! and identical digest accounting. One machine handles both roles plus
//! the gossip exchange, and a responder machine resets to its idle state
//! after each session so a pooled connection can carry many sessions.

use std::fmt;
use std::sync::Arc;
use std::time::Instant;

use dtn::{DigestResponse, DigestSessionState, DtnNode};
use obs::Event;
use parking_lot::Mutex;
use pfr::digest::{DigestRequest, VersionAnswer, VersionQuery};
use pfr::sync::SyncBatch;
use pfr::wire::{from_bytes, from_bytes_shared, Encode, EncodeScratch};
use pfr::{SimTime, SyncLimits, SyncMode};
use transport::frame::{frame_header, FrameError, FrameType};
use transport::protocol::Hello;
use transport::SessionReport;

use crate::membership::Membership;
use crate::wire::GossipMessage;

/// Errors that terminate a session machine.
#[derive(Debug)]
pub enum SessionError {
    /// Framing or payload-decode failure.
    Frame(FrameError),
    /// The peer sent a frame the current protocol state cannot accept.
    UnexpectedFrame {
        /// The protocol state the machine was in.
        phase: &'static str,
        /// What arrived.
        got: FrameType,
    },
    /// Socket I/O failure (reported by the reactor).
    Io(std::io::Error),
    /// The connection closed mid-session.
    Eof,
    /// No forward progress within the stall timeout.
    Stalled,
    /// The peer's write queue stayed over its bound past the stall
    /// timeout.
    Backpressure,
    /// The reactor is at its concurrent-session cap.
    AtCapacity,
}

impl fmt::Display for SessionError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SessionError::Frame(e) => write!(f, "{e}"),
            SessionError::UnexpectedFrame { phase, got } => {
                write!(f, "unexpected {got:?} frame in {phase}")
            }
            SessionError::Io(e) => write!(f, "session i/o: {e}"),
            SessionError::Eof => write!(f, "connection closed mid-session"),
            SessionError::Stalled => write!(f, "session stalled past timeout"),
            SessionError::Backpressure => write!(f, "write queue over bound past timeout"),
            SessionError::AtCapacity => write!(f, "reactor at max concurrent sessions"),
        }
    }
}

impl std::error::Error for SessionError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            SessionError::Frame(e) => Some(e),
            SessionError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<FrameError> for SessionError {
    fn from(e: FrameError) -> Self {
        SessionError::Frame(e)
    }
}

impl From<pfr::wire::WireError> for SessionError {
    fn from(e: pfr::wire::WireError) -> Self {
        SessionError::Frame(FrameError::Decode(e))
    }
}

/// What one `on_frame` step accomplished.
#[derive(Debug, PartialEq, Eq)]
pub enum Progress {
    /// More frames expected; keep the connection registered.
    Continue,
    /// A two-direction sync session completed; events are emitted and the
    /// node persisted. An initiator machine is finished; a responder
    /// machine has already reset to idle for the next session on this
    /// connection.
    SessionComplete,
    /// A gossip exchange completed (initiator side; the responder answers
    /// gossip from idle without leaving it).
    GossipComplete,
}

/// Which protocol role this machine plays.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum Role {
    Initiator,
    Responder,
    Gossip,
}

/// Digest-mode pull accounting, alive from `SyncDigest` sent to commit.
/// Mirrors the locals of `transport::protocol::pull_digest`.
struct DigestPull {
    state: DigestSessionState,
    digest_bytes: u64,
    fallback_rounds: u64,
    false_positives: u64,
    knowledge_shared: bool,
}

/// The explicit protocol state (what the blocking driver keeps on its call
/// stack). `None` digest state in `PullAwaitFirst` means a full-mode pull.
enum Phase {
    /// Responder idle: awaiting a `Hello` (or a `Gossip` exchange, which
    /// is answered without leaving idle). Pooled connections park here.
    AwaitHello,
    /// Initiator sent its `Hello`, awaiting the reply.
    AwaitHelloReply,
    /// Pull direction: request sent, awaiting the first response frame.
    PullAwaitFirst(Option<Box<DigestPull>>),
    /// Digest pull: `RangeResponse` answer sent, awaiting batch or resync.
    PullAwaitAfterAnswer(Box<DigestPull>),
    /// Digest pull: full request retransmitted after a resync demand,
    /// awaiting the batch.
    PullAwaitAfterResync(Box<DigestPull>),
    /// Serve direction: awaiting the peer's request frame.
    ServeAwaitRequest,
    /// Digest serve: `RangeRequest` sent, awaiting the exact answer.
    ServeAwaitAnswer {
        request: DigestRequest,
        query: VersionQuery,
    },
    /// Digest serve: resync demanded, awaiting the retransmitted full
    /// request.
    ServeAwaitResyncRequest,
    /// Serve direction: batch sent, awaiting the peer's `SyncDone`.
    ServeAwaitDone,
    /// Gossip initiator: view sent, awaiting the peer's view.
    GossipAwaitReply,
    /// Terminal: session finished cleanly (initiator) or died.
    Closed,
}

impl Phase {
    fn name(&self) -> &'static str {
        match self {
            Phase::AwaitHello => "AwaitHello",
            Phase::AwaitHelloReply => "AwaitHelloReply",
            Phase::PullAwaitFirst(_) => "PullAwaitFirst",
            Phase::PullAwaitAfterAnswer(_) => "PullAwaitAfterAnswer",
            Phase::PullAwaitAfterResync(_) => "PullAwaitAfterResync",
            Phase::ServeAwaitRequest => "ServeAwaitRequest",
            Phase::ServeAwaitAnswer { .. } => "ServeAwaitAnswer",
            Phase::ServeAwaitResyncRequest => "ServeAwaitResyncRequest",
            Phase::ServeAwaitDone => "ServeAwaitDone",
            Phase::GossipAwaitReply => "GossipAwaitReply",
            Phase::Closed => "Closed",
        }
    }
}

/// One session's protocol driver. Feed it frames with [`on_frame`]
/// (and checksum failures with [`on_checksum_error`]); it appends outbound
/// frames to the `out` buffer the reactor flushes.
///
/// [`on_frame`]: SessionMachine::on_frame
/// [`on_checksum_error`]: SessionMachine::on_checksum_error
pub struct SessionMachine {
    node: Arc<Mutex<DtnNode>>,
    membership: Arc<Mutex<Membership>>,
    limits: SyncLimits,
    role: Role,
    phase: Phase,
    report: SessionReport,
    scratch: EncodeScratch,
    frame_bytes: u64,
    bytes_decoded: u64,
    payload_shares: u64,
    now: SimTime,
    inbound: bool,
    reused: bool,
    started: Instant,
}

impl fmt::Debug for SessionMachine {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("SessionMachine")
            .field("role", &self.role)
            .field("phase", &self.phase.name())
            .field("inbound", &self.inbound)
            .finish()
    }
}

impl SessionMachine {
    /// An initiator machine: the returned buffer already holds the
    /// `Hello` frame to flush first.
    pub fn sync_initiator(
        node: Arc<Mutex<DtnNode>>,
        membership: Arc<Mutex<Membership>>,
        limits: SyncLimits,
        now: SimTime,
        reused: bool,
    ) -> Result<(Self, Vec<u8>), SessionError> {
        let mut machine = SessionMachine::new(node, membership, limits, Role::Initiator, false);
        machine.reused = reused;
        machine.now = now;
        machine.report.now = Some(now);
        let my_id = machine.node.lock().id();
        let mut out = Vec::new();
        machine.send(
            &mut out,
            FrameType::Hello,
            &Hello {
                replica: my_id,
                now,
            },
        )?;
        machine.phase = Phase::AwaitHelloReply;
        Ok((machine, out))
    }

    /// A responder machine for an accepted connection: parks in idle
    /// until the remote opens a session (or gossips).
    pub fn responder(
        node: Arc<Mutex<DtnNode>>,
        membership: Arc<Mutex<Membership>>,
        limits: SyncLimits,
    ) -> Self {
        SessionMachine::new(node, membership, limits, Role::Responder, true)
    }

    /// A gossip-initiator machine: the returned buffer holds our view.
    pub fn gossip_initiator(
        node: Arc<Mutex<DtnNode>>,
        membership: Arc<Mutex<Membership>>,
        now_ms: u64,
        reused: bool,
    ) -> Result<(Self, Vec<u8>), SessionError> {
        let mut machine = SessionMachine::new(
            node,
            membership,
            SyncLimits::unlimited(),
            Role::Gossip,
            false,
        );
        machine.reused = reused;
        let message = machine.membership.lock().message(now_ms);
        let mut out = Vec::new();
        machine.send(&mut out, FrameType::Gossip, &message)?;
        machine.phase = Phase::GossipAwaitReply;
        Ok((machine, out))
    }

    fn new(
        node: Arc<Mutex<DtnNode>>,
        membership: Arc<Mutex<Membership>>,
        limits: SyncLimits,
        role: Role,
        inbound: bool,
    ) -> Self {
        SessionMachine {
            node,
            membership,
            limits,
            role,
            phase: Phase::AwaitHello,
            report: SessionReport::default(),
            scratch: EncodeScratch::default(),
            frame_bytes: 0,
            bytes_decoded: 0,
            payload_shares: 0,
            now: SimTime::ZERO,
            inbound,
            reused: false,
            started: Instant::now(),
        }
    }

    /// True when the machine is parked in responder idle: EOF here is a
    /// clean close, and the connection may be reaped by the idle timeout.
    pub fn is_idle(&self) -> bool {
        matches!(self.phase, Phase::AwaitHello)
    }

    /// True once the machine reached a terminal state.
    pub fn is_closed(&self) -> bool {
        matches!(self.phase, Phase::Closed)
    }

    /// The last completed (or partially completed) session's report.
    pub fn report(&self) -> &SessionReport {
        &self.report
    }

    /// Encodes and appends one frame to the outbox, returning the payload
    /// length (digest accounting needs it).
    fn send<T: Encode>(
        &mut self,
        out: &mut Vec<u8>,
        frame_type: FrameType,
        value: &T,
    ) -> Result<u64, SessionError> {
        let bytes = self.scratch.encode(value);
        let len = bytes.len() as u64;
        self.frame_bytes += len;
        append_frame(out, frame_type, bytes)?;
        Ok(len)
    }

    fn send_empty(&mut self, out: &mut Vec<u8>, frame_type: FrameType) -> Result<(), SessionError> {
        append_frame(out, frame_type, &[])?;
        Ok(())
    }

    /// Decodes a batch through the shared-buffer path and applies it.
    fn apply_batch(&mut self, payload: &[u8]) -> Result<(), SessionError> {
        let backing: Arc<[u8]> = payload.into();
        let (batch, shares): (SyncBatch, u64) = from_bytes_shared(&backing)?;
        self.payload_shares += shares;
        let report = self.node.lock().apply_sync(batch, self.now);
        self.report.pulled = Some(report);
        Ok(())
    }

    /// Starts the pull direction: writes the request (full or digest
    /// shape) and parks awaiting the first response frame.
    fn begin_pull(&mut self, out: &mut Vec<u8>) -> Result<(), SessionError> {
        let peer = self.report.peer.expect("peer known after hello");
        if self.node.lock().sync_mode() == SyncMode::Digest {
            let (request, state) = self.node.lock().begin_digest_session(peer, self.now);
            let digest_bytes = self.send(out, FrameType::SyncDigest, &request)?;
            let knowledge_shared = state.summary_kind() != "bloom";
            self.phase = Phase::PullAwaitFirst(Some(Box::new(DigestPull {
                state,
                digest_bytes,
                fallback_rounds: 0,
                false_positives: 0,
                knowledge_shared,
            })));
        } else {
            // Full mode: the request borrows the node's knowledge, so
            // encode it while the lock is held.
            let request_bytes = {
                let mut node = self.node.lock();
                let request = node.begin_sync_session(peer, self.now);
                self.scratch.encode(&request)
            };
            self.frame_bytes += request_bytes.len() as u64;
            append_frame(out, FrameType::SyncRequest, request_bytes)?;
            self.phase = Phase::PullAwaitFirst(None);
        }
        Ok(())
    }

    /// Serves a digest resync demand (ours or relayed): retransmits the
    /// full request, charging its bytes to digest mode.
    fn retransmit_full(
        &mut self,
        pull: &mut DigestPull,
        out: &mut Vec<u8>,
    ) -> Result<(), SessionError> {
        pull.fallback_rounds += 1;
        pull.knowledge_shared = true;
        let request_bytes = self.scratch.encode(pull.state.full_request());
        pull.digest_bytes += 1 + request_bytes.len() as u64;
        self.frame_bytes += request_bytes.len() as u64;
        append_frame(out, FrameType::SyncRequest, request_bytes)?;
        Ok(())
    }

    /// Finishes the pull direction: `SyncDone` out, digest commit, then
    /// the role decides what follows.
    fn finish_pull(
        &mut self,
        pull: Option<Box<DigestPull>>,
        out: &mut Vec<u8>,
    ) -> Result<Progress, SessionError> {
        self.send_empty(out, FrameType::SyncDone)?;
        if let Some(pull) = pull {
            let peer = self.report.peer.expect("peer known after hello");
            self.node.lock().commit_digest_session(
                peer,
                pull.state,
                pull.knowledge_shared,
                pull.digest_bytes,
                pull.fallback_rounds,
                pull.false_positives,
            );
        }
        match self.role {
            // Initiator pulls first, then serves the responder's pull.
            Role::Initiator => {
                self.phase = Phase::ServeAwaitRequest;
                Ok(Progress::Continue)
            }
            // The responder's pull is the session's second direction:
            // done. Reset to idle so the pooled connection can carry the
            // next session.
            Role::Responder => {
                self.complete(true);
                Ok(Progress::SessionComplete)
            }
            Role::Gossip => unreachable!("gossip machines never pull"),
        }
    }

    /// Finishes the serve direction (the peer's `SyncDone` arrived).
    fn finish_serve(&mut self, out: &mut Vec<u8>) -> Result<Progress, SessionError> {
        match self.role {
            // Initiator serves second: session complete.
            Role::Initiator => {
                self.complete(true);
                Ok(Progress::SessionComplete)
            }
            // The responder serves first, then pulls.
            Role::Responder => {
                self.begin_pull(out)?;
                Ok(Progress::Continue)
            }
            Role::Gossip => unreachable!("gossip machines never serve"),
        }
    }

    /// Emits the session events, persists the node, and either closes
    /// (initiator) or resets to idle (responder).
    fn complete(&mut self, ok: bool) {
        self.emit_events(ok);
        self.persist();
        match self.role {
            Role::Responder if ok => {
                self.report = SessionReport::default();
                self.frame_bytes = 0;
                self.bytes_decoded = 0;
                self.payload_shares = 0;
                self.started = Instant::now();
                self.reused = true;
                self.phase = Phase::AwaitHello;
            }
            _ => self.phase = Phase::Closed,
        }
    }

    /// Marks the session failed after a reactor-level error (I/O, EOF,
    /// timeout) or a protocol error: emits the failure events and
    /// persists whatever replicated before the cut. Idle responders and
    /// gossip machines close silently — there is no session to account.
    pub fn abort(&mut self) {
        let idle = self.is_idle() || self.is_closed();
        if !idle && self.role != Role::Gossip {
            self.emit_events(false);
            self.persist();
        }
        self.phase = Phase::Closed;
    }

    fn emit_events(&self, ok: bool) {
        let (my_id, obs) = {
            let node = self.node.lock();
            (node.id(), node.replica().observer().clone())
        };
        let peer = self.report.peer.map(|p| p.as_u64()).unwrap_or(0);
        let served = self.report.served as u64;
        let delivered = self
            .report
            .pulled
            .as_ref()
            .map(|p| p.delivered as u64)
            .unwrap_or(0);
        let frame_bytes = self.frame_bytes;
        obs.emit(|| Event::TransportSync {
            replica: my_id.as_u64(),
            peer,
            served,
            delivered,
            frame_bytes,
            ok,
        });
        let (inbound, reused) = (self.inbound, self.reused);
        let wall_micros = self.started.elapsed().as_micros() as u64;
        obs.emit(|| Event::NetSession {
            replica: my_id.as_u64(),
            peer,
            inbound,
            reused,
            ok,
            wall_micros,
        });
    }

    /// Persist failures must not kill the reactor; they surface as
    /// `StoreFault` events, exactly like the blocking transport.
    fn persist(&self) {
        let Some(now) = self.report.now else { return };
        let mut node = self.node.lock();
        if let Err(e) = node.persist(now) {
            let obs = node.replica().observer().clone();
            drop(node);
            obs.emit(|| Event::StoreFault {
                op: "persist",
                detail: e.to_string(),
            });
        }
    }

    /// A received frame failed its CRC. The payload was fully consumed,
    /// so the stream is still aligned; a source awaiting a request
    /// answers `ReconResync` and recovers (the digest-mode peer
    /// retransmits its full request). Every other state treats the
    /// corruption as fatal.
    pub fn on_checksum_error(
        &mut self,
        error: FrameError,
        out: &mut Vec<u8>,
    ) -> Result<Progress, SessionError> {
        match self.phase {
            Phase::ServeAwaitRequest => {
                self.send_empty(out, FrameType::ReconResync)?;
                self.phase = Phase::ServeAwaitResyncRequest;
                Ok(Progress::Continue)
            }
            _ => Err(SessionError::Frame(error)),
        }
    }

    /// Feeds one decoded frame into the machine. `now_ms` is the local
    /// monotonic clock in milliseconds (membership freshness); outbound
    /// frames are appended to `out`.
    ///
    /// # Errors
    ///
    /// A [`SessionError`] ends the session; the caller must call
    /// [`abort`](SessionMachine::abort) before dropping the machine so
    /// the failure is accounted.
    pub fn on_frame(
        &mut self,
        frame_type: FrameType,
        payload: &[u8],
        now_ms: u64,
        out: &mut Vec<u8>,
    ) -> Result<Progress, SessionError> {
        self.frame_bytes += payload.len() as u64;
        self.bytes_decoded += payload.len() as u64;
        match std::mem::replace(&mut self.phase, Phase::Closed) {
            Phase::AwaitHello => match frame_type {
                FrameType::Hello => {
                    // Adopt the initiator's clock for this encounter.
                    let hello: Hello = from_bytes(payload)?;
                    self.report.peer = Some(hello.replica);
                    self.report.now = Some(hello.now);
                    self.now = hello.now;
                    let my_id = self.node.lock().id();
                    self.send(
                        out,
                        FrameType::Hello,
                        &Hello {
                            replica: my_id,
                            now: hello.now,
                        },
                    )?;
                    // Direction 1: the initiator pulls from us.
                    self.phase = Phase::ServeAwaitRequest;
                    Ok(Progress::Continue)
                }
                FrameType::Gossip => {
                    // Gossip is answered from idle: merge the view, reply
                    // with ours, stay parked.
                    let message: GossipMessage = from_bytes(payload)?;
                    let reply = {
                        let mut membership = self.membership.lock();
                        membership.merge(&message, now_ms);
                        membership.message(now_ms)
                    };
                    self.phase = Phase::AwaitHello;
                    self.send(out, FrameType::Gossip, &reply)?;
                    Ok(Progress::Continue)
                }
                got => Err(self.unexpected_in("AwaitHello", got)),
            },
            Phase::AwaitHelloReply => match frame_type {
                FrameType::Hello => {
                    let hello: Hello = from_bytes(payload)?;
                    self.report.peer = Some(hello.replica);
                    // Direction 1: we pull from the responder.
                    self.begin_pull(out)?;
                    Ok(Progress::Continue)
                }
                got => Err(self.unexpected_in("AwaitHelloReply", got)),
            },
            Phase::PullAwaitFirst(None) => match frame_type {
                FrameType::SyncBatch => {
                    self.apply_batch(payload)?;
                    self.finish_pull(None, out)
                }
                got => Err(self.unexpected_in("PullAwaitFirst", got)),
            },
            Phase::PullAwaitFirst(Some(mut pull)) => match frame_type {
                FrameType::SyncBatch => {
                    self.apply_batch(payload)?;
                    self.finish_pull(Some(pull), out)
                }
                FrameType::RangeRequest => {
                    // Bloom path: one exact membership round screens the
                    // uncertain versions.
                    pull.fallback_rounds += 1;
                    pull.knowledge_shared = false;
                    pull.digest_bytes += payload.len() as u64;
                    let query: VersionQuery = from_bytes(payload)?;
                    let answer = self.node.lock().answer_digest_query(&query);
                    pull.false_positives =
                        (0..answer.len()).filter(|&i| !answer.known(i)).count() as u64;
                    pull.digest_bytes += self.send(out, FrameType::RangeResponse, &answer)?;
                    self.phase = Phase::PullAwaitAfterAnswer(pull);
                    Ok(Progress::Continue)
                }
                FrameType::ReconResync => {
                    self.retransmit_full(&mut pull, out)?;
                    self.phase = Phase::PullAwaitAfterResync(pull);
                    Ok(Progress::Continue)
                }
                got => Err(self.unexpected_in("PullAwaitFirst", got)),
            },
            Phase::PullAwaitAfterAnswer(mut pull) => match frame_type {
                FrameType::SyncBatch => {
                    self.apply_batch(payload)?;
                    self.finish_pull(Some(pull), out)
                }
                FrameType::ReconResync => {
                    // The source rejected the answer round; fall all the
                    // way back to a full exchange.
                    self.retransmit_full(&mut pull, out)?;
                    self.phase = Phase::PullAwaitAfterResync(pull);
                    Ok(Progress::Continue)
                }
                got => Err(self.unexpected_in("PullAwaitAfterAnswer", got)),
            },
            Phase::PullAwaitAfterResync(pull) => match frame_type {
                FrameType::SyncBatch => {
                    self.apply_batch(payload)?;
                    self.finish_pull(Some(pull), out)
                }
                got => Err(self.unexpected_in("PullAwaitAfterResync", got)),
            },
            Phase::ServeAwaitRequest => match frame_type {
                FrameType::SyncRequest => {
                    let request = from_bytes(payload)?;
                    let batch = self
                        .node
                        .lock()
                        .respond_sync(&request, self.limits, self.now);
                    self.report.served = batch.entries.len();
                    self.send(out, FrameType::SyncBatch, &batch)?;
                    self.phase = Phase::ServeAwaitDone;
                    Ok(Progress::Continue)
                }
                FrameType::SyncDigest => {
                    let request: DigestRequest = from_bytes(payload)?;
                    let response = self
                        .node
                        .lock()
                        .respond_digest(&request, self.limits, self.now);
                    match response {
                        DigestResponse::Batch(batch) => {
                            self.report.served = batch.entries.len();
                            self.send(out, FrameType::SyncBatch, &batch)?;
                            self.phase = Phase::ServeAwaitDone;
                        }
                        DigestResponse::NeedVersions(query) => {
                            self.send(out, FrameType::RangeRequest, &query)?;
                            self.phase = Phase::ServeAwaitAnswer { request, query };
                        }
                        DigestResponse::Resync => {
                            self.send_empty(out, FrameType::ReconResync)?;
                            self.phase = Phase::ServeAwaitResyncRequest;
                        }
                    }
                    Ok(Progress::Continue)
                }
                got => Err(self.unexpected_in("ServeAwaitRequest", got)),
            },
            Phase::ServeAwaitAnswer { request, query } => match frame_type {
                FrameType::RangeResponse => {
                    let answer: VersionAnswer = from_bytes(payload)?;
                    let batch = self.node.lock().respond_digest_answer(
                        &request,
                        &query,
                        &answer,
                        self.limits,
                        self.now,
                    );
                    match batch {
                        Some(batch) => {
                            self.report.served = batch.entries.len();
                            self.send(out, FrameType::SyncBatch, &batch)?;
                            self.phase = Phase::ServeAwaitDone;
                        }
                        None => {
                            // The answer does not cover the query;
                            // salvage with a full resync round.
                            self.send_empty(out, FrameType::ReconResync)?;
                            self.phase = Phase::ServeAwaitResyncRequest;
                        }
                    }
                    Ok(Progress::Continue)
                }
                got => Err(self.unexpected_in("ServeAwaitAnswer", got)),
            },
            Phase::ServeAwaitResyncRequest => match frame_type {
                FrameType::SyncRequest => {
                    let request = from_bytes(payload)?;
                    let batch =
                        self.node
                            .lock()
                            .respond_digest_resync(&request, self.limits, self.now);
                    self.report.served = batch.entries.len();
                    self.send(out, FrameType::SyncBatch, &batch)?;
                    self.phase = Phase::ServeAwaitDone;
                    Ok(Progress::Continue)
                }
                got => Err(self.unexpected_in("ServeAwaitResyncRequest", got)),
            },
            Phase::ServeAwaitDone => match frame_type {
                FrameType::SyncDone => self.finish_serve(out),
                got => Err(self.unexpected_in("ServeAwaitDone", got)),
            },
            Phase::GossipAwaitReply => match frame_type {
                FrameType::Gossip => {
                    let message: GossipMessage = from_bytes(payload)?;
                    self.membership.lock().merge(&message, now_ms);
                    self.phase = Phase::Closed;
                    Ok(Progress::GossipComplete)
                }
                got => Err(self.unexpected_in("GossipAwaitReply", got)),
            },
            Phase::Closed => Err(self.unexpected_in("Closed", frame_type)),
        }
    }

    fn unexpected_in(&self, phase: &'static str, got: FrameType) -> SessionError {
        SessionError::UnexpectedFrame { phase, got }
    }
}

/// Appends one encoded frame (header + payload) to an outbox segment in
/// a single reserve — the byte layout is exactly what
/// [`transport::frame::write_frame`] produces on a blocking socket, so
/// the reactor's vectored flush stays wire-compatible with it.
fn append_frame(
    out: &mut Vec<u8>,
    frame_type: FrameType,
    payload: &[u8],
) -> Result<(), FrameError> {
    let header = frame_header(frame_type, payload)?;
    out.reserve(header.len() + payload.len());
    out.extend_from_slice(&header);
    out.extend_from_slice(payload);
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::membership::MembershipConfig;
    use dtn::PolicyKind;
    use pfr::ReplicaId;
    use transport::frame::FrameAccum;

    fn node(id: u64, addr: &str) -> Arc<Mutex<DtnNode>> {
        Arc::new(Mutex::new(DtnNode::new(
            ReplicaId::new(id),
            addr,
            PolicyKind::Epidemic,
        )))
    }

    fn membership(id: u64) -> Arc<Mutex<Membership>> {
        Arc::new(Mutex::new(Membership::new(
            id,
            format!("m{id}:1"),
            MembershipConfig::default(),
        )))
    }

    /// Drives two machines against each other entirely in memory: bytes
    /// each machine emits are decoded and fed to the other until both
    /// finish — the state-machine twin of a blocking session over a pipe.
    fn drive(a: &mut SessionMachine, a_out: Vec<u8>, b: &mut SessionMachine) {
        let mut accum_a = FrameAccum::new(); // frames addressed to a
        let mut accum_b = FrameAccum::new(); // frames addressed to b
        accum_b.extend(&a_out);
        let mut done_a = false;
        let mut done_b = false;
        let mut steps = 0;
        while !(done_a && done_b) {
            steps += 1;
            assert!(steps < 100, "session did not converge");
            let mut progressed = false;
            while let Some((ft, payload)) = accum_b.next_frame().expect("decode b") {
                progressed = true;
                let mut out = Vec::new();
                match b.on_frame(ft, &payload, 0, &mut out).expect("machine b") {
                    Progress::Continue => {}
                    Progress::SessionComplete | Progress::GossipComplete => done_b = true,
                }
                accum_a.extend(&out);
            }
            while let Some((ft, payload)) = accum_a.next_frame().expect("decode a") {
                progressed = true;
                let mut out = Vec::new();
                match a.on_frame(ft, &payload, 0, &mut out).expect("machine a") {
                    Progress::Continue => {}
                    Progress::SessionComplete | Progress::GossipComplete => done_a = true,
                }
                accum_b.extend(&out);
            }
            // The responder "completes" by returning to idle; treat an
            // idle machine with no pending bytes as done.
            if !progressed {
                if b.is_idle() {
                    done_b = true;
                }
                assert!(done_a || done_b, "deadlock: no frames in flight");
            }
        }
    }

    #[test]
    fn full_session_between_machines_delivers_both_ways() {
        let node_a = node(1, "a");
        let node_b = node(2, "b");
        node_a
            .lock()
            .send("b", b"ping".to_vec(), SimTime::ZERO)
            .unwrap();
        node_b
            .lock()
            .send("a", b"pong".to_vec(), SimTime::ZERO)
            .unwrap();

        let (mut init, out) = SessionMachine::sync_initiator(
            Arc::clone(&node_a),
            membership(1),
            SyncLimits::unlimited(),
            SimTime::from_secs(60),
            false,
        )
        .unwrap();
        let mut resp =
            SessionMachine::responder(Arc::clone(&node_b), membership(2), SyncLimits::unlimited());
        drive(&mut init, out, &mut resp);

        assert_eq!(node_a.lock().inbox().len(), 1);
        assert_eq!(node_b.lock().inbox().len(), 1);
        assert!(init.is_closed());
        assert!(resp.is_idle(), "responder resets for the next session");
    }

    #[test]
    fn responder_machine_carries_back_to_back_sessions() {
        let node_b = node(2, "b");
        let mut resp =
            SessionMachine::responder(Arc::clone(&node_b), membership(2), SyncLimits::unlimited());
        for round in 1..=3u64 {
            let node_a = node(round + 10, "a");
            node_a
                .lock()
                .send("b", format!("msg {round}").into_bytes(), SimTime::ZERO)
                .unwrap();
            let (mut init, out) = SessionMachine::sync_initiator(
                Arc::clone(&node_a),
                membership(round + 10),
                SyncLimits::unlimited(),
                SimTime::from_secs(60 * round),
                false,
            )
            .unwrap();
            drive(&mut init, out, &mut resp);
            assert!(resp.is_idle());
        }
        assert_eq!(node_b.lock().inbox().len(), 3);
    }

    #[test]
    fn digest_session_between_machines_matches_blocking_accounting() {
        let node_a = node(1, "a");
        let node_b = node(2, "b");
        node_a.lock().set_sync_mode(SyncMode::Digest);
        node_b.lock().set_sync_mode(SyncMode::Digest);
        node_a
            .lock()
            .send("b", b"ping".to_vec(), SimTime::ZERO)
            .unwrap();
        node_b
            .lock()
            .send("a", b"pong".to_vec(), SimTime::ZERO)
            .unwrap();

        for round in 1..=3u64 {
            let (mut init, out) = SessionMachine::sync_initiator(
                Arc::clone(&node_a),
                membership(1),
                SyncLimits::unlimited(),
                SimTime::from_secs(60 * round),
                false,
            )
            .unwrap();
            let mut resp = SessionMachine::responder(
                Arc::clone(&node_b),
                membership(2),
                SyncLimits::unlimited(),
            );
            drive(&mut init, out, &mut resp);
        }
        assert_eq!(node_a.lock().inbox().len(), 1);
        assert_eq!(node_b.lock().inbox().len(), 1);
        let stats_a = node_a.lock().recon_stats();
        let stats_b = node_b.lock().recon_stats();
        assert_eq!(stats_a.exchanges, 3, "initiator committed every pull");
        assert_eq!(stats_b.exchanges, 3, "responder committed every pull");
        assert!(stats_a.digest_bytes > 0);
    }

    #[test]
    fn gossip_exchange_merges_both_views() {
        let m1 = membership(1);
        let m2 = membership(2);
        m2.lock().observe_alive(3, "m3:1", 0);
        let (mut init, out) =
            SessionMachine::gossip_initiator(node(1, "a"), Arc::clone(&m1), 100, false).unwrap();
        let mut resp =
            SessionMachine::responder(node(2, "b"), Arc::clone(&m2), SyncLimits::unlimited());
        drive(&mut init, out, &mut resp);
        // The initiator learned the responder and its third member; the
        // responder learned the initiator.
        assert_eq!(m1.lock().view().len(), 2);
        assert!(m2.lock().view().iter().any(|p| p.replica == 1));
        assert!(resp.is_idle(), "gossip answered from idle");
    }

    #[test]
    fn unexpected_frame_fails_the_machine() {
        let mut resp =
            SessionMachine::responder(node(2, "b"), membership(2), SyncLimits::unlimited());
        let mut out = Vec::new();
        let err = resp
            .on_frame(FrameType::SyncBatch, &[], 0, &mut out)
            .unwrap_err();
        assert!(matches!(err, SessionError::UnexpectedFrame { .. }));
        resp.abort();
        assert!(resp.is_closed());
    }
}
