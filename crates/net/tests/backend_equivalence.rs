//! Differential suite: `PollBackend::Epoll` ≡ `PollBackend::Sweep`.
//!
//! The poll backend decides *when* sessions are driven, never *what*
//! they say. Two pins, mirroring `emu`'s shard-equivalence suite:
//!
//! * **Wire bytes** — a tee proxy between a client and server records
//!   every byte of sequential sync sessions in both directions; the
//!   captured streams must be identical under both backends, connection
//!   by connection.
//! * **Convergence** — seeded multi-peer bursts (several clients, many
//!   concurrent detached sessions) followed by a quiescing round must
//!   leave identical final inboxes and identical knowledge checksums on
//!   every node, whichever backend ran them.
//!
//! The base seed honours `TESTKIT_SEED` so the CI matrix sweeps it.

use std::io::{Read, Write};
use std::net::{Shutdown, SocketAddr, TcpListener, TcpStream};
use std::time::Duration;

use dtn::{DtnNode, PolicyKind};
use net::{NetConfig, NetNode, PollBackend};
use pfr::digest::knowledge_checksum;
use pfr::{ReplicaId, SimTime, SyncMode};
use proptest::prelude::*;

/// The base seed for every scenario, offset by `TESTKIT_SEED` when set
/// (the CI matrix sets 0..8).
fn base_seed() -> u64 {
    std::env::var("TESTKIT_SEED")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(0u64)
        .wrapping_mul(0x9E37_79B9)
        .wrapping_add(0x5AAD)
}

/// Deterministic payload bytes for message `j` of node `i` under `seed`.
fn payload(seed: u64, i: u64, j: u64, len: usize) -> Vec<u8> {
    let mut state = seed ^ (i << 32) ^ j ^ 0x9E37_79B9_7F4A_7C15;
    let mut out = Vec::with_capacity(len);
    for _ in 0..len {
        state = state
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        out.push((state >> 56) as u8);
    }
    out
}

fn config(backend: PollBackend) -> NetConfig {
    NetConfig {
        backend,
        gossip_interval: Duration::ZERO,
        ..NetConfig::default()
    }
}

// ---------------------------------------------------------------------
// Pin 1: identical bytes on the wire.
// ---------------------------------------------------------------------

/// Per-connection captured byte streams: (client→server, server→client).
type WireLogs = Vec<(Vec<u8>, Vec<u8>)>;

/// A tee proxy: accepts `conns` connections, forwards each to `target`,
/// and records the full byte stream in both directions, in accept order.
fn tee_proxy(target: SocketAddr, conns: usize) -> (SocketAddr, std::thread::JoinHandle<WireLogs>) {
    let listener = TcpListener::bind("127.0.0.1:0").expect("bind proxy");
    let addr = listener.local_addr().expect("proxy addr");
    let handle = std::thread::spawn(move || {
        let mut logs = Vec::with_capacity(conns);
        for _ in 0..conns {
            let (client, _) = listener.accept().expect("proxy accept");
            let server = TcpStream::connect(target).expect("proxy dial");
            server.set_nodelay(true).expect("nodelay");
            client.set_nodelay(true).expect("nodelay");
            let c2s = tee_copy(
                client.try_clone().expect("clone"),
                server.try_clone().expect("clone"),
            );
            let s2c = tee_copy(server, client);
            logs.push((c2s.join().expect("c2s"), s2c.join().expect("s2c")));
        }
        logs
    });
    (addr, handle)
}

/// Copies `from` into `to` until EOF, returning every byte seen.
fn tee_copy(mut from: TcpStream, mut to: TcpStream) -> std::thread::JoinHandle<Vec<u8>> {
    std::thread::spawn(move || {
        let mut log = Vec::new();
        let mut buf = [0u8; 16 * 1024];
        loop {
            match from.read(&mut buf) {
                Ok(0) | Err(_) => break,
                Ok(n) => {
                    log.extend_from_slice(&buf[..n]);
                    if to.write_all(&buf[..n]).is_err() {
                        break;
                    }
                }
            }
        }
        let _ = to.shutdown(Shutdown::Write);
        log
    })
}

/// Runs `sessions` sequential syncs through the tee proxy and returns
/// the captured per-connection byte streams.
fn captured_wire(backend: PollBackend, mode: SyncMode, sessions: usize) -> Vec<(Vec<u8>, Vec<u8>)> {
    let seed = base_seed();
    let mut server_node = DtnNode::new(ReplicaId::new(2), "server", PolicyKind::Epidemic);
    let mut client_node = DtnNode::new(ReplicaId::new(1), "client", PolicyKind::Epidemic);
    server_node.set_sync_mode(mode);
    client_node.set_sync_mode(mode);
    for j in 0..3u64 {
        let len = 64 + (seed as usize ^ j as usize) % 512;
        client_node
            .send("server", payload(seed, 1, j, len), SimTime::from_secs(j))
            .expect("inject");
        server_node
            .send("client", payload(seed, 2, j, len), SimTime::from_secs(j))
            .expect("inject");
    }

    let server = NetNode::start(server_node, "127.0.0.1:0", config(backend)).expect("server");
    let client = NetNode::start(
        client_node,
        "127.0.0.1:0",
        NetConfig {
            // Zero-lifetime pool: each sync dials the proxy afresh, so
            // captures line up connection-per-session in both runs.
            idle_timeout: Duration::ZERO,
            ..config(backend)
        },
    )
    .expect("client");
    let (proxy_addr, proxy) = tee_proxy(server.local_addr(), sessions);

    for s in 0..sessions {
        let result = client.sync_with(&proxy_addr.to_string(), SimTime::from_secs(100 + s as u64));
        assert!(result.is_ok(), "session {s} failed: {:?}", result.error);
    }
    client.stop();
    server.stop();
    let logs = proxy.join().expect("proxy");
    assert_eq!(logs.len(), sessions);
    logs
}

fn assert_wire_identical(mode: SyncMode) {
    let epoll = captured_wire(PollBackend::Epoll, mode, 3);
    let sweep = captured_wire(PollBackend::Sweep, mode, 3);
    assert_eq!(epoll.len(), sweep.len());
    for (i, (e, s)) in epoll.iter().zip(&sweep).enumerate() {
        assert!(!e.0.is_empty() && !e.1.is_empty(), "empty capture {i}");
        assert_eq!(
            e.0, s.0,
            "session {i}: initiator->responder bytes differ between backends"
        );
        assert_eq!(
            e.1, s.1,
            "session {i}: responder->initiator bytes differ between backends"
        );
    }
}

#[test]
fn wire_bytes_identical_across_backends_full_mode() {
    assert_wire_identical(SyncMode::Full);
}

#[test]
fn wire_bytes_identical_across_backends_digest_mode() {
    assert_wire_identical(SyncMode::Digest);
}

// ---------------------------------------------------------------------
// Pin 2: identical convergence over seeded multi-peer bursts.
// ---------------------------------------------------------------------

/// Everything observable once a scenario quiesces: per-node inboxes
/// (sorted) and knowledge checksums, server first.
#[derive(Debug, PartialEq, Eq)]
struct Converged {
    inboxes: Vec<Vec<(String, Vec<u8>)>>,
    knowledge: Vec<u64>,
}

fn run_burst(
    backend: PollBackend,
    seed: u64,
    clients: usize,
    burst_per_client: usize,
    messages: usize,
    payload_len: usize,
    mode: SyncMode,
) -> Converged {
    let mut server_node = DtnNode::new(ReplicaId::new(100), "server", PolicyKind::Epidemic);
    server_node.set_sync_mode(mode);
    for j in 0..messages as u64 {
        for i in 1..=clients as u64 {
            server_node
                .send(
                    &format!("c{i}"),
                    payload(seed, 100 + i, j, payload_len),
                    SimTime::from_secs(j),
                )
                .expect("inject");
        }
    }
    let server = NetNode::start(server_node, "127.0.0.1:0", config(backend)).expect("server");
    let addr = server.local_addr().to_string();

    let client_nodes: Vec<NetNode> = (1..=clients as u64)
        .map(|i| {
            let mut node = DtnNode::new(ReplicaId::new(i), &format!("c{i}"), PolicyKind::Epidemic);
            node.set_sync_mode(mode);
            for j in 0..messages as u64 {
                node.send(
                    "server",
                    payload(seed, i, j, payload_len),
                    SimTime::from_secs(j),
                )
                .expect("inject");
            }
            NetNode::start(node, "127.0.0.1:0", config(backend)).expect("client")
        })
        .collect();

    // Concurrent burst: every client holds several detached sessions in
    // flight at once — interleaving is the backend's to schedule.
    let tickets: Vec<_> = (0..burst_per_client)
        .flat_map(|r| {
            client_nodes
                .iter()
                .map(|c| c.sync_detached(&addr, SimTime::from_secs(3600 + r as u64)))
                .collect::<Vec<_>>()
        })
        .collect();
    for (i, ticket) in tickets.into_iter().enumerate() {
        let result = ticket.expect("register").wait();
        assert!(
            result.is_ok(),
            "burst session {i} failed: {:?}",
            result.error
        );
    }
    // Quiescing round, fixed order: every client pulls the complete set.
    for client in &client_nodes {
        let result = client.sync_with(&addr, SimTime::from_secs(7200));
        assert!(result.is_ok(), "quiesce failed: {:?}", result.error);
    }

    let mut nodes = vec![server.stop()];
    nodes.extend(client_nodes.into_iter().map(NetNode::stop));
    let inboxes = nodes
        .iter()
        .map(|n| {
            let mut inbox: Vec<(String, Vec<u8>)> = n
                .inbox()
                .into_iter()
                .map(|m| (m.src.clone(), m.payload.clone()))
                .collect();
            inbox.sort();
            inbox
        })
        .collect();
    let knowledge = nodes
        .iter()
        .map(|n| knowledge_checksum(n.replica().knowledge()))
        .collect();
    Converged { inboxes, knowledge }
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 4 })]

    #[test]
    fn burst_convergence_identical_across_backends(
        seed_offset in 0u64..1 << 48,
        clients in 2usize..4,
        burst_per_client in 1usize..4,
        messages in 1usize..4,
        payload_len in 16usize..512,
        digest in any::<bool>(),
    ) {
        let seed = base_seed() ^ seed_offset;
        let mode = if digest { SyncMode::Digest } else { SyncMode::Full };
        let epoll = run_burst(
            PollBackend::Epoll, seed, clients, burst_per_client, messages, payload_len, mode,
        );
        let sweep = run_burst(
            PollBackend::Sweep, seed, clients, burst_per_client, messages, payload_len, mode,
        );
        // Every message delivered exactly once, and both backends agree
        // on every inbox and every knowledge checksum.
        for (i, inbox) in epoll.inboxes.iter().enumerate() {
            let expected = if i == 0 { clients * messages } else { messages };
            prop_assert_eq!(
                inbox.len(), expected,
                "node {} inbox wrong under epoll", i
            );
        }
        prop_assert_eq!(&epoll, &sweep);
    }
}
