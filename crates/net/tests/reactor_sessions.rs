//! End-to-end reactor tests over real sockets: async↔async and
//! async↔blocking interop, detached high-fanout sessions, connection
//! pooling, gossip discovery, and failure/backpressure edges.

use std::time::{Duration, Instant};

use dtn::{DtnNode, PolicyKind};
use net::{MembershipConfig, NetConfig, NetNode, PeerStatus};
use pfr::{ReplicaId, SimTime, SyncMode};
use transport::Peer;

fn node(id: u64, addr: &str) -> DtnNode {
    DtnNode::new(ReplicaId::new(id), addr, PolicyKind::Epidemic)
}

fn quiet_config() -> NetConfig {
    NetConfig {
        gossip_interval: Duration::ZERO, // drive rounds manually
        ..NetConfig::default()
    }
}

#[test]
fn async_nodes_sync_both_ways() {
    let mut a = node(1, "a");
    let mut b = node(2, "b");
    a.send("b", b"ping".to_vec(), SimTime::ZERO).unwrap();
    b.send("a", b"pong".to_vec(), SimTime::ZERO).unwrap();

    let server = NetNode::start(b, "127.0.0.1:0", quiet_config()).unwrap();
    let client = NetNode::start(a, "127.0.0.1:0", quiet_config()).unwrap();

    let result = client.sync_with(&server.local_addr().to_string(), SimTime::from_secs(60));
    assert!(result.is_ok(), "session failed: {:?}", result.error);
    assert_eq!(result.report.peer, Some(ReplicaId::new(2)));
    assert_eq!(result.report.pulled.as_ref().unwrap().delivered, 1);

    let a = client.stop();
    let b = server.stop();
    assert_eq!(a.inbox().len(), 1);
    assert_eq!(b.inbox().len(), 1);
}

#[test]
fn async_initiator_interoperates_with_blocking_peer() {
    // The reactor speaks the exact same wire protocol as the blocking
    // transport: a NetNode initiator syncs against a transport::Peer.
    let mut a = node(1, "a");
    let mut b = node(2, "b");
    a.send("b", b"to blocking".to_vec(), SimTime::ZERO).unwrap();
    b.send("a", b"to async".to_vec(), SimTime::ZERO).unwrap();

    let blocking = Peer::start(b, "127.0.0.1:0").unwrap();
    let client = NetNode::start(a, "127.0.0.1:0", quiet_config()).unwrap();

    let result = client.sync_with(&blocking.local_addr().to_string(), SimTime::from_secs(60));
    assert!(result.is_ok(), "session failed: {:?}", result.error);

    let a = client.stop();
    let b = blocking.stop();
    assert_eq!(a.inbox().len(), 1);
    assert_eq!(b.inbox().len(), 1);
}

#[test]
fn blocking_initiator_interoperates_with_async_responder() {
    let mut a = node(1, "a");
    let mut b = node(2, "b");
    a.send("b", b"to async".to_vec(), SimTime::ZERO).unwrap();
    b.send("a", b"to blocking".to_vec(), SimTime::ZERO).unwrap();

    let server = NetNode::start(b, "127.0.0.1:0", quiet_config()).unwrap();
    let blocking = Peer::start(a, "127.0.0.1:0").unwrap();

    let report = blocking
        .sync_with(server.local_addr(), SimTime::from_secs(60))
        .expect("blocking initiator");
    assert_eq!(report.peer, Some(ReplicaId::new(2)));

    let a = blocking.stop();
    let b = server.stop();
    assert_eq!(a.inbox().len(), 1);
    assert_eq!(b.inbox().len(), 1);
}

#[test]
fn digest_mode_sessions_run_through_the_reactor() {
    let mut a = node(1, "a");
    let mut b = node(2, "b");
    a.set_sync_mode(SyncMode::Digest);
    b.set_sync_mode(SyncMode::Digest);
    a.send("b", b"digest ping".to_vec(), SimTime::ZERO).unwrap();
    b.send("a", b"digest pong".to_vec(), SimTime::ZERO).unwrap();

    let server = NetNode::start(b, "127.0.0.1:0", quiet_config()).unwrap();
    let client = NetNode::start(a, "127.0.0.1:0", quiet_config()).unwrap();
    let addr = server.local_addr().to_string();

    for round in 1..=3u64 {
        let result = client.sync_with(&addr, SimTime::from_secs(60 * round));
        assert!(result.is_ok(), "round {round} failed: {:?}", result.error);
    }

    let a = client.stop();
    let b = server.stop();
    assert_eq!(a.inbox().len(), 1);
    assert_eq!(b.inbox().len(), 1);
    assert_eq!(a.recon_stats().exchanges, 3);
    assert_eq!(b.recon_stats().exchanges, 3);
}

#[test]
fn pooled_connections_carry_back_to_back_sessions() {
    let client_node = node(1, "a");
    let server_node = node(2, "b");
    let server = NetNode::start(server_node, "127.0.0.1:0", quiet_config()).unwrap();
    let client = NetNode::start(client_node, "127.0.0.1:0", quiet_config()).unwrap();
    let addr = server.local_addr().to_string();

    for round in 1..=4u64 {
        let result = client.sync_with(&addr, SimTime::from_secs(60 * round));
        assert!(result.is_ok(), "round {round} failed: {:?}", result.error);
    }
    let stats = client.stats();
    assert_eq!(stats.completed, 4);
    assert!(
        stats.conn_reuses >= 3,
        "rounds after the first reuse the pooled connection, got {}",
        stats.conn_reuses
    );
    client.stop();
    server.stop();
}

#[test]
fn detached_sessions_run_concurrently() {
    // One client drives many sessions in flight at once against one
    // server: the point of the reactor over thread-per-session.
    let mut client_node = node(1, "client");
    for i in 0..20 {
        client_node
            .send("server", format!("msg {i}").into_bytes(), SimTime::ZERO)
            .unwrap();
    }
    let server = NetNode::start(node(2, "server"), "127.0.0.1:0", quiet_config()).unwrap();
    let client = NetNode::start(client_node, "127.0.0.1:0", quiet_config()).unwrap();
    let addr = server.local_addr().to_string();

    // Fresh dials (no pooling between concurrent sessions to the same
    // addr: the pool only holds completed connections).
    let tickets: Vec<_> = (0..20)
        .map(|i| {
            client
                .sync_detached(&addr, SimTime::from_secs(60 + i))
                .expect("register session")
        })
        .collect();
    for ticket in tickets {
        let result = ticket.wait();
        assert!(
            result.is_ok(),
            "detached session failed: {:?}",
            result.error
        );
    }
    let server_stats = server.stats();
    assert!(
        server_stats.peak_sessions >= 2,
        "server should see concurrent inbound sessions, peak {}",
        server_stats.peak_sessions
    );
    let server_node = server.stop();
    assert_eq!(server_node.inbox().len(), 20);
    client.stop();
}

#[test]
fn gossip_rounds_discover_peers_transitively() {
    // c knows only b; b knows only a. Gossip spreads the full view.
    let config = |seed: u64| NetConfig {
        gossip_interval: Duration::ZERO,
        gossip: MembershipConfig {
            seed,
            ..MembershipConfig::default()
        },
        ..NetConfig::default()
    };
    let a = NetNode::start(node(1, "a"), "127.0.0.1:0", config(1)).unwrap();
    let b = NetNode::start(node(2, "b"), "127.0.0.1:0", config(2)).unwrap();
    let c = NetNode::start(node(3, "c"), "127.0.0.1:0", config(3)).unwrap();
    b.add_seed(a.local_addr().to_string());
    c.add_seed(b.local_addr().to_string());

    let mut rounds = 0;
    loop {
        rounds += 1;
        b.gossip_now();
        c.gossip_now();
        if c.membership().len() == 2 && a.membership().len() == 2 && b.membership().len() == 2 {
            break;
        }
        assert!(
            rounds < 10,
            "gossip failed to converge: c sees {:?}",
            c.membership()
        );
    }
    assert!(rounds <= 4, "transitive discovery took {rounds} rounds");
    assert!(c.membership().iter().all(|p| p.status == PeerStatus::Alive));
    a.stop();
    b.stop();
    c.stop();
}

#[test]
fn failed_dials_turn_members_suspect() {
    let a = NetNode::start(node(1, "a"), "127.0.0.1:0", quiet_config()).unwrap();
    let b = NetNode::start(node(2, "b"), "127.0.0.1:0", quiet_config()).unwrap();
    a.add_seed(b.local_addr().to_string());
    a.gossip_now();
    assert_eq!(a.membership().len(), 1);

    // b dies; a's next gossip round fails the dial and suspects it.
    b.stop();
    let mut suspected = false;
    for _ in 0..5 {
        a.gossip_now();
        if a.membership()
            .iter()
            .any(|p| p.replica == 2 && p.status == PeerStatus::Suspect)
        {
            suspected = true;
            break;
        }
    }
    assert!(
        suspected,
        "dead member never suspected: {:?}",
        a.membership()
    );
    a.stop();
}

#[test]
fn dial_to_dead_address_fails_fast() {
    let client = NetNode::start(node(1, "a"), "127.0.0.1:0", quiet_config()).unwrap();
    // Bind-then-drop: the port is (very likely) dead.
    let dead = {
        let listener = std::net::TcpListener::bind("127.0.0.1:0").unwrap();
        listener.local_addr().unwrap().to_string()
    };
    let start = Instant::now();
    let result = client.sync_with(&dead, SimTime::from_secs(60));
    assert!(!result.is_ok());
    assert!(
        start.elapsed() < Duration::from_secs(5),
        "refused dial should fail fast"
    );
    assert_eq!(
        client.stats().failed,
        0,
        "dial failures never register a session"
    );
    client.stop();
}

#[test]
fn at_capacity_registrations_fail_fast() {
    let config = NetConfig {
        max_sessions: 0,
        ..quiet_config()
    };
    let client = NetNode::start(node(1, "a"), "127.0.0.1:0", config).unwrap();
    let result = client.sync_with("127.0.0.1:1", SimTime::from_secs(60));
    assert!(matches!(result.error, Some(net::SessionError::AtCapacity)));
    client.stop();
}
