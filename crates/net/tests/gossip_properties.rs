//! Property-based tests for the gossip membership wire frames:
//! byte-canonical round trips for messages built through the real
//! [`Membership`] path (not hand-assembled), plus adversarial never-panic
//! decoding of arbitrary and mutated byte strings.

use std::time::Duration;

use proptest::prelude::*;

use net::{GossipMessage, Membership, MembershipConfig, PeerStatus, PeerWire};
use pfr::wire::{from_bytes, to_bytes};

// ---------------------------------------------------------------------------
// Generators
// ---------------------------------------------------------------------------

fn arb_addr() -> impl Strategy<Value = String> {
    // Anything a peer might claim as its listen address, printable or
    // not: decode must not assume parseability.
    prop_oneof![
        (1u8..=255, 1u16..=60_000).prop_map(|(host, port)| format!("10.0.0.{host}:{port}")),
        "[a-z0-9:.\\[\\]]{0,24}",
        ".{0,16}",
    ]
}

fn arb_peer() -> impl Strategy<Value = PeerWire> {
    (
        any::<u64>(),
        arb_addr(),
        any::<u64>(),
        any::<bool>(),
        any::<u64>(),
    )
        .prop_map(|(replica, addr, incarnation, suspect, age_ms)| PeerWire {
            replica,
            addr,
            incarnation,
            status: if suspect {
                PeerStatus::Suspect
            } else {
                PeerStatus::Alive
            },
            age_ms,
        })
}

fn arb_message() -> impl Strategy<Value = GossipMessage> {
    (arb_peer(), proptest::collection::vec(arb_peer(), 0..16))
        .prop_map(|(sender, entries)| GossipMessage { sender, entries })
}

/// One membership view populated through the real observe/merge/tick
/// path, then rendered to the message production code would send.
fn arb_built_message() -> impl Strategy<Value = GossipMessage> {
    (
        1u64..=8,
        proptest::collection::vec(
            (1u64..=64, 1u16..=60_000, any::<bool>(), 0u64..10_000),
            0..24,
        ),
        0u64..10_000,
        1u64..=1_000,
    )
        .prop_map(|(me, peers, now_offset, seed)| {
            let mut membership = Membership::new(
                me,
                format!("10.0.0.{me}:7000"),
                MembershipConfig {
                    suspect_after: Duration::from_millis(5_000),
                    evict_after: Duration::from_millis(50_000),
                    fanout: 3,
                    seed,
                },
            );
            for (replica, port, fail, at_ms) in peers {
                membership.observe_alive(replica, &format!("10.0.0.{replica}:{port}"), at_ms);
                if fail {
                    membership.observe_failed(replica);
                }
            }
            membership.tick(10_000);
            membership.message(10_000 + now_offset)
        })
}

// ---------------------------------------------------------------------------
// Round trips
// ---------------------------------------------------------------------------

proptest! {
    #[test]
    fn arbitrary_messages_round_trip_byte_canonically(msg in arb_message()) {
        let bytes = to_bytes(&msg);
        let decoded: GossipMessage = from_bytes(&bytes).expect("round trip");
        prop_assert_eq!(&decoded, &msg);
        prop_assert_eq!(to_bytes(&decoded), bytes, "re-encode is byte-identical");
    }

    #[test]
    fn built_messages_round_trip_byte_canonically(msg in arb_built_message()) {
        let bytes = to_bytes(&msg);
        let decoded: GossipMessage = from_bytes(&bytes).expect("round trip");
        prop_assert_eq!(&decoded, &msg);
        prop_assert_eq!(to_bytes(&decoded), bytes);
    }

    /// Merging a decoded message is equivalent to merging the original:
    /// the wire layer loses nothing the membership logic reads.
    #[test]
    fn merge_after_round_trip_is_identical(msg in arb_built_message()) {
        let fresh = || Membership::new(99, "10.0.9.9:7000", MembershipConfig::default());
        let mut direct = fresh();
        let mut via_wire = fresh();
        let decoded: GossipMessage = from_bytes(&to_bytes(&msg)).expect("round trip");
        let learned_direct = direct.merge(&msg, 20_000);
        let learned_wire = via_wire.merge(&decoded, 20_000);
        prop_assert_eq!(learned_direct, learned_wire);
        prop_assert_eq!(direct.view(), via_wire.view());
    }
}

// ---------------------------------------------------------------------------
// Adversarial decode: never panic, never allocate absurdly
// ---------------------------------------------------------------------------

proptest! {
    /// Arbitrary bytes either decode to a value or return a typed error;
    /// they never panic.
    #[test]
    fn arbitrary_bytes_never_panic(bytes in proptest::collection::vec(any::<u8>(), 0..512)) {
        let _ = from_bytes::<GossipMessage>(&bytes);
    }

    /// Every truncation of a valid message errors cleanly (a decode
    /// succeeding on a strict prefix would mean trailing-byte blindness).
    #[test]
    fn truncations_error_cleanly(msg in arb_message(), cut_seed in any::<usize>()) {
        let bytes = to_bytes(&msg);
        let cut = cut_seed % bytes.len().max(1);
        if cut < bytes.len() {
            prop_assert!(from_bytes::<GossipMessage>(&bytes[..cut]).is_err());
        }
    }

    /// Single-byte mutations either decode (to something) or error; no
    /// mutation may panic or wedge.
    #[test]
    fn mutations_never_panic(
        msg in arb_message(),
        pos_seed in any::<usize>(),
        xor in 1u8..=255,
    ) {
        let mut bytes = to_bytes(&msg);
        if !bytes.is_empty() {
            let pos = pos_seed % bytes.len();
            bytes[pos] ^= xor;
            let _ = from_bytes::<GossipMessage>(&bytes);
        }
    }
}
