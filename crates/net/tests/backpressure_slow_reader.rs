//! Backpressure under a deliberately slow reader, against both poll
//! backends: a blocking initiator throttles its read side while pulling
//! a multi-megabyte batch from a [`NetNode`] whose per-session write
//! queue is tiny. The bound must fill (stall counters tick, reads from
//! that peer pause) and the session must still complete — backpressure
//! is flow control, not failure. Payload size is swept by
//! `TESTKIT_SEED` so the CI matrix exercises different queue shapes.

use std::io::Read;
use std::net::TcpStream;
use std::sync::Arc;
use std::time::Duration;

use dtn::{DtnNode, PolicyKind};
use net::{NetConfig, NetNode, PollBackend};
use parking_lot::Mutex;
use pfr::{ReplicaId, SimTime, SyncLimits};
use transport::protocol::run_initiator;

/// The base seed for the swept payload size, offset by `TESTKIT_SEED`
/// when set (the CI matrix sets 0..8).
fn base_seed() -> u64 {
    std::env::var("TESTKIT_SEED")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(0u64)
        .wrapping_mul(0x9E37_79B9)
        .wrapping_add(0x5AAD)
}

/// A read half that trickles: at most `chunk` bytes per call, with a
/// sleep before each one. TCP pushes the resulting receive-window
/// pressure back to the serving node, whose bounded outbox must absorb
/// the batch in the meantime.
struct SlowReader {
    inner: TcpStream,
    chunk: usize,
    delay: Duration,
}

impl Read for SlowReader {
    fn read(&mut self, buf: &mut [u8]) -> std::io::Result<usize> {
        std::thread::sleep(self.delay);
        let n = self.chunk.min(buf.len()).max(1);
        self.inner.read(&mut buf[..n])
    }
}

fn slow_reader_survives_backpressure(backend: PollBackend) {
    let seed = base_seed();
    // 8–12 MiB: far beyond what loopback kernel socket buffers can hide,
    // so the serving session's outbox genuinely fills.
    let payload_len = 8 * 1024 * 1024 + (seed % 5) as usize * 1024 * 1024;

    let mut server_node = DtnNode::new(ReplicaId::new(2), "server", PolicyKind::Epidemic);
    server_node
        .send("client", vec![0xB5; payload_len], SimTime::ZERO)
        .expect("inject big message");
    let server = NetNode::start(
        server_node,
        "127.0.0.1:0",
        NetConfig {
            backend,
            // A bound the batch exceeds by three orders of magnitude.
            write_queue_limit: 4 * 1024,
            // The reader is slow, not dead: the stall must not fire.
            stall_timeout: Duration::from_secs(30),
            gossip_interval: Duration::ZERO,
            ..NetConfig::default()
        },
    )
    .expect("bind server");

    let stream = TcpStream::connect(server.local_addr()).expect("connect");
    stream.set_nodelay(true).expect("nodelay");
    let mut reader = SlowReader {
        inner: stream.try_clone().expect("clone stream"),
        chunk: 64 * 1024,
        delay: Duration::from_millis(1),
    };
    let mut writer = stream;
    let client_node = Arc::new(Mutex::new(DtnNode::new(
        ReplicaId::new(1),
        "client",
        PolicyKind::Epidemic,
    )));
    let report = run_initiator(
        &mut reader,
        &mut writer,
        &client_node,
        SimTime::from_secs(60),
        SyncLimits::unlimited(),
    )
    .expect("slow session must survive backpressure");
    assert_eq!(report.peer, Some(ReplicaId::new(2)));
    assert_eq!(
        report
            .pulled
            .as_ref()
            .expect("pull direction ran")
            .delivered,
        1,
        "big message must arrive despite the stall"
    );

    let stats = server.stats();
    assert!(
        stats.backpressure_stalls >= 1,
        "a {payload_len}-byte batch against a 4 KiB bound must stall (got {stats:?})"
    );
    assert_eq!(stats.failed, 0, "backpressure must not fail the session");
    assert!(stats.completed >= 1, "serve session never completed");
    assert!(stats.syscalls > 0, "syscall accounting missing");
    assert!(stats.wakeups > 0, "wakeup accounting missing");
    let expected_backend = if cfg!(target_os = "linux") {
        backend.name()
    } else {
        "sweep"
    };
    assert_eq!(stats.backend, expected_backend);

    drop((reader, writer));
    server.stop();
    let delivered = client_node.lock().inbox();
    assert_eq!(delivered.len(), 1, "exactly-once delivery broke");
    assert_eq!(delivered[0].payload.len(), payload_len);
}

#[test]
fn slow_reader_survives_backpressure_epoll() {
    slow_reader_survives_backpressure(PollBackend::Epoll);
}

#[test]
fn slow_reader_survives_backpressure_sweep() {
    slow_reader_survives_backpressure(PollBackend::Sweep);
}
