//! Scenario coverage for the sharded engine's failure and boundary
//! behavior: crash/restore with spilled state recovering through
//! `store::SpillFile`, cross-shard encounter pairs, and bounded-residency
//! accounting for `storage_footprint` / `run_into_parts`.
//!
//! Where `tests/shard_equivalence.rs` proves the engines equal, these
//! tests pin the *mechanisms*: that spills actually happen, that handoffs
//! actually cross shards, and that the residency cap actually bounds the
//! resident set — all observable through the `shard.*` counters and
//! events.

use std::sync::Arc;

use dtn::PolicyKind;
use emu::{storage_footprint, Emulation, EmulationConfig};
use obs::{Event, Observer, Registry};
use parking_lot::Mutex;
use pfr::SyncMode;
use traces::{DieselNetConfig, EmailConfig, EmailWorkload, EncounterTrace};

/// The base seed for every scenario, offset by `TESTKIT_SEED` when set
/// (the CI matrix sets 0..8).
fn base_seed() -> u64 {
    std::env::var("TESTKIT_SEED")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(0u64)
        .wrapping_mul(0x9E37_79B9)
        .wrapping_add(0x5ce0)
}

fn scenario(seed: u64) -> (EncounterTrace, EmailWorkload) {
    let trace = DieselNetConfig {
        days: 3,
        fleet_size: 12,
        buses_per_day: 8,
        routes: 4,
        clusters: 2,
        encounters_per_day: 140,
        seed,
        ..DieselNetConfig::default()
    }
    .generate();
    let workload = EmailConfig {
        users: 12,
        injection_days: 2,
        total_messages: 50,
        contacts_per_user: 3,
        seed: seed ^ 0xe417,
        ..EmailConfig::default()
    }
    .generate();
    (trace, workload)
}

fn tmp_dir() -> std::path::PathBuf {
    let dir = std::env::temp_dir().join(format!("replidtn-shard-scen-{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("tmp dir");
    dir
}

/// Collects every event for post-run structural assertions.
#[derive(Default)]
struct Capture {
    events: Mutex<Vec<Event>>,
}

impl Observer for Capture {
    fn on_event(&self, event: &Event) {
        self.events.lock().push(event.clone());
    }
}

/// Crash/restore mid-run under the sharded engine with a residency cap:
/// rebooted nodes restore from their durable snapshot, spilled nodes
/// recover from the spill file, and the run still equals serial exactly.
#[test]
fn crashes_recover_through_spilled_state() {
    let (trace, workload) = scenario(base_seed() ^ 0xc4a5);
    let registry = Arc::new(Registry::new());
    let config = EmulationConfig {
        policy: PolicyKind::Epidemic.into(),
        crash_rate: 0.2,
        sync_mode: SyncMode::Full,
        spill_dir: Some(tmp_dir()),
        resident_limit: Some(4),
        shards: Some(3),
        observer: Some(registry.clone()),
        ..EmulationConfig::default()
    };
    let serial = Emulation::new(
        &trace,
        &workload,
        EmulationConfig {
            shards: None,
            stream_encounters: false,
            spill_dir: None,
            resident_limit: None,
            observer: None,
            ..config.clone()
        },
    )
    .run();
    let (metrics, nodes) = Emulation::new(&trace, &workload, config).run_into_parts();

    let snap = registry.snapshot();
    assert!(metrics.reboots > 0, "crashes must actually happen");
    assert!(
        snap.counter("shard.spills") > 0,
        "the cap must force spills"
    );
    assert!(
        snap.counter("shard.unspills") > 0,
        "spilled nodes must come back mid-run"
    );
    assert_eq!(
        metrics, serial,
        "crash + spill interplay diverged from serial"
    );
    assert_eq!(
        nodes.len(),
        trace.nodes().len(),
        "every spilled node returns for final accounting"
    );
    assert_eq!(
        metrics.duplicates, 0,
        "at-most-once survives reboots and spills"
    );
}

/// Cross-shard encounters: with two workers and modular ownership, odd/even
/// pairs are boundary cases. Every handoff event must actually cross
/// shards, the counter must agree with the event stream, and the
/// boundary pairs must not cost any replication guarantee.
#[test]
fn cross_shard_pairs_hand_off_and_stay_correct() {
    let (trace, workload) = scenario(base_seed() ^ 0xb0a2);
    let workers = 2u64;
    let capture = Arc::new(Capture::default());
    let config = EmulationConfig {
        policy: PolicyKind::MaxProp.into(),
        shards: Some(workers as usize),
        observer: Some(capture.clone()),
        ..EmulationConfig::default()
    };
    let serial = Emulation::new(
        &trace,
        &workload,
        EmulationConfig {
            shards: None,
            observer: None,
            ..config.clone()
        },
    )
    .run();
    let metrics = Emulation::new(&trace, &workload, config).run();

    let events = capture.events.lock();
    let handoffs: Vec<(u64, u64, u64, u64)> = events
        .iter()
        .filter_map(|e| match e {
            Event::ShardHandoff {
                a,
                b,
                from_shard,
                to_shard,
                ..
            } => Some((*a, *b, *from_shard, *to_shard)),
            _ => None,
        })
        .collect();
    // The synthetic fleet mixes odd and even ids on every route, so a
    // two-shard split must produce boundary encounters.
    assert!(!handoffs.is_empty(), "no cross-shard encounters happened");
    for (a, b, from, to) in &handoffs {
        assert_ne!(from, to, "a handoff must cross shards");
        assert_eq!(a % workers, *from, "from_shard owns endpoint a");
        assert_eq!(b % workers, *to, "to_shard owns endpoint b");
    }
    let same_shard = events
        .iter()
        .filter(|e| matches!(e, Event::EncounterCompleted { .. }))
        .count() as u64
        - handoffs.len() as u64;
    assert!(
        same_shard > 0,
        "the trace should also have same-shard encounters for contrast"
    );
    assert_eq!(metrics, serial, "boundary pairs diverged from serial");
    assert_eq!(metrics.duplicates, 0);
}

/// `storage_footprint` and `run_into_parts` under spilling: the returned
/// node map contains *every* replica (spilled ones included), so footprint
/// accounting matches an unspilled run byte for byte — while the
/// `shard.resident` series proves the cap actually bounded the resident
/// set mid-run.
#[test]
fn footprint_counts_spilled_replicas_and_residency_stays_bounded() {
    let (trace, workload) = scenario(base_seed() ^ 0xf007);
    let limit = 4usize;
    let shards = 2usize;
    let registry = Arc::new(Registry::new());
    let capture = Arc::new(Capture::default());
    let fanout = Arc::new(obs::Fanout::new(vec![
        registry.clone() as Arc<dyn Observer>,
        capture.clone() as Arc<dyn Observer>,
    ]));
    let config = EmulationConfig {
        policy: PolicyKind::Epidemic.into(),
        sync_mode: SyncMode::Full,
        spill_dir: Some(tmp_dir()),
        resident_limit: Some(limit),
        shards: Some(shards),
        observer: Some(fanout),
        ..EmulationConfig::default()
    };
    let (_, unspilled_nodes) = Emulation::new(
        &trace,
        &workload,
        EmulationConfig {
            spill_dir: None,
            resident_limit: None,
            observer: None,
            ..config.clone()
        },
    )
    .run_into_parts();
    let (_, nodes) = Emulation::new(&trace, &workload, config).run_into_parts();

    // Footprint: every spilled replica is restored into the returned map,
    // so the accounting must equal the never-spilled run exactly.
    assert_eq!(nodes.len(), trace.nodes().len());
    let spilled_fp = storage_footprint(&nodes);
    let unspilled_fp = storage_footprint(&unspilled_nodes);
    assert!(spilled_fp.total_bytes > 0, "the fleet stores something");
    assert_eq!(
        spilled_fp.total_bytes, unspilled_fp.total_bytes,
        "per-copy footprint must count spilled replicas"
    );
    // Spill round-trips re-serialize payloads, so *physical* sharing may
    // differ either way (restore interns buffers by content, live sync
    // shares along transfer chains) — but it stays a valid deduplication
    // of the same logical bytes.
    assert!(spilled_fp.deduped_bytes > 0);
    assert!(spilled_fp.deduped_bytes <= spilled_fp.total_bytes);

    // Residency: every post-spill resident count respects the cap, and
    // the engine spilled all the way down to it. A batch may transiently
    // exceed the cap by its own working set (two nodes per op).
    let snap = registry.snapshot();
    let resident = snap
        .histogram("shard.resident")
        .expect("spills happened, so the series exists");
    assert!(resident.count() > 0);
    let headroom = (shards * 32 * 2) as u64;
    let mut spilled_to_cap = false;
    for event in capture.events.lock().iter() {
        if let Event::ReplicaSpill {
            resident, unspill, ..
        } = event
        {
            if !unspill {
                assert!(
                    *resident <= limit as u64 + headroom,
                    "resident set escaped the cap: {resident}"
                );
                spilled_to_cap |= *resident == limit as u64;
            }
        }
    }
    assert!(spilled_to_cap, "the engine must spill down to the cap");
}
