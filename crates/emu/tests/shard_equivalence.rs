//! Differential suite: the sharded engine is *equal* to the serial one.
//!
//! Every test here runs the same schedule through both engines and
//! demands identical [`emu::ExperimentMetrics`] (derived `Eq` over every
//! record, delay, daily series, and counter) plus identical per-node
//! final knowledge — the strongest observable the substrate exposes. The
//! base seed honours `TESTKIT_SEED` so CI can sweep a seed matrix: the
//! equivalence must hold for *any* seed, not a lucky one.

use std::collections::BTreeMap;

use dtn::{DtnNode, EncounterBudget, PolicyKind};
use emu::{Emulation, EmulationConfig};
use pfr::{ReplicaId, SimDuration, SyncMode};
use proptest::prelude::*;
use traces::{DieselNetConfig, EmailConfig, EmailWorkload, EncounterTrace, SpooledTrace};

const SHARD_COUNTS: [usize; 4] = [1, 2, 4, 7];

/// The base seed for every scenario, offset by `TESTKIT_SEED` when set
/// (the CI matrix sets 0..8).
fn base_seed() -> u64 {
    std::env::var("TESTKIT_SEED")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(0u64)
        .wrapping_mul(0x9E37_79B9)
        .wrapping_add(0x5AAD)
}

/// A randomized small fleet: enough buses and days for relaying and
/// deferral conflicts, small enough that a proptest case stays cheap.
fn scenario(
    seed: u64,
    fleet: usize,
    days: u64,
    messages: usize,
) -> (EncounterTrace, EmailWorkload) {
    let trace = DieselNetConfig {
        days,
        fleet_size: fleet,
        buses_per_day: (fleet * 2 / 3).max(2),
        routes: (fleet / 3).max(2),
        clusters: 2,
        encounters_per_day: fleet * 12,
        seed,
        ..DieselNetConfig::default()
    }
    .generate();
    let workload = EmailConfig {
        users: fleet,
        injection_days: days.min(2),
        total_messages: messages,
        contacts_per_user: 3,
        seed: seed ^ 0xe417,
        ..EmailConfig::default()
    }
    .generate();
    (trace, workload)
}

fn tmp_dir() -> std::path::PathBuf {
    let dir = std::env::temp_dir().join(format!("replidtn-shard-eq-{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("tmp dir");
    dir
}

/// Runs serial once and sharded under *both* execution modes — a worker
/// pool sized to the shard count and the cooperative main-thread path
/// (`exec_threads: Some(0)`) — and asserts full equivalence for each:
/// metrics equal, and every node ends with identical knowledge. Pinning
/// the mode matters because auto-detection picks per host, and the suite
/// must cover both paths regardless of where it runs.
fn assert_sharded_equals_serial(
    trace: &EncounterTrace,
    workload: &EmailWorkload,
    config: &EmulationConfig,
    shards: usize,
    label: &str,
) {
    let serial_config = EmulationConfig {
        shards: None,
        stream_encounters: false,
        spill_dir: None,
        resident_limit: None,
        ..config.clone()
    };
    let (serial, serial_nodes) = Emulation::new(trace, workload, serial_config).run_into_parts();
    for exec_threads in [shards, 0] {
        let sharded_config = EmulationConfig {
            shards: Some(shards),
            exec_threads: Some(exec_threads),
            ..config.clone()
        };
        let (sharded, sharded_nodes) =
            Emulation::new(trace, workload, sharded_config).run_into_parts();
        assert_eq!(
            serial, sharded,
            "{label}: metrics diverged at {shards} shards / {exec_threads} threads"
        );
        assert_knowledge_equal(&serial_nodes, &sharded_nodes, label, shards);
    }
}

fn assert_knowledge_equal(
    serial: &BTreeMap<ReplicaId, DtnNode>,
    sharded: &BTreeMap<ReplicaId, DtnNode>,
    label: &str,
    shards: usize,
) {
    assert_eq!(serial.len(), sharded.len(), "{label}: node set diverged");
    for (id, serial_node) in serial {
        let sharded_node = &sharded[id];
        assert_eq!(
            serial_node.replica().knowledge(),
            sharded_node.replica().knowledge(),
            "{label}: node {id} knowledge diverged at {shards} shards"
        );
    }
}

/// The tentpole invariant, exhaustively: every paper policy at every
/// shard count reproduces the serial run exactly.
#[test]
fn every_policy_matches_serial_at_every_shard_count() {
    let (trace, workload) = scenario(base_seed(), 10, 3, 60);
    for kind in PolicyKind::ALL {
        let config = EmulationConfig {
            policy: kind.into(),
            relay_limit: Some(3),
            budget: EncounterBudget::max_messages(4),
            ..EmulationConfig::default()
        };
        for shards in SHARD_COUNTS {
            assert_sharded_equals_serial(&trace, &workload, &config, shards, kind.label());
        }
    }
}

/// Fault injection draws (drops, crashes, victim picks) happen at scan
/// time in serial rng order, so failure-heavy runs must still match.
#[test]
fn fault_injection_matches_serial() {
    let (trace, workload) = scenario(base_seed() ^ 0xfa17, 9, 3, 50);
    let config = EmulationConfig {
        policy: PolicyKind::MaxProp.into(),
        encounter_drop_rate: 0.3,
        crash_rate: 0.2,
        ..EmulationConfig::default()
    };
    for shards in SHARD_COUNTS {
        assert_sharded_equals_serial(&trace, &workload, &config, shards, "faulty maxprop");
    }
}

/// Bounded lifetimes exercise the expiry/tombstone paths and the
/// commit-time `copies_at_delivery` bookkeeping.
#[test]
fn bounded_lifetimes_match_serial() {
    let (trace, workload) = scenario(base_seed() ^ 0x11fe, 10, 3, 60);
    let config = EmulationConfig {
        policy: PolicyKind::Epidemic.into(),
        message_lifetime: Some(SimDuration::from_mins(90)),
        relay_limit: Some(2),
        ..EmulationConfig::default()
    };
    for shards in SHARD_COUNTS {
        assert_sharded_equals_serial(&trace, &workload, &config, shards, "bounded lifetime");
    }
}

/// Spilling cold replicas through `store::SpillFile` must be invisible to
/// the metrics (full sync mode: snapshots capture the whole behavioral
/// state).
#[test]
fn spilled_runs_match_serial() {
    let (trace, workload) = scenario(base_seed() ^ 0x5b11, 10, 3, 60);
    for kind in [
        PolicyKind::Epidemic,
        PolicyKind::MaxProp,
        PolicyKind::Direct,
    ] {
        let config = EmulationConfig {
            policy: kind.into(),
            sync_mode: SyncMode::Full,
            spill_dir: Some(tmp_dir()),
            resident_limit: Some(3),
            ..EmulationConfig::default()
        };
        for shards in [1, 4] {
            assert_sharded_equals_serial(&trace, &workload, &config, shards, kind.label());
        }
    }
}

/// Streaming encounters from a temp spool must not change anything: the
/// spooled sequence is byte-identical to the in-memory one.
#[test]
fn streamed_encounters_match_serial() {
    let (trace, workload) = scenario(base_seed() ^ 0x57e4, 10, 3, 60);
    let config = EmulationConfig {
        policy: PolicyKind::Prophet.into(),
        stream_encounters: true,
        spill_dir: Some(tmp_dir()),
        ..EmulationConfig::default()
    };
    for shards in [1, 4] {
        assert_sharded_equals_serial(&trace, &workload, &config, shards, "streamed");
    }
}

/// A spooled trace source (`Emulation::from_spooled`) is the city-scale
/// entry point; it must reproduce the in-memory run exactly.
#[test]
fn spooled_source_matches_in_memory_serial() {
    let (trace, workload) = scenario(base_seed() ^ 0x5900, 10, 3, 60);
    let path = tmp_dir().join("source.spool");
    let spooled = SpooledTrace::spool(&trace, &path).expect("spool");
    let config = EmulationConfig::for_policy(PolicyKind::Epidemic);
    let (serial, serial_nodes) = Emulation::new(&trace, &workload, config.clone()).run_into_parts();
    for shards in [1, 4] {
        for exec_threads in [shards, 0] {
            let spooled_config = EmulationConfig {
                shards: Some(shards),
                exec_threads: Some(exec_threads),
                ..config.clone()
            };
            let (via_spool, spool_nodes) =
                Emulation::from_spooled(&spooled, &workload, spooled_config).run_into_parts();
            assert_eq!(
                serial, via_spool,
                "spooled source diverged at {shards} shards / {exec_threads} threads"
            );
            assert_knowledge_equal(&serial_nodes, &spool_nodes, "spooled source", shards);
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 10 })]

    /// Random fleets, random policy/shard/fault/limit combinations: any
    /// divergence between the engines shrinks to a minimal scenario.
    #[test]
    fn random_fleets_match_serial(
        seed in 0u64..1_000_000,
        fleet in 6usize..14,
        days in 2u64..4,
        messages in 20usize..70,
        policy_idx in 0usize..PolicyKind::ALL.len(),
        shard_idx in 0usize..SHARD_COUNTS.len(),
        relay_raw in 0usize..4,
        crash in 0u8..2,
        lifetime_raw in 0u64..240,
    ) {
        let (trace, workload) = scenario(base_seed() ^ seed, fleet, days, messages);
        let config = EmulationConfig {
            policy: PolicyKind::ALL[policy_idx].into(),
            relay_limit: (relay_raw > 0).then_some(relay_raw),
            crash_rate: if crash == 1 { 0.15 } else { 0.0 },
            // Raw minutes below the floor mean "no lifetime": proptest
            // still explores both regimes from one integer dimension.
            message_lifetime: (lifetime_raw >= 30).then(|| SimDuration::from_mins(lifetime_raw)),
            ..EmulationConfig::default()
        };
        assert_sharded_equals_serial(
            &trace,
            &workload,
            &config,
            SHARD_COUNTS[shard_idx],
            "random fleet",
        );
    }

    /// The residency machinery — Belady eviction over the lookahead
    /// window, batched spill writes and reads, prefetch — is
    /// performance-only: any `resident_limit`/`lookahead` combination
    /// must yield the exact metrics and knowledge of an
    /// unlimited-residency run of the same shard count.
    #[test]
    fn residency_is_invisible_to_metrics(
        seed in 0u64..1_000_000,
        fleet in 6usize..14,
        days in 2u64..4,
        messages in 20usize..60,
        policy_idx in 0usize..PolicyKind::ALL.len(),
        limit in 2usize..10,
        lookahead_raw in 0usize..6,
        shard_idx in 0usize..SHARD_COUNTS.len(),
        pooled in any::<bool>(),
    ) {
        let (trace, workload) = scenario(base_seed() ^ seed ^ 0xbe1a, fleet, days, messages);
        let shards = SHARD_COUNTS[shard_idx];
        let base = EmulationConfig {
            policy: PolicyKind::ALL[policy_idx].into(),
            sync_mode: SyncMode::Full,
            shards: Some(shards),
            // Pin the execution mode so the case covers both the pooled
            // and the cooperative path wherever it runs.
            exec_threads: Some(if pooled { shards } else { 0 }),
            ..EmulationConfig::default()
        };
        let (unlimited, unlimited_nodes) =
            Emulation::new(&trace, &workload, base.clone()).run_into_parts();
        let capped_config = EmulationConfig {
            spill_dir: Some(tmp_dir()),
            resident_limit: Some(limit),
            // 0 means "the default window"; tiny explicit windows stress
            // the everything-outside-the-window eviction path.
            lookahead: (lookahead_raw > 0).then_some(lookahead_raw * 8),
            ..base
        };
        let (capped, capped_nodes) =
            Emulation::new(&trace, &workload, capped_config).run_into_parts();
        prop_assert_eq!(unlimited, capped, "residency changed metrics");
        assert_knowledge_equal(&unlimited_nodes, &capped_nodes, "capped residency", shards);
    }

    /// Streamed (spooled) iteration yields exactly the in-memory
    /// encounter sequence, for arbitrary generator configurations.
    #[test]
    fn streaming_yields_identical_encounter_sequences(
        seed in 0u64..1_000_000,
        fleet in 4usize..20,
        days in 1u64..5,
        per_day in 20usize..200,
    ) {
        let trace = DieselNetConfig {
            days,
            fleet_size: fleet,
            buses_per_day: (fleet / 2).max(2),
            routes: (fleet / 3).max(2),
            clusters: 2,
            encounters_per_day: per_day,
            seed: base_seed() ^ seed,
            ..DieselNetConfig::default()
        }
        .generate();
        let path = tmp_dir().join(format!("seq-{seed}-{fleet}-{days}.spool"));
        let spooled = SpooledTrace::spool(&trace, &path).expect("spool");
        let streamed: Vec<_> = spooled.iter().expect("open").collect();
        let in_memory: Vec<_> = trace.iter().copied().collect();
        prop_assert_eq!(streamed, in_memory);
        let _ = std::fs::remove_file(&path);
    }
}
