//! Plain-text rendering of experiment results as paper-style tables and
//! series, used by the benchmark harness and the examples.

use std::fmt;

use crate::metrics::CdfPoint;

/// A simple aligned text table.
///
/// # Examples
///
/// ```
/// use emu::report::Table;
///
/// let mut t = Table::new("Demo", vec!["name", "value"]);
/// t.row(vec!["x".to_string(), "1".to_string()]);
/// let text = t.to_string();
/// assert!(text.contains("Demo"));
/// assert!(text.contains("x"));
/// ```
#[derive(Clone, Debug)]
pub struct Table {
    title: String,
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Creates a table with a title and column headers.
    pub fn new(title: impl Into<String>, headers: Vec<impl Into<String>>) -> Self {
        Table {
            title: title.into(),
            headers: headers.into_iter().map(Into::into).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends one row. Rows shorter than the header are padded.
    pub fn row(&mut self, cells: Vec<String>) -> &mut Self {
        self.rows.push(cells);
        self
    }

    /// Number of data rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// Returns `true` if the table has no data rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }
}

impl fmt::Display for Table {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let cols = self.headers.len();
        let mut widths: Vec<usize> = self.headers.iter().map(String::len).collect();
        for row in &self.rows {
            for (i, cell) in row.iter().enumerate().take(cols) {
                if cell.len() > widths[i] {
                    widths[i] = cell.len();
                }
            }
        }
        writeln!(f, "== {} ==", self.title)?;
        let write_row = |f: &mut fmt::Formatter<'_>, cells: &[String]| -> fmt::Result {
            for (i, width) in widths.iter().enumerate().take(cols) {
                let cell = cells.get(i).map(String::as_str).unwrap_or("");
                if i > 0 {
                    write!(f, "  ")?;
                }
                write!(f, "{cell:>width$}")?;
            }
            writeln!(f)
        };
        write_row(f, &self.headers)?;
        let total: usize = widths.iter().sum::<usize>() + 2 * (cols - 1);
        writeln!(f, "{}", "-".repeat(total))?;
        for row in &self.rows {
            write_row(f, row)?;
        }
        Ok(())
    }
}

/// Formats a float with one decimal place, or `-` for `None`.
pub fn fmt_opt(value: Option<f64>) -> String {
    value
        .map(|v| format!("{v:.1}"))
        .unwrap_or_else(|| "-".to_string())
}

/// Renders a CDF series as `delay: pct%` lines with a crude bar chart, for
/// eyeballing figure shapes in terminal output.
pub fn render_cdf(label: &str, points: &[CdfPoint]) -> String {
    let mut out = String::new();
    out.push_str(&format!("-- {label} --\n"));
    for p in points {
        let bars = (p.delivered_pct / 2.5).round() as usize;
        out.push_str(&format!(
            "{:>8}  {:5.1}% |{}\n",
            p.delay.to_string(),
            p.delivered_pct,
            "#".repeat(bars.min(40))
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use pfr::SimDuration;

    #[test]
    fn table_aligns_columns() {
        let mut t = Table::new("T", vec!["a", "long-header"]);
        t.row(vec!["xxxxxx".to_string(), "1".to_string()]);
        t.row(vec!["y".to_string()]);
        let text = t.to_string();
        assert!(text.contains("== T =="));
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 5, "title, header, rule, two rows");
        assert_eq!(t.len(), 2);
        assert!(!t.is_empty());
    }

    #[test]
    fn fmt_opt_handles_none() {
        assert_eq!(fmt_opt(None), "-");
        assert_eq!(fmt_opt(Some(2.25)), "2.2");
    }

    #[test]
    fn cdf_rendering_contains_percentages() {
        let points = vec![
            CdfPoint {
                delay: SimDuration::from_hours(1),
                delivered_pct: 10.0,
            },
            CdfPoint {
                delay: SimDuration::from_hours(2),
                delivered_pct: 100.0,
            },
        ];
        let text = render_cdf("demo", &points);
        assert!(text.contains("demo"));
        assert!(text.contains("10.0%"));
        assert!(text.contains("100.0%"));
        // Bar length is capped.
        assert!(!text.contains(&"#".repeat(41)));
    }
}
