//! # emu — the trace-driven emulation harness
//!
//! Reproduces the paper's experimental environment (§VI-A): many DTN
//! application instances on one machine, each paired with a replica,
//! driven by a vehicular mobility trace (encounters) and an e-mail
//! workload (message injections), with optional bandwidth and storage
//! constraints (§VI-D) and full delay/traffic/storage metrics.
//!
//! * [`Emulation`] / [`EmulationConfig`] — one run.
//! * [`ExperimentMetrics`] — delays, CDFs, copy accounting.
//! * [`SweepRunner`] — bounded parallel execution for multi-run sweeps.
//! * [`experiments`] — canned runners for every figure of the paper.
//! * [`report`] — paper-style table and series rendering.
//!
//! ```
//! use emu::{Emulation, EmulationConfig};
//! use emu::experiments::Scenario;
//! use dtn::PolicyKind;
//!
//! let scenario = Scenario::small();
//! let config = EmulationConfig::for_policy(PolicyKind::Epidemic);
//! let metrics = Emulation::new(&scenario.trace, &scenario.workload, config).run();
//! assert_eq!(metrics.duplicates, 0); // at-most-once delivery held
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

mod engine;
mod metrics;
mod shard;
mod sweep;

pub mod experiments;
pub mod report;
pub mod topology;

pub use engine::{storage_footprint, Emulation, EmulationConfig, PolicySpec, StorageFootprint};
pub use metrics::{CdfPoint, DayRollup, DayStats, ExperimentMetrics, MessageRecord};
pub use sweep::SweepRunner;
